#include "dram/timing.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

TimingEngine::TimingEngine(const DramSpec &spec)
    : spec_(spec),
      banks(spec.org.totalBanks()),
      ranks(spec.org.ranks),
      energy_(spec.energy)
{}

bool
TimingEngine::actAllowedByRank(const RankState &rank, unsigned bank_group,
                               Cycle now) const
{
    if (now < rank.blockedUntil)
        return false;
    if (rank.hasLastAct) {
        Cycle spacing = (bank_group == rank.lastActBankGroup)
                            ? spec_.timing.tRRD_L
                            : spec_.timing.tRRD_S;
        if (now < rank.lastAct + spacing)
            return false;
    }
    if (rank.fawCount >= 4) {
        Cycle oldest = rank.fawWindow[rank.fawHead];
        if (now < oldest + spec_.timing.tFAW)
            return false;
    }
    return true;
}

void
TimingEngine::recordAct(RankState &rank, unsigned bank_group, Cycle now)
{
    rank.lastAct = now;
    rank.lastActBankGroup = bank_group;
    rank.hasLastAct = true;
    rank.fawWindow[rank.fawHead] = now;
    rank.fawHead = (rank.fawHead + 1) % 4;
    if (rank.fawCount < 4)
        ++rank.fawCount;
}

bool
TimingEngine::canIssue(DramCommand cmd, unsigned flat_bank, Cycle now) const
{
    const BankState &b = banks[flat_bank];
    const RankState &r = ranks[rankOf(flat_bank)];
    if (now < b.blockedUntil || now < r.blockedUntil)
        return false;

    switch (cmd) {
      case DramCommand::kAct:
        return !b.open && now >= b.nextAct &&
               actAllowedByRank(r, bankGroupOf(flat_bank), now);
      case DramCommand::kPre:
        return b.open && now >= b.nextPre;
      case DramCommand::kRead:
        return b.open && now >= b.nextRdWr && now >= bus.nextRead;
      case DramCommand::kWrite:
        return b.open && now >= b.nextRdWr && now >= bus.nextWrite;
    }
    return false;
}

Cycle
TimingEngine::earliestIssue(DramCommand cmd, unsigned flat_bank,
                            Cycle now) const
{
    const BankState &b = banks[flat_bank];
    const RankState &r = ranks[rankOf(flat_bank)];
    Cycle at = std::max({now, b.blockedUntil, r.blockedUntil});

    switch (cmd) {
      case DramCommand::kAct: {
        if (b.open)
            return kNeverCycle;
        at = std::max(at, b.nextAct);
        if (r.hasLastAct) {
            Cycle spacing = (bankGroupOf(flat_bank) == r.lastActBankGroup)
                                ? spec_.timing.tRRD_L
                                : spec_.timing.tRRD_S;
            at = std::max(at, r.lastAct + spacing);
        }
        if (r.fawCount >= 4)
            at = std::max(at, r.fawWindow[r.fawHead] + spec_.timing.tFAW);
        return at;
      }
      case DramCommand::kPre:
        return b.open ? std::max(at, b.nextPre) : kNeverCycle;
      case DramCommand::kRead:
        return b.open ? std::max({at, b.nextRdWr, bus.nextRead})
                      : kNeverCycle;
      case DramCommand::kWrite:
        return b.open ? std::max({at, b.nextRdWr, bus.nextWrite})
                      : kNeverCycle;
    }
    return kNeverCycle;
}

Cycle
TimingEngine::quiescedAt(unsigned rank, Cycle now) const
{
    const RankState &r = ranks[rank];
    Cycle at = std::max(now, r.blockedUntil);
    unsigned base = rank * spec_.org.banksPerRank();
    for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i) {
        const BankState &b = banks[base + i];
        if (b.open)
            return kNeverCycle;
        at = std::max(at, b.blockedUntil);
    }
    return at;
}

void
TimingEngine::issueAct(unsigned flat_bank, unsigned row, Cycle now)
{
    BH_ASSERT(canIssue(DramCommand::kAct, flat_bank, now),
              "illegal ACT issue");
    BankState &b = banks[flat_bank];
    b.open = true;
    b.openRow = row;
    b.nextRdWr = now + spec_.timing.tRCD;
    b.nextPre = now + spec_.timing.tRAS;
    b.nextAct = now + spec_.timing.tRC;
    recordAct(ranks[rankOf(flat_bank)], bankGroupOf(flat_bank), now);
    energy_.addAct();
}

void
TimingEngine::issuePre(unsigned flat_bank, Cycle now)
{
    BH_ASSERT(canIssue(DramCommand::kPre, flat_bank, now),
              "illegal PRE issue");
    BankState &b = banks[flat_bank];
    b.open = false;
    b.nextAct = std::max(b.nextAct, now + spec_.timing.tRP);
}

Cycle
TimingEngine::issueRead(unsigned flat_bank, Cycle now)
{
    BH_ASSERT(canIssue(DramCommand::kRead, flat_bank, now),
              "illegal RD issue");
    BankState &b = banks[flat_bank];
    b.nextRdWr = now + spec_.timing.tCCD;
    b.nextPre = std::max(b.nextPre, now + spec_.timing.tRTP);
    bus.nextRead = now + spec_.timing.tCCD;
    bus.nextWrite = std::max(
        bus.nextWrite,
        now + spec_.timing.tCL + spec_.timing.tBL + spec_.timing.tRTW);
    energy_.addRead();
    return now + spec_.timing.readLatency;
}

void
TimingEngine::issueWrite(unsigned flat_bank, Cycle now)
{
    BH_ASSERT(canIssue(DramCommand::kWrite, flat_bank, now),
              "illegal WR issue");
    BankState &b = banks[flat_bank];
    b.nextRdWr = now + spec_.timing.tCCD;
    b.nextPre = std::max(
        b.nextPre, now + spec_.timing.tCWL + spec_.timing.tBL +
                       spec_.timing.tWR);
    bus.nextWrite = now + spec_.timing.tCCD;
    bus.nextRead = std::max(
        bus.nextRead,
        now + spec_.timing.tCWL + spec_.timing.tBL + spec_.timing.tWTR);
    energy_.addWrite();
}

void
TimingEngine::issueRefresh(unsigned rank, Cycle now)
{
    BH_ASSERT(rankQuiesced(rank, now), "REF on non-quiesced rank");
    RankState &r = ranks[rank];
    Cycle until = now + spec_.timing.tRFC;
    r.blockedUntil = until;
    unsigned base = rank * spec_.org.banksPerRank();
    for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i) {
        BankState &b = banks[base + i];
        b.open = false;
        b.blockedUntil = std::max(b.blockedUntil, until);
        b.nextAct = std::max(b.nextAct, until);
    }
    energy_.addRefresh();
}

void
TimingEngine::issueRfm(unsigned flat_bank, Cycle now)
{
    BankState &b = banks[flat_bank];
    Cycle until = now + spec_.timing.tRFM;
    b.open = false;
    b.blockedUntil = std::max(b.blockedUntil, until);
    b.nextAct = std::max(b.nextAct, until);
    energy_.addRfm();
}

void
TimingEngine::blockBank(unsigned flat_bank, Cycle now, Cycle duration)
{
    BankState &b = banks[flat_bank];
    Cycle until = now + duration;
    b.open = false;
    b.blockedUntil = std::max(b.blockedUntil, until);
    b.nextAct = std::max(b.nextAct, until);
}

void
TimingEngine::blockRank(unsigned rank, Cycle now, Cycle duration)
{
    RankState &r = ranks[rank];
    Cycle until = now + duration;
    r.blockedUntil = std::max(r.blockedUntil, until);
    unsigned base = rank * spec_.org.banksPerRank();
    for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i)
        blockBank(base + i, now, duration);
}

bool
TimingEngine::rankQuiesced(unsigned rank, Cycle now) const
{
    const RankState &r = ranks[rank];
    if (now < r.blockedUntil)
        return false;
    unsigned base = rank * spec_.org.banksPerRank();
    for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i) {
        const BankState &b = banks[base + i];
        if (b.open || now < b.blockedUntil)
            return false;
    }
    return true;
}

void
TimingEngine::saveState(StateWriter &w) const
{
    w.tag("timing");
    saveVector(w, banks, [](StateWriter &sw, const BankState &b) {
        sw.b(b.open);
        sw.u64(b.openRow);
        sw.u64(b.nextAct);
        sw.u64(b.nextPre);
        sw.u64(b.nextRdWr);
        sw.u64(b.blockedUntil);
    });
    saveVector(w, ranks, [](StateWriter &sw, const RankState &r) {
        sw.u64(r.lastAct);
        sw.u64(r.lastActBankGroup);
        sw.b(r.hasLastAct);
        for (Cycle c : r.fawWindow)
            sw.u64(c);
        sw.u64(r.fawCount);
        sw.u64(r.fawHead);
        sw.u64(r.blockedUntil);
    });
    w.u64(bus.nextRead);
    w.u64(bus.nextWrite);
    energy_.saveState(w);
}

void
TimingEngine::loadState(StateReader &r)
{
    r.tag("timing");
    std::vector<BankState> bank_state;
    loadVector(r, &bank_state, [](StateReader &sr, BankState *b) {
        b->open = sr.b();
        b->openRow = static_cast<unsigned>(sr.u64());
        b->nextAct = sr.u64();
        b->nextPre = sr.u64();
        b->nextRdWr = sr.u64();
        b->blockedUntil = sr.u64();
    });
    std::vector<RankState> rank_state;
    loadVector(r, &rank_state, [](StateReader &sr, RankState *rk) {
        rk->lastAct = sr.u64();
        rk->lastActBankGroup = static_cast<unsigned>(sr.u64());
        rk->hasLastAct = sr.b();
        for (Cycle &c : rk->fawWindow)
            c = sr.u64();
        rk->fawCount = static_cast<unsigned>(sr.u64());
        rk->fawHead = static_cast<unsigned>(sr.u64());
        rk->blockedUntil = sr.u64();
    });
    if (!r.ok() || bank_state.size() != banks.size() ||
        rank_state.size() != ranks.size()) {
        r.fail();
        return;
    }
    banks = std::move(bank_state);
    ranks = std::move(rank_state);
    bus.nextRead = r.u64();
    bus.nextWrite = r.u64();
    energy_.loadState(r);
}

} // namespace bh
