#include "dram/address.h"

#include "common/log.h"

namespace bh {

const char *
interleaveName(Interleave il)
{
    switch (il) {
    case Interleave::kMop:
        return "mop";
    case Interleave::kRow:
        return "row";
    }
    return "?";
}

bool
parseInterleave(const std::string &name, Interleave *out)
{
    for (Interleave il : kAllInterleaves) {
        if (name == interleaveName(il)) {
            *out = il;
            return true;
        }
    }
    return false;
}

unsigned
AddressMap::log2u(unsigned v)
{
    BH_ASSERT(v != 0 && (v & (v - 1)) == 0, "value must be a power of two");
    unsigned bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

AddressMap::AddressMap(const DramOrg &org, unsigned mop_lines, Interleave il)
    : org_(org),
      interleave_(il),
      mopBits(log2u(mop_lines)),
      chBits(log2u(org.channels)),
      bankBits(log2u(org.banksPerGroup)),
      bgBits(log2u(org.bankGroups)),
      rankBits(log2u(org.ranks)),
      colBits(log2u(org.linesPerRow)),
      rowBits(log2u(org.rowsPerBank))
{
    BH_ASSERT(mopBits <= colBits, "MOP group larger than a row");
}

DramAddress
AddressMap::decode(Addr addr) const
{
    std::uint64_t line = (addr % capacityBytes()) >> kCacheLineBits;

    auto take = [&line](unsigned bits) -> unsigned {
        unsigned v = static_cast<unsigned>(line & ((1ull << bits) - 1));
        line >>= bits;
        return v;
    };

    DramAddress da;
    unsigned col_low = take(mopBits);
    if (interleave_ == Interleave::kMop)
        da.channel = take(chBits);
    da.bank = take(bankBits);
    da.bankGroup = take(bgBits);
    da.rank = take(rankBits);
    unsigned col_high = take(colBits - mopBits);
    if (interleave_ == Interleave::kRow)
        da.channel = take(chBits);
    da.row = take(rowBits);
    da.column = (col_high << mopBits) | col_low;
    return da;
}

Addr
AddressMap::encode(const DramAddress &da) const
{
    std::uint64_t line = 0;
    unsigned shift = 0;

    auto put = [&line, &shift](std::uint64_t v, unsigned bits) {
        line |= (v & ((1ull << bits) - 1)) << shift;
        shift += bits;
    };

    put(da.column & ((1u << mopBits) - 1), mopBits);
    if (interleave_ == Interleave::kMop)
        put(da.channel, chBits);
    put(da.bank, bankBits);
    put(da.bankGroup, bgBits);
    put(da.rank, rankBits);
    put(da.column >> mopBits, colBits - mopBits);
    if (interleave_ == Interleave::kRow)
        put(da.channel, chBits);
    put(da.row, rowBits);
    return line << kCacheLineBits;
}

} // namespace bh
