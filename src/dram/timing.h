/**
 * @file
 * Cycle-level DRAM bank/rank/channel timing engine.
 *
 * Tracks, per bank, the earliest cycle at which each command class is legal,
 * plus rank-level ACT spacing (tRRD_L/tRRD_S, tFAW), channel-level column
 * command spacing and read/write turnaround, refresh blackouts (tRFC), RFM
 * windows (tRFM), and arbitrary maintenance blackouts used to model victim-
 * row refreshes, AQUA row migrations, and PRAC alert back-off.
 *
 * The controller asks `canIssue()` and then calls the matching `issue*()`;
 * the engine never schedules on its own.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"
#include "dram/energy.h"
#include "dram/spec.h"

namespace bh {

/** DRAM command classes the engine arbitrates. */
enum class DramCommand
{
    kAct,
    kPre,
    kRead,
    kWrite,
};

/** Per-bank timing and row-buffer state. */
struct BankState
{
    bool open = false;
    unsigned openRow = 0;
    Cycle nextAct = 0;     ///< Earliest next ACT (tRC, tRP after PRE).
    Cycle nextPre = 0;     ///< Earliest next PRE (tRAS, tRTP, tWR).
    Cycle nextRdWr = 0;    ///< Earliest next column command (tRCD, tCCD).
    Cycle blockedUntil = 0; ///< Maintenance blackout (REF/RFM/VRR/...).
};

/** Per-rank ACT spacing state. */
struct RankState
{
    Cycle lastAct = 0;
    unsigned lastActBankGroup = 0;
    bool hasLastAct = false;
    std::array<Cycle, 4> fawWindow{}; ///< Ring of recent ACT cycles.
    unsigned fawCount = 0;            ///< ACTs recorded so far (saturates).
    unsigned fawHead = 0;
    Cycle blockedUntil = 0; ///< Rank-wide blackout (REF, alert back-off).
};

/** Channel-level data/command bus state. */
struct ChannelBusState
{
    Cycle nextRead = 0;  ///< Earliest next RD start (tCCD, tWTR).
    Cycle nextWrite = 0; ///< Earliest next WR start (tCCD, tRTW).
};

/** The timing engine for one channel. */
class TimingEngine
{
  public:
    explicit TimingEngine(const DramSpec &spec);

    /** Whether @p cmd to @p flat_bank is legal at cycle @p now. */
    bool canIssue(DramCommand cmd, unsigned flat_bank, Cycle now) const;

    /**
     * Earliest cycle >= @p now at which @p cmd to @p flat_bank becomes
     * legal, assuming no further commands are issued in between. Returns
     * kNeverCycle when only another command could make it legal (ACT on an
     * open bank, column/PRE on a closed one). The result is exact for the
     * frozen state: canIssue(cmd, fb, t) is false for every t below it and
     * true at it. The skip-ahead loop in System::run uses this to jump
     * straight to the next cycle the controller can make progress.
     */
    Cycle earliestIssue(DramCommand cmd, unsigned flat_bank,
                        Cycle now) const;

    /**
     * Earliest cycle >= @p now at which @p rank is fully quiesced (every
     * bank precharged and all blackouts expired), assuming no further
     * commands. kNeverCycle while any bank is still open (a PRE has to
     * happen first).
     */
    Cycle quiescedAt(unsigned rank, Cycle now) const;

    /** Issue ACT opening @p row. @pre canIssue(kAct, ...). */
    void issueAct(unsigned flat_bank, unsigned row, Cycle now);

    /** Issue PRE closing the open row. @pre canIssue(kPre, ...). */
    void issuePre(unsigned flat_bank, Cycle now);

    /**
     * Issue RD to the open row.
     * @return Cycle at which read data is fully returned.
     * @pre canIssue(kRead, ...).
     */
    Cycle issueRead(unsigned flat_bank, Cycle now);

    /** Issue WR to the open row. @pre canIssue(kWrite, ...). */
    void issueWrite(unsigned flat_bank, Cycle now);

    /**
     * All-bank refresh on @p rank: closes and blocks every bank for tRFC.
     * @pre rankQuiesced(rank, now).
     */
    void issueRefresh(unsigned rank, Cycle now);

    /** RFM on @p flat_bank: closes and blocks the bank for tRFM. */
    void issueRfm(unsigned flat_bank, Cycle now);

    /**
     * Generic maintenance blackout on one bank (victim-row refresh, row
     * migration). Closes the row; the bank accepts no command until
     * now + duration.
     */
    void blockBank(unsigned flat_bank, Cycle now, Cycle duration);

    /** Rank-wide blackout (PRAC alert back-off). Closes all rows. */
    void blockRank(unsigned rank, Cycle now, Cycle duration);

    /** True when every bank of @p rank is precharged and not blocked. */
    bool rankQuiesced(unsigned rank, Cycle now) const;

    const BankState &bank(unsigned flat_bank) const
    {
        return banks[flat_bank];
    }

    /** Rank index of a flat bank. */
    unsigned
    rankOf(unsigned flat_bank) const
    {
        return flat_bank / spec_.org.banksPerRank();
    }

    /** Bank-group index (within its rank) of a flat bank. */
    unsigned
    bankGroupOf(unsigned flat_bank) const
    {
        return (flat_bank % spec_.org.banksPerRank()) /
               spec_.org.banksPerGroup;
    }

    EnergyAccounting &energy() { return energy_; }
    const EnergyAccounting &energy() const { return energy_; }

    const DramSpec &spec() const { return spec_; }

    /** Serialize bank/rank/bus timing state and energy counters. */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output into a same-spec engine. */
    void loadState(StateReader &r);

  private:
    bool actAllowedByRank(const RankState &rank, unsigned bank_group,
                          Cycle now) const;
    void recordAct(RankState &rank, unsigned bank_group, Cycle now);

    DramSpec spec_;  // bh-audit: skip(spec_) -- constructor config, keyed by ExperimentConfig
    std::vector<BankState> banks;
    std::vector<RankState> ranks;
    ChannelBusState bus;
    EnergyAccounting energy_;
};

} // namespace bh
