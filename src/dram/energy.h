/**
 * @file
 * DRAM energy accounting (Fig 12).
 *
 * Counts command events and converts them to energy with the per-command
 * values in DramEnergy, plus flat background power integrated over the
 * simulated interval. Preventive actions (victim-row refreshes, RFM windows,
 * row migrations) are charged separately so their share is reportable.
 */
#pragma once

#include <cstdint>

#include "common/snapshot.h"
#include "common/types.h"
#include "dram/spec.h"

namespace bh {

/** Event counters plus energy conversion. */
class EnergyAccounting
{
  public:
    explicit EnergyAccounting(const DramEnergy &params) : params_(params) {}

    void addAct() { ++acts_; }
    void addRead() { ++reads_; }
    void addWrite() { ++writes_; }
    void addRefresh() { ++refs_; }
    void addRfm() { ++rfms_; }
    void addVictimRefresh(unsigned rows) { victimRows_ += rows; }
    void addMigration() { ++migrations_; }

    std::uint64_t acts() const { return acts_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t refreshes() const { return refs_; }
    std::uint64_t rfms() const { return rfms_; }
    std::uint64_t victimRows() const { return victimRows_; }
    std::uint64_t migrations() const { return migrations_; }

    /** Dynamic (command) energy in nanojoules. */
    double
    dynamicNj() const
    {
        return static_cast<double>(acts_) * params_.actPreNj +
               static_cast<double>(reads_) * params_.rdNj +
               static_cast<double>(writes_) * params_.wrNj +
               static_cast<double>(refs_) * params_.refNj +
               static_cast<double>(rfms_) * params_.rfmNj +
               static_cast<double>(victimRows_) * params_.vrrPerRowNj +
               static_cast<double>(migrations_) * params_.migrationNj;
    }

    /** Background energy in nanojoules over @p elapsed cycles. */
    double
    backgroundNj(Cycle elapsed, unsigned ranks) const
    {
        double seconds = cyclesToNs(elapsed) * 1e-9;
        double watts = params_.backgroundMwPerRank * 1e-3 * ranks;
        return watts * seconds * 1e9;
    }

    /** Total energy in nanojoules over @p elapsed cycles. */
    double
    totalNj(Cycle elapsed, unsigned ranks) const
    {
        return dynamicNj() + backgroundNj(elapsed, ranks);
    }

    /** Energy of preventive work only (VRR + RFM + migrations), nJ. */
    double
    preventiveNj() const
    {
        return static_cast<double>(rfms_) * params_.rfmNj +
               static_cast<double>(victimRows_) * params_.vrrPerRowNj +
               static_cast<double>(migrations_) * params_.migrationNj;
    }

    void
    reset()
    {
        acts_ = reads_ = writes_ = refs_ = rfms_ = victimRows_ =
            migrations_ = 0;
    }

    /** Serialize the event counters (params stay constructor-set). */
    void
    saveState(StateWriter &w) const
    {
        w.tag("energy");
        w.u64(acts_);
        w.u64(reads_);
        w.u64(writes_);
        w.u64(refs_);
        w.u64(rfms_);
        w.u64(victimRows_);
        w.u64(migrations_);
    }

    /** Restore saveState() output. */
    void
    loadState(StateReader &r)
    {
        r.tag("energy");
        acts_ = r.u64();
        reads_ = r.u64();
        writes_ = r.u64();
        refs_ = r.u64();
        rfms_ = r.u64();
        victimRows_ = r.u64();
        migrations_ = r.u64();
    }

  private:
    DramEnergy params_;  // bh-audit: skip(params_) -- constructor config, keyed by ExperimentConfig
    std::uint64_t acts_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t rfms_ = 0;
    std::uint64_t victimRows_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace bh
