#include "dram/spec.h"

namespace bh {

DramTiming
DramTiming::fromNs(const DramTimingNs &ns)
{
    DramTiming t;
    t.tRCD = nsToCycles(ns.tRCD);
    t.tRP = nsToCycles(ns.tRP);
    t.tRAS = nsToCycles(ns.tRAS);
    t.tRC = nsToCycles(ns.tRAS + ns.tRP);
    t.tCL = nsToCycles(ns.tCL);
    t.tCWL = nsToCycles(ns.tCWL);
    t.tBL = nsToCycles(ns.tBL);
    t.tCCD = nsToCycles(ns.tCCD);
    t.tRRD_L = nsToCycles(ns.tRRD_L);
    t.tRRD_S = nsToCycles(ns.tRRD_S);
    t.tFAW = nsToCycles(ns.tFAW);
    t.tWR = nsToCycles(ns.tWR);
    t.tRTP = nsToCycles(ns.tRTP);
    t.tWTR = nsToCycles(ns.tWTR);
    t.tRTW = nsToCycles(ns.tRTW);
    t.tRFC = nsToCycles(ns.tRFC);
    t.tREFI = nsToCycles(ns.tREFI);
    t.tRFM = nsToCycles(ns.tRFM);
    t.tREFW = nsToCycles(ns.tREFW);
    t.readLatency = t.tCL + t.tBL;
    return t;
}

DramSpec
DramSpec::ddr5()
{
    DramSpec spec;
    spec.org = DramOrg{};
    spec.timingNs = DramTimingNs{};
    spec.refreshTiming();
    spec.energy = DramEnergy{};
    return spec;
}

DramSpec
DramSpec::ddr4()
{
    DramSpec spec = ddr5();
    spec.org.bankGroups = 4;
    spec.org.banksPerGroup = 4;
    spec.timingNs.tREFI = 7800.0;
    spec.timingNs.tREFW = 64e6;
    spec.timingNs.tRFC = 350.0;
    spec.timingNs.tCL = 13.75;
    spec.timingNs.tRCD = 13.75;
    spec.timingNs.tRP = 13.75;
    spec.refreshTiming();
    return spec;
}

} // namespace bh
