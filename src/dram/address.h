/**
 * @file
 * DRAM address decomposition and the MOP address mapping (Table 1).
 *
 * The MOP ("Minimalist Open Page", Kaseridis et al., MICRO'11) mapping keeps
 * a small group of consecutive cache lines in the same row of the same bank
 * and then interleaves groups across banks, balancing row-buffer locality
 * against bank-level parallelism. Multi-channel organizations additionally
 * spread the physical address space across channels according to a named
 * interleaving scheme (see Interleave).
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "dram/spec.h"

namespace bh {

/** Decoded DRAM coordinates of one cache-line address. */
struct DramAddress
{
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0; ///< Bank within its bank group.
    unsigned row = 0;
    unsigned column = 0; ///< Cache-line index within the row.
    unsigned channel = 0;

    bool
    operator==(const DramAddress &other) const
    {
        return rank == other.rank && bankGroup == other.bankGroup &&
               bank == other.bank && row == other.row &&
               column == other.column && channel == other.channel;
    }
};

/**
 * Where the channel bits sit in the interleaved bit layout.
 *
 * kMop places them just above the MOP column bits, so consecutive MOP
 * groups round-robin across channels (maximum channel-level parallelism
 * for streaming traffic). kRow places them just below the row bits, so a
 * whole row's worth of lines stays in one channel (channel affinity for
 * row-local working sets).
 */
enum class Interleave
{
    kMop,
    kRow,
};

/** Stable lower-case scheme name ("mop", "row"). */
const char *interleaveName(Interleave il);

/** Parse a scheme name; returns false and leaves *out alone on bad input. */
bool parseInterleave(const std::string &name, Interleave *out);

/** All schemes, for sweeping tests over the full set. */
inline constexpr Interleave kAllInterleaves[] = {Interleave::kMop,
                                                 Interleave::kRow};

/**
 * MOP address map across one or more channels.
 *
 * Bit layout from LSB to MSB (after the 6 line-offset bits), kMop scheme:
 * [mop column bits][channel][bank][bank group][rank][high column bits][row];
 * kRow scheme moves the channel bits just below the row bits. With one
 * channel both schemes degenerate to the historical single-channel layout
 * bit for bit.
 */
class AddressMap
{
  public:
    /**
     * @param org Organization (org.channels > 1 enables channel bits).
     * @param mop_lines Consecutive cache lines kept in one bank (power of 2).
     * @param il Channel-bit placement scheme.
     */
    explicit AddressMap(const DramOrg &org, unsigned mop_lines = 4,
                        Interleave il = Interleave::kMop);

    /** Decode a byte address into DRAM coordinates. */
    DramAddress decode(Addr addr) const;

    /** Encode DRAM coordinates back into a byte address (offset 0). */
    Addr encode(const DramAddress &da) const;

    /** Flat channel-local bank index in [0, org.totalBanks()). */
    unsigned
    flatBank(const DramAddress &da) const
    {
        return (da.rank * org_.bankGroups + da.bankGroup) *
                   org_.banksPerGroup +
               da.bank;
    }

    /** Number of addressable bytes over all channels (addresses wrap). */
    std::uint64_t
    capacityBytes() const
    {
        return org_.capacityBytes() * org_.channels;
    }

    const DramOrg &org() const { return org_; }

    Interleave interleave() const { return interleave_; }

  private:
    static unsigned log2u(unsigned v);

    DramOrg org_;
    Interleave interleave_;
    unsigned mopBits;
    unsigned chBits;
    unsigned bankBits;
    unsigned bgBits;
    unsigned rankBits;
    unsigned colBits;  ///< Total column (line-in-row) bits.
    unsigned rowBits;
};

} // namespace bh
