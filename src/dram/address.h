/**
 * @file
 * DRAM address decomposition and the MOP address mapping (Table 1).
 *
 * The MOP ("Minimalist Open Page", Kaseridis et al., MICRO'11) mapping keeps
 * a small group of consecutive cache lines in the same row of the same bank
 * and then interleaves groups across banks, balancing row-buffer locality
 * against bank-level parallelism.
 */
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/spec.h"

namespace bh {

/** Decoded DRAM coordinates of one cache-line address. */
struct DramAddress
{
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0; ///< Bank within its bank group.
    unsigned row = 0;
    unsigned column = 0; ///< Cache-line index within the row.

    bool
    operator==(const DramAddress &other) const
    {
        return rank == other.rank && bankGroup == other.bankGroup &&
               bank == other.bank && row == other.row &&
               column == other.column;
    }
};

/**
 * MOP address mapper for one channel.
 *
 * Bit layout from LSB to MSB (after the 6 line-offset bits):
 * [mop column bits][bank][bank group][rank][high column bits][row].
 */
class AddressMapper
{
  public:
    /**
     * @param org Channel organization.
     * @param mop_lines Consecutive cache lines kept in one bank (power of 2).
     */
    explicit AddressMapper(const DramOrg &org, unsigned mop_lines = 4);

    /** Decode a byte address into DRAM coordinates. */
    DramAddress decode(Addr addr) const;

    /** Encode DRAM coordinates back into a byte address (offset 0). */
    Addr encode(const DramAddress &da) const;

    /** Flat bank index in [0, org.totalBanks()). */
    unsigned
    flatBank(const DramAddress &da) const
    {
        return (da.rank * org_.bankGroups + da.bankGroup) *
                   org_.banksPerGroup +
               da.bank;
    }

    /** Number of addressable bytes (addresses wrap above this). */
    std::uint64_t capacityBytes() const { return org_.capacityBytes(); }

    const DramOrg &org() const { return org_; }

  private:
    static unsigned log2u(unsigned v);

    DramOrg org_;
    unsigned mopBits;
    unsigned bankBits;
    unsigned bgBits;
    unsigned rankBits;
    unsigned colBits;  ///< Total column (line-in-row) bits.
    unsigned rowBits;
};

} // namespace bh
