/**
 * @file
 * DRAM device specification: organization, timing, and energy parameters.
 *
 * Timing parameters are written down in nanoseconds the way JEDEC specifies
 * them and converted once into CPU cycles (single 4.2 GHz clock domain, see
 * common/types.h). The DDR5 preset models a DDR5-4800-class device with the
 * organization of Table 1 of the paper: 1 channel, 2 ranks, 8 bank groups,
 * 2 banks per bank group, 64K rows per bank, 8 KiB rows.
 */
#pragma once

#include <cstdint>

#include "common/types.h"

namespace bh {

/** Physical organization of one memory channel. */
struct DramOrg
{
    unsigned channels = 1;
    unsigned ranks = 2;
    unsigned bankGroups = 8;
    unsigned banksPerGroup = 2;
    unsigned rowsPerBank = 65536;
    /** Cache lines per row (8 KiB row / 64 B line = 128). */
    unsigned linesPerRow = 128;

    /** Banks in one rank. */
    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Banks across all ranks of one channel. */
    unsigned totalBanks() const { return ranks * banksPerRank(); }

    /** Total rows across all banks of one channel. */
    std::uint64_t
    totalRows() const
    {
        return static_cast<std::uint64_t>(totalBanks()) * rowsPerBank;
    }

    /** Channel capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return totalRows() * linesPerRow * kCacheLineBytes;
    }
};

/** JEDEC-style timing constraints in nanoseconds. */
struct DramTimingNs
{
    double tRCD = 16.0;   ///< ACT to RD/WR.
    double tRP = 16.0;    ///< PRE to ACT.
    double tRAS = 32.0;   ///< ACT to PRE.
    double tCL = 16.7;    ///< RD to first data.
    double tCWL = 15.0;   ///< WR to first data.
    double tBL = 3.33;    ///< Data burst duration (BL16 at 4800 MT/s).
    double tCCD = 5.0;    ///< Column command spacing (tCCD_L, conservative).
    double tRRD_L = 5.0;  ///< ACT-to-ACT, same bank group.
    double tRRD_S = 2.5;  ///< ACT-to-ACT, different bank group.
    double tFAW = 21.0;   ///< Four-activation window per rank.
    double tWR = 30.0;    ///< Write recovery before PRE.
    double tRTP = 7.5;    ///< RD to PRE.
    double tWTR = 10.0;   ///< WR data end to RD (same rank).
    double tRTW = 2.5;    ///< RD data end to WR.
    double tRFC = 295.0;  ///< All-bank refresh duration (16 Gb device).
    double tREFI = 3900.0; ///< Refresh command interval (DDR5: 3.9 us).
    double tRFM = 195.0;  ///< Refresh-management command duration.
    double tREFW = 32e6;  ///< Refresh window (DDR5: 32 ms).
};

/** Timing constraints converted to CPU cycles. */
struct DramTiming
{
    Cycle tRCD, tRP, tRAS, tRC, tCL, tCWL, tBL, tCCD;
    Cycle tRRD_L, tRRD_S, tFAW, tWR, tRTP, tWTR, tRTW;
    Cycle tRFC, tREFI, tRFM, tREFW;
    /** Read data return latency: tCL + tBL. */
    Cycle readLatency;

    /** Convert a nanosecond timing block to CPU cycles. */
    static DramTiming fromNs(const DramTimingNs &ns);
};

/**
 * Per-command energy model (rank level, approximate DDR5 values).
 *
 * Values are storage-order-of-magnitude approximations derived from
 * DRAMPower-style IDD calculations; the evaluation only depends on the
 * relative weight of preventive actions (extra ACT/PRE pairs, RFM windows,
 * row migrations) versus demand traffic, which these preserve.
 */
struct DramEnergy
{
    double actPreNj = 12.0;     ///< One ACT + eventual PRE pair.
    double rdNj = 16.0;         ///< One 64 B read burst incl. IO.
    double wrNj = 16.0;         ///< One 64 B write burst incl. IO.
    double refNj = 1400.0;      ///< One all-bank REF (tRFC worth of work).
    double rfmNj = 450.0;       ///< One RFM command window.
    double vrrPerRowNj = 24.0;  ///< Preventive refresh of one victim row.
    double migrationNj = 2600.0; ///< One AQUA row migration (read+write row).
    double backgroundMwPerRank = 180.0; ///< Flat standby power per rank.
};

/** Complete device specification. */
struct DramSpec
{
    DramOrg org;
    DramTimingNs timingNs;
    DramTiming timing;
    DramEnergy energy;

    /** DDR5-4800-class preset with Table 1 organization. */
    static DramSpec ddr5();

    /** DDR4-3200-class preset (64 ms tREFW, 7.8 us tREFI). */
    static DramSpec ddr4();

    /** Recompute cycle-domain timing after editing timingNs. */
    void refreshTiming() { timing = DramTiming::fromNs(timingNs); }
};

} // namespace bh
