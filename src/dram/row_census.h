/**
 * @file
 * Per-row activation census over fixed time windows.
 *
 * Used for two purposes: (1) the Table 3 workload characterization (average
 * number of rows with more than 512/128/64 activations per 64 ms window) and
 * (2) as the ground-truth row-activation record behind the RowHammer oracle
 * used by the test suite.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"

namespace bh {

/** Counts activations per (bank, row) in windows of fixed length. */
class RowCensus
{
  public:
    /** Summary of one completed window. */
    struct WindowSummary
    {
        std::uint64_t totalActs = 0;
        std::uint64_t rows512 = 0; ///< Rows with more than 512 ACTs.
        std::uint64_t rows128 = 0; ///< Rows with more than 128 ACTs.
        std::uint64_t rows64 = 0;  ///< Rows with more than 64 ACTs.
    };

    explicit RowCensus(Cycle window_length) : windowLength(window_length) {}

    /** Record one activation; rolls the window when @p now passes it. */
    void
    recordAct(unsigned flat_bank, unsigned row, Cycle now)
    {
        rollTo(now);
        std::uint64_t key =
            (static_cast<std::uint64_t>(flat_bank) << 32) | row;
        ++counts[key];
        ++actsInWindow;
    }

    /** Finish the current window (e.g., at end of simulation). */
    void
    flush(Cycle now)
    {
        closeWindow();
        windowStart = now;
    }

    /** Summaries of all completed windows. */
    const std::vector<WindowSummary> &windows() const { return windows_; }

    /** Mean over completed windows of rows whose ACT count exceeds @p n. */
    double
    meanRowsOver(unsigned n) const
    {
        if (windows_.empty())
            return 0.0;
        double total = 0.0;
        for (const auto &w : windows_) {
            if (n >= 512)
                total += static_cast<double>(w.rows512);
            else if (n >= 128)
                total += static_cast<double>(w.rows128);
            else
                total += static_cast<double>(w.rows64);
        }
        return total / static_cast<double>(windows_.size());
    }

    /** Activation count of a row in the current (open) window. */
    std::uint32_t
    currentCount(unsigned flat_bank, unsigned row) const
    {
        std::uint64_t key =
            (static_cast<std::uint64_t>(flat_bank) << 32) | row;
        auto it = counts.find(key);
        return it == counts.end() ? 0 : it->second;
    }

    /**
     * Rows with strictly more than @p n ACTs in the current (open)
     * window. Unlike meanRowsOver() this takes any threshold — the
     * adversarial-pattern tests use it to check a pattern's spatial
     * footprint (e.g. Half-Double's far/near activation split) without
     * waiting for a window to close.
     */
    std::uint64_t
    currentRowsOver(std::uint32_t n) const
    {
        std::uint64_t rows = 0;
        for (const auto &[key, count] : counts)
            if (count > n)
                ++rows;
        return rows;
    }

    /** Serialize the open window and all completed summaries. */
    void
    saveState(StateWriter &w) const
    {
        w.tag("census");
        w.u64(windowStart);
        w.u64(actsInWindow);
        saveUnorderedMap(
            w, counts, [](StateWriter &sw, std::uint64_t k) { sw.u64(k); },
            [](StateWriter &sw, std::uint32_t v) { sw.u32(v); });
        saveVector(w, windows_,
                   [](StateWriter &sw, const WindowSummary &s) {
                       sw.u64(s.totalActs);
                       sw.u64(s.rows512);
                       sw.u64(s.rows128);
                       sw.u64(s.rows64);
                   });
    }

    /** Restore saveState() output. */
    void
    loadState(StateReader &r)
    {
        r.tag("census");
        windowStart = r.u64();
        actsInWindow = r.u64();
        loadUnorderedMap(
            r, &counts,
            [](StateReader &sr, std::uint64_t *k) { *k = sr.u64(); },
            [](StateReader &sr, std::uint32_t *v) { *v = sr.u32(); });
        loadVector(r, &windows_,
                   [](StateReader &sr, WindowSummary *s) {
                       s->totalActs = sr.u64();
                       s->rows512 = sr.u64();
                       s->rows128 = sr.u64();
                       s->rows64 = sr.u64();
                   });
    }

  private:
    void
    rollTo(Cycle now)
    {
        while (now >= windowStart + windowLength) {
            closeWindow();
            windowStart += windowLength;
        }
    }

    void
    closeWindow()
    {
        WindowSummary s;
        s.totalActs = actsInWindow;
        for (const auto &[key, count] : counts) {
            if (count > 512)
                ++s.rows512;
            if (count > 128)
                ++s.rows128;
            if (count > 64)
                ++s.rows64;
        }
        windows_.push_back(s);
        counts.clear();
        actsInWindow = 0;
    }

    Cycle windowLength;  // bh-audit: skip(windowLength) -- constructor config, keyed by ExperimentConfig
    Cycle windowStart = 0;
    std::uint64_t actsInWindow = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    std::vector<WindowSummary> windows_;
};

} // namespace bh
