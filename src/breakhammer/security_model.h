/**
 * @file
 * Analytic security model of §5.2 (Expression 2 / Fig 5).
 *
 * Bounds the RowHammer-preventive score an attack thread can accumulate
 * before being identified as a suspect, as a function of the fraction of
 * hardware threads the attacker controls and TH_outlier. Solving Expr 2
 * with every attack thread held at the bound:
 *
 *   RS_max / RS_ben = (1 + THo) * (1 - f) / (1 - (1 + THo) * f)
 *
 * for attacker thread fraction f, unbounded once (1 + THo) * f >= 1.
 */
#pragma once

#include <limits>

namespace bh {

/**
 * Maximum attack-thread score before suspect identification, normalized
 * to the average benign-thread score (Fig 5's y-axis).
 *
 * @param attacker_fraction Fraction of hardware threads the attacker
 *        controls, in [0, 1].
 * @param th_outlier The TH_outlier configuration parameter.
 * @return The normalized bound; +infinity when the attacker controls
 *         enough threads to rig the mean entirely.
 */
inline double
maxAttackerScoreBound(double attacker_fraction, double th_outlier)
{
    double k = 1.0 + th_outlier;
    double denom = 1.0 - k * attacker_fraction;
    if (denom <= 0.0)
        return std::numeric_limits<double>::infinity();
    return k * (1.0 - attacker_fraction) / denom;
}

/**
 * Minimum fraction of hardware threads an attacker must control so that
 * an attack thread can reach @p target_ratio times the benign average
 * without detection (inverse of maxAttackerScoreBound).
 */
inline double
requiredAttackerFraction(double target_ratio, double th_outlier)
{
    double k = 1.0 + th_outlier;
    if (target_ratio <= k)
        return 0.0;
    // ratio = k (1 - f) / (1 - k f)  =>  f = (ratio - k) / (k (ratio - 1)).
    return (target_ratio - k) / (k * (target_ratio - 1.0));
}

} // namespace bh
