/**
 * @file
 * Optional feedback to the system software (§4, §5.2).
 *
 * BreakHammer exposes each hardware thread's RowHammer-preventive score
 * the way thread-specific special registers are exposed. The system
 * software can associate scores with software-level owners (processes,
 * address spaces, users) and act on the *cumulative* score of an owner —
 * the countermeasure §5.2 sketches against circumvention attacks where an
 * attacker rotates hammering across many short-lived threads so that no
 * single hardware thread looks suspicious for long.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "breakhammer/breakhammer.h"
#include "common/log.h"
#include "common/types.h"

namespace bh {

/** Software-level owner identifier (process / address space / user). */
using OwnerId = std::uint32_t;

/** Sentinel for "no owner bound". */
inline constexpr OwnerId kNoOwner = 0xffffffffu;

/**
 * System-software-side score aggregation over BreakHammer's per-thread
 * counters.
 *
 * The monitor is polled (e.g., on scheduler ticks): it reads each hardware
 * thread's current score through the feedback interface and accredits the
 * *increase* since the previous poll to the owner currently bound to the
 * thread. Because accumulation happens at the owner, migrating the attack
 * to a fresh thread does not shed the history.
 */
class SoftwareMonitor
{
  public:
    /**
     * @param bh The BreakHammer instance whose counters are exposed.
     * @param num_threads Hardware thread count.
     */
    SoftwareMonitor(const BreakHammer *bh, unsigned num_threads)
        : bh(bh), owners(num_threads, kNoOwner),
          lastScore(num_threads, 0.0)
    {
        BH_ASSERT(bh != nullptr, "monitor needs a BreakHammer instance");
    }

    /** Bind @p thread to @p owner (context switch in). */
    void
    bind(ThreadId thread, OwnerId owner)
    {
        BH_ASSERT(thread < owners.size(), "bind of unknown thread");
        owners[thread] = owner;
    }

    /** Unbind @p thread (context switch out). */
    void unbind(ThreadId thread) { bind(thread, kNoOwner); }

    /** Owner currently bound to @p thread. */
    OwnerId ownerOf(ThreadId thread) const { return owners[thread]; }

    /**
     * Poll the hardware counters and accredit per-thread score increases
     * to the bound owners. Score decreases (window resets) are ignored:
     * owner totals are cumulative, which is the point.
     */
    void
    poll()
    {
        for (ThreadId t = 0; t < owners.size(); ++t) {
            double score = bh->score(t);
            double delta = score - lastScore[t];
            lastScore[t] = score;
            if (delta <= 0.0 || owners[t] == kNoOwner)
                continue;
            ownerScores[owners[t]] += delta;
        }
    }

    /** Cumulative RowHammer-preventive score of @p owner. */
    double
    ownerScore(OwnerId owner) const
    {
        auto it = ownerScores.find(owner);
        return it == ownerScores.end() ? 0.0 : it->second;
    }

    /** Owners whose cumulative score is at least @p threshold. */
    std::vector<OwnerId>
    flaggedOwners(double threshold) const
    {
        std::vector<OwnerId> out;
        for (const auto &[owner, score] : ownerScores)
            if (score >= threshold)
                out.push_back(owner);
        return out;
    }

    /** Forget an owner (process exit). */
    void forget(OwnerId owner) { ownerScores.erase(owner); }

  private:
    const BreakHammer *bh;
    std::vector<OwnerId> owners;
    std::vector<double> lastScore;
    std::unordered_map<OwnerId, double> ownerScores;
};

} // namespace bh
