#include "breakhammer/breakhammer.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

BreakHammer::BreakHammer(unsigned num_threads,
                         const BreakHammerConfig &config,
                         IThrottleTarget *target)
    : config_(config), numThreads(num_threads), target(target),
      activations(num_threads, 0),
      suspect(num_threads, false),
      recentSuspect(num_threads, false),
      quotas(num_threads, target ? target->fullQuota() : 0)
{
    BH_ASSERT(num_threads > 0, "BreakHammer needs at least one thread");
    BH_ASSERT(config.pNewSuspect >= 1, "P_newsuspect must be >= 1");
    scoreSet[0].assign(num_threads, 0.0);
    scoreSet[1].assign(num_threads, 0.0);
}

double
BreakHammer::score(ThreadId thread) const
{
    return scoreSet[active][thread];
}

void
BreakHammer::endWindow()
{
    // Fig 4: reset the active set, then the retained (already trained)
    // set becomes active for the next window. In the single-set ablation
    // there is nothing trained to fall back on.
    std::fill(scoreSet[active].begin(), scoreSet[active].end(), 0.0);
    if (!config_.singleCounterSet)
        active ^= 1;

    for (ThreadId t = 0; t < numThreads; ++t) {
        recentSuspect[t] = suspect[t];
        suspect[t] = false;
        // A thread that stayed benign for the full previous window gets
        // its full dynamic quota back (§4.3, "Resetting Reduced Quotas").
        if (!recentSuspect[t] && target != nullptr) {
            quotas[t] = target->fullQuota();
            target->setQuota(t, quotas[t]);
        }
    }
}

void
BreakHammer::rollWindows(Cycle now)
{
    while (now - windowStart >= config_.window) {
        endWindow();
        windowStart += config_.window;
    }
}

void
BreakHammer::saveState(StateWriter &w) const
{
    w.tag("breakhammer");
    saveDoubleVector(w, scoreSet[0]);
    saveDoubleVector(w, scoreSet[1]);
    w.u64(active);
    w.u64(windowStart);
    saveU64Vector(w, activations);
    saveBoolVector(w, suspect);
    saveBoolVector(w, recentSuspect);
    saveUnsignedVector(w, quotas);
    w.u64(suspectMarks_);
    w.u64(actionsObserved_);
}

void
BreakHammer::loadState(StateReader &r)
{
    r.tag("breakhammer");
    std::vector<double> s0, s1;
    loadDoubleVector(r, &s0);
    loadDoubleVector(r, &s1);
    std::uint64_t active_set = r.u64();
    Cycle window_start = r.u64();
    std::vector<std::uint64_t> acts;
    loadU64Vector(r, &acts);
    std::vector<bool> susp, recent;
    loadBoolVector(r, &susp);
    loadBoolVector(r, &recent);
    std::vector<unsigned> q;
    loadUnsignedVector(r, &q);
    if (!r.ok() || s0.size() != numThreads || s1.size() != numThreads ||
        acts.size() != numThreads || susp.size() != numThreads ||
        recent.size() != numThreads || q.size() != numThreads ||
        active_set > 1) {
        r.fail();
        return;
    }
    scoreSet[0] = std::move(s0);
    scoreSet[1] = std::move(s1);
    active = static_cast<unsigned>(active_set);
    windowStart = window_start;
    activations = std::move(acts);
    suspect = std::move(susp);
    recentSuspect = std::move(recent);
    quotas = std::move(q);
    suspectMarks_ = r.u64();
    actionsObserved_ = r.u64();
}

void
BreakHammer::onDemandActivate(ThreadId thread, unsigned flat_bank,
                              Cycle now)
{
    (void)flat_bank;
    rollWindows(now);
    if (thread < numThreads)
        ++activations[thread];
}

void
BreakHammer::updateScores(double weight, Cycle now)
{
    (void)now;
    std::uint64_t total = 0;
    for (std::uint64_t a : activations)
        total += a;
    if (total == 0)
        return; // Action with no attributable demand activations.

    if (config_.attribution == ScoreAttribution::kWinnerTakesAll) {
        ThreadId winner = 0;
        for (ThreadId t = 1; t < numThreads; ++t)
            if (activations[t] > activations[winner])
                winner = t;
        scoreSet[0][winner] += weight;
        scoreSet[1][winner] += weight;
        std::fill(activations.begin(), activations.end(), 0);
        return;
    }

    for (ThreadId t = 0; t < numThreads; ++t) {
        double share = static_cast<double>(activations[t]) /
                       static_cast<double>(total);
        scoreSet[0][t] += weight * share;
        scoreSet[1][t] += weight * share;
        activations[t] = 0;
    }
}

void
BreakHammer::markSuspect(ThreadId thread)
{
    if (suspect[thread])
        return; // Already suspect for the remainder of this window.
    suspect[thread] = true;
    ++suspectMarks_;

    // Eq 1: repeat suspects lose quota linearly; fresh suspects get their
    // quota divided.
    if (recentSuspect[thread]) {
        quotas[thread] = (quotas[thread] > config_.pOldSuspect)
                             ? quotas[thread] - config_.pOldSuspect
                             : 0;
    } else {
        quotas[thread] = quotas[thread] / config_.pNewSuspect;
    }
    if (target != nullptr)
        target->setQuota(thread, quotas[thread]);
}

void
BreakHammer::checkOutliers(Cycle now)
{
    (void)now;
    const std::vector<double> &scores = scoreSet[active];
    double sum = 0.0;
    for (double s : scores)
        sum += s;
    double max_deviation =
        (1.0 + config_.thOutlier) * (sum / static_cast<double>(numThreads));

    for (ThreadId t = 0; t < numThreads; ++t) {
        if (scores[t] < config_.thThreat)
            continue; // Alg 1: ignore low-score threads.
        if (scores[t] > max_deviation)
            markSuspect(t);
    }
}

void
BreakHammer::onPreventiveAction(double weight, Cycle now)
{
    rollWindows(now);
    ++actionsObserved_;
    updateScores(weight, now);
    checkOutliers(now);
}

void
BreakHammer::onDirectScore(ThreadId thread, double amount, Cycle now)
{
    rollWindows(now);
    if (thread >= numThreads)
        return;
    ++actionsObserved_;
    scoreSet[0][thread] += amount;
    scoreSet[1][thread] += amount;
    checkOutliers(now);
}

} // namespace bh
