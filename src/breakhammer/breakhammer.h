/**
 * @file
 * BreakHammer — the paper's primary contribution (§4).
 *
 * BreakHammer observes the RowHammer-preventive actions a mitigation
 * mechanism performs, attributes a RowHammer-preventive score to each
 * hardware thread proportionally to its share of row activations since the
 * previous action (§4.1), identifies suspect threads by thresholded
 * deviation from the mean (Alg 1, §4.2), and reduces a suspect's dynamic
 * memory request quota — the number of LLC cache-miss buffers (MSHRs) it
 * may allocate — per Eq 1 (§4.3).
 *
 * Score counters are kept in two time-interleaved sets (Fig 4): both train
 * continuously, only the older ("active") set answers suspect queries, and
 * at every throttling-window boundary the active set resets and the roles
 * swap, so queries are always answered by counters trained over at least
 * one full window.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "cache/throttle_target.h"
#include "common/types.h"
#include "mitigation/mitigation.h"

namespace bh {

/** Score attribution policy (§4.1; the ablation compares these). */
enum class ScoreAttribution
{
    /** Paper's method: proportional to each thread's activation share. */
    kProportional,
    /** Ablation: the thread with the most activations gets full credit. */
    kWinnerTakesAll,
};

/** BreakHammer configuration (defaults = Table 2 of the paper). */
struct BreakHammerConfig
{
    /** Throttling-window length (64 ms, matching the refresh window). */
    Cycle window = msToCycles(64.0);
    /** Minimum score for a thread to be a potential suspect (TH_threat). */
    double thThreat = 32.0;
    /** Allowed divergence from the mean score (TH_outlier). */
    double thOutlier = 0.65;
    /** Linear quota reduction for repeat suspects (P_oldsuspect). */
    unsigned pOldSuspect = 1;
    /** Quota divisor for fresh suspects (P_newsuspect). */
    unsigned pNewSuspect = 10;
    /** Attribution policy (ablation knob; default = the paper's). */
    ScoreAttribution attribution = ScoreAttribution::kProportional;
    /**
     * Ablation knob: use a single hard-reset counter set instead of the
     * two time-interleaved sets of Fig 4 (training is lost at every
     * window boundary, so attackers pacing across boundaries escape).
     */
    bool singleCounterSet = false;
};

/** The BreakHammer mechanism. */
class BreakHammer : public IActionObserver
{
  public:
    /**
     * @param num_threads Hardware thread count.
     * @param target Resource pool to throttle (the LLC MSHR file).
     */
    BreakHammer(unsigned num_threads, const BreakHammerConfig &config,
                IThrottleTarget *target);

    // --- IActionObserver -------------------------------------------
    void onDemandActivate(ThreadId thread, unsigned flat_bank,
                          Cycle now) override;
    void onPreventiveAction(double weight, Cycle now) override;
    void onDirectScore(ThreadId thread, double amount, Cycle now) override;

    // --- Queries (the "software feedback" API of §4 exposes these) --
    /** Active-set RowHammer-preventive score of @p thread. */
    double score(ThreadId thread) const;

    /** Whether @p thread is currently marked suspect. */
    bool isSuspect(ThreadId thread) const { return suspect[thread]; }

    /** Whether @p thread was a suspect in the previous window. */
    bool wasRecentSuspect(ThreadId thread) const
    {
        return recentSuspect[thread];
    }

    /** Current dynamic request quota of @p thread. */
    unsigned quota(ThreadId thread) const { return quotas[thread]; }

    /** Times any thread was marked suspect (distinct marks). */
    std::uint64_t suspectMarks() const { return suspectMarks_; }

    /** Preventive actions observed. */
    std::uint64_t actionsObserved() const { return actionsObserved_; }

    const BreakHammerConfig &config() const { return config_; }

    /**
     * Advance window bookkeeping to @p now. Called internally by every
     * observer hook; exposed so idle periods can also roll windows.
     */
    void rollWindows(Cycle now);

    /**
     * Cycle of the next throttling-window boundary. rollWindows(t) is a
     * no-op for every t below this; at or past it, a window ends (quotas
     * of threads that stayed benign are restored, counter sets swap).
     * System::run's skip-ahead loop must not jump over it.
     */
    Cycle nextWindowBoundary() const { return windowStart + config_.window; }

    /**
     * Serialize both counter sets, window bookkeeping, suspect flags,
     * and quotas (mirrors the IMitigation::saveState contract).
     */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output into a same-config instance. */
    void loadState(StateReader &r);

  private:
    void updateScores(double weight, Cycle now);
    void checkOutliers(Cycle now);
    void markSuspect(ThreadId thread);
    void endWindow();

    BreakHammerConfig config_;  // bh-audit: skip(config_) -- constructor config, keyed by ExperimentConfig
    unsigned numThreads;        // bh-audit: skip(numThreads) -- constructor config; validates loaded vector sizes
    IThrottleTarget *target;    // bh-audit: skip(target) -- non-owning wiring installed by System

    /** Two time-interleaved score sets; `active` answers queries. */
    std::vector<double> scoreSet[2];
    unsigned active = 0;
    Cycle windowStart = 0;

    /** Per-thread activations since the last preventive action. */
    std::vector<std::uint64_t> activations;

    std::vector<bool> suspect;       ///< Marked in the current window.
    std::vector<bool> recentSuspect; ///< Marked in the previous window.
    std::vector<unsigned> quotas;

    std::uint64_t suspectMarks_ = 0;
    std::uint64_t actionsObserved_ = 0;
};

} // namespace bh
