/**
 * @file
 * Hardware cost model reproducing §6's storage/area inventory.
 *
 * BreakHammer's per-thread state is two 32-bit RowHammer-preventive score
 * counters (the two time-interleaved sets), one 16-bit activation counter,
 * and two 1-bit suspect flags. The paper reports 0.000105 mm^2 per memory
 * channel at 65 nm for a 4-thread system; we derive the per-bit area
 * constant from that datum and extrapolate. BlockHammer's storage (the
 * comparison §8.3 draws) grows with 1/N_RH through its CBF sizing; a
 * simple model of that growth is included for the comparison bench.
 */
#pragma once

#include <cstdint>

namespace bh {

/** BreakHammer storage per hardware thread, in bits (§6). */
inline constexpr unsigned kBreakHammerBitsPerThread = 32 + 32 + 16 + 1 + 1;

/** Per-bit SRAM area at 65 nm derived from the paper's datum (§6). */
inline constexpr double kAreaUm2PerBit =
    105.0 /* um^2 per channel */ / (4.0 * kBreakHammerBitsPerThread);

/** BreakHammer storage for a system, in bits. */
inline constexpr std::uint64_t
breakHammerStorageBits(unsigned threads, unsigned channels)
{
    return static_cast<std::uint64_t>(threads) * channels *
           kBreakHammerBitsPerThread;
}

/** BreakHammer area in mm^2 at 65 nm. */
inline constexpr double
breakHammerAreaMm2(unsigned threads, unsigned channels)
{
    return static_cast<double>(breakHammerStorageBits(threads, channels)) *
           kAreaUm2PerBit * 1e-6;
}

/**
 * BlockHammer storage in bits: two counting Bloom filters per bank whose
 * counter count scales inversely with the blacklist threshold (N_RH / 4),
 * plus per-row-in-flight bookkeeping. Model: counters sized so the CBF
 * false-positive load stays constant as N_RH shrinks — the "significantly
 * growing history buffer" of §8.3.
 */
inline constexpr std::uint64_t
blockHammerStorageBits(unsigned n_rh, unsigned banks)
{
    // Counters per filter: proportional to max blacklistable rows per
    // epoch = epoch_acts / (N_RH / 4); epoch_acts ~ 16 ms / 48 ns ~ 333K.
    std::uint64_t rows = 333000ull * 4 / (n_rh ? n_rh : 1);
    std::uint64_t counters = rows * 8; // 8x rows for low collision rate.
    unsigned counter_bits = 10;
    return 2ull * banks * counters * counter_bits;
}

/** Paper's §6 latency datum: the pipelined update runs at 1.5 GHz. */
inline constexpr double kBreakHammerLatencyNs = 0.67;

} // namespace bh
