#include "stats/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace bh {

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
}

bool
JsonValue::asBool() const
{
    BH_ASSERT(isBool(), "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    BH_ASSERT(isNumber(), "JsonValue: not a number");
    return number_;
}

std::uint64_t
JsonValue::asU64() const
{
    BH_ASSERT(isNumber() && number_ >= 0.0, "JsonValue: not a u64");
    return static_cast<std::uint64_t>(number_);
}

const std::string &
JsonValue::asString() const
{
    BH_ASSERT(isString(), "JsonValue: not a string");
    return string_;
}

void
JsonValue::push(JsonValue value)
{
    BH_ASSERT(isArray(), "JsonValue: push on non-array");
    array_.push_back(std::move(value));
}

std::size_t
JsonValue::size() const
{
    if (isArray())
        return array_.size();
    if (isObject())
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    BH_ASSERT(isArray() && i < array_.size(), "JsonValue: bad index");
    return array_[i];
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    BH_ASSERT(isObject(), "JsonValue: set on non-object");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &member : object_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    const JsonValue *v = find(key);
    BH_ASSERT(v != nullptr, "JsonValue: missing object member");
    return *v;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    BH_ASSERT(isObject(), "JsonValue: members of non-object");
    return object_;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::kNull: return true;
      case Type::kBool: return bool_ == other.bool_;
      case Type::kNumber: return number_ == other.number_;
      case Type::kString: return string_ == other.string_;
      case Type::kArray: return array_ == other.array_;
      case Type::kObject: return object_ == other.object_;
    }
    return false;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    // JSON has no inf/nan; emit null so the document stays parseable by
    // any consumer (a throttled-to-zero IPC can make a slowdown inf).
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    // Integral values within the exactly-representable range print as
    // integers (counter fields stay readable); everything else uses 17
    // significant digits so parse(dump(x)) == x bit-for-bit.
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
appendIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

/** Recursive-descent JSON parser over a raw character range. */
class Parser
{
  public:
    Parser(const char *p, const char *end) : p(p), end(end) {}

    bool
    parse(JsonValue *out, std::string *error)
    {
        bool ok = parseValue(out) && (skipWs(), p == end);
        if (!ok && error)
            *error = err.empty() ? "trailing garbage" : err;
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    fail(const char *msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    bool
    literal(const char *word)
    {
        const char *q = p;
        while (*word) {
            if (q >= end || *q != *word)
                return false;
            ++q;
            ++word;
        }
        p = q;
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            *out = JsonValue();
            return true;
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            *out = JsonValue(true);
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            *out = JsonValue(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = JsonValue(std::move(s));
            return true;
          }
          case '[': return parseArray(out);
          case '{': return parseObject(out);
          default: return parseNumber(out);
        }
    }

    bool
    parseString(std::string *out)
    {
        ++p; // opening quote
        out->clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("bad escape");
                switch (*p) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char c = p[i];
                        code <<= 4;
                        if (c >= '0' && c <= '9')
                            code |= static_cast<unsigned>(c - '0');
                        else if (c >= 'a' && c <= 'f')
                            code |= static_cast<unsigned>(c - 'a' + 10);
                        else if (c >= 'A' && c <= 'F')
                            code |= static_cast<unsigned>(c - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // The simulator only emits ASCII control escapes;
                    // decode BMP code points as UTF-8 for completeness.
                    if (code < 0x80) {
                        *out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        *out += static_cast<char>(0xC0 | (code >> 6));
                        *out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        *out += static_cast<char>(0xE0 | (code >> 12));
                        *out += static_cast<char>(0x80 |
                                                  ((code >> 6) & 0x3F));
                        *out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    p += 4;
                    break;
                  }
                  default: return fail("bad escape");
                }
                ++p;
            } else {
                *out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue *out)
    {
        char *num_end = nullptr;
        double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end)
            return fail("bad number");
        p = num_end;
        *out = JsonValue(v);
        return true;
    }

    bool
    parseArray(JsonValue *out)
    {
        ++p; // '['
        *out = JsonValue::array();
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!parseValue(&element))
                return false;
            out->push(std::move(element));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        ++p; // '{'
        *out = JsonValue::object();
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            if (p >= end || *p != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (p >= end || *p != ':')
                return fail("expected ':'");
            ++p;
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->set(key, std::move(value));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const char *p;
    const char *end;
    std::string err;
};

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::kNull:
        out += "null";
        return;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        return;
      case Type::kNumber:
        appendNumber(out, number_);
        return;
      case Type::kString:
        appendEscaped(out, string_);
        return;
      case Type::kArray: {
        if (array_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            if (indent >= 0)
                appendIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (indent >= 0)
            appendIndent(out, indent, depth);
        out += ']';
        return;
      }
      case Type::kObject: {
        if (object_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &member : object_) {
            if (!first)
                out += ',';
            first = false;
            if (indent >= 0)
                appendIndent(out, indent, depth + 1);
            appendEscaped(out, member.first);
            out += indent >= 0 ? ": " : ":";
            member.second.dumpTo(out, indent, depth + 1);
        }
        if (indent >= 0)
            appendIndent(out, indent, depth);
        out += '}';
        return;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    Parser parser(text.data(), text.data() + text.size());
    return parser.parse(out, error);
}

JsonValue
JsonValue::parseOrDie(const std::string &text)
{
    JsonValue out;
    std::string error;
    if (!parse(text, &out, &error)) {
        std::fprintf(stderr, "json parse error: %s\n", error.c_str());
        BH_FATAL("malformed JSON input");
    }
    return out;
}

} // namespace bh
