/**
 * @file
 * Streaming histogram for latency percentile reporting (Figs 11 and 17).
 *
 * Fixed-width bins over [0, max) with a saturating overflow bin. Memory
 * latencies of benign requests are recorded in nanoseconds; percentile
 * queries interpolate within the containing bin.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/snapshot.h"

namespace bh {

/** Fixed-bin streaming histogram with percentile queries. */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin in recorded units.
     * @param num_bins Number of regular bins; values beyond the last bin
     *                 land in a saturating overflow bin.
     */
    explicit Histogram(double bin_width = 1.0, std::size_t num_bins = 4096)
        : binWidth_(bin_width), bins(num_bins + 1, 0)
    {
        BH_ASSERT(bin_width > 0.0, "histogram bin width must be positive");
    }

    /**
     * Record one sample. NaN samples carry no orderable value and are
     * dropped (counted in droppedSamples()); every finite value lands in
     * a bin. The quotient is clamped against the overflow-bin index in
     * floating point BEFORE the size_t cast: casting a double beyond the
     * target range (a huge sample, or +inf) is undefined behavior.
     */
    void
    record(double value)
    {
        if (std::isnan(value)) {
            ++dropped_;
            return;
        }
        if (value < 0.0)
            value = 0.0;
        double quotient = value / binWidth_;
        double overflow = static_cast<double>(bins.size() - 1);
        std::size_t idx = quotient >= overflow
                              ? bins.size() - 1
                              : static_cast<std::size_t>(quotient);
        ++bins[idx];
        ++count_;
        sum_ += value;
        if (value > max_)
            max_ = value;
    }

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** NaN samples rejected by record() (diagnostics; not in count()). */
    std::uint64_t droppedSamples() const { return dropped_; }

    /** Mean of recorded samples (0 if empty). */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Largest recorded sample. */
    double max() const { return max_; }

    /**
     * Value below which @p pct percent of samples fall.
     *
     * Edge cases (pinned by test_json_stats):
     *  - empty histogram: 0 for every pct;
     *  - pct <= 0: the lower edge of the first occupied bin (the
     *    histogram's lower bound on the minimum — not a flat 0, which
     *    would misreport distributions that start far from the origin);
     *  - pct >= 100: the exact observed maximum;
     *  - samples in the overflow bin have no upper bin edge to
     *    interpolate toward, so queries landing there report the
     *    observed maximum;
     *  - interpolation never exceeds the observed maximum (a lone
     *    sample's p99 must not extrapolate past the sample itself).
     *
     * @param pct Percentile in [0, 100]; values outside clamp.
     */
    double
    percentile(double pct) const
    {
        if (count_ == 0)
            return 0.0;
        if (pct <= 0.0) {
            for (std::size_t i = 0; i < bins.size(); ++i)
                if (bins[i] != 0)
                    return std::min(static_cast<double>(i) * binWidth_,
                                    max_);
            return 0.0; // Unreachable: count_ > 0 implies an occupied bin.
        }
        if (pct >= 100.0)
            return max_;
        double target = pct / 100.0 * static_cast<double>(count_);
        double running = 0.0;
        for (std::size_t i = 0; i < bins.size(); ++i) {
            double next = running + static_cast<double>(bins[i]);
            if (next >= target) {
                if (i == bins.size() - 1)
                    return max_; // overflow bin: report observed max
                double frac =
                    bins[i] ? (target - running) / static_cast<double>(bins[i])
                            : 0.0;
                // The bin edge can overshoot the largest sample actually
                // recorded; the observed max caps every answer.
                return std::min(
                    (static_cast<double>(i) + frac) * binWidth_, max_);
            }
            running = next;
        }
        return max_;
    }

    /** Merge another histogram with identical geometry into this one. */
    void
    merge(const Histogram &other)
    {
        BH_ASSERT(other.bins.size() == bins.size() &&
                      other.binWidth_ == binWidth_,
                  "histogram geometry mismatch in merge");
        for (std::size_t i = 0; i < bins.size(); ++i)
            bins[i] += other.bins[i];
        count_ += other.count_;
        sum_ += other.sum_;
        dropped_ += other.dropped_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    /** Drop all samples. */
    void
    reset()
    {
        std::fill(bins.begin(), bins.end(), 0);
        count_ = 0;
        sum_ = 0.0;
        max_ = 0.0;
        dropped_ = 0;
    }

    // --- raw access (JSON export / exact comparison) -----------------

    /** Bin width in recorded units. */
    double binWidth() const { return binWidth_; }

    /** Raw bin counts; the final element is the overflow bin. */
    const std::vector<std::uint64_t> &rawBins() const { return bins; }

    /** Sum of all recorded samples. */
    double sum() const { return sum_; }

    /**
     * Rebuild a histogram from exported raw state (the inverse of
     * rawBins()/sum()/max()); @p raw_bins must include the overflow bin.
     */
    static Histogram
    fromRaw(double bin_width, std::vector<std::uint64_t> raw_bins,
            double sum, double max)
    {
        BH_ASSERT(!raw_bins.empty(), "histogram needs an overflow bin");
        Histogram h(bin_width, raw_bins.size() - 1);
        h.bins = std::move(raw_bins);
        for (std::uint64_t c : h.bins)
            h.count_ += c;
        h.sum_ = sum;
        h.max_ = max;
        return h;
    }

    /** Serialize the accumulator state (geometry stays constructor-set). */
    void
    saveState(StateWriter &w) const
    {
        w.tag("hist");
        w.d(binWidth_);
        saveU64Vector(w, bins);
        w.u64(count_);
        w.d(sum_);
        w.d(max_);
        w.u64(dropped_);
    }

    /** Restore saveState() output; geometry mismatch is a failure. */
    void
    loadState(StateReader &r)
    {
        r.tag("hist");
        double width = r.d();
        std::vector<std::uint64_t> raw;
        loadU64Vector(r, &raw);
        std::uint64_t count = r.u64();
        double sum = r.d();
        double max = r.d();
        std::uint64_t dropped = r.u64();
        if (!r.ok() || width != binWidth_ || raw.size() != bins.size()) {
            r.fail();
            return;
        }
        bins = std::move(raw);
        count_ = count;
        sum_ = sum;
        max_ = max;
        dropped_ = dropped;
    }

    bool
    operator==(const Histogram &other) const
    {
        return binWidth_ == other.binWidth_ && bins == other.bins &&
               count_ == other.count_ && sum_ == other.sum_ &&
               max_ == other.max_ && dropped_ == other.dropped_;
    }

  private:
    double binWidth_;
    std::vector<std::uint64_t> bins;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
    std::uint64_t dropped_ = 0; ///< NaN samples rejected by record().
};

} // namespace bh
