/**
 * @file
 * Multi-programmed workload metrics used throughout the evaluation.
 *
 * The paper reports system performance as weighted speedup (Eyerman &
 * Eeckhout; Snavely & Tullsen) and unfairness as the maximum slowdown
 * experienced by any benign application.
 */
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/log.h"

namespace bh {

/**
 * Weighted speedup of a multi-programmed run.
 *
 * @param ipc_shared Per-app IPC in the multi-programmed run.
 * @param ipc_alone Per-app IPC when running alone.
 * @return sum_i ipc_shared[i] / ipc_alone[i].
 */
inline double
weightedSpeedup(const std::vector<double> &ipc_shared,
                const std::vector<double> &ipc_alone)
{
    BH_ASSERT(ipc_shared.size() == ipc_alone.size(),
              "weightedSpeedup: size mismatch");
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
        BH_ASSERT(ipc_alone[i] > 0.0, "weightedSpeedup: zero alone IPC");
        ws += ipc_shared[i] / ipc_alone[i];
    }
    return ws;
}

/**
 * Unfairness: the maximum slowdown (alone IPC over shared IPC) across apps.
 */
inline double
maxSlowdown(const std::vector<double> &ipc_shared,
            const std::vector<double> &ipc_alone)
{
    BH_ASSERT(ipc_shared.size() == ipc_alone.size(),
              "maxSlowdown: size mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
        BH_ASSERT(ipc_shared[i] > 0.0, "maxSlowdown: zero shared IPC");
        double slowdown = ipc_alone[i] / ipc_shared[i];
        if (slowdown > worst)
            worst = slowdown;
    }
    return worst;
}

/** Geometric mean of a vector of positive values (1.0 if empty). */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        BH_ASSERT(v > 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean (0.0 if empty). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Simple five-number summary for box plots (Fig 19). */
struct BoxStats
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
};

/** Compute quartile summary of @p values (values are copied and sorted). */
BoxStats boxStats(std::vector<double> values);

} // namespace bh
