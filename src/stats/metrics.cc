#include "stats/metrics.h"

#include <algorithm>

namespace bh {

namespace {

/** Linear-interpolated quantile of a sorted vector. */
double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    double pos = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

} // namespace

BoxStats
boxStats(std::vector<double> values)
{
    BoxStats out;
    if (values.empty())
        return out;
    std::sort(values.begin(), values.end());
    out.min = values.front();
    out.max = values.back();
    out.q1 = quantileSorted(values, 0.25);
    out.median = quantileSorted(values, 0.50);
    out.q3 = quantileSorted(values, 0.75);
    return out;
}

} // namespace bh
