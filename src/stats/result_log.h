/**
 * @file
 * Thread-safe ordered sink for streamed experiment records.
 *
 * Scheduler workers complete experiments in a nondeterministic order; the
 * ResultLog keys every record by its grid index and serializes sorted by
 * that index, so the exported JSON document is bit-identical no matter how
 * many worker threads produced it.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "stats/json.h"

namespace bh {

/** One streamed record: a grid index, a stable key, and a payload. */
struct ResultRecord
{
    std::uint64_t index = 0;
    std::string key;
    JsonValue payload;
};

/** Collects records from concurrent producers; exports deterministically. */
class ResultLog
{
  public:
    /** Append one record (thread-safe). */
    void append(std::uint64_t index, std::string key, JsonValue payload);

    /** Number of records appended so far (thread-safe). */
    std::size_t size() const;

    /** All records sorted by index (thread-safe snapshot). */
    std::vector<ResultRecord> sorted() const;

    /**
     * The whole log as one JSON document:
     * {"records": [{"index":..., "key":..., "payload":...}, ...]} with
     * records sorted by index.
     */
    JsonValue toJson() const;

    /** Append every record of a toJson() document to this log. */
    void loadJson(const JsonValue &v);

    /** Write toJson() to @p path (pretty-printed). Fatal on I/O error. */
    void writeFile(const std::string &path) const;

  private:
    mutable std::mutex mutex;
    std::vector<ResultRecord> records;
};

} // namespace bh
