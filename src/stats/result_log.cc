#include "stats/result_log.h"

#include <algorithm>
#include <cstdio>

#include "common/log.h"

namespace bh {

void
ResultLog::append(std::uint64_t index, std::string key, JsonValue payload)
{
    std::lock_guard<std::mutex> lock(mutex);
    records.push_back({index, std::move(key), std::move(payload)});
}

std::size_t
ResultLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return records.size();
}

std::vector<ResultRecord>
ResultLog::sorted() const
{
    std::vector<ResultRecord> out;
    {
        std::lock_guard<std::mutex> lock(mutex);
        out = records;
    }
    std::sort(out.begin(), out.end(),
              [](const ResultRecord &a, const ResultRecord &b) {
                  return a.index < b.index;
              });
    return out;
}

JsonValue
ResultLog::toJson() const
{
    JsonValue doc = JsonValue::object();
    JsonValue arr = JsonValue::array();
    for (const ResultRecord &record : sorted()) {
        JsonValue row = JsonValue::object();
        row.set("index", record.index);
        row.set("key", record.key);
        row.set("payload", record.payload);
        arr.push(std::move(row));
    }
    doc.set("records", std::move(arr));
    return doc;
}

void
ResultLog::loadJson(const JsonValue &v)
{
    const JsonValue &arr = v.get("records");
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const JsonValue &row = arr.at(i);
        append(row.get("index").asU64(), row.get("key").asString(),
               row.get("payload"));
    }
}

void
ResultLog::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        BH_FATAL("result log write failed");
    }
    std::string text = toJson().dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace bh
