/**
 * @file
 * Minimal JSON document model used for stats export and golden files.
 *
 * The simulator streams experiment results to disk as JSON so figure
 * output can be diffed, post-processed, and regression-tested. The model
 * is deliberately small: an ordered object (insertion order is preserved
 * so serialization is deterministic), arrays, strings, numbers, booleans,
 * and null. `dump()` and `parse()` round-trip every value the simulator
 * produces; doubles are printed with 17 significant digits so the binary
 * value survives the trip.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bh {

/** One JSON value (null, bool, number, string, array, or object). */
class JsonValue
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    JsonValue() : type_(Type::kNull) {}
    JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
    JsonValue(double v) : type_(Type::kNumber), number_(v) {}
    JsonValue(int v) : type_(Type::kNumber), number_(v) {}
    JsonValue(unsigned v) : type_(Type::kNumber), number_(v) {}
    JsonValue(std::int64_t v)
        : type_(Type::kNumber), number_(static_cast<double>(v))
    {}
    JsonValue(std::uint64_t v)
        : type_(Type::kNumber), number_(static_cast<double>(v))
    {}
    JsonValue(const char *s) : type_(Type::kString), string_(s) {}
    JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

    /** An empty array value. */
    static JsonValue array();

    /** An empty object value. */
    static JsonValue object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;

    // --- arrays -----------------------------------------------------
    /** Append @p value to an array (value must be an array). */
    void push(JsonValue value);

    /** Number of elements (array) or members (object). */
    std::size_t size() const;

    /** Element @p i of an array. */
    const JsonValue &at(std::size_t i) const;

    // --- objects ----------------------------------------------------
    /** Set member @p key (replaces an existing member in place). */
    void set(const std::string &key, JsonValue value);

    /** Member @p key, or nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key; fatal when absent. */
    const JsonValue &get(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    // --- serialization ----------------------------------------------
    /**
     * Serialize. @p indent < 0 emits compact single-line JSON; >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text.
     * @param[out] error Filled with a message on failure (optional).
     * @return The parsed value, or std::nullopt-like null on failure
     *         (check @p ok).
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error = nullptr);

    /** Parse @p text; fatal on malformed input (for trusted files). */
    static JsonValue parseOrDie(const std::string &text);

    bool operator==(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

} // namespace bh
