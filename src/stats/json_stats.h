/**
 * @file
 * JSON conversions for the stats primitives.
 *
 * Histograms export their full raw state so a parsed histogram answers
 * every query (count, mean, max, percentiles) identically to the one that
 * was dumped; bins are run-length compressed as [index, count] pairs since
 * latency histograms are sparse.
 */
#pragma once

#include "stats/histogram.h"
#include "stats/json.h"

namespace bh {

/** Serialize @p h, including enough raw state for an exact round trip. */
inline JsonValue
histogramToJson(const Histogram &h)
{
    JsonValue out = JsonValue::object();
    out.set("bin_width", h.binWidth());
    out.set("num_bins", static_cast<std::uint64_t>(h.rawBins().size() - 1));
    out.set("sum", h.sum());
    out.set("max", h.max());
    JsonValue bins = JsonValue::array();
    const std::vector<std::uint64_t> &raw = h.rawBins();
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == 0)
            continue;
        JsonValue pair = JsonValue::array();
        pair.push(static_cast<std::uint64_t>(i));
        pair.push(raw[i]);
        bins.push(std::move(pair));
    }
    out.set("bins", std::move(bins));
    return out;
}

/** Rebuild a histogram dumped by histogramToJson(). */
inline Histogram
histogramFromJson(const JsonValue &v)
{
    std::size_t num_bins = v.get("num_bins").asU64();
    std::vector<std::uint64_t> raw(num_bins + 1, 0);
    const JsonValue &bins = v.get("bins");
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const JsonValue &pair = bins.at(i);
        std::size_t idx = pair.at(0).asU64();
        BH_ASSERT(idx < raw.size(), "histogram JSON: bin out of range");
        raw[idx] = pair.at(1).asU64();
    }
    return Histogram::fromRaw(v.get("bin_width").asDouble(),
                              std::move(raw), v.get("sum").asDouble(),
                              v.get("max").asDouble());
}

} // namespace bh
