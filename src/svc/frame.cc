#include "svc/frame.h"

#include <cstring>

namespace bh::svc {

std::string
encodeFrame(const std::string &payload)
{
    std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    frame.push_back(static_cast<char>(size & 0xff));
    frame.push_back(static_cast<char>((size >> 8) & 0xff));
    frame.push_back(static_cast<char>((size >> 16) & 0xff));
    frame.push_back(static_cast<char>((size >> 24) & 0xff));
    frame += payload;
    return frame;
}

void
FrameReader::feed(const char *data, std::size_t size)
{
    if (broken_)
        return; // A poisoned stream buffers nothing further.
    // Compact the already-consumed prefix before growing: a long-lived
    // connection must not accumulate every frame it ever received.
    if (consumed > 0 && consumed == buffer.size()) {
        buffer.clear();
        consumed = 0;
    } else if (consumed > 4096) {
        buffer.erase(0, consumed);
        consumed = 0;
    }
    buffer.append(data, size);
}

bool
FrameReader::next(std::string *payload)
{
    if (broken_)
        return false;
    if (buffer.size() - consumed < 4)
        return false;
    const unsigned char *head =
        reinterpret_cast<const unsigned char *>(buffer.data() + consumed);
    std::uint32_t size = static_cast<std::uint32_t>(head[0]) |
                         (static_cast<std::uint32_t>(head[1]) << 8) |
                         (static_cast<std::uint32_t>(head[2]) << 16) |
                         (static_cast<std::uint32_t>(head[3]) << 24);
    if (size == 0 || size > kMaxFramePayload) {
        // Whatever follows is unframeable — there is no resync point in
        // a length-prefixed stream whose lengths cannot be trusted.
        broken_ = true;
        error_ = "invalid frame length " + std::to_string(size);
        return false;
    }
    if (buffer.size() - consumed - 4 < size)
        return false; // Incomplete: wait for more bytes.
    payload->assign(buffer, consumed + 4, size);
    consumed += 4 + static_cast<std::size_t>(size);
    return true;
}

} // namespace bh::svc
