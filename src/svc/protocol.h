/**
 * @file
 * Sweep-service message vocabulary.
 *
 * Every frame payload (svc/frame.h) is one compact JSON object with a
 * "type" member. The worker speaks first:
 *
 *   worker -> coordinator                coordinator -> worker
 *   ---------------------                ---------------------
 *   hello {proto, schema, jobs, name}    hello_ok {proto, schema}
 *   lease_request {}                     lease {key, config, deadline_ms}
 *   heartbeat {key}                      done {}
 *   result {key, payload}                error {message}
 *   solo {app, insts, ipc}
 *
 * A lease_request with no pending work is not answered immediately: the
 * coordinator parks it and replies with a lease the moment one frees up
 * (a worker died and its lease expired), or with `done` when every unit
 * has completed. `error` precedes a coordinator-initiated close (e.g.,
 * schema mismatch — a worker built from different sources would poison
 * the store with records the coordinator cannot reproduce).
 *
 * The lease carries the full *resolved* ExperimentConfig — not just the
 * content key — so a worker needs no environment agreement with the
 * coordinator: BH_INSTS, --sample, and --channels are all resolved into
 * explicit fields on the coordinator before leasing, and the config
 * round-trips exactly (doubles at 17 significant digits, the same rule
 * the result schema uses).
 */
#pragma once

#include <string>

#include "sim/experiment.h"
#include "stats/json.h"

namespace bh::svc {

/** Wire-protocol revision; bumped on message-shape changes.
 *  v2: slot codec carries the attacker pattern, the adaptive-attacker
 *  slot kind and parameters, and the config's red-team strategy spec. */
constexpr std::uint64_t kProtocolVersion = 2;

/**
 * Parse one frame payload into a message object. Enforces the envelope
 * only (valid JSON, an object, a string "type"); per-type members are
 * checked by the handlers.
 * @return false (with @p error set) on garbage.
 */
bool parseMessage(const std::string &payload, JsonValue *out,
                  std::string *error);

/** The "type" member of a parsed message ("" when absent). */
std::string messageType(const JsonValue &msg);

// --- config wire codec ---------------------------------------------

/**
 * @p config serialized for a lease. The config must already be resolved
 * (resolveExperimentConfig()): every field is spelled out explicitly so
 * the worker's own environment cannot skew the simulation.
 */
JsonValue experimentConfigToJson(const ExperimentConfig &config);

/**
 * Rebuild an ExperimentConfig from experimentConfigToJson() output.
 * Exact: experimentKey() of the round-tripped config equals the
 * original's (test_svc pins this).
 * @return false when @p v is malformed; @p out is then untouched.
 */
bool experimentConfigFromJson(const JsonValue &v, ExperimentConfig *out);

/** Inverse of mitigationName(); false when @p name is unknown. */
bool mitigationFromName(const std::string &name, MitigationType *out);

// --- message builders (all return compact dump()-ready objects) -----

JsonValue makeHello(unsigned jobs, const std::string &worker_name);
JsonValue makeHelloOk();
JsonValue makeLeaseRequest();
JsonValue makeLease(const std::string &key, const ExperimentConfig &config,
                    std::uint64_t deadline_ms);
JsonValue makeHeartbeat(const std::string &key);
JsonValue makeResult(const std::string &key, JsonValue payload);
JsonValue makeSolo(const std::string &app, std::uint64_t insts, double ipc);
JsonValue makeDone();
JsonValue makeError(const std::string &message);

} // namespace bh::svc
