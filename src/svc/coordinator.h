/**
 * @file
 * Lease-based sweep coordinator: one store, many machines.
 *
 * The SweepCoordinator turns a sweep grid into a simulation service. It
 * expands the grid into content-address-unique work units, marks the
 * ones its ResultStore already holds as done (a warm coordinator leases
 * nothing), and serves the rest to SweepWorkers over TCP:
 *
 *   unit state machine:   pending ──lease──> leased ──result──> done
 *                            ^                  │
 *                            └──expiry/drop─────┘   (++leasesExpired)
 *
 * A lease carries the full resolved ExperimentConfig and a deadline;
 * worker heartbeats push the deadline out while a long simulation runs.
 * A lease whose deadline passes — or whose worker's connection drops —
 * requeues, so a SIGKILLed machine costs one lease interval, not a
 * shard. Results are ingested into the (single-writer, flock-guarded)
 * ResultStore with the existing content-address dedup: the first record
 * for a unit wins, duplicates from a re-leased unit's original owner are
 * ignored, and the final export is byte-identical to a single-process
 * run of the same grid.
 *
 * The whole coordinator is ONE thread: a poll() event loop owns every
 * socket, the unit table, and the store — there is no locking around
 * ingest because nothing races it. The same listening port also answers
 * plain HTTP (the first bytes of a connection distinguish "GET " from a
 * frame header): `/progress` returns a JSON progress document and
 * `/metrics` a Prometheus-style text page (leases outstanding/expired,
 * records ingested, per-worker throughput, ETA). Metrics snapshots are
 * published under a mutex so tests and embedders can read them from
 * other threads.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "sim/result_store.h"
#include "svc/frame.h"

namespace bh::svc {

/** Coordinator tuning. */
struct CoordinatorOptions
{
    /** TCP listen port; 0 binds an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /**
     * Lease lifetime. Each heartbeat (and the grant itself) arms the
     * unit's deadline this far out; a worker that goes silent longer
     * forfeits the unit. Must comfortably exceed the worker's heartbeat
     * interval, and — for sampled points, which cannot heartbeat
     * mid-run — the longest single simulation.
     */
    std::uint64_t leaseTimeoutMs = 30000;
    /**
     * How long to keep answering HTTP after the last unit completes, so
     * dashboards and CI can observe the 100% state. Framed workers are
     * told `done` immediately either way.
     */
    std::uint64_t lingerMs = 0;
    /**
     * After the last unit completes, keep serving until every worker
     * connection has closed (workers disconnect as soon as they process
     * `done`), bounded by this grace window. Exiting the instant the
     * out-buffers drain loses a race: a worker whose lease-request
     * replenish crosses the exit takes an RST that discards its
     * buffered `done`, and it then retries a dead address until its
     * connect-failure cap. Within the grace a reconnecting worker gets
     * `done` answered directly.
     */
    std::uint64_t doneGraceMs = 3000;
};

/** Live counters, readable from any thread via metrics(). */
struct CoordinatorMetrics
{
    std::size_t unitsTotal = 0;
    std::size_t unitsDone = 0;
    std::size_t unitsWarm = 0; ///< Done before any lease (store hits).
    std::size_t leasesOutstanding = 0;
    std::size_t leasesExpired = 0;
    std::size_t recordsIngested = 0;
    std::size_t soloIngested = 0;
    std::size_t workersConnected = 0;
    bool complete = false;
};

/** Single-threaded TCP/HTTP coordinator over a ResultStore. */
class SweepCoordinator
{
  public:
    /**
     * @param store Open (or at least constructed) store; all ingest goes
     *        through it. The coordinator does not own it.
     * @param grid  The experiment points to serve; deduplicated and
     *        resolved internally (expandWorkUnits).
     */
    SweepCoordinator(CoordinatorOptions options, ResultStore *store,
                     const std::vector<ExperimentConfig> &grid);
    ~SweepCoordinator();

    SweepCoordinator(const SweepCoordinator &) = delete;
    SweepCoordinator &operator=(const SweepCoordinator &) = delete;

    /**
     * Bind + listen, and resolve warm units against the store.
     * @return false (with @p error set) when the port cannot be bound.
     */
    bool start(std::string *error);

    /** The bound TCP port (after start(); ephemeral ports resolved). */
    std::uint16_t port() const { return boundPort; }

    /**
     * Run the event loop until every unit is done (plus linger), or
     * requestStop(). Returns false (with @p error) only on listener
     * failure; worker churn is handled, not fatal.
     */
    bool serve(std::string *error);

    /** Ask a serve() running on another thread to wind down. */
    void requestStop() { stopRequested.store(true); }

    /** Thread-safe counter snapshot (tests, embedders). */
    CoordinatorMetrics metrics() const;

  private:
    struct Unit
    {
        ExperimentConfig config;
        std::string key;
        enum class State
        {
            kPending,
            kLeased,
            kDone,
        } state = State::kPending;
        int owner = -1; ///< Conn fd holding the lease.
        std::uint64_t deadlineMs = 0;
        unsigned expiries = 0;
    };

    struct Conn
    {
        int fd = -1;
        enum class Kind
        {
            kUnknown, ///< Sniffing: first bytes decide frame vs HTTP.
            kFramed,
            kHttp,
        } kind = Kind::kUnknown;
        std::string sniff;   ///< Bytes held until the kind is known.
        FrameReader reader;  ///< Framed-mode decoder.
        std::string httpBuf; ///< HTTP-mode request bytes.
        std::string out;     ///< Unwritten outbound bytes.
        bool closing = false; ///< Close once out drains.
        bool helloDone = false;
        std::string name;     ///< Worker-reported name.
        int waitingRequests = 0; ///< Unanswered lease_requests.
        std::set<std::string> leased; ///< Keys leased to this conn.
        std::size_t resultsIngested = 0;
        std::uint64_t connectedAtMs = 0;
    };

    // Event-loop internals (all called from the serve() thread only).
    void acceptClients();
    void readFrom(Conn &conn);
    void dispatchFrames(Conn &conn);
    void handleMessage(Conn &conn, const JsonValue &msg);
    void handleHttp(Conn &conn);
    void sendFrame(Conn &conn, const JsonValue &msg);
    void queueBytes(Conn &conn, const std::string &bytes);
    void flushOut(Conn &conn);
    void closeConn(int fd);
    void requeueUnit(std::size_t index);
    void grantLeases();
    void sweepExpiredLeases();
    void noteDone(std::size_t index);
    void publishMetrics();
    std::string progressJson() const;
    std::string metricsText() const;
    std::size_t outstandingLeases() const;

    CoordinatorOptions options;
    ResultStore *store;
    std::vector<Unit> units;
    std::map<std::string, std::size_t> unitByKey;
    std::deque<std::size_t> pendingQ;
    std::deque<int> waiters; ///< Conn fds owed a lease (FIFO, lazy-dead).

    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::map<int, Conn> conns;

    std::size_t done = 0;
    std::size_t warm = 0;
    std::size_t expired = 0;
    std::size_t ingested = 0;
    std::size_t soloSeen = 0;
    std::uint64_t startedAtMs = 0;
    std::uint64_t completedAtMs = 0; ///< 0 = still running.

    std::atomic<bool> stopRequested{false};
    mutable std::mutex metricsMutex;
    CoordinatorMetrics published;
};

} // namespace bh::svc
