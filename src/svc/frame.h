/**
 * @file
 * Length-prefixed frame codec for the sweep-service wire protocol.
 *
 * Every message between a SweepWorker and the SweepCoordinator is one
 * frame: a 4-byte little-endian payload length followed by that many
 * bytes of compact JSON. Length prefixing (rather than newline framing)
 * keeps the stream self-describing for payloads that embed arbitrary
 * text — an experiment record's JSON payload is shipped verbatim — and
 * lets the receiver reject oversized or nonsensical frames before
 * buffering them.
 *
 * The decoder is incremental and defensive: bytes arrive in whatever
 * chunks the TCP stack delivers, a frame split across reads reassembles,
 * and a header announcing zero or more than kMaxFramePayload bytes marks
 * the stream broken (poisoned — every later next() fails too, because a
 * byte stream that lied about one length has no trustworthy resync
 * point). Garbage that *parses* as a frame but not as JSON is the
 * protocol layer's problem (svc/protocol.h).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bh::svc {

/**
 * Ceiling on one frame's payload. Generous next to real traffic — the
 * largest message is an experiment record with its full latency
 * histogram, well under a megabyte — while still rejecting a stream
 * whose "length" is really four bytes of garbage before gigabytes get
 * buffered.
 */
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/** @p payload wrapped in a wire frame (4-byte LE length + bytes). */
std::string encodeFrame(const std::string &payload);

/** Incremental, bounds-checked frame decoder. */
class FrameReader
{
  public:
    /** Append @p size raw stream bytes. */
    void feed(const char *data, std::size_t size);

    /**
     * Extract the next complete frame's payload into @p payload.
     * @return true when a full frame was extracted; false when more
     *         bytes are needed — or the stream is broken (check
     *         broken(); a broken reader never yields another frame).
     */
    bool next(std::string *payload);

    /** Whether the stream announced an invalid frame length. */
    bool broken() const { return broken_; }

    /** Human-readable reason once broken() is true. */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (tests; idle-stream checks). */
    std::size_t buffered() const { return buffer.size() - consumed; }

  private:
    std::string buffer;
    std::size_t consumed = 0; ///< Prefix of buffer already handed out.
    bool broken_ = false;
    std::string error_;
};

} // namespace bh::svc
