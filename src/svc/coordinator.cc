#include "svc/coordinator.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "sim/sweep.h"
#include "svc/protocol.h"

namespace bh::svc {

namespace {

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            // bh-audit: skip(clock) -- lease wall-clock, outside the deterministic core
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Format a double without trailing-zero noise for /metrics. */
std::string
metric(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * Escape a label value per the Prometheus text exposition format. The
 * worker name is peer-supplied; an unescaped '"' or newline in it would
 * corrupt the whole /metrics page.
 */
std::string
promLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

} // namespace

SweepCoordinator::SweepCoordinator(CoordinatorOptions opts,
                                   ResultStore *result_store,
                                   const std::vector<ExperimentConfig> &grid)
    : options(std::move(opts)), store(result_store)
{
    // Content-address dedup happens here, once: two figures sweeping the
    // same point become one leasable unit, exactly as they become one
    // record in the store.
    for (ExperimentConfig &config : expandWorkUnits(grid)) {
        std::string key = experimentKey(config);
        unitByKey.emplace(key, units.size());
        units.push_back(Unit{std::move(config), std::move(key),
                             Unit::State::kPending, -1, 0, 0});
    }
}

SweepCoordinator::~SweepCoordinator()
{
    for (auto &entry : conns)
        ::close(entry.second.fd);
    if (listenFd >= 0)
        ::close(listenFd);
}

bool
SweepCoordinator::start(std::string *error)
{
    // Warm units resolve before anything is leased: a store that already
    // holds a point's record never re-simulates it, on any machine.
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (store != nullptr &&
            store->lookup(units[i].config) != nullptr) {
            units[i].state = Unit::State::kDone;
            ++done;
            ++warm;
        } else {
            pendingQ.push_back(i);
        }
    }

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(options.port);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        if (error)
            *error = "cannot listen on port " +
                     std::to_string(options.port) + ": " +
                     std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);
    setNonBlocking(listenFd);

    startedAtMs = nowMs();
    if (done == units.size())
        completedAtMs = startedAtMs; // Fully warm: only linger remains.
    publishMetrics();
    BH_LOG("coordinator: %zu unit(s) (%zu warm) on port %u",
           units.size(), warm, boundPort);
    return true;
}

bool
SweepCoordinator::serve(std::string *error)
{
    if (listenFd < 0) {
        if (error)
            *error = "serve() before start()";
        return false;
    }

    while (!stopRequested.load()) {
        // Exit condition: everything done, every framed peer's `done`
        // frame flushed, every worker disconnected (or the grace window
        // elapsed — see doneGraceMs), and the HTTP linger elapsed.
        if (completedAtMs != 0) {
            bool drained = true;
            std::size_t peers = 0;
            for (const auto &entry : conns) {
                if (entry.second.kind == Conn::Kind::kHttp)
                    continue;
                ++peers;
                if (!entry.second.out.empty())
                    drained = false;
            }
            std::uint64_t now = nowMs();
            bool workers_gone =
                peers == 0 ||
                now >= completedAtMs + options.doneGraceMs;
            if (drained && workers_gone &&
                now >= completedAtMs + options.lingerMs)
                break;
        }

        std::vector<pollfd> fds;
        fds.push_back(pollfd{listenFd, POLLIN, 0});
        for (auto &entry : conns) {
            short events = POLLIN;
            if (!entry.second.out.empty())
                events |= POLLOUT;
            fds.push_back(pollfd{entry.second.fd, events, 0});
        }
        int timeout = 200; // Lease sweeps + stop checks stay responsive.
        int ready = ::poll(fds.data(), fds.size(), timeout);
        if (ready < 0 && errno != EINTR) {
            if (error)
                *error = std::string("poll: ") + std::strerror(errno);
            return false;
        }

        if (fds[0].revents & POLLIN)
            acceptClients();

        // Collect fds first: handlers may close (erase) connections.
        std::vector<int> readable, writable, broken;
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
                // POLLHUP can still deliver buffered bytes; read first
                // and let the 0-byte read close it.
                if (!(fds[i].revents & POLLIN)) {
                    broken.push_back(fds[i].fd);
                    continue;
                }
            }
            if (fds[i].revents & POLLIN)
                readable.push_back(fds[i].fd);
            else if (fds[i].revents & POLLOUT)
                writable.push_back(fds[i].fd);
        }
        for (int fd : broken)
            closeConn(fd);
        for (int fd : readable) {
            auto it = conns.find(fd);
            if (it != conns.end())
                readFrom(it->second);
        }
        for (int fd : writable) {
            auto it = conns.find(fd);
            if (it != conns.end())
                flushOut(it->second);
        }

        sweepExpiredLeases();
        grantLeases();
        publishMetrics();
    }
    publishMetrics();
    return true;
}

void
SweepCoordinator::acceptClients()
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN (or transient error): nothing more now.
        setNonBlocking(fd);
        Conn conn;
        conn.fd = fd;
        conn.connectedAtMs = nowMs();
        conns.emplace(fd, std::move(conn));
    }
}

void
SweepCoordinator::readFrom(Conn &conn)
{
    char buf[65536];
    for (;;) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            if (conn.kind == Conn::Kind::kUnknown) {
                conn.sniff.append(buf, static_cast<std::size_t>(n));
                if (conn.sniff.size() < 4)
                    continue;
                // An HTTP request line can never be a valid frame here:
                // "GET " as a length prefix would announce ~0.5 GB.
                if (conn.sniff.compare(0, 4, "GET ") == 0 ||
                    conn.sniff.compare(0, 4, "HEAD") == 0 ||
                    conn.sniff.compare(0, 4, "POST") == 0) {
                    conn.kind = Conn::Kind::kHttp;
                    conn.httpBuf = std::move(conn.sniff);
                } else {
                    conn.kind = Conn::Kind::kFramed;
                    conn.reader.feed(conn.sniff.data(),
                                     conn.sniff.size());
                }
                conn.sniff.clear();
            } else if (conn.kind == Conn::Kind::kHttp) {
                conn.httpBuf.append(buf, static_cast<std::size_t>(n));
            } else {
                conn.reader.feed(buf, static_cast<std::size_t>(n));
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        closeConn(conn.fd); // EOF or hard error: lost worker.
        return;
    }
    if (conn.kind == Conn::Kind::kHttp)
        handleHttp(conn);
    else if (conn.kind == Conn::Kind::kFramed)
        dispatchFrames(conn);
}

void
SweepCoordinator::dispatchFrames(Conn &conn)
{
    int fd = conn.fd;
    std::string payload;
    while (true) {
        auto it = conns.find(fd);
        if (it == conns.end())
            return; // A handler closed the connection.
        if (!it->second.reader.next(&payload))
            break;
        JsonValue msg;
        std::string parse_error;
        if (!parseMessage(payload, &msg, &parse_error)) {
            // Garbage inside a well-formed frame: this peer is not
            // speaking the protocol; drop it (its leases requeue).
            std::fprintf(stderr,
                         "coordinator: dropping peer (bad message: "
                         "%s)\n",
                         parse_error.c_str());
            closeConn(fd);
            return;
        }
        handleMessage(it->second, msg);
    }
    auto it = conns.find(fd);
    if (it != conns.end() && it->second.reader.broken()) {
        std::fprintf(stderr, "coordinator: dropping peer (%s)\n",
                     it->second.reader.error().c_str());
        closeConn(fd);
    }
}

void
SweepCoordinator::handleMessage(Conn &conn, const JsonValue &msg)
{
    std::string type = messageType(msg);
    if (type == "hello") {
        const JsonValue *proto = msg.find("proto");
        const JsonValue *schema = msg.find("schema");
        const JsonValue *name = msg.find("name");
        std::uint64_t peer_proto =
            proto != nullptr && proto->isNumber() ? proto->asU64() : 0;
        std::uint64_t peer_schema =
            schema != nullptr && schema->isNumber() ? schema->asU64() : 0;
        if (peer_proto != kProtocolVersion ||
            peer_schema != ResultStore::kSchemaVersion) {
            // A worker from different sources would fill the store with
            // records this coordinator cannot reproduce or even parse.
            // closing must be set BEFORE sendFrame: flushOut closes (and
            // erases) the conn the moment the error frame drains, so
            // `conn` may be dangling once sendFrame returns.
            conn.closing = true;
            sendFrame(conn,
                      makeError("version mismatch: coordinator proto " +
                                std::to_string(kProtocolVersion) +
                                " schema " +
                                std::to_string(
                                    ResultStore::kSchemaVersion)));
            return;
        }
        conn.helloDone = true;
        if (name != nullptr && name->isString())
            conn.name = name->asString();
        sendFrame(conn, makeHelloOk());
        return;
    }
    if (!conn.helloDone) {
        conn.closing = true; // Before sendFrame: see version-mismatch path.
        sendFrame(conn, makeError("hello required first"));
        return;
    }
    if (type == "lease_request") {
        ++conn.waitingRequests;
        waiters.push_back(conn.fd);
        // grantLeases() runs at the bottom of the poll iteration; if
        // everything is already done, answer immediately so an idle
        // late-joining worker exits instead of waiting forever.
        if (done == units.size()) {
            --conn.waitingRequests;
            waiters.pop_back();
            sendFrame(conn, makeDone());
        }
        return;
    }
    if (type == "heartbeat") {
        const JsonValue *key = msg.find("key");
        if (key == nullptr || !key->isString())
            return;
        auto it = unitByKey.find(key->asString());
        if (it == unitByKey.end())
            return;
        Unit &unit = units[it->second];
        // Only the current owner extends the deadline: a heartbeat from
        // a worker whose lease already expired must not steal the unit
        // back from its new owner.
        if (unit.state == Unit::State::kLeased && unit.owner == conn.fd)
            unit.deadlineMs = nowMs() + options.leaseTimeoutMs;
        return;
    }
    if (type == "result") {
        const JsonValue *key = msg.find("key");
        const JsonValue *payload = msg.find("payload");
        if (key == nullptr || !key->isString() || payload == nullptr)
            return;
        auto it = unitByKey.find(key->asString());
        if (it == unitByKey.end()) {
            BH_LOG("coordinator: result for unknown key %s ignored",
                   key->asString().c_str());
            return;
        }
        Unit &unit = units[it->second];
        if (unit.state == Unit::State::kDone)
            return; // Duplicate from a re-leased unit's first owner.
        std::string ingest_error;
        if (store != nullptr &&
            !store->ingest(unit.config, *payload, &ingest_error)) {
            std::fprintf(stderr, "coordinator: %s\n",
                         ingest_error.c_str());
            return; // Keep the lease; deadline expiry will requeue.
        }
        ++ingested;
        ++conn.resultsIngested;
        conn.leased.erase(unit.key);
        noteDone(it->second);
        return;
    }
    if (type == "solo") {
        const JsonValue *app = msg.find("app");
        const JsonValue *insts = msg.find("insts");
        const JsonValue *ipc = msg.find("ipc");
        if (app == nullptr || !app->isString() || insts == nullptr ||
            !insts->isNumber() || ipc == nullptr || !ipc->isNumber())
            return;
        if (store != nullptr)
            store->ingestSolo(app->asString(), insts->asU64(),
                              ipc->asDouble());
        ++soloSeen;
        return;
    }
    BH_LOG("coordinator: ignoring unknown message type \"%s\"",
           type.c_str());
}

void
SweepCoordinator::noteDone(std::size_t index)
{
    Unit &unit = units[index];
    if (unit.owner >= 0) {
        auto owner = conns.find(unit.owner);
        if (owner != conns.end())
            owner->second.leased.erase(unit.key);
    }
    unit.state = Unit::State::kDone;
    unit.owner = -1;
    // The unit may still sit in pendingQ: its lease expired (requeue)
    // and then the original owner's result arrived anyway. Purge it so
    // grantLeases never re-serves a finished unit.
    pendingQ.erase(std::remove(pendingQ.begin(), pendingQ.end(), index),
                   pendingQ.end());
    ++done;
    if (done == units.size()) {
        completedAtMs = nowMs();
        // Tell every connected worker to wind down; workers with an
        // in-flight duplicate simply see their late result ignored.
        // sendFrame can close (erase) a conn on send failure, so walk a
        // snapshot of fds rather than live map iterators.
        std::vector<int> fds;
        for (auto &entry : conns) {
            entry.second.waitingRequests = 0;
            if (entry.second.kind == Conn::Kind::kFramed &&
                entry.second.helloDone)
                fds.push_back(entry.first);
        }
        waiters.clear();
        for (int fd : fds) {
            auto peer = conns.find(fd);
            if (peer != conns.end())
                sendFrame(peer->second, makeDone());
        }
        BH_LOG("coordinator: all %zu unit(s) done (%zu ingested, "
               "%zu warm, %zu lease expiries)",
               units.size(), ingested, warm, expired);
    }
}

void
SweepCoordinator::requeueUnit(std::size_t index)
{
    Unit &unit = units[index];
    if (unit.state != Unit::State::kLeased)
        return;
    if (unit.owner >= 0) {
        auto owner = conns.find(unit.owner);
        if (owner != conns.end())
            owner->second.leased.erase(unit.key);
    }
    unit.state = Unit::State::kPending;
    unit.owner = -1;
    unit.deadlineMs = 0;
    ++unit.expiries;
    ++expired;
    // Front of the queue: a requeued unit is the oldest outstanding
    // work, and finishing it is what unblocks run completion.
    pendingQ.push_front(index);
}

void
SweepCoordinator::sweepExpiredLeases()
{
    std::uint64_t now = nowMs();
    for (std::size_t i = 0; i < units.size(); ++i)
        if (units[i].state == Unit::State::kLeased &&
            now >= units[i].deadlineMs) {
            BH_LOG("coordinator: lease expired on %s",
                   units[i].key.c_str());
            requeueUnit(i);
        }
}

void
SweepCoordinator::grantLeases()
{
    while (!pendingQ.empty() && !waiters.empty()) {
        // Only a kPending unit may be leased. A stale queue entry (the
        // unit completed or was re-leased while its index sat queued)
        // would otherwise be granted from the kDone state, and the
        // duplicate result's noteDone() would push `done` past the real
        // count — signalling completion with units still unfinished.
        std::size_t index = pendingQ.front();
        if (units[index].state != Unit::State::kPending) {
            pendingQ.pop_front();
            continue;
        }
        int fd = waiters.front();
        waiters.pop_front();
        auto it = conns.find(fd);
        if (it == conns.end() || it->second.closing ||
            it->second.waitingRequests <= 0)
            continue; // Stale entry for a dead or drained connection.
        Conn &conn = it->second;
        --conn.waitingRequests;
        pendingQ.pop_front();
        Unit &unit = units[index];
        unit.state = Unit::State::kLeased;
        unit.owner = fd;
        unit.deadlineMs = nowMs() + options.leaseTimeoutMs;
        conn.leased.insert(unit.key);
        sendFrame(conn,
                  makeLease(unit.key, unit.config, options.leaseTimeoutMs));
    }
}

void
SweepCoordinator::handleHttp(Conn &conn)
{
    std::size_t header_end = conn.httpBuf.find("\r\n\r\n");
    if (header_end == std::string::npos) {
        if (conn.httpBuf.size() > 16384)
            closeConn(conn.fd); // Not a request we will ever serve.
        return;
    }
    std::size_t line_end = conn.httpBuf.find("\r\n");
    std::string line = conn.httpBuf.substr(0, line_end);
    std::string path;
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos)
        path = line.substr(sp1 + 1, sp2 - sp1 - 1);

    std::string body, content_type = "text/plain; charset=utf-8";
    int status = 200;
    const char *status_text = "OK";
    if (path == "/progress") {
        body = progressJson();
        content_type = "application/json";
    } else if (path == "/metrics") {
        body = metricsText();
    } else {
        status = 404;
        status_text = "Not Found";
        body = "try /progress or /metrics\n";
    }
    std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                           status_text +
                           "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    queueBytes(conn, response);
    conn.closing = true;
    flushOut(conn);
}

std::size_t
SweepCoordinator::outstandingLeases() const
{
    std::size_t outstanding = 0;
    for (const Unit &unit : units)
        if (unit.state == Unit::State::kLeased)
            ++outstanding;
    return outstanding;
}

std::string
SweepCoordinator::progressJson() const
{
    std::size_t total = units.size();
    JsonValue doc = JsonValue::object();
    doc.set("total", total);
    doc.set("done", done);
    doc.set("warm", warm);
    doc.set("leased", outstandingLeases());
    doc.set("pending", pendingQ.size());
    doc.set("percent",
            total == 0 ? 100.0 : 100.0 * static_cast<double>(done) /
                                     static_cast<double>(total));
    doc.set("leases_expired", expired);
    doc.set("records_ingested", ingested);
    doc.set("complete", done == units.size());
    std::size_t workers = 0;
    for (const auto &entry : conns)
        if (entry.second.kind == Conn::Kind::kFramed &&
            entry.second.helloDone)
            ++workers;
    doc.set("workers", workers);
    return doc.dump() + "\n";
}

std::string
SweepCoordinator::metricsText() const
{
    std::uint64_t now = nowMs();
    double elapsed =
        static_cast<double>(now - startedAtMs) / 1000.0;
    // ETA from the fleet-wide ingest rate. Warm units completed in zero
    // time and would fake an infinite rate; count only real ingests.
    double rate = elapsed > 0.0
                      ? static_cast<double>(ingested) / elapsed
                      : 0.0;
    std::size_t remaining = units.size() - done;
    double eta = rate > 0.0 ? static_cast<double>(remaining) / rate
                            : 0.0;

    std::string out;
    out += "bh_sweep_units_total " + std::to_string(units.size()) + "\n";
    out += "bh_sweep_units_done " + std::to_string(done) + "\n";
    out += "bh_sweep_units_warm " + std::to_string(warm) + "\n";
    out += "bh_sweep_leases_outstanding " +
           std::to_string(outstandingLeases()) + "\n";
    out += "bh_sweep_leases_expired " + std::to_string(expired) + "\n";
    out += "bh_sweep_records_ingested " + std::to_string(ingested) + "\n";
    out += "bh_sweep_solo_records_ingested " + std::to_string(soloSeen) +
           "\n";
    std::size_t workers = 0;
    for (const auto &entry : conns)
        if (entry.second.kind == Conn::Kind::kFramed &&
            entry.second.helloDone)
            ++workers;
    out += "bh_sweep_workers_connected " + std::to_string(workers) + "\n";
    out += "bh_sweep_elapsed_seconds " + metric(elapsed) + "\n";
    out += "bh_sweep_eta_seconds " + metric(eta) + "\n";
    for (const auto &entry : conns) {
        const Conn &conn = entry.second;
        if (conn.kind != Conn::Kind::kFramed || !conn.helloDone)
            continue;
        double conn_elapsed =
            static_cast<double>(now - conn.connectedAtMs) / 1000.0;
        double throughput =
            conn_elapsed > 0.0
                ? static_cast<double>(conn.resultsIngested) / conn_elapsed
                : 0.0;
        std::string label =
            conn.name.empty() ? "fd" + std::to_string(conn.fd)
                              : conn.name;
        out += "bh_sweep_worker_throughput_per_s{worker=\"" +
               promLabel(label) + "\"} " + metric(throughput) + "\n";
    }
    return out;
}

void
SweepCoordinator::sendFrame(Conn &conn, const JsonValue &msg)
{
    queueBytes(conn, encodeFrame(msg.dump()));
    flushOut(conn);
}

void
SweepCoordinator::queueBytes(Conn &conn, const std::string &bytes)
{
    conn.out += bytes;
}

void
SweepCoordinator::flushOut(Conn &conn)
{
    while (!conn.out.empty()) {
        ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // POLLOUT will resume the drain.
        if (n < 0 && errno == EINTR)
            continue;
        closeConn(conn.fd);
        return;
    }
    if (conn.closing)
        closeConn(conn.fd);
}

void
SweepCoordinator::closeConn(int fd)
{
    auto it = conns.find(fd);
    if (it == conns.end())
        return;
    // A dropped worker's leases requeue immediately — no need to wait
    // out the deadline when the kernel already told us the peer is gone.
    std::vector<std::string> keys(it->second.leased.begin(),
                                  it->second.leased.end());
    ::close(fd);
    conns.erase(it);
    for (const std::string &key : keys) {
        auto unit = unitByKey.find(key);
        if (unit != unitByKey.end()) {
            BH_LOG("coordinator: worker dropped, requeueing %s",
                   key.c_str());
            requeueUnit(unit->second);
        }
    }
}

void
SweepCoordinator::publishMetrics()
{
    CoordinatorMetrics m;
    m.unitsTotal = units.size();
    m.unitsDone = done;
    m.unitsWarm = warm;
    m.leasesOutstanding = outstandingLeases();
    m.leasesExpired = expired;
    m.recordsIngested = ingested;
    m.soloIngested = soloSeen;
    for (const auto &entry : conns)
        if (entry.second.kind == Conn::Kind::kFramed &&
            entry.second.helloDone)
            ++m.workersConnected;
    m.complete = done == units.size();
    std::lock_guard<std::mutex> lock(metricsMutex);
    published = m;
}

CoordinatorMetrics
SweepCoordinator::metrics() const
{
    std::lock_guard<std::mutex> lock(metricsMutex);
    return published;
}

} // namespace bh::svc
