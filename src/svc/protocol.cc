#include "svc/protocol.h"

#include "sim/redteam.h"
#include "sim/result_store.h"

namespace bh::svc {

bool
parseMessage(const std::string &payload, JsonValue *out,
             std::string *error)
{
    if (!JsonValue::parse(payload, out, error))
        return false;
    if (!out->isObject()) {
        if (error)
            *error = "message is not a JSON object";
        return false;
    }
    const JsonValue *type = out->find("type");
    if (type == nullptr || !type->isString()) {
        if (error)
            *error = "message has no string \"type\"";
        return false;
    }
    return true;
}

std::string
messageType(const JsonValue &msg)
{
    const JsonValue *type = msg.isObject() ? msg.find("type") : nullptr;
    return type != nullptr && type->isString() ? type->asString() : "";
}

bool
mitigationFromName(const std::string &name, MitigationType *out)
{
    static constexpr MitigationType kAll[] = {
        MitigationType::kNone,  MitigationType::kPara,
        MitigationType::kGraphene, MitigationType::kHydra,
        MitigationType::kTwice, MitigationType::kAqua,
        MitigationType::kRega,  MitigationType::kRfm,
        MitigationType::kPrac,  MitigationType::kBlockHammer,
    };
    for (MitigationType type : kAll)
        if (name == mitigationName(type)) {
            *out = type;
            return true;
        }
    return false;
}

JsonValue
experimentConfigToJson(const ExperimentConfig &config)
{
    JsonValue mix = JsonValue::object();
    mix.set("name", config.mix.name);
    mix.set("pattern", config.mix.pattern);
    JsonValue slots = JsonValue::array();
    for (const WorkloadSlot &slot : config.mix.slots) {
        JsonValue s = JsonValue::object();
        const char *kind = "benign";
        if (slot.kind == WorkloadSlot::Kind::kAttacker)
            kind = "attacker";
        else if (slot.kind == WorkloadSlot::Kind::kAdaptiveAttacker)
            kind = "adaptive_attacker";
        s.set("kind", kind);
        s.set("app", slot.appName);
        JsonValue a = JsonValue::object();
        a.set("pattern", static_cast<unsigned>(slot.attacker.pattern));
        a.set("aggressors", slot.attacker.numAggressors);
        a.set("row_base", slot.attacker.rowBase);
        a.set("row_spacing", slot.attacker.rowSpacing);
        a.set("banks", slot.attacker.numBanks);
        a.set("bubbles", slot.attacker.bubbles);
        s.set("attacker", std::move(a));
        JsonValue ad = JsonValue::object();
        ad.set("observe_every", slot.adaptive.observeEvery);
        ad.set("max_bubbles", slot.adaptive.maxBubbles);
        ad.set("rotation_stride", slot.adaptive.rotationStride);
        ad.set("calm_streak", slot.adaptive.calmStreak);
        ad.set("group_size", slot.adaptive.groupSize);
        ad.set("slot_index", slot.adaptive.slotIndex);
        ad.set("handoff_epoch", slot.adaptive.handoffEpoch);
        s.set("adaptive", std::move(ad));
        slots.push(std::move(s));
    }
    mix.set("slots", std::move(slots));

    JsonValue bh = JsonValue::object();
    bh.set("window", config.bh.window);
    bh.set("th_threat", config.bh.thThreat);
    bh.set("th_outlier", config.bh.thOutlier);
    bh.set("p_old_suspect", config.bh.pOldSuspect);
    bh.set("p_new_suspect", config.bh.pNewSuspect);
    bh.set("winner_takes_all",
           config.bh.attribution == ScoreAttribution::kWinnerTakesAll);
    bh.set("single_counter_set", config.bh.singleCounterSet);

    JsonValue out = JsonValue::object();
    out.set("mix", std::move(mix));
    out.set("mechanism", mitigationName(config.mechanism));
    out.set("nrh", config.nRh);
    out.set("breakhammer", config.breakHammer);
    out.set("bh", std::move(bh));
    out.set("instructions", config.instructions);
    out.set("oracle", config.oracle);
    out.set("blunt_throttle", config.bluntThrottle);
    out.set("seed", config.seed);
    out.set("channels", config.channels);
    out.set("ranks", config.ranks);
    JsonValue sample = JsonValue::object();
    sample.set("warmup", config.sample.warmup);
    sample.set("measure", config.sample.measure);
    sample.set("fast_forward", config.sample.fastForward);
    out.set("sample", std::move(sample));
    out.set("redteam", config.redteam);
    return out;
}

namespace {

/** Typed member lookups that fail soft (codec rejects, never aborts). */
const JsonValue *
member(const JsonValue &v, const char *key, JsonValue::Type type)
{
    const JsonValue *m = v.isObject() ? v.find(key) : nullptr;
    return m != nullptr && m->type() == type ? m : nullptr;
}

} // namespace

bool
experimentConfigFromJson(const JsonValue &v, ExperimentConfig *out)
{
    const JsonValue *mix = member(v, "mix", JsonValue::Type::kObject);
    const JsonValue *mech = member(v, "mechanism", JsonValue::Type::kString);
    const JsonValue *nrh = member(v, "nrh", JsonValue::Type::kNumber);
    const JsonValue *bh_on =
        member(v, "breakhammer", JsonValue::Type::kBool);
    const JsonValue *bh = member(v, "bh", JsonValue::Type::kObject);
    const JsonValue *insts =
        member(v, "instructions", JsonValue::Type::kNumber);
    const JsonValue *oracle = member(v, "oracle", JsonValue::Type::kBool);
    const JsonValue *blunt =
        member(v, "blunt_throttle", JsonValue::Type::kBool);
    const JsonValue *seed = member(v, "seed", JsonValue::Type::kNumber);
    const JsonValue *channels =
        member(v, "channels", JsonValue::Type::kNumber);
    const JsonValue *ranks = member(v, "ranks", JsonValue::Type::kNumber);
    const JsonValue *sample =
        member(v, "sample", JsonValue::Type::kObject);
    const JsonValue *redteam =
        member(v, "redteam", JsonValue::Type::kString);
    if (!mix || !mech || !nrh || !bh_on || !bh || !insts || !oracle ||
        !blunt || !seed || !channels || !ranks || !sample || !redteam)
        return false;

    const JsonValue *mix_name =
        member(*mix, "name", JsonValue::Type::kString);
    const JsonValue *mix_pattern =
        member(*mix, "pattern", JsonValue::Type::kString);
    const JsonValue *slots =
        member(*mix, "slots", JsonValue::Type::kArray);
    if (!mix_name || !mix_pattern || !slots)
        return false;

    ExperimentConfig config;
    if (!mitigationFromName(mech->asString(), &config.mechanism))
        return false;
    config.mix.name = mix_name->asString();
    config.mix.pattern = mix_pattern->asString();
    for (std::size_t i = 0; i < slots->size(); ++i) {
        const JsonValue &s = slots->at(i);
        const JsonValue *kind = member(s, "kind", JsonValue::Type::kString);
        const JsonValue *app = member(s, "app", JsonValue::Type::kString);
        const JsonValue *att =
            member(s, "attacker", JsonValue::Type::kObject);
        const JsonValue *adp =
            member(s, "adaptive", JsonValue::Type::kObject);
        if (!kind || !app || !att || !adp)
            return false;
        const JsonValue *pattern =
            member(*att, "pattern", JsonValue::Type::kNumber);
        const JsonValue *aggr =
            member(*att, "aggressors", JsonValue::Type::kNumber);
        const JsonValue *row_base =
            member(*att, "row_base", JsonValue::Type::kNumber);
        const JsonValue *row_spacing =
            member(*att, "row_spacing", JsonValue::Type::kNumber);
        const JsonValue *banks =
            member(*att, "banks", JsonValue::Type::kNumber);
        const JsonValue *bubbles =
            member(*att, "bubbles", JsonValue::Type::kNumber);
        if (!pattern || !aggr || !row_base || !row_spacing || !banks ||
            !bubbles || pattern->asU64() > 2)
            return false;
        const JsonValue *observe =
            member(*adp, "observe_every", JsonValue::Type::kNumber);
        const JsonValue *max_bubbles =
            member(*adp, "max_bubbles", JsonValue::Type::kNumber);
        const JsonValue *stride =
            member(*adp, "rotation_stride", JsonValue::Type::kNumber);
        const JsonValue *calm =
            member(*adp, "calm_streak", JsonValue::Type::kNumber);
        const JsonValue *group =
            member(*adp, "group_size", JsonValue::Type::kNumber);
        const JsonValue *slot_index =
            member(*adp, "slot_index", JsonValue::Type::kNumber);
        const JsonValue *handoff =
            member(*adp, "handoff_epoch", JsonValue::Type::kNumber);
        if (!observe || !max_bubbles || !stride || !calm || !group ||
            !slot_index || !handoff)
            return false;
        WorkloadSlot slot;
        if (kind->asString() == "attacker")
            slot.kind = WorkloadSlot::Kind::kAttacker;
        else if (kind->asString() == "adaptive_attacker")
            slot.kind = WorkloadSlot::Kind::kAdaptiveAttacker;
        else if (kind->asString() == "benign")
            slot.kind = WorkloadSlot::Kind::kBenign;
        else
            return false;
        slot.appName = app->asString();
        slot.attacker.pattern =
            static_cast<AttackPattern>(pattern->asU64());
        slot.attacker.numAggressors =
            static_cast<unsigned>(aggr->asU64());
        slot.attacker.rowBase = static_cast<unsigned>(row_base->asU64());
        slot.attacker.rowSpacing =
            static_cast<unsigned>(row_spacing->asU64());
        slot.attacker.numBanks = static_cast<unsigned>(banks->asU64());
        slot.attacker.bubbles =
            static_cast<std::uint32_t>(bubbles->asU64());
        slot.adaptive.observeEvery =
            static_cast<unsigned>(observe->asU64());
        slot.adaptive.maxBubbles =
            static_cast<std::uint32_t>(max_bubbles->asU64());
        slot.adaptive.rotationStride =
            static_cast<unsigned>(stride->asU64());
        slot.adaptive.calmStreak = static_cast<unsigned>(calm->asU64());
        slot.adaptive.groupSize = static_cast<unsigned>(group->asU64());
        slot.adaptive.slotIndex =
            static_cast<unsigned>(slot_index->asU64());
        slot.adaptive.handoffEpoch = handoff->asU64();
        config.mix.slots.push_back(std::move(slot));
    }

    const JsonValue *window =
        member(*bh, "window", JsonValue::Type::kNumber);
    const JsonValue *th_threat =
        member(*bh, "th_threat", JsonValue::Type::kNumber);
    const JsonValue *th_outlier =
        member(*bh, "th_outlier", JsonValue::Type::kNumber);
    const JsonValue *p_old =
        member(*bh, "p_old_suspect", JsonValue::Type::kNumber);
    const JsonValue *p_new =
        member(*bh, "p_new_suspect", JsonValue::Type::kNumber);
    const JsonValue *wta =
        member(*bh, "winner_takes_all", JsonValue::Type::kBool);
    const JsonValue *single =
        member(*bh, "single_counter_set", JsonValue::Type::kBool);
    if (!window || !th_threat || !th_outlier || !p_old || !p_new || !wta ||
        !single)
        return false;
    config.bh.window = window->asU64();
    config.bh.thThreat = th_threat->asDouble();
    config.bh.thOutlier = th_outlier->asDouble();
    config.bh.pOldSuspect = static_cast<unsigned>(p_old->asU64());
    config.bh.pNewSuspect = static_cast<unsigned>(p_new->asU64());
    config.bh.attribution = wta->asBool()
                                ? ScoreAttribution::kWinnerTakesAll
                                : ScoreAttribution::kProportional;
    config.bh.singleCounterSet = single->asBool();

    const JsonValue *warmup =
        member(*sample, "warmup", JsonValue::Type::kNumber);
    const JsonValue *measure =
        member(*sample, "measure", JsonValue::Type::kNumber);
    const JsonValue *ff =
        member(*sample, "fast_forward", JsonValue::Type::kNumber);
    if (!warmup || !measure || !ff)
        return false;
    config.sample.warmup = warmup->asU64();
    config.sample.measure = measure->asU64();
    config.sample.fastForward = ff->asU64();

    config.nRh = static_cast<unsigned>(nrh->asU64());
    config.breakHammer = bh_on->asBool();
    config.instructions = insts->asU64();
    config.oracle = oracle->asBool();
    config.bluntThrottle = blunt->asBool();
    config.seed = seed->asU64();
    config.channels = static_cast<unsigned>(channels->asU64());
    config.ranks = static_cast<unsigned>(ranks->asU64());
    // Empty = canonical fixed attackers; non-empty must be a canonical
    // strategy spec (the worker's runExperiment() aborts on garbage, so
    // reject it at the wire instead).
    config.redteam = redteam->asString();
    if (!config.redteam.empty()) {
        RedteamStrategy strategy;
        if (!parseRedteamStrategy(config.redteam, &strategy))
            return false;
    }
    *out = std::move(config);
    return true;
}

JsonValue
makeHello(unsigned jobs, const std::string &worker_name)
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "hello");
    msg.set("proto", kProtocolVersion);
    msg.set("schema", ResultStore::kSchemaVersion);
    msg.set("jobs", jobs);
    msg.set("name", worker_name);
    return msg;
}

JsonValue
makeHelloOk()
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "hello_ok");
    msg.set("proto", kProtocolVersion);
    msg.set("schema", ResultStore::kSchemaVersion);
    return msg;
}

JsonValue
makeLeaseRequest()
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "lease_request");
    return msg;
}

JsonValue
makeLease(const std::string &key, const ExperimentConfig &config,
          std::uint64_t deadline_ms)
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "lease");
    msg.set("key", key);
    msg.set("config", experimentConfigToJson(config));
    msg.set("deadline_ms", deadline_ms);
    return msg;
}

JsonValue
makeHeartbeat(const std::string &key)
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "heartbeat");
    msg.set("key", key);
    return msg;
}

JsonValue
makeResult(const std::string &key, JsonValue payload)
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "result");
    msg.set("key", key);
    msg.set("payload", std::move(payload));
    return msg;
}

JsonValue
makeSolo(const std::string &app, std::uint64_t insts, double ipc)
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "solo");
    msg.set("app", app);
    msg.set("insts", insts);
    msg.set("ipc", ipc);
    return msg;
}

JsonValue
makeDone()
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "done");
    return msg;
}

JsonValue
makeError(const std::string &message)
{
    JsonValue msg = JsonValue::object();
    msg.set("type", "error");
    msg.set("message", message);
    return msg;
}

} // namespace bh::svc
