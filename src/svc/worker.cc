#include "svc/worker.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "svc/protocol.h"

namespace bh::svc {

namespace {

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            // bh-audit: skip(clock) -- lease wall-clock, outside the deterministic core
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// The progress hook and solo sink are process-wide singletons shared by
// every SweepWorker in the process (the loopback tests run two). The
// installed callbacks are identical stateless trampolines that route
// through these thread-locals, so whichever worker installed last is
// irrelevant — each compute thread reaches its own worker and lease.
thread_local SweepWorker *tlWorker = nullptr;
thread_local const std::string *tlKey = nullptr;
thread_local std::uint64_t tlLastHeartbeatMs = 0;

/** Sink owner tag shared by all workers (last install wins; see above). */
const void *
workerSinkOwner()
{
    static int tag;
    return &tag;
}

} // namespace

SweepWorker::SweepWorker(WorkerOptions opts) : options(std::move(opts))
{
    if (this->options.jobs == 0)
        this->options.jobs = 1;
}

void
SweepWorker::queueFrame(const JsonValue &msg)
{
    std::string frame = encodeFrame(msg.dump());
    std::lock_guard<std::mutex> lock(outboxMutex);
    outbox.push_back(std::move(frame));
}

void
SweepWorker::heartbeat(const std::string &key)
{
    std::uint64_t now = nowMs();
    if (now - tlLastHeartbeatMs < options.heartbeatMinIntervalMs)
        return;
    tlLastHeartbeatMs = now;
    queueFrame(makeHeartbeat(key));
}

void
SweepWorker::forwardSolo(const std::string &app, std::uint64_t insts,
                         double ipc)
{
    queueFrame(makeSolo(app, insts, ipc));
}

void
SweepWorker::computeLoop()
{
    tlWorker = this;
    for (;;) {
        Lease lease;
        {
            std::unique_lock<std::mutex> lock(workMutex);
            workCv.wait(lock, [this] {
                return !workQueue.empty() || shuttingDown;
            });
            if (workQueue.empty())
                return; // shuttingDown and drained.
            lease = std::move(workQueue.front());
            workQueue.pop_front();
        }
        tlKey = &lease.key;
        ExperimentResult result = runExperiment(lease.config);
        tlKey = nullptr;
        queueFrame(makeResult(
            lease.key, experimentResultToJson(lease.config, result)));
        completedCount.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(workMutex);
            --inflight;
        }
    }
}

int
SweepWorker::connectOnce(std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *list = nullptr;
    int rc = ::getaddrinfo(options.host.c_str(),
                           std::to_string(options.port).c_str(), &hints,
                           &list);
    if (rc != 0) {
        if (error)
            *error = options.host + ": " + ::gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = list; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    if (fd < 0 && error)
        *error = "cannot connect to " + options.host + ":" +
                 std::to_string(options.port) + ": " +
                 std::strerror(errno);
    ::freeaddrinfo(list);
    return fd;
}

bool
SweepWorker::serveConnection(int fd, std::string *error)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    FrameReader reader;
    std::string sendBuf = encodeFrame(makeHello(
        options.jobs, options.name).dump());
    bool helloOk = false;
    unsigned outstandingRequests = 0;

    while (!stopRequested.load()) {
        // Keep the coordinator saturated: one unanswered lease_request
        // per idle compute thread. The coordinator parks the surplus and
        // answers the moment a unit frees up (or with `done`).
        if (helloOk && !doneReceived.load()) {
            std::lock_guard<std::mutex> lock(workMutex);
            while (inflight + outstandingRequests < options.jobs) {
                sendBuf += encodeFrame(makeLeaseRequest().dump());
                ++outstandingRequests;
            }
        }
        // Heartbeats/results/solos queued by compute threads; the
        // outbox is gated on hello_ok so nothing precedes the handshake.
        if (helloOk) {
            std::lock_guard<std::mutex> lock(outboxMutex);
            while (!outbox.empty()) {
                sendBuf += outbox.front();
                outbox.pop_front();
            }
        }
        while (!sendBuf.empty()) {
            ssize_t n = ::send(fd, sendBuf.data(), sendBuf.size(),
                               MSG_NOSIGNAL);
            if (n > 0) {
                sendBuf.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            return false; // Peer gone mid-send: reconnect.
        }

        if (doneReceived.load()) {
            std::lock_guard<std::mutex> lock(workMutex);
            if (inflight == 0 && sendBuf.empty() && outbox.empty())
                return true; // Every duplicate result flushed too.
        }

        pollfd pfd{fd, POLLIN, 0};
        if (!sendBuf.empty())
            pfd.events |= POLLOUT;
        int ready = ::poll(&pfd, 1, 100);
        if (ready < 0 && errno != EINTR)
            return false;
        if (ready <= 0)
            continue;
        if (pfd.revents & (POLLERR | POLLNVAL))
            return false;
        if (!(pfd.revents & POLLIN)) {
            if (pfd.revents & POLLHUP)
                return false;
            continue;
        }

        char buf[65536];
        for (;;) {
            ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n > 0) {
                reader.feed(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EOF or hard error.
        }
        if (reader.broken()) {
            fatalError = "coordinator sent " + reader.error();
            return false;
        }

        std::string payload;
        while (reader.next(&payload)) {
            JsonValue msg;
            std::string parse_error;
            if (!parseMessage(payload, &msg, &parse_error)) {
                fatalError = "coordinator sent garbage: " + parse_error;
                return false;
            }
            std::string type = messageType(msg);
            if (type == "hello_ok") {
                helloOk = true;
            } else if (type == "lease") {
                const JsonValue *key = msg.find("key");
                const JsonValue *config = msg.find("config");
                Lease lease;
                if (key == nullptr || !key->isString() ||
                    config == nullptr ||
                    !experimentConfigFromJson(*config, &lease.config)) {
                    fatalError = "malformed lease from coordinator";
                    return false;
                }
                lease.key = key->asString();
                BH_LOG("worker: leased %s", lease.key.c_str());
                {
                    std::lock_guard<std::mutex> lock(workMutex);
                    if (outstandingRequests > 0)
                        --outstandingRequests;
                    ++inflight;
                    workQueue.push_back(std::move(lease));
                }
                workCv.notify_one();
            } else if (type == "done") {
                doneReceived.store(true);
            } else if (type == "error") {
                const JsonValue *message = msg.find("message");
                fatalError = "coordinator refused us: " +
                             (message != nullptr && message->isString()
                                  ? message->asString()
                                  : std::string("(no message)"));
                return false;
            }
            // Unknown types are ignored: forward compatibility.
        }
    }
    if (error && fatalError.empty())
        fatalError = "stopped";
    return false;
}

bool
SweepWorker::run(std::string *error)
{
    // Route this worker's solo computes and mid-run progress to the
    // coordinator. Both callbacks are stateless trampolines over the
    // thread-locals (see top of file) — safe to reinstall per worker.
    setSoloIpcSink(
        [](const std::string &app, std::uint64_t insts, double ipc) {
            if (tlWorker != nullptr)
                tlWorker->forwardSolo(app, insts, ipc);
        },
        workerSinkOwner());
    ProgressHook hook;
    hook.everyInsts = options.heartbeatEveryInsts;
    hook.fn = [](const ExperimentConfig &, std::uint64_t, std::uint64_t) {
        if (tlWorker != nullptr && tlKey != nullptr)
            tlWorker->heartbeat(*tlKey);
    };
    setProgressHook(hook);

    std::vector<std::thread> computeThreads;
    for (unsigned i = 0; i < options.jobs; ++i)
        computeThreads.emplace_back([this] { computeLoop(); });

    bool finished = false;
    unsigned failures = 0;
    std::uint64_t backoffMs = 250;
    while (!finished && !stopRequested.load() && fatalError.empty()) {
        std::string connect_error;
        int fd = connectOnce(&connect_error);
        if (fd < 0) {
            // The run is over once `done` arrived; a coordinator that
            // exits right after saying so is not a failure.
            if (doneReceived.load()) {
                std::lock_guard<std::mutex> lock(workMutex);
                if (inflight == 0) {
                    finished = true;
                    break;
                }
            }
            ++failures;
            if (options.maxConnectFailures != 0 &&
                failures >= options.maxConnectFailures) {
                fatalError = connect_error + " (gave up after " +
                             std::to_string(failures) + " attempts)";
                break;
            }
            BH_LOG("worker: %s; retrying in %llu ms",
                   connect_error.c_str(),
                   static_cast<unsigned long long>(backoffMs));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
            backoffMs = std::min(backoffMs * 2, options.maxBackoffMs);
            continue;
        }
        failures = 0;
        backoffMs = 250;
        finished = serveConnection(fd, error);
        ::close(fd);
    }

    {
        std::lock_guard<std::mutex> lock(workMutex);
        shuttingDown = true;
    }
    workCv.notify_all();
    for (std::thread &t : computeThreads)
        t.join();
    clearSoloIpcSink(workerSinkOwner());

    if (!finished && error != nullptr)
        *error = fatalError.empty() ? "stopped before completion"
                                    : fatalError;
    return finished;
}

} // namespace bh::svc
