/**
 * @file
 * Sweep-service worker: lease, simulate, report, repeat.
 *
 * A SweepWorker connects to a SweepCoordinator (retrying with capped
 * exponential backoff — a worker may come up before its coordinator, or
 * outlive a coordinator restart), keeps up to `jobs` leases in flight
 * across that many compute threads, and for each lease runs the leased
 * ExperimentConfig through the ordinary runExperiment() path — so the
 * process-wide checkpoint policy (setCheckpointSpec) applies unchanged:
 * a worker started with --checkpoint-every snapshots mid-run, and a
 * re-leased unit landing back on the same worker resumes from its
 * snapshot instead of starting over.
 *
 * While a simulation runs, the process-wide progress hook
 * (setProgressHook) fires at an instruction cadence; the worker routes
 * it through thread-locals to the owning (worker, lease) pair and sends
 * a wall-clock-rate-limited heartbeat so the coordinator keeps the lease
 * alive. Solo-IPC denominators the worker computes are forwarded as
 * `solo` records through the same thread-local routing.
 *
 * One I/O thread owns the socket (the compute threads only append
 * encoded frames to an outbox); frames still queued when the connection
 * drops survive the reconnect, so a finished result is not lost to a
 * coordinator hiccup. A result that IS lost in flight is covered by the
 * lease deadline: the coordinator requeues the unit and some worker —
 * possibly this one, from its snapshot — redoes it.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "svc/frame.h"

namespace bh::svc {

/** Worker tuning. */
struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Compute threads == leases kept in flight. */
    unsigned jobs = 1;
    /** Reported to the coordinator for the /metrics worker label. */
    std::string name;
    /** Progress-hook cadence in retired instructions per benign core. */
    std::uint64_t heartbeatEveryInsts = 2000;
    /** Wall-clock floor between heartbeats of one compute thread. */
    std::uint64_t heartbeatMinIntervalMs = 500;
    /** Reconnect backoff doubles from 250 ms up to this cap. */
    std::uint64_t maxBackoffMs = 10000;
    /**
     * Give up after this many consecutive failed connection attempts
     * (the coordinator is gone, not busy). 0 = retry forever.
     */
    unsigned maxConnectFailures = 60;
};

/** One coordinator-driven sweep worker (see file comment). */
class SweepWorker
{
  public:
    explicit SweepWorker(WorkerOptions options);

    SweepWorker(const SweepWorker &) = delete;
    SweepWorker &operator=(const SweepWorker &) = delete;

    /**
     * Connect and work until the coordinator says `done`. Blocks; this
     * is the worker's whole life. @return false (with @p error set) on a
     * protocol error, a coordinator-reported error, or connect give-up.
     * Work completed before a failure has already been reported.
     */
    bool run(std::string *error);

    /** Ask a run() on another thread to wind down at the next poll. */
    void requestStop() { stopRequested.store(true); }

    /** Units this worker simulated and reported. */
    std::size_t completedUnits() const { return completedCount.load(); }

  private:
    struct Lease
    {
        std::string key;
        ExperimentConfig config;
    };

    /** Compute-thread body: pop leases, simulate, queue results. */
    void computeLoop();

    /** Append one encoded frame to the outbox (any thread). */
    void queueFrame(const JsonValue &msg);

    /** Rate-limited heartbeat for @p key (compute threads, via hook). */
    void heartbeat(const std::string &key);

    /** Forward a freshly computed solo IPC (compute threads, via sink). */
    void forwardSolo(const std::string &app, std::uint64_t insts,
                     double ipc);

    /** Connect to the coordinator; -1 on failure. */
    int connectOnce(std::string *error);

    /** One connection's lifetime; false = reconnect, true = finished. */
    bool serveConnection(int fd, std::string *error);

    WorkerOptions options;

    // Work queue (I/O thread pushes, compute threads pop).
    std::mutex workMutex;
    std::condition_variable workCv;
    std::deque<Lease> workQueue;
    bool shuttingDown = false;
    /** Leases held: queued or computing. Guarded by workMutex. */
    unsigned inflight = 0;

    // Outbox of encoded frames (compute threads push, I/O thread sends).
    std::mutex outboxMutex;
    std::deque<std::string> outbox;

    std::atomic<bool> stopRequested{false};
    std::atomic<bool> doneReceived{false};
    std::atomic<std::size_t> completedCount{0};
    std::string fatalError; ///< Set by the I/O thread only.
};

} // namespace bh::svc
