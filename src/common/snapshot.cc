#include "common/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bh {

bool
writeFileAtomic(const std::string &path, const std::string &data,
                std::string *error)
{
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot create " + tmp + ": " + std::strerror(errno);
        return false;
    }
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0) {
            if (error)
                *error = "short write to " + tmp + ": " +
                         std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    // Flush file contents before the rename makes them visible under the
    // final name; a snapshot must never exist half-written. Close the fd
    // unconditionally — short-circuiting past close() on an fsync error
    // would leak one fd per failed checkpoint.
    bool synced = ::fsync(fd) == 0;
    bool closed = ::close(fd) == 0;
    if (!synced || !closed) {
        if (error)
            *error = "cannot flush " + tmp + ": " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename " + tmp + " to " + path + ": " +
                     std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out->clear();
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // namespace bh
