/**
 * @file
 * Fundamental scalar types and unit helpers shared by every module.
 *
 * The whole simulator runs in a single clock domain: CPU cycles at
 * `kCpuFreqGhz`. DRAM timing parameters are written down in nanoseconds
 * (as JEDEC specifies them) and converted to CPU cycles once, at spec
 * construction time, via `nsToCycles()`.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace bh {

/** Simulation time in CPU clock cycles. */
using Cycle = std::uint64_t;

/** Physical memory address (byte granular). */
using Addr = std::uint64_t;

/** Hardware thread / core identifier. */
using ThreadId = std::uint32_t;

/** Sentinel for "no thread" (e.g., controller-generated traffic). */
inline constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();

/** Sentinel cycle meaning "never" / "not scheduled". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Processor clock frequency (Table 1 of the paper: 4.2 GHz). */
inline constexpr double kCpuFreqGhz = 4.2;

/** Cache line size in bytes (Table 1). */
inline constexpr unsigned kCacheLineBytes = 64;

/** Number of low address bits covered by one cache line. */
inline constexpr unsigned kCacheLineBits = 6;

/**
 * Convert a duration in nanoseconds to CPU cycles, rounding up so that
 * converted constraints are never optimistic.
 */
constexpr Cycle
nsToCycles(double ns)
{
    double cycles = ns * kCpuFreqGhz;
    auto floor_cycles = static_cast<Cycle>(cycles);
    return (static_cast<double>(floor_cycles) < cycles) ? floor_cycles + 1
                                                        : floor_cycles;
}

/** Convert CPU cycles back to nanoseconds (for reporting). */
constexpr double
cyclesToNs(Cycle cycles)
{
    return static_cast<double>(cycles) / kCpuFreqGhz;
}

/** Convert milliseconds to CPU cycles (refresh/throttling windows). */
constexpr Cycle
msToCycles(double ms)
{
    return nsToCycles(ms * 1e6);
}

} // namespace bh
