/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (PARA's coin flips, trace generators, workload
 * shuffling) draws from an explicitly seeded Xorshift64* generator so that
 * simulations are bit-reproducible across runs and platforms. We avoid
 * std::mt19937 in hot paths: Xorshift64* is a few instructions and its
 * statistical quality is ample for simulation sampling.
 */
#pragma once

#include <cstdint>

#include "common/types.h"

namespace bh {

/** Xorshift64* PRNG; deterministic, cheap, and seedable per component. */
class Rng
{
  public:
    /** @param seed Non-zero seed; zero is remapped to a fixed constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** Geometric-ish burst length in [1, max_len]. */
    std::uint64_t
    nextBurst(double continue_p, std::uint64_t max_len)
    {
        std::uint64_t len = 1;
        while (len < max_len && nextBool(continue_p))
            ++len;
        return len;
    }

    /** Raw generator state (snapshot serialization). */
    std::uint64_t rawState() const { return state; }

    /** Restore a state captured by rawState(). @pre raw != 0. */
    void setRawState(std::uint64_t raw) { state = raw ? raw : 1; }

  private:
    std::uint64_t state;
};

} // namespace bh
