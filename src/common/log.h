/**
 * @file
 * Minimal fatal/panic helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal() is
 * for user configuration errors. Both print to stderr and abort/exit, so
 * they are acceptable in a library context where exceptions are not used on
 * hot paths.
 */
#pragma once

#include <cstdio>
#include <cstdlib>

#include "common/env.h"

namespace bh {

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/**
 * True when BH_LOG is set non-zero (same envFlag() semantics as every
 * other knob). Gates the opt-in verbose progress logging (BH_LOG()) —
 * store loads, sweep prefetch summaries — which stays silent by default
 * so bench output remains byte-comparable.
 */
inline bool
verboseLogEnabled()
{
    static const bool enabled = envFlag("BH_LOG");
    return enabled;
}

} // namespace bh

/** Verbose progress line (stderr), enabled by BH_LOG=1. */
#define BH_LOG(...)                                                           \
    do {                                                                      \
        if (::bh::verboseLogEnabled()) {                                      \
            std::fprintf(stderr, "bh: " __VA_ARGS__);                         \
            std::fputc('\n', stderr);                                         \
        }                                                                     \
    } while (0)

/** Abort on simulator bug. */
#define BH_PANIC(msg) ::bh::panicImpl(__FILE__, __LINE__, (msg))

/** Exit on user configuration error. */
#define BH_FATAL(msg) ::bh::fatalImpl(__FILE__, __LINE__, (msg))

/** Invariant check that stays on in release builds. */
#define BH_ASSERT(cond, msg)                                                  \
    do {                                                                      \
        if (!(cond))                                                          \
            BH_PANIC(msg);                                                    \
    } while (0)
