/**
 * @file
 * Helpers for reading scale knobs from the environment.
 *
 * The benchmark harness follows the paper's methodology but lets the user
 * scale simulation size (instructions per core, mixes per class, N_RH sweep
 * density) without recompiling: BH_INSTS, BH_MIXES, BH_FULL.
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace bh {

/** Read an integer environment variable, or return @p def if unset/bad. */
inline std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return def;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v)
        return def;
    return static_cast<std::uint64_t>(parsed);
}

/** Read a boolean flag environment variable (non-zero means true). */
inline bool
envFlag(const char *name)
{
    return envU64(name, 0) != 0;
}

} // namespace bh
