/**
 * @file
 * Helpers for reading scale knobs from the environment.
 *
 * The benchmark harness follows the paper's methodology but lets the user
 * scale simulation size (instructions per core, mixes per class, N_RH sweep
 * density) without recompiling: BH_INSTS, BH_MIXES, BH_FULL.
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace bh {

/** Read an integer environment variable, or return @p def if unset/bad. */
inline std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return def;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v)
        return def;
    return static_cast<std::uint64_t>(parsed);
}

/** Read a boolean flag environment variable (non-zero means true). */
inline bool
envFlag(const char *name)
{
    return envU64(name, 0) != 0;
}

/**
 * Strictly parse @p text as a positive decimal integer. Rejects empty
 * strings, signs (so "-5" cannot wrap to a huge unsigned), non-digit
 * characters, zero, and values that overflow std::uint64_t.
 * @return true and stores into @p out on success.
 */
inline bool
parsePositiveU64(const char *text, std::uint64_t *out)
{
    if (text == nullptr || *text == '\0')
        return false;
    std::uint64_t value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false; // Overflow.
        value = value * 10 + digit;
    }
    if (value == 0)
        return false;
    *out = value;
    return true;
}

} // namespace bh
