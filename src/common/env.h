/**
 * @file
 * Helpers for reading scale knobs from the environment.
 *
 * The benchmark harness follows the paper's methodology but lets the user
 * scale simulation size (instructions per core, mixes per class, N_RH sweep
 * density) without recompiling: BH_INSTS, BH_MIXES, BH_FULL.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bh {

/**
 * Strictly parse @p text as an unsigned decimal integer (zero allowed —
 * envFlag() relies on "0" parsing). Rejects empty strings, signs (so
 * "-5" cannot wrap to a huge unsigned), non-digit characters including
 * trailing garbage ("20k"), and values that overflow std::uint64_t.
 * @return true and stores into @p out on success.
 */
inline bool
parseU64Strict(const char *text, std::uint64_t *out)
{
    if (text == nullptr || *text == '\0')
        return false;
    std::uint64_t value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false; // Overflow.
        value = value * 10 + digit;
    }
    *out = value;
    return true;
}

/**
 * Read an integer environment variable, or return @p def if unset/bad.
 *
 * Parsing is strict (parseU64Strict): a negative value must not wrap to
 * ~1.8e19 and "20k" must not silently read as 20 — both fall back to the
 * default, with a warning when BH_LOG is on. The gate re-implements
 * BH_LOG's envFlag() check directly because envFlag() is built on this
 * very function (a garbage BH_LOG value would otherwise recurse).
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return def;
    std::uint64_t parsed = 0;
    if (!parseU64Strict(v, &parsed)) {
        const char *gate = std::getenv("BH_LOG");
        if (gate != nullptr && *gate != '\0' &&
            !(gate[0] == '0' && gate[1] == '\0'))
            std::fprintf(stderr,
                         "bh: ignoring %s=\"%s\" (not an unsigned decimal "
                         "integer); using default %llu\n",
                         name, v, static_cast<unsigned long long>(def));
        return def;
    }
    return parsed;
}

/** Read a boolean flag environment variable (non-zero means true). */
inline bool
envFlag(const char *name)
{
    return envU64(name, 0) != 0;
}

/**
 * Strictly parse @p text as a positive decimal integer. Rejects empty
 * strings, signs (so "-5" cannot wrap to a huge unsigned), non-digit
 * characters, zero, and values that overflow std::uint64_t.
 * @return true and stores into @p out on success.
 */
inline bool
parsePositiveU64(const char *text, std::uint64_t *out)
{
    std::uint64_t value = 0;
    if (!parseU64Strict(text, &value) || value == 0)
        return false;
    *out = value;
    return true;
}

} // namespace bh
