/**
 * @file
 * Binary state codec for mid-run simulation snapshots.
 *
 * StateWriter/StateReader serialize the mutable state of every simulation
 * component into a flat byte string (little-endian fixed-width integers,
 * doubles as IEEE-754 bit patterns — exact round trips, no text
 * formatting). Section tags (FNV-1a of a name) let a reader detect layout
 * drift early; every read is bounds-checked and failure is sticky, so a
 * truncated or corrupt blob reports `!ok()` instead of crashing — the
 * caller falls back to recomputing from scratch.
 *
 * Hash-table state needs more care than contents alone: a resumed run
 * must be *bit-identical* to an uninterrupted one, and some consumers make
 * iteration-order-dependent decisions (MisraGries reclaims the first
 * stale slot an iteration finds, which steers which rows Graphene/AQUA
 * keep tracking). saveUnorderedMap()/loadUnorderedMap() therefore record
 * the bucket count and the elements in iteration order, and rebuild by
 * rehashing to the saved bucket count and inserting in *reverse* order:
 * libstdc++ prepends a new node to its bucket (and a new bucket's segment
 * to the global element list), so reverse insertion reproduces the exact
 * iteration order — and, with the bucket count pinned, the exact future
 * rehash points. test_snapshot locks this property in; if a standard
 * library ever breaks it, the round-trip tests fail loudly rather than
 * letting resumed runs drift.
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bh {

/** FNV-1a over a byte string (section tags, snapshot checksums). */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size,
        std::uint64_t seed = 14695981039346656037ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

/**
 * FNV-1a folding 8 input bytes per round instead of 1 — the snapshot
 * checksum, where the input is megabytes and the byte-at-a-time loop's
 * serial multiply chain dominates save/restore. Same mixing, different
 * digest than fnv1a64 (stride is part of the function); snapshots store
 * only this variant, so the two never need to agree.
 */
inline std::uint64_t
fnv1a64Chunked(const void *data, std::size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t hash = 14695981039346656037ull;
    while (size >= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, p, 8);
        hash ^= chunk;
        hash *= 1099511628211ull;
        p += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Append-only binary encoder. */
class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    u32(std::uint32_t v)
    {
        // One append instead of four push_backs: integer encodes are the
        // codec's hot path (a snapshot is millions of them), and each
        // push_back re-checks capacity.
        char tmp[4];
        for (int i = 0; i < 4; ++i)
            tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
        buf.append(tmp, 4);
    }

    void
    u64(std::uint64_t v)
    {
        char tmp[8];
        for (int i = 0; i < 8; ++i)
            tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
        buf.append(tmp, 8);
    }

    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf.append(s);
    }

    /** Section marker: layout drift fails fast at the first wrong tag. */
    void
    tag(const char *name)
    {
        u32(static_cast<std::uint32_t>(
            fnv1a64(name, std::strlen(name))));
    }

    /** Pre-size the buffer (e.g. to the previous snapshot's size). */
    void reserve(std::size_t n) { buf.reserve(n); }

    /** Append raw bytes (callers handle any endianness concerns). */
    void
    bytes(const void *p, std::size_t n)
    {
        buf.append(static_cast<const char *>(p), n);
    }

    const std::string &data() const { return buf; }
    std::string take() { return std::move(buf); }

  private:
    std::string buf;
};

/** Bounds-checked binary decoder with a sticky failure flag. */
class StateReader
{
  public:
    explicit StateReader(std::string data)
        : owned(std::move(data)), buf(owned)
    {
    }

    /** Tag type selecting the borrowing constructor. */
    struct Borrow
    {
    };

    /**
     * Decode @p data in place without copying it. The caller must keep
     * the referenced bytes alive and unmodified for the reader's whole
     * lifetime — the restore path uses this to avoid duplicating a
     * multi-megabyte snapshot blob per read.
     */
    StateReader(std::string_view data, Borrow) : buf(data) {}

    bool ok() const { return ok_; }
    void fail() { ok_ = false; }
    std::size_t remaining() const { return buf.size() - pos; }
    bool atEnd() const { return ok_ && pos == buf.size(); }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return static_cast<std::uint8_t>(buf[pos - 1]);
    }

    bool b() { return u8() != 0; }

    std::uint32_t
    u32()
    {
        // memcpy + LE fix-up compiles to a single load; assembling the
        // value byte by byte through operator[] does not, and integer
        // decodes are the restore path's hot loop.
        if (!take(4))
            return 0;
        std::uint32_t v;
        std::memcpy(&v, buf.data() + pos - 4, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
        v = __builtin_bswap32(v);
#endif
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v;
        std::memcpy(&v, buf.data() + pos - 8, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
        v = __builtin_bswap64(v);
#endif
        return v;
    }

    double
    d()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (!ok_ || n > remaining()) {
            fail();
            return std::string();
        }
        std::string out(buf.substr(pos, n));
        pos += n;
        return out;
    }

    /** Consume a section marker; mismatch is a sticky failure. */
    bool
    tag(const char *name)
    {
        std::uint32_t expect = static_cast<std::uint32_t>(
            fnv1a64(name, std::strlen(name)));
        if (u32() != expect)
            fail();
        return ok_;
    }

    /** Copy @p n raw bytes out; false (and sticky-fail) when short. */
    bool
    bytes(void *p, std::size_t n)
    {
        if (!take(n))
            return false;
        std::memcpy(p, buf.data() + pos - n, n);
        return true;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return false;
        }
        pos += n;
        return true;
    }

    std::string owned;     ///< Backing storage of the owning constructor.
    std::string_view buf;  ///< The bytes being decoded (may be borrowed).
    std::size_t pos = 0;
    bool ok_ = true;
};

// --- Container helpers --------------------------------------------------

/** Save a vector; @p save_elem is (StateWriter&, const T&). */
template <class T, class SaveElem>
void
saveVector(StateWriter &w, const std::vector<T> &v, SaveElem save_elem)
{
    w.u64(v.size());
    for (const T &e : v)
        save_elem(w, e);
}

/**
 * Load a vector saved by saveVector(); @p load_elem is
 * (StateReader&, T*). The element count is validated against the bytes
 * remaining, so a corrupt length cannot drive a huge allocation.
 */
template <class T, class LoadElem>
bool
loadVector(StateReader &r, std::vector<T> *v, LoadElem load_elem)
{
    std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining()) {
        r.fail();
        return false;
    }
    v->clear();
    v->reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        T e{};
        load_elem(r, &e);
        v->push_back(std::move(e));
    }
    return r.ok();
}

inline void
saveU64Vector(StateWriter &w, const std::vector<std::uint64_t> &v)
{
    saveVector(w, v, [](StateWriter &sw, std::uint64_t e) { sw.u64(e); });
}

inline bool
loadU64Vector(StateReader &r, std::vector<std::uint64_t> *v)
{
    return loadVector(r, v, [](StateReader &sr, std::uint64_t *e) {
        *e = sr.u64();
    });
}

/**
 * saveU64Vector with a bulk fast path: on little-endian hosts the whole
 * array is one append/memcpy (bit-identical encoding to the element
 * loop). For megabyte-scale state — the LLC tag store — the per-element
 * loop is the snapshot codec's dominant cost.
 */
inline void
saveU64VectorBulk(StateWriter &w, const std::vector<std::uint64_t> &v)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    w.u64(v.size());
    w.bytes(v.data(), v.size() * sizeof(std::uint64_t));
#else
    saveU64Vector(w, v);
#endif
}

/** Bulk counterpart of loadU64Vector (same encoding, memcpy decode). */
inline bool
loadU64VectorBulk(StateReader &r, std::vector<std::uint64_t> *v)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining() / sizeof(std::uint64_t)) {
        r.fail();
        return false;
    }
    v->resize(n);
    return r.bytes(v->data(), n * sizeof(std::uint64_t));
#else
    return loadU64Vector(r, v);
#endif
}

inline void
saveU32Vector(StateWriter &w, const std::vector<std::uint32_t> &v)
{
    saveVector(w, v, [](StateWriter &sw, std::uint32_t e) { sw.u32(e); });
}

inline bool
loadU32Vector(StateReader &r, std::vector<std::uint32_t> *v)
{
    return loadVector(r, v, [](StateReader &sr, std::uint32_t *e) {
        *e = sr.u32();
    });
}

/** u32 counterpart of saveU64VectorBulk (same bulk fast path). */
inline void
saveU32VectorBulk(StateWriter &w, const std::vector<std::uint32_t> &v)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    w.u64(v.size());
    w.bytes(v.data(), v.size() * sizeof(std::uint32_t));
#else
    w.u64(v.size());
    for (std::uint32_t e : v)
        w.u32(e);
#endif
}

/** Bulk counterpart of loadU32Vector's encoding above. */
inline bool
loadU32VectorBulk(StateReader &r, std::vector<std::uint32_t> *v)
{
    std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining() / sizeof(std::uint32_t)) {
        r.fail();
        return false;
    }
    v->resize(n);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    return r.bytes(v->data(), n * sizeof(std::uint32_t));
#else
    for (std::uint32_t &e : *v)
        e = r.u32();
    return r.ok();
#endif
}

inline void
saveUnsignedVector(StateWriter &w, const std::vector<unsigned> &v)
{
    saveVector(w, v, [](StateWriter &sw, unsigned e) {
        sw.u64(e);
    });
}

inline bool
loadUnsignedVector(StateReader &r, std::vector<unsigned> *v)
{
    return loadVector(r, v, [](StateReader &sr, unsigned *e) {
        *e = static_cast<unsigned>(sr.u64());
    });
}

inline void
saveDoubleVector(StateWriter &w, const std::vector<double> &v)
{
    saveVector(w, v, [](StateWriter &sw, double e) { sw.d(e); });
}

inline bool
loadDoubleVector(StateReader &r, std::vector<double> *v)
{
    return loadVector(r, v, [](StateReader &sr, double *e) {
        *e = sr.d();
    });
}

inline void
saveBoolVector(StateWriter &w, const std::vector<bool> &v)
{
    w.u64(v.size());
    for (bool e : v)
        w.b(e);
}

inline bool
loadBoolVector(StateReader &r, std::vector<bool> *v)
{
    std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining()) {
        r.fail();
        return false;
    }
    v->assign(n, false);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        (*v)[i] = r.b();
    return r.ok();
}

/**
 * Save an unordered_map: bucket count, then the elements in iteration
 * order (see the file comment for why order is part of the state).
 */
template <class Map, class SaveKey, class SaveVal>
void
saveUnorderedMap(StateWriter &w, const Map &m, SaveKey save_key,
                 SaveVal save_val)
{
    w.u64(m.bucket_count());
    w.u64(m.size());
    for (const auto &kv : m) {
        save_key(w, kv.first);
        save_val(w, kv.second);
    }
}

/**
 * Rebuild a map saved by saveUnorderedMap() with identical contents,
 * bucket count, AND iteration order (reverse-insertion reconstruction).
 */
template <class Map, class LoadKey, class LoadVal>
bool
loadUnorderedMap(StateReader &r, Map *m, LoadKey load_key,
                 LoadVal load_val)
{
    using Key = typename Map::key_type;
    using Val = typename Map::mapped_type;
    std::uint64_t buckets = r.u64();
    std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining() || buckets > (1ull << 40)) {
        r.fail();
        return false;
    }
    std::vector<std::pair<Key, Val>> items;
    items.reserve(n);
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        Key k{};
        Val v{};
        load_key(r, &k);
        load_val(r, &v);
        items.emplace_back(std::move(k), std::move(v));
    }
    if (!r.ok())
        return false;
    // Rebuild into a fresh table: a never-inserted map sits on the
    // implementation's placeholder bucket count (1 on libstdc++), which
    // rehash() cannot produce — so only rehash when the saved count
    // differs from the fresh default. Saved counts of ever-grown maps
    // are rehash-stable values (primes on libstdc++), so rehash()
    // reproduces them exactly, and with the count pinned the future
    // growth schedule matches the original's too.
    Map fresh;
    fresh.max_load_factor(m->max_load_factor());
    if (buckets != fresh.bucket_count())
        fresh.rehash(static_cast<std::size_t>(buckets));
    for (auto it = items.rbegin(); it != items.rend(); ++it)
        fresh.emplace(std::move(it->first), std::move(it->second));
    *m = std::move(fresh);
    return true;
}

// --- Snapshot files -----------------------------------------------------

/**
 * Write @p data to @p path atomically: a temp file in the same directory
 * is written, flushed, and renamed over the target, so a crash (or
 * SIGKILL) mid-save leaves either the previous snapshot or the new one —
 * never a torn file.
 */
bool writeFileAtomic(const std::string &path, const std::string &data,
                     std::string *error);

/** Read a whole file; false when it does not exist or cannot be read. */
bool readFile(const std::string &path, std::string *out);

} // namespace bh
