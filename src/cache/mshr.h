/**
 * @file
 * Miss-status holding register (MSHR) file with per-thread quotas.
 *
 * Tracks outstanding LLC misses. Secondary misses to an in-flight line merge
 * into the existing entry without consuming quota — this is what lets a
 * throttled thread keep accessing data "being brought to caches" (§4.3).
 * Primary misses require both a globally free entry and headroom under the
 * owning thread's quota, the quota being BreakHammer's throttle knob.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/throttle_target.h"
#include "common/log.h"
#include "common/snapshot.h"
#include "common/types.h"

namespace bh {

/** One waiter blocked on an outstanding fill. */
struct MshrWaiter
{
    ThreadId thread = kInvalidThread;
    std::uint64_t token = 0; ///< Core-private identifier of the load.
    bool isLoad = true;      ///< Stores merge but need no wakeup.
};

/** The MSHR file; implements the BreakHammer throttle-target interface. */
class MshrFile : public IThrottleTarget
{
  public:
    /**
     * @param num_entries Total MSHR count shared by all threads.
     * @param num_threads Hardware thread count.
     */
    MshrFile(unsigned num_entries, unsigned num_threads);

    /** Whether @p thread may allocate a new entry right now. */
    bool
    canAllocate(ThreadId thread) const
    {
        return entries.size() < numEntries &&
               inflight[thread] < quotas[thread];
    }

    /** Whether line @p line_addr already has an outstanding entry. */
    bool
    has(Addr line_addr) const
    {
        return entries.find(line_addr) != entries.end();
    }

    /**
     * Allocate an entry for @p line_addr owned by @p thread.
     * @pre canAllocate(thread) and !has(line_addr).
     */
    void allocate(Addr line_addr, ThreadId thread, bool is_write);

    /** Merge a secondary miss into the outstanding entry. */
    void merge(Addr line_addr, const MshrWaiter &waiter, bool is_write);

    /**
     * Complete the fill for @p line_addr.
     * @param[out] waiters Load waiters to wake.
     * @return true if any merged access was a store (line becomes dirty).
     */
    bool release(Addr line_addr, std::vector<MshrWaiter> *waiters);

    /** Outstanding entry count for @p thread. */
    unsigned inflightOf(ThreadId thread) const { return inflight[thread]; }

    /** Total outstanding entries. */
    unsigned
    totalInflight() const
    {
        return static_cast<unsigned>(entries.size());
    }

    // IThrottleTarget
    void
    setQuota(ThreadId thread, unsigned q) override
    {
        BH_ASSERT(thread < quotas.size(), "quota for unknown thread");
        quotas[thread] = q;
        ++quotaWrites_;
    }

    /**
     * Monotone count of setQuota() calls. The skip-ahead loop snapshots
     * it to detect quota updates that happen to restore the previous
     * values within one tick.
     */
    std::uint64_t quotaWrites() const { return quotaWrites_; }

    unsigned fullQuota() const override { return numEntries; }

    unsigned
    quota(ThreadId thread) const override
    {
        return quotas[thread];
    }

    /** Rejections due to a thread being over quota (throttle pressure). */
    std::uint64_t quotaRejections() const { return quotaRejections_; }

    /** Call when canAllocate failed because of the quota, for stats. */
    void noteQuotaRejection() { ++quotaRejections_; }

    /**
     * Batch form of noteQuotaRejection() for System::run's skip-ahead
     * loop: a reject-blocked core repeats the identical quota-rejected
     * retry once per skipped cycle.
     */
    void addQuotaRejections(std::uint64_t n) { quotaRejections_ += n; }

    /**
     * Discard every outstanding entry without waking its waiters
     * (fast-forward support). Quotas and the rejection/write counters
     * survive; only the in-flight tracking resets. The caller must also
     * drop the controller requests and core window slots the entries
     * were wired to.
     */
    void
    clearInflight()
    {
        entries.clear();
        std::fill(inflight.begin(), inflight.end(), 0u);
    }

    /** Serialize outstanding entries, quotas, and counters. */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output into a same-capacity file. */
    void loadState(StateReader &r);

  private:
    struct Entry
    {
        ThreadId owner = kInvalidThread;
        bool anyStore = false;
        std::vector<MshrWaiter> waiters;
    };

    unsigned numEntries;  // bh-audit: skip(numEntries) -- constructor config, keyed by ExperimentConfig
    std::vector<unsigned> quotas;
    mutable std::vector<unsigned> inflight;
    std::unordered_map<Addr, Entry> entries;
    std::uint64_t quotaRejections_ = 0;
    std::uint64_t quotaWrites_ = 0;
};

} // namespace bh
