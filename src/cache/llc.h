/**
 * @file
 * Functional shared last-level cache model.
 *
 * Set-associative, LRU, write-back/write-allocate, 64 B lines (Table 1:
 * 8 MiB, 8-way). Storage is tag-only: the simulator never models data
 * contents. Misses reserve the victim way immediately (no transient states);
 * the MSHR file tracks the outstanding fill.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"

namespace bh {

/** Shared LLC configuration (defaults = Table 1). */
struct LlcConfig
{
    std::uint64_t sizeBytes = 8ull << 20;
    unsigned ways = 8;
    Cycle hitLatency = 40; ///< CPU cycles from access to data for a hit.
};

/** Tag-only set-associative cache with LRU replacement. */
class Llc
{
  public:
    /** Result of reserving a victim way for an incoming fill. */
    struct Victim
    {
        bool dirtyWriteback = false;
        Addr writebackLine = 0; ///< Line address (byte address of line).
    };

    explicit Llc(const LlcConfig &config);

    /**
     * Look up @p line_addr; on hit, updates LRU and dirtiness.
     * @param line_addr Line-aligned byte address.
     * @param is_write Marks the line dirty on hit.
     * @return true on hit.
     */
    bool access(Addr line_addr, bool is_write);

    /**
     * Reserve a way for @p line_addr ahead of its fill, evicting LRU.
     * @param[out] victim Filled with the evicted line if dirty.
     * @pre The line is not present.
     */
    void allocate(Addr line_addr, bool is_write, Victim *victim);

    /** Whether @p line_addr is present (no LRU update). */
    bool probe(Addr line_addr) const;

    /** Mark @p line_addr dirty if present (merged-store fill). */
    void setDirty(Addr line_addr);

    /** Invalidate a line if present. @return true if it was present. */
    bool invalidate(Addr line_addr);

    unsigned numSets() const { return static_cast<unsigned>(sets.size()); }
    const LlcConfig &config() const { return config_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /**
     * Batch miss accounting for System::run's skip-ahead loop: a
     * reject-blocked core's retry probes the cache (and counts a miss)
     * once per dense cycle, so skipped retries are accounted here to
     * keep the counter bit-identical to the dense reference loop.
     */
    void addMisses(std::uint64_t n) { misses_ += n; }

    /** Serialize tags/LRU/dirtiness and the hit/miss counters. */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output into a same-geometry cache. */
    void loadState(StateReader &r);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; ///< Larger = more recently used.
    };

    struct Set
    {
        std::vector<Line> ways;
    };

    std::uint64_t setIndex(Addr line_addr) const;
    Addr tagOf(Addr line_addr) const;

    LlcConfig config_;  // bh-audit: skip(config_) -- constructor config, keyed by ExperimentConfig
    std::vector<Set> sets;
    std::uint64_t lruClock = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace bh
