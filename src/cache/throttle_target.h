/**
 * @file
 * Interface through which BreakHammer throttles a memory-request resource.
 *
 * The paper throttles the number of cache-miss buffers (MSHRs) a suspect
 * thread may allocate at the LLC (§4.3). §4.4 sketches alternatives for
 * DMA/cacheless systems; any resource pool implementing this interface can
 * be the throttle point, which is also what the throttle-point ablation
 * exercises.
 */
#pragma once

#include "common/types.h"

namespace bh {

/** A per-thread-quota resource pool BreakHammer can throttle. */
class IThrottleTarget
{
  public:
    virtual ~IThrottleTarget() = default;

    /** Set thread @p thread's allocation quota to @p quota entries. */
    virtual void setQuota(ThreadId thread, unsigned quota) = 0;

    /** The unthrottled quota (the full resource count). */
    virtual unsigned fullQuota() const = 0;

    /** Current quota of @p thread. */
    virtual unsigned quota(ThreadId thread) const = 0;
};

} // namespace bh
