#include "cache/llc.h"

#include "common/log.h"

namespace bh {

Llc::Llc(const LlcConfig &config) : config_(config)
{
    std::uint64_t lines = config.sizeBytes / kCacheLineBytes;
    BH_ASSERT(lines % config.ways == 0, "LLC geometry must divide evenly");
    std::uint64_t num_sets = lines / config.ways;
    BH_ASSERT((num_sets & (num_sets - 1)) == 0,
              "LLC set count must be a power of two");
    sets.resize(num_sets);
    for (auto &set : sets)
        set.ways.resize(config.ways);
}

std::uint64_t
Llc::setIndex(Addr line_addr) const
{
    return (line_addr >> kCacheLineBits) & (sets.size() - 1);
}

Addr
Llc::tagOf(Addr line_addr) const
{
    return line_addr >> kCacheLineBits;
}

bool
Llc::access(Addr line_addr, bool is_write)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock;
            if (is_write)
                line.dirty = true;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Llc::allocate(Addr line_addr, bool is_write, Victim *victim)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);

    Line *target = nullptr;
    for (Line &line : set.ways) {
        BH_ASSERT(!(line.valid && line.tag == tag),
                  "allocate of already-present line");
        if (!line.valid) {
            target = &line;
            break;
        }
        if (target == nullptr || line.lru < target->lru)
            target = &line;
    }

    if (victim != nullptr) {
        victim->dirtyWriteback = target->valid && target->dirty;
        victim->writebackLine = target->tag << kCacheLineBits;
        if (victim->dirtyWriteback)
            ++writebacks_;
    }

    target->valid = true;
    target->tag = tag;
    target->dirty = is_write;
    target->lru = ++lruClock;
}

bool
Llc::probe(Addr line_addr) const
{
    const Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (const Line &line : set.ways)
        if (line.valid && line.tag == tag)
            return true;
    return false;
}

void
Llc::setDirty(Addr line_addr)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            return;
        }
    }
}

void
Llc::saveState(StateWriter &w) const
{
    w.tag("llc");
    w.u64(sets.size());
    for (const Set &set : sets) {
        for (const Line &line : set.ways) {
            w.u64(line.tag);
            w.b(line.valid);
            w.b(line.dirty);
            w.u64(line.lru);
        }
    }
    w.u64(lruClock);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(writebacks_);
}

void
Llc::loadState(StateReader &r)
{
    r.tag("llc");
    if (r.u64() != sets.size()) {
        r.fail();
        return;
    }
    for (Set &set : sets) {
        for (Line &line : set.ways) {
            line.tag = r.u64();
            line.valid = r.b();
            line.dirty = r.b();
            line.lru = r.u64();
        }
    }
    lruClock = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
    writebacks_ = r.u64();
}

bool
Llc::invalidate(Addr line_addr)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.valid = false;
            line.dirty = false;
            return true;
        }
    }
    return false;
}

} // namespace bh
