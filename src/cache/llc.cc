#include "cache/llc.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

Llc::Llc(const LlcConfig &config) : config_(config)
{
    std::uint64_t lines = config.sizeBytes / kCacheLineBytes;
    BH_ASSERT(lines % config.ways == 0, "LLC geometry must divide evenly");
    std::uint64_t num_sets = lines / config.ways;
    BH_ASSERT((num_sets & (num_sets - 1)) == 0,
              "LLC set count must be a power of two");
    sets.resize(num_sets);
    for (auto &set : sets)
        set.ways.resize(config.ways);
}

std::uint64_t
Llc::setIndex(Addr line_addr) const
{
    return (line_addr >> kCacheLineBits) & (sets.size() - 1);
}

Addr
Llc::tagOf(Addr line_addr) const
{
    return line_addr >> kCacheLineBits;
}

bool
Llc::access(Addr line_addr, bool is_write)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock;
            if (is_write)
                line.dirty = true;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Llc::allocate(Addr line_addr, bool is_write, Victim *victim)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);

    Line *target = nullptr;
    for (Line &line : set.ways) {
        BH_ASSERT(!(line.valid && line.tag == tag),
                  "allocate of already-present line");
        if (!line.valid) {
            target = &line;
            break;
        }
        if (target == nullptr || line.lru < target->lru)
            target = &line;
    }

    if (victim != nullptr) {
        victim->dirtyWriteback = target->valid && target->dirty;
        victim->writebackLine = target->tag << kCacheLineBits;
        if (victim->dirtyWriteback)
            ++writebacks_;
    }

    target->valid = true;
    target->tag = tag;
    target->dirty = is_write;
    target->lru = ++lruClock;
}

bool
Llc::probe(Addr line_addr) const
{
    const Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (const Line &line : set.ways)
        if (line.valid && line.tag == tag)
            return true;
    return false;
}

void
Llc::setDirty(Addr line_addr)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            return;
        }
    }
}

void
Llc::saveState(StateWriter &w) const
{
    w.tag("llc");
    w.u64(sets.size());
    // Struct-of-arrays bulk encoding: the tag store is by far the
    // largest snapshot section (one entry per cache line), so it is
    // written as three flat arrays instead of hundreds of thousands of
    // per-field codec calls. Flags pack valid|dirty<<1 per line. Tags
    // and LRU stamps almost always fit 32 bits (tags below a 256 GB
    // address space, LRU stamps below 4G accesses); a width byte keeps
    // the wide encoding available for the rare state that does not.
    std::size_t lines = 0;
    for (const Set &set : sets)
        lines += set.ways.size();
    bool narrow = true;
    std::vector<std::uint32_t> tags32, lrus32;
    tags32.reserve(lines);
    lrus32.reserve(lines);
    std::vector<std::uint64_t> flags;
    flags.reserve((lines + 31) / 32);
    std::uint64_t packed = 0;
    std::size_t nbits = 0;
    for (const Set &set : sets) {
        for (const Line &line : set.ways) {
            if (narrow && (line.tag > UINT32_MAX || line.lru > UINT32_MAX))
                narrow = false;
            tags32.push_back(static_cast<std::uint32_t>(line.tag));
            lrus32.push_back(static_cast<std::uint32_t>(line.lru));
            std::uint64_t f = (line.valid ? 1u : 0u) |
                              (line.dirty ? 2u : 0u);
            packed |= f << (nbits * 2);
            if (++nbits == 32) {
                flags.push_back(packed);
                packed = 0;
                nbits = 0;
            }
        }
    }
    if (nbits > 0)
        flags.push_back(packed);
    w.u8(narrow ? 1 : 0);
    if (narrow) {
        saveU32VectorBulk(w, tags32);
        saveU32VectorBulk(w, lrus32);
    } else {
        std::vector<std::uint64_t> tags, lrus;
        tags.reserve(lines);
        lrus.reserve(lines);
        for (const Set &set : sets) {
            for (const Line &line : set.ways) {
                tags.push_back(line.tag);
                lrus.push_back(line.lru);
            }
        }
        saveU64VectorBulk(w, tags);
        saveU64VectorBulk(w, lrus);
    }
    saveU64VectorBulk(w, flags);
    w.u64(lruClock);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(writebacks_);
}

void
Llc::loadState(StateReader &r)
{
    r.tag("llc");
    if (r.u64() != sets.size()) {
        r.fail();
        return;
    }
    std::size_t lines = 0;
    for (const Set &set : sets)
        lines += set.ways.size();
    const bool narrow = r.u8() != 0;
    std::vector<std::uint32_t> t32, l32;
    std::vector<std::uint64_t> t64, l64;
    if (narrow) {
        if (!loadU32VectorBulk(r, &t32) || !loadU32VectorBulk(r, &l32) ||
            t32.size() != lines || l32.size() != lines) {
            r.fail();
            return;
        }
    } else if (!loadU64VectorBulk(r, &t64) || !loadU64VectorBulk(r, &l64) ||
               t64.size() != lines || l64.size() != lines) {
        r.fail();
        return;
    }
    std::vector<std::uint64_t> flags;
    if (!loadU64VectorBulk(r, &flags) ||
        flags.size() != (lines + 31) / 32) {
        r.fail();
        return;
    }
    std::size_t i = 0;
    for (Set &set : sets) {
        for (Line &line : set.ways) {
            line.tag = narrow ? t32[i] : t64[i];
            line.lru = narrow ? l32[i] : l64[i];
            std::uint64_t f = (flags[i / 32] >> ((i % 32) * 2)) & 3u;
            line.valid = (f & 1) != 0;
            line.dirty = (f & 2) != 0;
            ++i;
        }
    }
    lruClock = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
    writebacks_ = r.u64();
}

bool
Llc::invalidate(Addr line_addr)
{
    Set &set = sets[setIndex(line_addr)];
    Addr tag = tagOf(line_addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.valid = false;
            line.dirty = false;
            return true;
        }
    }
    return false;
}

} // namespace bh
