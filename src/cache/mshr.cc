#include "cache/mshr.h"

namespace bh {

MshrFile::MshrFile(unsigned num_entries, unsigned num_threads)
    : numEntries(num_entries),
      quotas(num_threads, num_entries),
      inflight(num_threads, 0)
{
    entries.reserve(num_entries * 2);
}

void
MshrFile::allocate(Addr line_addr, ThreadId thread, bool is_write)
{
    BH_ASSERT(canAllocate(thread), "MSHR allocate without capacity");
    BH_ASSERT(!has(line_addr), "MSHR allocate of tracked line");
    Entry entry;
    entry.owner = thread;
    entry.anyStore = is_write;
    entries.emplace(line_addr, std::move(entry));
    ++inflight[thread];
}

void
MshrFile::merge(Addr line_addr, const MshrWaiter &waiter, bool is_write)
{
    auto it = entries.find(line_addr);
    BH_ASSERT(it != entries.end(), "MSHR merge into missing entry");
    if (is_write)
        it->second.anyStore = true;
    if (waiter.isLoad)
        it->second.waiters.push_back(waiter);
}

bool
MshrFile::release(Addr line_addr, std::vector<MshrWaiter> *waiters)
{
    auto it = entries.find(line_addr);
    BH_ASSERT(it != entries.end(), "MSHR release of missing entry");
    bool any_store = it->second.anyStore;
    if (waiters != nullptr)
        *waiters = std::move(it->second.waiters);
    ThreadId owner = it->second.owner;
    BH_ASSERT(inflight[owner] > 0, "MSHR inflight underflow");
    --inflight[owner];
    entries.erase(it);
    return any_store;
}

} // namespace bh
