#include "cache/mshr.h"

namespace bh {

MshrFile::MshrFile(unsigned num_entries, unsigned num_threads)
    : numEntries(num_entries),
      quotas(num_threads, num_entries),
      inflight(num_threads, 0)
{
    entries.reserve(num_entries * 2);
}

void
MshrFile::allocate(Addr line_addr, ThreadId thread, bool is_write)
{
    BH_ASSERT(canAllocate(thread), "MSHR allocate without capacity");
    BH_ASSERT(!has(line_addr), "MSHR allocate of tracked line");
    Entry entry;
    entry.owner = thread;
    entry.anyStore = is_write;
    entries.emplace(line_addr, std::move(entry));
    ++inflight[thread];
}

void
MshrFile::merge(Addr line_addr, const MshrWaiter &waiter, bool is_write)
{
    auto it = entries.find(line_addr);
    BH_ASSERT(it != entries.end(), "MSHR merge into missing entry");
    if (is_write)
        it->second.anyStore = true;
    if (waiter.isLoad)
        it->second.waiters.push_back(waiter);
}

bool
MshrFile::release(Addr line_addr, std::vector<MshrWaiter> *waiters)
{
    auto it = entries.find(line_addr);
    BH_ASSERT(it != entries.end(), "MSHR release of missing entry");
    bool any_store = it->second.anyStore;
    if (waiters != nullptr)
        *waiters = std::move(it->second.waiters);
    ThreadId owner = it->second.owner;
    BH_ASSERT(inflight[owner] > 0, "MSHR inflight underflow");
    --inflight[owner];
    entries.erase(it);
    return any_store;
}

void
MshrFile::saveState(StateWriter &w) const
{
    w.tag("mshr");
    saveUnsignedVector(w, quotas);
    saveUnsignedVector(w, inflight);
    saveUnorderedMap(
        w, entries, [](StateWriter &sw, Addr a) { sw.u64(a); },
        [](StateWriter &sw, const Entry &e) {
            sw.u64(e.owner);
            sw.b(e.anyStore);
            saveVector(sw, e.waiters,
                       [](StateWriter &ew, const MshrWaiter &wr) {
                           ew.u64(wr.thread);
                           ew.u64(wr.token);
                           ew.b(wr.isLoad);
                       });
        });
    w.u64(quotaRejections_);
    w.u64(quotaWrites_);
}

void
MshrFile::loadState(StateReader &r)
{
    r.tag("mshr");
    std::vector<unsigned> q, inf;
    loadUnsignedVector(r, &q);
    loadUnsignedVector(r, &inf);
    if (!r.ok() || q.size() != quotas.size() ||
        inf.size() != inflight.size()) {
        r.fail();
        return;
    }
    quotas = std::move(q);
    inflight = std::move(inf);
    loadUnorderedMap(
        r, &entries, [](StateReader &sr, Addr *a) { *a = sr.u64(); },
        [](StateReader &sr, Entry *e) {
            e->owner = static_cast<ThreadId>(sr.u64());
            e->anyStore = sr.b();
            loadVector(sr, &e->waiters,
                       [](StateReader &er, MshrWaiter *wr) {
                           wr->thread = static_cast<ThreadId>(er.u64());
                           wr->token = er.u64();
                           wr->isLoad = er.b();
                       });
        });
    quotaRejections_ = r.u64();
    quotaWrites_ = r.u64();
}

} // namespace bh
