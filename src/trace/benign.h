/**
 * @file
 * Synthetic benign workload generator and the application catalog.
 *
 * Each profile is tuned to land in one of the paper's memory-intensity
 * tiers (Table 3: High >= 20 RBMPKI, Medium >= 10, Low < 10) and to exhibit
 * a per-row activation tail comparable to the paper's characterization
 * (e.g., mcf-like workloads concentrate misses on thousands of hot rows,
 * libquantum-like workloads stream with almost no row reuse).
 *
 * Generators encode DRAM coordinates through the system's AddressMap so
 * that row-level behaviour (hot rows, streaming row reuse) is exact rather
 * than a statistical accident of bit slicing. Each core slot receives a
 * private row region so multi-programmed apps never share rows.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dram/address.h"
#include "trace/trace.h"

namespace bh {

/** Memory-intensity tier (Table 3 grouping). */
enum class IntensityTier
{
    kHigh,
    kMedium,
    kLow,
};

/** Tuning knobs of one synthetic application. */
struct AppProfile
{
    std::string name;
    IntensityTier tier = IntensityTier::kMedium;
    /** Mean non-memory instructions between memory accesses. */
    double avgBubbles = 50.0;
    /** Fraction of memory accesses that are stores. */
    double writeFraction = 0.2;
    /** Probability the next access continues sequentially in-row. */
    double rowLocality = 0.5;
    /** Distinct cache lines in the working set (drives LLC miss rate). */
    std::uint64_t workingSetLines = 1ull << 20;
    /** Number of heavily reused rows (drives the ACT-count tail). */
    unsigned hotRows = 0;
    /** Probability a non-sequential access targets the hot-row set. */
    double hotFraction = 0.0;
};

/** Synthetic benign trace source realizing an AppProfile. */
class BenignTrace : public TraceSource
{
  public:
    /**
     * @param profile Workload shape.
     * @param mapper Address mapper of the target system.
     * @param row_base First row (per bank) of this app's private region.
     * @param row_span Rows (per bank) available to this app.
     * @param seed Per-instance RNG seed (determinism per core slot).
     */
    BenignTrace(const AppProfile &profile, const AddressMap &mapper,
                unsigned row_base, unsigned row_span, std::uint64_t seed);

    TraceRecord next() override;
    const std::string &name() const override { return profile_.name; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    const AppProfile &profile() const { return profile_; }

  private:
    struct RowRef
    {
        unsigned rank, bankGroup, bank, row;
        unsigned channel = 0;
    };

    Addr encode(const RowRef &ref, unsigned column) const;
    RowRef randomRow();

    AppProfile profile_;       // bh-audit: skip(profile_) -- constructor config, keyed by ExperimentConfig
    const AddressMap &mapper;  // bh-audit: skip(mapper) -- non-owning wiring, owned by System
    unsigned rowBase;          // bh-audit: skip(rowBase) -- constructor config (per-slot row partition)
    // bh-audit: skip(rowSpan) -- derived from profile_ at construction
    unsigned rowSpan; ///< Rows per bank actually used (working-set bound).
    Rng rng;

    RowRef seqPos;        ///< Current sequential stream position.
    unsigned seqColumn = 0;
    // bh-audit: skip(hotRowRefs) -- rebuilt identically by the seeded constructor
    std::vector<RowRef> hotRowRefs;
};

/** The built-in application catalog (names echo the paper's Table 3). */
const std::vector<AppProfile> &appCatalog();

/** Look up a catalog profile by name; fatal if unknown. */
const AppProfile &findApp(const std::string &name);

/** All catalog apps in a given tier. */
std::vector<AppProfile> appsInTier(IntensityTier tier);

} // namespace bh
