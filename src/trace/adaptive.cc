#include "trace/adaptive.h"

#include <algorithm>

namespace bh {

namespace {

/** Idle-phase pacing: benign-looking low-intensity compute. */
constexpr std::uint32_t kIdleBubbles = 48;

} // namespace

AdaptiveAttackerTrace::AdaptiveAttackerTrace(const AttackerConfig &attack,
                                             const AdaptiveConfig &adaptive,
                                             const AddressMap &mapper,
                                             std::uint64_t seed)
    : attack_(attack), adaptive_(adaptive), mapper(mapper), rng(seed)
{
    const DramOrg &org = mapper.org();
    unsigned total_banks = org.totalBanks() * org.channels;
    unsigned num_banks = attack.numBanks
                             ? std::min(attack.numBanks, total_banks)
                             : total_banks;

    seq = attackerRowSequence(attack_);
    bankCoords = attackerBankCoords(org, num_banks);
    bubbles_ = attack_.bubbles;

    // Auto stride: shift past the pattern's whole row span plus a guard
    // gap, so rotated windows never overlap the previous victims.
    unsigned span = 0;
    for (unsigned row : seq)
        span = std::max(span, row - attack_.rowBase + 1);
    stride = adaptive_.rotationStride ? adaptive_.rotationStride : span + 8;

    // Idle-phase cached accesses live far from any rotated aggressor
    // window (half the bank away), so hand-off idling never hammers.
    idleRow =
        (attack_.rowBase + org.rowsPerBank / 2) % org.rowsPerBank;
}

bool
AdaptiveAttackerTrace::activeNow() const
{
    return slotActiveAt(recordCount, adaptive_, adaptive_.slotIndex);
}

unsigned
AdaptiveAttackerTrace::rotatedRow(unsigned base_row) const
{
    const DramOrg &org = mapper.org();
    std::uint64_t shifted =
        static_cast<std::uint64_t>(base_row) +
        static_cast<std::uint64_t>(rotation_) * stride;
    return static_cast<unsigned>(shifted % org.rowsPerBank);
}

std::vector<unsigned>
AdaptiveAttackerTrace::currentAggressorRows() const
{
    std::vector<unsigned> rows = attackerAggressorRows(attack_);
    for (unsigned &row : rows)
        row = rotatedRow(row);
    return rows;
}

TraceRecord
AdaptiveAttackerTrace::next()
{
    bool active = activeNow();
    ++recordCount;

    TraceRecord rec;
    rec.isWrite = false;

    if (!active) {
        // Hand-off idle phase: benign-looking cached compute on a fixed
        // line far from every aggressor window. No RNG draw, no feedback
        // sample — the idle stream is a pure function of the schedule.
        rec.bubbles = kIdleBubbles;
        rec.uncached = false;
        DramAddress da = bankCoords[0];
        da.row = idleRow;
        da.column = 0;
        rec.addr = mapper.encode(da);
        return rec;
    }

    // Observation point: sample the feedback view every observeEvery
    // attacking records and mutate the pattern. Decisions are counted in
    // records (never cycles), so the decision sequence is a pure function
    // of the observed feedback values.
    if (feedback && adaptive_.observeEvery > 0 &&
        ++sinceObserve >= adaptive_.observeEvery) {
        sinceObserve = 0;
        ThrottleFeedback fb = feedback->sampleThrottleFeedback(self_);
        ++observationCount;
        lastScore_ = fb.score;
        lastQuota_ = fb.quota;
        if (fb.throttled()) {
            ++throttledObs;
            calmCount = 0;
            // Back off the pacing and rotate to a fresh aggressor
            // window: the score already attributed to the old rows'
            // preventive actions stops growing, and the halved access
            // rate slows re-accumulation.
            bubbles_ = std::min<std::uint32_t>(
                adaptive_.maxBubbles,
                bubbles_ ? bubbles_ * 2 : 1);
            ++rotation_;
            rowCursor = 0;
            bankCursor = 0;
        } else if (++calmCount >= adaptive_.calmStreak) {
            calmCount = 0;
            // Quiet streak: re-accelerate one step toward full rate.
            bubbles_ = std::max<std::uint32_t>(attack_.bubbles,
                                               bubbles_ / 2);
        }
    }

    rec.bubbles = bubbles_;
    rec.uncached = true;

    DramAddress da = bankCoords[bankCursor];
    da.row = rotatedRow(seq[rowCursor]);
    da.column = static_cast<unsigned>(
        rng.nextBounded(mapper.org().linesPerRow));

    if (++bankCursor >= bankCoords.size()) {
        bankCursor = 0;
        rowCursor = (rowCursor + 1) % static_cast<unsigned>(seq.size());
    }

    rec.addr = mapper.encode(da);
    return rec;
}

void
AdaptiveAttackerTrace::saveState(StateWriter &w) const
{
    w.tag("adaptive_trace");
    w.u64(rng.rawState());
    w.u64(bankCursor);
    w.u64(rowCursor);
    w.u64(rotation_);
    w.u32(bubbles_);
    w.u64(recordCount);
    w.u64(sinceObserve);
    w.u64(observationCount);
    w.u64(throttledObs);
    w.u64(calmCount);
    w.d(lastScore_);
    w.u64(lastQuota_);
}

void
AdaptiveAttackerTrace::loadState(StateReader &r)
{
    r.tag("adaptive_trace");
    std::uint64_t raw = r.u64();
    unsigned bank_cursor = static_cast<unsigned>(r.u64());
    unsigned row_cursor = static_cast<unsigned>(r.u64());
    unsigned rotation = static_cast<unsigned>(r.u64());
    std::uint32_t bubbles = r.u32();
    std::uint64_t records = r.u64();
    unsigned since_observe = static_cast<unsigned>(r.u64());
    std::uint64_t observed = r.u64();
    std::uint64_t throttled = r.u64();
    unsigned calm = static_cast<unsigned>(r.u64());
    double last_score = r.d();
    unsigned last_quota = static_cast<unsigned>(r.u64());
    if (!r.ok())
        return;
    rng.setRawState(raw);
    bankCursor = bank_cursor;
    rowCursor = row_cursor;
    rotation_ = rotation;
    bubbles_ = bubbles;
    recordCount = records;
    sinceObserve = since_observe;
    observationCount = observed;
    throttledObs = throttled;
    calmCount = calm;
    lastScore_ = last_score;
    lastQuota_ = last_quota;
}

} // namespace bh
