#include "trace/benign.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

BenignTrace::BenignTrace(const AppProfile &profile,
                         const AddressMap &mapper, unsigned row_base,
                         unsigned row_span, std::uint64_t seed)
    : profile_(profile), mapper(mapper), rowBase(row_base), rng(seed)
{
    const DramOrg &org = mapper.org();
    BH_ASSERT(row_span > 0, "benign trace needs a row region");

    // Bound the region so the working set matches the profile: the app
    // only touches enough rows (across all banks of all channels) to
    // cover its lines.
    std::uint64_t lines_per_row_layer =
        static_cast<std::uint64_t>(org.totalBanks()) * org.linesPerRow *
        org.channels;
    unsigned needed_rows = static_cast<unsigned>(std::max<std::uint64_t>(
        1, (profile.workingSetLines + lines_per_row_layer - 1) /
               lines_per_row_layer));
    rowSpan = std::min(row_span, needed_rows);

    seqPos = RowRef{0, 0, 0, rowBase};

    hotRowRefs.reserve(profile.hotRows);
    for (unsigned i = 0; i < profile.hotRows; ++i)
        hotRowRefs.push_back(randomRow());
}

Addr
BenignTrace::encode(const RowRef &ref, unsigned column) const
{
    DramAddress da;
    da.rank = ref.rank;
    da.bankGroup = ref.bankGroup;
    da.bank = ref.bank;
    da.row = ref.row;
    da.column = column;
    da.channel = ref.channel;
    return mapper.encode(da);
}

BenignTrace::RowRef
BenignTrace::randomRow()
{
    const DramOrg &org = mapper.org();
    RowRef ref;
    ref.rank = static_cast<unsigned>(rng.nextBounded(org.ranks));
    ref.bankGroup = static_cast<unsigned>(rng.nextBounded(org.bankGroups));
    ref.bank = static_cast<unsigned>(rng.nextBounded(org.banksPerGroup));
    ref.row = rowBase + static_cast<unsigned>(rng.nextBounded(rowSpan));
    // Guarded draw: nextBounded(1) would still consume RNG state, which
    // must not differ from the historical single-channel stream.
    if (org.channels > 1)
        ref.channel = static_cast<unsigned>(rng.nextBounded(org.channels));
    return ref;
}

TraceRecord
BenignTrace::next()
{
    const DramOrg &org = mapper.org();
    TraceRecord rec;

    // Uniform in [0, 2*avgBubbles]: preserves the mean, cheap to sample.
    auto bubble_bound =
        static_cast<std::uint64_t>(2.0 * profile_.avgBubbles) + 1;
    rec.bubbles = static_cast<std::uint32_t>(rng.nextBounded(bubble_bound));
    rec.isWrite = rng.nextBool(profile_.writeFraction);

    if (rng.nextBool(profile_.rowLocality)) {
        // Sequential advance: walk columns of the current row, then move to
        // the next bank, then the next row layer (wrapping in the region).
        if (++seqColumn >= org.linesPerRow) {
            seqColumn = 0;
            if (++seqPos.bank >= org.banksPerGroup) {
                seqPos.bank = 0;
                if (++seqPos.bankGroup >= org.bankGroups) {
                    seqPos.bankGroup = 0;
                    if (++seqPos.rank >= org.ranks) {
                        seqPos.rank = 0;
                        if (++seqPos.channel >= org.channels) {
                            seqPos.channel = 0;
                            seqPos.row =
                                rowBase +
                                (seqPos.row - rowBase + 1) % rowSpan;
                        }
                    }
                }
            }
        }
        rec.addr = encode(seqPos, seqColumn);
        return rec;
    }

    if (!hotRowRefs.empty() && rng.nextBool(profile_.hotFraction)) {
        const RowRef &hot =
            hotRowRefs[rng.nextBounded(hotRowRefs.size())];
        rec.addr = encode(
            hot, static_cast<unsigned>(rng.nextBounded(org.linesPerRow)));
        return rec;
    }

    RowRef target = randomRow();
    rec.addr = encode(
        target, static_cast<unsigned>(rng.nextBounded(org.linesPerRow)));
    return rec;
}

void
BenignTrace::saveState(StateWriter &w) const
{
    w.tag("benign_trace");
    w.u64(rng.rawState());
    w.u64(seqPos.rank);
    w.u64(seqPos.bankGroup);
    w.u64(seqPos.bank);
    w.u64(seqPos.row);
    w.u64(seqPos.channel);
    w.u64(seqColumn);
}

void
BenignTrace::loadState(StateReader &r)
{
    r.tag("benign_trace");
    std::uint64_t raw = r.u64();
    RowRef pos;
    pos.rank = static_cast<unsigned>(r.u64());
    pos.bankGroup = static_cast<unsigned>(r.u64());
    pos.bank = static_cast<unsigned>(r.u64());
    pos.row = static_cast<unsigned>(r.u64());
    pos.channel = static_cast<unsigned>(r.u64());
    unsigned column = static_cast<unsigned>(r.u64());
    if (!r.ok())
        return;
    rng.setRawState(raw);
    seqPos = pos;
    seqColumn = column;
}

namespace {

AppProfile
makeApp(const char *name, IntensityTier tier, double bubbles, double writes,
        double locality, std::uint64_t ws_lines, unsigned hot_rows,
        double hot_fraction)
{
    AppProfile p;
    p.name = name;
    p.tier = tier;
    p.avgBubbles = bubbles;
    p.writeFraction = writes;
    p.rowLocality = locality;
    p.workingSetLines = ws_lines;
    p.hotRows = hot_rows;
    p.hotFraction = hot_fraction;
    return p;
}

} // namespace

const std::vector<AppProfile> &
appCatalog()
{
    static const std::vector<AppProfile> catalog = {
        // High intensity (RBMPKI >= 20): large working sets, frequent
        // misses, per-row ACT tails echoing Table 3.
        makeApp("mcf_like", IntensityTier::kHigh, 12, 0.25, 0.15,
                6ull << 20, 2600, 0.40),
        makeApp("lbm_like", IntensityTier::kHigh, 18, 0.40, 0.55,
                4ull << 20, 660, 0.25),
        makeApp("libquantum_like", IntensityTier::kHigh, 22, 0.10, 0.45,
                8ull << 20, 0, 0.0),
        makeApp("fotonik3d_like", IntensityTier::kHigh, 20, 0.20, 0.45,
                4ull << 20, 1000, 0.30),
        makeApp("gemsfdtd_like", IntensityTier::kHigh, 20, 0.25, 0.45,
                4ull << 20, 1050, 0.30),
        makeApp("zeusmp_like", IntensityTier::kHigh, 20, 0.25, 0.45,
                3ull << 20, 1100, 0.30),
        makeApp("lbm17_like", IntensityTier::kHigh, 18, 0.40, 0.50,
                4ull << 20, 580, 0.25),
        // Medium intensity (10 <= RBMPKI < 20).
        makeApp("parest_like", IntensityTier::kMedium, 42, 0.20, 0.50,
                2ull << 20, 120, 0.20),
        makeApp("tpcc_like", IntensityTier::kMedium, 52, 0.35, 0.30,
                3ull << 20, 200, 0.05),
        makeApp("tpch_like", IntensityTier::kMedium, 50, 0.15, 0.40,
                3ull << 20, 0, 0.0),
        makeApp("ycsb_a_like", IntensityTier::kMedium, 60, 0.50, 0.35,
                2ull << 20, 100, 0.05),
        makeApp("cactus_like", IntensityTier::kMedium, 44, 0.25, 0.50,
                2ull << 20, 400, 0.10),
        makeApp("omnetpp_like", IntensityTier::kMedium, 48, 0.30, 0.30,
                2ull << 20, 0, 0.0),
        // Low intensity (RBMPKI < 10): small working sets that largely fit
        // in the LLC, long compute phases.
        makeApp("namd_like", IntensityTier::kLow, 220, 0.20, 0.70,
                64ull << 10, 0, 0.0),
        makeApp("povray_like", IntensityTier::kLow, 300, 0.15, 0.80,
                32ull << 10, 0, 0.0),
        makeApp("h264_like", IntensityTier::kLow, 180, 0.30, 0.60,
                96ull << 10, 0, 0.0),
        makeApp("leela_like", IntensityTier::kLow, 260, 0.20, 0.50,
                48ull << 10, 0, 0.0),
        makeApp("deepsjeng_like", IntensityTier::kLow, 200, 0.25, 0.55,
                80ull << 10, 0, 0.0),
        makeApp("ycsb_c_like", IntensityTier::kLow, 240, 0.05, 0.40,
                100ull << 10, 0, 0.0),
    };
    return catalog;
}

const AppProfile &
findApp(const std::string &name)
{
    for (const AppProfile &p : appCatalog())
        if (p.name == name)
            return p;
    BH_FATAL("unknown application profile name");
}

std::vector<AppProfile>
appsInTier(IntensityTier tier)
{
    std::vector<AppProfile> out;
    for (const AppProfile &p : appCatalog())
        if (p.tier == tier)
            out.push_back(p);
    return out;
}

} // namespace bh
