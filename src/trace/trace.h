/**
 * @file
 * Trace record format and the trace-source interface.
 *
 * The paper drives Ramulator2 with memory traces collected from SPEC/TPC/
 * MediaBench/YCSB applications. This repo substitutes parameterized
 * synthetic generators that reproduce the observable statistics those
 * mechanisms react to (see DESIGN.md §1); both file-backed and synthetic
 * sources implement `TraceSource`.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/snapshot.h"
#include "common/types.h"

namespace bh {

/** One unit of work for a core: some compute, then one memory access. */
struct TraceRecord
{
    /** Non-memory instructions to retire before this access. */
    std::uint32_t bubbles = 0;
    bool isWrite = false;
    /**
     * Bypass the cache hierarchy (models clflush-based access patterns;
     * the path RowHammer attackers use to guarantee row activations).
     */
    bool uncached = false;
    Addr addr = 0;
};

/** An infinite stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next record. Sources never run dry (they loop). */
    virtual TraceRecord next() = 0;

    /** Stable human-readable workload name. */
    virtual const std::string &name() const = 0;

    /**
     * Serialize the generator's mutable cursor/RNG state. Everything
     * derived from the constructor arguments (profiles, precomputed row
     * sets) is rebuilt deterministically on construction and not saved.
     * The default is for stateless/test sources: nothing to save.
     */
    virtual void saveState(StateWriter &w) const { (void)w; }

    /** Restore saveState() output into a same-config instance. */
    virtual void loadState(StateReader &r) { (void)r; }
};

} // namespace bh
