/**
 * @file
 * The narrow read-only feedback surface an adaptive attacker observes.
 *
 * BreakHammer's §5.2 security argument assumes attackers that cannot see
 * their own throttling; the adversarial engine deliberately breaks that
 * assumption, but only through signals a real attacker could measure from
 * software: its own preventive score / suspect flag (§4's "feedback to
 * system software" surface), its effective MSHR quota (measurable as a
 * memory-level-parallelism ceiling), and its reject-stall time. The view
 * is const and layering-safe — traces never reach into BreakHammer or
 * MSHR internals, System mediates every sample — and sampling it is
 * observation-only, so dense and event-driven loops (which call
 * TraceSource::next() at bit-identical cycles) stay byte-identical.
 */
#pragma once

#include <cstdint>

#include "common/types.h"

namespace bh {

/** One sample of a thread's own observable throttling state. */
struct ThrottleFeedback
{
    /** BreakHammer preventive score of the thread (0 without BH). */
    double score = 0.0;
    /** Marked suspect now, or in the recently expired window. */
    bool suspect = false;
    /** The thread's current MSHR quota. */
    unsigned quota = 0;
    /** The unthrottled quota (full MSHR file size). */
    unsigned fullQuota = 0;
    /** Cycles this thread's core spent blocked on rejected accesses. */
    std::uint64_t rejectStallCycles = 0;

    /** Whether the thread is observably throttled right now. */
    bool
    throttled() const
    {
        return suspect || (fullQuota > 0 && quota < fullQuota);
    }
};

/** Read-only provider of per-thread throttle feedback (System). */
class IThrottleFeedbackView
{
  public:
    virtual ~IThrottleFeedbackView() = default;

    /** Sample @p thread's current feedback; const and side-effect free. */
    virtual ThrottleFeedback
    sampleThrottleFeedback(ThreadId thread) const = 0;
};

} // namespace bh
