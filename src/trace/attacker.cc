#include "trace/attacker.h"

#include <algorithm>

namespace bh {

AttackerTrace::AttackerTrace(const AttackerConfig &config,
                             const AddressMap &mapper, std::uint64_t seed)
    : config_(config), mapper(mapper), rng(seed)
{
    const DramOrg &org = mapper.org();
    unsigned total_banks = org.totalBanks() * org.channels;
    numBanks_ = config.numBanks ? std::min(config.numBanks, total_banks)
                                : total_banks;

    rows.reserve(config.numAggressors);
    for (unsigned i = 0; i < config.numAggressors; ++i)
        rows.push_back(config.rowBase + i * config.rowSpacing);

    // One coordinate template per attacked bank, enumerating banks in
    // channel- then rank-parallel order (alternate channels, then ranks,
    // then bank groups) — with one channel this is the historical order.
    bankCoords.reserve(numBanks_);
    for (unsigned i = 0; i < numBanks_; ++i) {
        DramAddress da;
        da.channel = i % org.channels;
        unsigned flat = i / org.channels;
        da.rank = flat % org.ranks;
        unsigned within = flat / org.ranks;
        da.bankGroup = within % org.bankGroups;
        da.bank = (within / org.bankGroups) % org.banksPerGroup;
        bankCoords.push_back(da);
    }
}

TraceRecord
AttackerTrace::next()
{
    TraceRecord rec;
    rec.bubbles = config_.bubbles;
    rec.isWrite = false;
    rec.uncached = true;

    DramAddress da = bankCoords[bankCursor];
    da.row = rows[rowCursor];
    da.column = static_cast<unsigned>(
        rng.nextBounded(mapper.org().linesPerRow));

    // Banks iterate in the inner loop: consecutive accesses hit different
    // banks, maximizing activation parallelism.
    if (++bankCursor >= bankCoords.size()) {
        bankCursor = 0;
        rowCursor = (rowCursor + 1) % rows.size();
    }

    rec.addr = mapper.encode(da);
    return rec;
}

void
AttackerTrace::saveState(StateWriter &w) const
{
    w.tag("attacker_trace");
    w.u64(rng.rawState());
    w.u64(bankCursor);
    w.u64(rowCursor);
}

void
AttackerTrace::loadState(StateReader &r)
{
    r.tag("attacker_trace");
    std::uint64_t raw = r.u64();
    unsigned bank_cursor = static_cast<unsigned>(r.u64());
    unsigned row_cursor = static_cast<unsigned>(r.u64());
    if (!r.ok())
        return;
    rng.setRawState(raw);
    bankCursor = bank_cursor;
    rowCursor = row_cursor;
}

} // namespace bh
