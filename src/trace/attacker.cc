#include "trace/attacker.h"

#include <algorithm>

namespace bh {

std::vector<unsigned>
attackerAggressorRows(const AttackerConfig &config)
{
    std::vector<unsigned> rows;
    switch (config.pattern) {
      case AttackPattern::kManySided:
        rows.reserve(config.numAggressors);
        for (unsigned i = 0; i < config.numAggressors; ++i)
            rows.push_back(config.rowBase + i * config.rowSpacing);
        break;
      case AttackPattern::kDoubleSided: {
        // One victim per pair of aggressors; victims spaced so no two
        // pairs share a victim-adjacent row.
        unsigned pairs = std::max(1u, config.numAggressors / 2);
        for (unsigned k = 0; k < pairs; ++k) {
            unsigned victim = config.rowBase + 1 + 4 * k;
            rows.push_back(victim - 1);
            rows.push_back(victim + 1);
        }
        break;
      }
      case AttackPattern::kHalfDouble: {
        // Each site spans rows [base, base+4]: victim at base+2, far
        // aggressors at distance 2, near rows at distance 1.
        unsigned sites = std::max(1u, config.numAggressors / 4);
        for (unsigned k = 0; k < sites; ++k) {
            unsigned base = config.rowBase + 6 * k;
            rows.push_back(base);     // far low
            rows.push_back(base + 4); // far high
            rows.push_back(base + 1); // near low
            rows.push_back(base + 3); // near high
        }
        break;
      }
    }
    return rows;
}

std::vector<unsigned>
attackerRowSequence(const AttackerConfig &config)
{
    if (config.pattern != AttackPattern::kHalfDouble)
        return attackerAggressorRows(config);

    // Half-Double dilution: far rows hammer kHalfDoubleFarPerNear times
    // per near access, so the census sees the characteristic heavy-far /
    // light-near activation profile.
    std::vector<unsigned> seq;
    unsigned sites = std::max(1u, config.numAggressors / 4);
    for (unsigned k = 0; k < sites; ++k) {
        unsigned base = config.rowBase + 6 * k;
        for (unsigned d = 0; d < kHalfDoubleFarPerNear; ++d) {
            seq.push_back(base);
            seq.push_back(base + 4);
        }
        seq.push_back(base + 1);
        seq.push_back(base + 3);
    }
    return seq;
}

std::vector<DramAddress>
attackerBankCoords(const DramOrg &org, unsigned num_banks)
{
    std::vector<DramAddress> coords;
    coords.reserve(num_banks);
    for (unsigned i = 0; i < num_banks; ++i) {
        DramAddress da;
        da.channel = i % org.channels;
        unsigned flat = i / org.channels;
        da.rank = flat % org.ranks;
        unsigned within = flat / org.ranks;
        da.bankGroup = within % org.bankGroups;
        da.bank = (within / org.bankGroups) % org.banksPerGroup;
        coords.push_back(da);
    }
    return coords;
}

AttackerTrace::AttackerTrace(const AttackerConfig &config,
                             const AddressMap &mapper, std::uint64_t seed)
    : config_(config), mapper(mapper), rng(seed)
{
    const DramOrg &org = mapper.org();
    unsigned total_banks = org.totalBanks() * org.channels;
    numBanks_ = config.numBanks ? std::min(config.numBanks, total_banks)
                                : total_banks;

    rows = attackerAggressorRows(config);
    seq = attackerRowSequence(config);
    bankCoords = attackerBankCoords(org, numBanks_);
}

TraceRecord
AttackerTrace::next()
{
    TraceRecord rec;
    rec.bubbles = config_.bubbles;
    rec.isWrite = false;
    rec.uncached = true;

    DramAddress da = bankCoords[bankCursor];
    da.row = seq[rowCursor];
    da.column = static_cast<unsigned>(
        rng.nextBounded(mapper.org().linesPerRow));

    // Banks iterate in the inner loop: consecutive accesses hit different
    // banks, maximizing activation parallelism.
    if (++bankCursor >= bankCoords.size()) {
        bankCursor = 0;
        rowCursor = (rowCursor + 1) % seq.size();
    }

    rec.addr = mapper.encode(da);
    return rec;
}

void
AttackerTrace::saveState(StateWriter &w) const
{
    w.tag("attacker_trace");
    w.u64(rng.rawState());
    w.u64(bankCursor);
    w.u64(rowCursor);
}

void
AttackerTrace::loadState(StateReader &r)
{
    r.tag("attacker_trace");
    std::uint64_t raw = r.u64();
    unsigned bank_cursor = static_cast<unsigned>(r.u64());
    unsigned row_cursor = static_cast<unsigned>(r.u64());
    if (!r.ok())
        return;
    rng.setRawState(raw);
    bankCursor = bank_cursor;
    rowCursor = row_cursor;
}

} // namespace bh
