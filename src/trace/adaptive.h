/**
 * @file
 * Closed-loop adaptive RowHammer attacker (the adversarial engine's
 * red-team trace).
 *
 * Extends the many-sided kernel of trace/attacker.h with a deterministic
 * adaptation loop: every observeEvery emitted records the trace samples
 * its own ThrottleFeedback and mutates the pattern to stay under
 * TH_threat — backing off its pacing (more bubbles) and rotating to a
 * fresh aggressor-row window when throttled, re-accelerating after a calm
 * streak. Optionally a group of adaptive traces plays feedback.h's
 * thread-rotation threat: ownership of the attack rotates between the
 * group's slots on a record-count epoch schedule, idle slots emitting
 * benign-looking cached compute records.
 *
 * Determinism invariants (pinned by test_trace / test_system_skip):
 * adaptation decisions are counted in emitted records, never in cycles or
 * wall clock; the RNG is drawn only on the attack path (one bounded draw
 * per hammering record, exactly like the fixed attacker); and feedback
 * sampling is const. Given the same seed, config, and observed feedback
 * sequence the TraceRecord stream is bit-identical at any job count, in
 * both tick loops, and its decision sequence (rows, pacing, rotation) is
 * invariant across channel counts.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dram/address.h"
#include "trace/attacker.h"
#include "trace/feedback_view.h"
#include "trace/trace.h"

namespace bh {

/** Adaptation-loop parameters of an AdaptiveAttackerTrace. */
struct AdaptiveConfig
{
    /** Records between feedback observations while attacking. */
    unsigned observeEvery = 64;
    /** Pacing ceiling: bubbles never back off beyond this. */
    std::uint32_t maxBubbles = 64;
    /**
     * Rows the aggressor window shifts per throttled observation
     * (0 = auto: the pattern's row span plus a guard gap).
     */
    unsigned rotationStride = 0;
    /** Calm observations before the pacing re-accelerates one step. */
    unsigned calmStreak = 4;
    /**
     * Thread hand-off rotation (feedback.h's rotation threat): the
     * attack is active on slot `epoch % groupSize`, where epoch is
     * recordsEmitted / handoffEpoch. groupSize <= 1 or handoffEpoch == 0
     * disables hand-off (always active).
     */
    unsigned groupSize = 1;
    unsigned slotIndex = 0;
    std::uint64_t handoffEpoch = 0; ///< Records per ownership epoch.
};

/** Closed-loop adaptive many-sided/Half-Double hammer trace source. */
class AdaptiveAttackerTrace : public TraceSource
{
  public:
    AdaptiveAttackerTrace(const AttackerConfig &attack,
                          const AdaptiveConfig &adaptive,
                          const AddressMap &mapper, std::uint64_t seed);

    /**
     * Attach the feedback view (System) and this trace's own thread id.
     * Unbound traces never sample and behave like a paced fixed pattern.
     */
    void
    bindFeedback(const IThrottleFeedbackView *view, ThreadId self)
    {
        feedback = view;
        self_ = self;
    }

    TraceRecord next() override;
    const std::string &name() const override { return name_; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    const AttackerConfig &attackConfig() const { return attack_; }
    const AdaptiveConfig &adaptiveConfig() const { return adaptive_; }

    /** Whether slot @p slot of @p config owns the attack at @p record. */
    static bool
    slotActiveAt(std::uint64_t record, const AdaptiveConfig &config,
                 unsigned slot)
    {
        if (config.groupSize <= 1 || config.handoffEpoch == 0)
            return true;
        return (record / config.handoffEpoch) % config.groupSize == slot;
    }

    // --- Introspection (tests + fuzzer reporting) ---
    std::uint64_t recordsEmitted() const { return recordCount; }
    std::uint64_t observations() const { return observationCount; }
    std::uint64_t throttledObservations() const { return throttledObs; }
    unsigned rotation() const { return rotation_; }
    std::uint32_t currentBubbles() const { return bubbles_; }
    double lastScore() const { return lastScore_; }
    unsigned lastQuota() const { return lastQuota_; }

    /** The aggressor rows of the current rotation window. */
    std::vector<unsigned> currentAggressorRows() const;

  private:
    bool activeNow() const;
    unsigned rotatedRow(unsigned base_row) const;

    AttackerConfig attack_;    // bh-audit: skip(attack_) -- constructor config, keyed by ExperimentConfig
    AdaptiveConfig adaptive_;  // bh-audit: skip(adaptive_) -- constructor config, keyed by ExperimentConfig
    const AddressMap &mapper;  // bh-audit: skip(mapper) -- non-owning wiring, owned by System
    Rng rng;
    std::string name_ = "adaptive_attacker";  // bh-audit: skip(name_) -- construction identity, fixed for the run

    // bh-audit: skip(feedback) -- non-owning wiring installed by System
    const IThrottleFeedbackView *feedback = nullptr;
    ThreadId self_ = 0;  // bh-audit: skip(self_) -- construction identity, fixed for the run

    // bh-audit: skip(seq) -- derived from attack_ at construction
    std::vector<unsigned> seq;           ///< Base row visit sequence.
    // bh-audit: skip(bankCoords) -- derived from attack_ at construction
    std::vector<DramAddress> bankCoords; ///< One template per bank.
    // bh-audit: skip(stride) -- derived from config at construction
    unsigned stride = 0;                 ///< Effective rotation stride.
    // bh-audit: skip(idleRow) -- derived from config at construction
    unsigned idleRow = 0;                ///< Cached idle-phase row.

    // --- Mutable adaptation state (all serialized) ---
    unsigned bankCursor = 0;
    unsigned rowCursor = 0;
    unsigned rotation_ = 0;       ///< Aggressor-window rotations so far.
    std::uint32_t bubbles_ = 0;   ///< Current pacing.
    std::uint64_t recordCount = 0;
    unsigned sinceObserve = 0;
    std::uint64_t observationCount = 0;
    std::uint64_t throttledObs = 0;
    unsigned calmCount = 0;
    double lastScore_ = 0.0;  ///< Observed-feedback history summary.
    unsigned lastQuota_ = 0;
};

} // namespace bh
