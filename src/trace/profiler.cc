#include "trace/profiler.h"

#include <unordered_map>
#include <vector>

namespace bh {

TraceProfile
profileTrace(TraceSource &source, const AddressMap &mapper,
             const LlcConfig &llc_config, std::uint64_t instructions,
             double window_megainsts)
{
    Llc llc(llc_config);
    // Open-row tracking per flat bank (functional; no timing).
    std::vector<long long> open_row(mapper.org().totalBanks(), -1);
    // Census windows are measured in instructions here: a stand-in for the
    // paper's 64 ms wall-clock windows that avoids timing simulation.
    auto window_insts =
        static_cast<Cycle>(window_megainsts * 1e6);
    RowCensus census(window_insts);

    std::uint64_t retired = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t llc_misses = 0;

    while (retired < instructions) {
        TraceRecord rec = source.next();
        retired += rec.bubbles + 1;

        bool goes_to_dram = rec.uncached;
        Addr line = rec.addr & ~static_cast<Addr>(kCacheLineBytes - 1);
        if (!rec.uncached) {
            if (!llc.access(line, rec.isWrite)) {
                Llc::Victim victim;
                llc.allocate(line, rec.isWrite, &victim);
                goes_to_dram = true;
                // Dirty writebacks also touch DRAM rows.
                if (victim.dirtyWriteback) {
                    DramAddress wb = mapper.decode(victim.writebackLine);
                    unsigned wb_bank = mapper.flatBank(wb);
                    if (open_row[wb_bank] !=
                        static_cast<long long>(wb.row)) {
                        open_row[wb_bank] = wb.row;
                        ++row_misses;
                        census.recordAct(wb_bank, wb.row, retired);
                    }
                }
            }
        }

        if (goes_to_dram) {
            ++llc_misses;
            DramAddress da = mapper.decode(rec.addr);
            unsigned bank = mapper.flatBank(da);
            if (open_row[bank] != static_cast<long long>(da.row)) {
                open_row[bank] = da.row;
                ++row_misses;
                census.recordAct(bank, da.row, retired);
            }
        }
    }

    census.flush(retired);

    TraceProfile out;
    out.instructions = retired;
    out.rbmpki = 1000.0 * static_cast<double>(row_misses) /
                 static_cast<double>(retired);
    out.llcMpki = 1000.0 * static_cast<double>(llc_misses) /
                  static_cast<double>(retired);
    out.meanRows512 = census.meanRowsOver(512);
    out.meanRows128 = census.meanRowsOver(128);
    out.meanRows64 = census.meanRowsOver(64);
    return out;
}

} // namespace bh
