/**
 * @file
 * RowHammer attacker trace generators.
 *
 * Models the access-pattern class the paper's artifact uses for its attacker
 * cores: a many-sided hammer cycling over a small set of aggressor rows in
 * each of many banks, with cache-bypassing accesses (the synthetic stand-in
 * for clflush+access loops). Iterating banks in the inner loop maximizes
 * bank-level parallelism, so a single thread can saturate the rank's
 * activation budget (tRRD/tFAW) — every access is a row-buffer conflict,
 * so every access costs one activation, and the pattern triggers the most
 * RowHammer-preventive actions per unit of time. Because sustaining this
 * rate needs many outstanding requests, the pattern is exactly what
 * BreakHammer's MSHR-quota throttling starves (§4.3).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dram/address.h"
#include "trace/trace.h"

namespace bh {

/**
 * Spatial shape of the hammering kernel. All three are expressed as a
 * deterministic aggressor-row visit sequence, so the RowCensus and the
 * HammerOracle observe exactly the per-row activation profile each
 * pattern is known for and can verdict it against N_RH.
 */
enum class AttackPattern : std::uint8_t
{
    /** The paper's artifact pattern: numAggressors rows per bank, visited
     *  round-robin (the historical default; byte-identical behavior). */
    kManySided = 0,
    /** Classic double-sided pairs: aggressors sandwich a victim row
     *  (victim v, aggressors v-1 and v+1), one pair per two aggressors. */
    kDoubleSided = 1,
    /**
     * Half-Double-style two-hop profile: per site, two far aggressors
     *  (distance 2 from the victim) are hammered heavily while the two
     *  near rows (distance 1) receive occasional "dilution" accesses —
     *  the far:near activation ratio is what the census/oracle verdict.
     */
    kHalfDouble = 2,
};

/** Configuration of a many-sided hammering kernel. */
struct AttackerConfig
{
    /** Spatial pattern; defaults to the historical many-sided kernel. */
    AttackPattern pattern = AttackPattern::kManySided;
    /** Aggressor rows hammered in each attacked bank. */
    unsigned numAggressors = 6;
    /** Row index of the first aggressor (0 = auto-place per core slot). */
    unsigned rowBase = 0;
    /** Spacing between aggressor rows (2 leaves victim rows between). */
    unsigned rowSpacing = 2;
    /**
     * Number of banks attacked (0 = all banks in the channel). The
     * default concentrates on one bank group per rank: wide enough to
     * hog bandwidth, focused enough that per-row activation counts climb
     * quickly (which is what triggers the per-row mechanisms).
     */
    unsigned numBanks = 8;
    /** Non-memory instructions between accesses (attackers busy-loop). */
    std::uint32_t bubbles = 2;
};

/**
 * The unique aggressor rows of @p config, relative to rowBase (pattern
 * geometry only; callers add rotation offsets). kManySided reproduces
 * the historical rowBase + i * rowSpacing layout bit for bit.
 */
std::vector<unsigned> attackerAggressorRows(const AttackerConfig &config);

/**
 * The deterministic row visit sequence of @p config: one full period of
 * the pattern. For kManySided this equals attackerAggressorRows(); for
 * kHalfDouble far rows repeat kHalfDoubleFarPerNear times per near
 * access (the dilution ratio).
 */
std::vector<unsigned> attackerRowSequence(const AttackerConfig &config);

/** Far-row accesses per near-row access in the Half-Double sequence. */
inline constexpr unsigned kHalfDoubleFarPerNear = 8;

/** Many-sided hammer trace source. */
class AttackerTrace : public TraceSource
{
  public:
    AttackerTrace(const AttackerConfig &config, const AddressMap &mapper,
                  std::uint64_t seed);

    TraceRecord next() override;
    const std::string &name() const override { return name_; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    const AttackerConfig &config() const { return config_; }

    /** The aggressor row indices hammered in every attacked bank. */
    const std::vector<unsigned> &aggressorRows() const { return rows; }

    /** Number of banks under attack. */
    unsigned attackedBanks() const { return numBanks_; }

  private:
    AttackerConfig config_;    // bh-audit: skip(config_) -- constructor config, keyed by ExperimentConfig
    const AddressMap &mapper;  // bh-audit: skip(mapper) -- non-owning wiring, owned by System
    Rng rng;
    std::string name_ = "hammer_attacker";  // bh-audit: skip(name_) -- construction identity, fixed for the run
    // bh-audit: skip(rows) -- derived from config_ at construction
    std::vector<unsigned> rows; ///< Unique aggressor rows (introspection).
    // bh-audit: skip(seq) -- derived from config_ at construction
    std::vector<unsigned> seq;  ///< Row visit sequence (one period).
    // bh-audit: skip(bankCoords) -- derived from config_ at construction
    std::vector<DramAddress> bankCoords; ///< One template per bank.
    unsigned bankCursor = 0;
    unsigned rowCursor = 0;
    unsigned numBanks_ = 0;  // bh-audit: skip(numBanks_) -- derived from config_ at construction
};

/**
 * Bank coordinate templates shared by the attacker traces: @p num_banks
 * banks enumerated in channel- then rank-parallel order (alternate
 * channels, then ranks, then bank groups) — with one channel this is the
 * historical order.
 */
std::vector<DramAddress> attackerBankCoords(const DramOrg &org,
                                            unsigned num_banks);

} // namespace bh
