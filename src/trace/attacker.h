/**
 * @file
 * RowHammer attacker trace generators.
 *
 * Models the access-pattern class the paper's artifact uses for its attacker
 * cores: a many-sided hammer cycling over a small set of aggressor rows in
 * each of many banks, with cache-bypassing accesses (the synthetic stand-in
 * for clflush+access loops). Iterating banks in the inner loop maximizes
 * bank-level parallelism, so a single thread can saturate the rank's
 * activation budget (tRRD/tFAW) — every access is a row-buffer conflict,
 * so every access costs one activation, and the pattern triggers the most
 * RowHammer-preventive actions per unit of time. Because sustaining this
 * rate needs many outstanding requests, the pattern is exactly what
 * BreakHammer's MSHR-quota throttling starves (§4.3).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dram/address.h"
#include "trace/trace.h"

namespace bh {

/** Configuration of a many-sided hammering kernel. */
struct AttackerConfig
{
    /** Aggressor rows hammered in each attacked bank. */
    unsigned numAggressors = 6;
    /** Row index of the first aggressor (0 = auto-place per core slot). */
    unsigned rowBase = 0;
    /** Spacing between aggressor rows (2 leaves victim rows between). */
    unsigned rowSpacing = 2;
    /**
     * Number of banks attacked (0 = all banks in the channel). The
     * default concentrates on one bank group per rank: wide enough to
     * hog bandwidth, focused enough that per-row activation counts climb
     * quickly (which is what triggers the per-row mechanisms).
     */
    unsigned numBanks = 8;
    /** Non-memory instructions between accesses (attackers busy-loop). */
    std::uint32_t bubbles = 2;
};

/** Many-sided hammer trace source. */
class AttackerTrace : public TraceSource
{
  public:
    AttackerTrace(const AttackerConfig &config, const AddressMap &mapper,
                  std::uint64_t seed);

    TraceRecord next() override;
    const std::string &name() const override { return name_; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    const AttackerConfig &config() const { return config_; }

    /** The aggressor row indices hammered in every attacked bank. */
    const std::vector<unsigned> &aggressorRows() const { return rows; }

    /** Number of banks under attack. */
    unsigned attackedBanks() const { return numBanks_; }

  private:
    AttackerConfig config_;
    const AddressMap &mapper;
    Rng rng;
    std::string name_ = "hammer_attacker";
    std::vector<unsigned> rows;
    std::vector<DramAddress> bankCoords; ///< One template per bank.
    unsigned bankCursor = 0;
    unsigned rowCursor = 0;
    unsigned numBanks_ = 0;
};

} // namespace bh
