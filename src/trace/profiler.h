/**
 * @file
 * Fast functional trace profiler.
 *
 * Estimates the statistics the paper uses to classify workloads (Table 3)
 * without running full timing simulation: records flow through a functional
 * LLC and a per-bank open-row model, counting row-buffer misses per kilo
 * instruction (RBMPKI) and per-row activation counts per 64 ms-equivalent
 * window (approximated by an instruction budget at a nominal IPC).
 */
#pragma once

#include <cstdint>

#include "cache/llc.h"
#include "dram/address.h"
#include "dram/row_census.h"
#include "trace/trace.h"

namespace bh {

/** Profiling summary of one trace. */
struct TraceProfile
{
    double rbmpki = 0.0;        ///< Row-buffer misses per kilo instruction.
    double llcMpki = 0.0;       ///< LLC misses per kilo instruction.
    double meanRows512 = 0.0;   ///< Mean rows with > 512 ACTs per window.
    double meanRows128 = 0.0;
    double meanRows64 = 0.0;
    std::uint64_t instructions = 0;
};

/** Run @p instructions worth of @p source through the functional models. */
TraceProfile profileTrace(TraceSource &source, const AddressMap &mapper,
                          const LlcConfig &llc_config,
                          std::uint64_t instructions,
                          double window_megainsts = 16.0);

} // namespace bh
