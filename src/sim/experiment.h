/**
 * @file
 * Experiment runner shared by the benchmark harness, the examples, and the
 * integration tests.
 *
 * Wraps System construction for a (mix, mechanism, N_RH, BreakHammer on/
 * off) tuple, caches per-application solo IPCs (the weighted-speedup
 * denominators), and computes the metrics each figure reports: weighted
 * speedup of benign applications, unfairness (max slowdown), preventive
 * action counts, DRAM energy, and latency percentiles. Scale knobs come
 * from the environment: BH_INSTS (instructions per benign core), BH_MIXES
 * (mixes per class), BH_FULL (full N_RH sweep).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/mixes.h"
#include "sim/system.h"
#include "stats/json.h"

namespace bh {

/**
 * Statistical interval-sampling parameters (SMARTS-style), in
 * instructions per benign core. A run samples the horizon as
 * [detailed warm-up of W insts] followed by repeating
 * [fast-forward F][detailed warm W][detailed measure M] windows; only
 * the M phases contribute to the reported metrics, each an independent
 * estimate whose spread yields a 95% confidence interval. All three
 * must be positive for sampling to engage.
 */
struct SamplingSpec
{
    std::uint64_t warmup = 0;      ///< W: detailed warm insts per window.
    std::uint64_t measure = 0;     ///< M: measured detailed insts.
    std::uint64_t fastForward = 0; ///< F: functionally-warmed insts.

    bool
    enabled() const
    {
        return warmup > 0 && measure > 0 && fastForward > 0;
    }
};

/** One experiment point. */
struct ExperimentConfig
{
    MixSpec mix;
    MitigationType mechanism = MitigationType::kNone;
    unsigned nRh = 1024;
    bool breakHammer = false;
    /** window == 0 (the default) selects scaledBreakHammerConfig(). */
    BreakHammerConfig bh = BreakHammerConfig{.window = 0};
    std::uint64_t instructions = 0; ///< 0 = use the BH_INSTS default.
    bool oracle = false;
    /** Ablation: reject a throttled thread's secondary misses too. */
    bool bluntThrottle = false;
    std::uint64_t seed = 1;
    /**
     * DRAM scale-out overrides (power-of-two each). 0 = unset:
     * resolveExperimentConfig() folds in the process-wide
     * setChannelSpec() values, then the DDR5 defaults (1 channel,
     * 2 ranks). Part of experimentKey() only away from the defaults, so
     * legacy single-channel records keep their content addresses.
     */
    unsigned channels = 0;
    unsigned ranks = 0;
    /**
     * Interval sampling; disabled (exact simulation) by default. When
     * disabled here, resolveExperimentConfig() folds in the process-wide
     * spec from setSamplingSpec(). Part of experimentKey(), so sampled
     * and exact results never alias in the ResultStore.
     */
    SamplingSpec sample;
    /**
     * Red-team attacker strategy (canonical spec string of
     * sim/redteam.h, e.g. "pat=many,obs=64,bub=64,grp=1,ho=0"); empty =
     * canonical fixed attackers. When set, runExperiment() rewrites the
     * mix's attacker slots into adaptive traces per the strategy. Part
     * of experimentKey() via an `|rt=` suffix, so red-team probes never
     * alias canonical figure records.
     */
    std::string redteam;
};

/** A sampled metric: the mean across measurement windows and its CI. */
struct SampledMetric
{
    double mean = 0.0;
    double ci95 = 0.0; ///< Half-width of the 95% confidence interval.
};

/**
 * Per-window statistics of a sampled run. The headline metrics of the
 * owning ExperimentResult are the means; this carries the uncertainty
 * (mean ± ci95) the JSON export reports next to every sampled metric.
 * preventiveActions and p99LatencyNs are per-window quantities (counts
 * within one M-instruction measurement, latency percentile of one
 * window's samples), not whole-horizon extrapolations.
 */
struct SamplingStats
{
    bool enabled = false;
    std::uint64_t warmup = 0;
    std::uint64_t measure = 0;
    std::uint64_t fastForward = 0;
    std::uint64_t windows = 0;
    SampledMetric weightedSpeedup;
    SampledMetric maxSlowdown;
    SampledMetric preventiveActions;
    SampledMetric p99LatencyNs;
};

/** Metrics of one run, alongside the raw result. */
struct ExperimentResult
{
    RunResult raw;
    double weightedSpeedup = 0.0;
    double maxSlowdown = 0.0;
    double energyNj = 0.0;
    std::uint64_t preventiveActions = 0;
    /** Present (enabled = true) only for interval-sampled runs. */
    SamplingStats sampling;
};

/** Default per-benign-core instruction count (BH_INSTS, default 150k). */
std::uint64_t defaultInstructions();

/** Mixes per class (BH_MIXES, default 2; the paper uses 15). */
unsigned mixesPerClass();

/** N_RH sweep: {4096, 1024, 64} by default; full 4K..64 with BH_FULL=1. */
std::vector<unsigned> nrhSweep();

/** Throttling window scaled to the simulated horizon (see .cc). */
BreakHammerConfig scaledBreakHammerConfig(std::uint64_t instructions);

/** Solo IPC of a catalog app (cached; no mitigation, core alone). */
double soloIpc(const std::string &app_name, std::uint64_t instructions);

/**
 * Seed the shared solo-IPC cache with a known value (e.g. loaded from a
 * persistent ResultStore) so soloIpc() returns it without simulating.
 * A value already cached for (app, insts) is left untouched.
 */
void primeSoloIpc(const std::string &app_name, std::uint64_t instructions,
                  double ipc);

/**
 * Install a sink invoked once per solo IPC that soloIpc() actually
 * computes (primed and re-requested values never fire it). The
 * ResultStore uses this to persist solo runs alongside experiment
 * records. The sink may be called from any scheduler worker thread,
 * serialized by the solo-cache lock; it must not call back into
 * soloIpc(). There is one global sink: installing a new one replaces the
 * previous (the most recently opened store wins). @p owner tags the
 * installation so clearSoloIpcSink() can release it safely.
 */
void setSoloIpcSink(
    std::function<void(const std::string &app, std::uint64_t insts,
                       double ipc)>
        sink,
    const void *owner);

/**
 * Uninstall the solo-IPC sink, but only if @p owner still owns it — a
 * store being destroyed must not clear a sink that a later-opened store
 * has already replaced.
 */
void clearSoloIpcSink(const void *owner);

/**
 * @p config with its defaulted fields made explicit: instructions == 0
 * resolves to defaultInstructions() (the BH_INSTS environment knob) and
 * bh.window == 0 to scaledBreakHammerConfig() at that horizon — exactly
 * the defaults runExperiment() applies, so running the resolved config is
 * bit-identical to running the original. Persistent caching MUST key the
 * resolved config: the unresolved form aliases every BH_INSTS scale to
 * one content address, and a store consulted under a different
 * environment would silently serve results from the wrong horizon.
 */
ExperimentConfig resolveExperimentConfig(const ExperimentConfig &config);

/**
 * Mid-run checkpointing policy for runExperiment(). When enabled, every
 * experiment simulation periodically saves a full System snapshot under
 * @p dir (one content-addressed file per experiment point) and, before
 * simulating from scratch, tries to resume from an existing snapshot —
 * so a killed sweep restarted with the same flags loses at most one
 * checkpoint interval of the point it was in, instead of the whole
 * point. Snapshots are deleted when their run completes. Resume is
 * bit-exact: the completed run's results are byte-identical to an
 * uninterrupted run (CI enforces this). Solo-IPC runs are short and are
 * not checkpointed.
 */
struct CheckpointSpec
{
    std::string dir;              ///< Snapshot directory; empty = off.
    std::uint64_t everyInsts = 0; ///< Cadence in retired instructions.
    Cycle everyCycles = 0;        ///< Cadence in cycles.

    bool
    enabled() const
    {
        return !dir.empty() && (everyInsts > 0 || everyCycles > 0);
    }
};

/** Install the process-wide checkpoint policy (thread-safe). */
void setCheckpointSpec(const CheckpointSpec &spec);

/** The current process-wide checkpoint policy. */
CheckpointSpec checkpointSpec();

/**
 * Process-wide mid-simulation progress hook. When installed, every
 * exact runExperiment() simulation invokes @p fn from inside the run
 * loop each time the slowest benign core's retired-instruction count
 * crosses a multiple of everyInsts — observation only, results are
 * bit-identical with or without it. The sweep-service worker
 * (svc/worker.h) uses this to heartbeat its coordinator lease while a
 * long simulation blocks the thread; the fn must therefore be cheap,
 * thread-safe (experiments run on scheduler workers), and must not call
 * back into runExperiment(). Sampled runs do not fire it (their
 * window driver owns the loop); lease deadlines must cover them.
 */
struct ProgressHook
{
    std::function<void(const ExperimentConfig &config,
                       std::uint64_t retired, std::uint64_t target)>
        fn;
    std::uint64_t everyInsts = 0; ///< Callback cadence; 0 disables.

    bool
    enabled() const
    {
        return static_cast<bool>(fn) && everyInsts > 0;
    }
};

/** Install the process-wide progress hook (thread-safe). */
void setProgressHook(const ProgressHook &hook);

/** The current process-wide progress hook. */
ProgressHook progressHook();

/**
 * Install the process-wide sampling spec (thread-safe). Folded into any
 * config whose own spec is disabled by resolveExperimentConfig() — the
 * bh_bench --sample flag routes through this, exactly like the BH_INSTS
 * environment default for instructions.
 */
void setSamplingSpec(const SamplingSpec &spec);

/** The current process-wide sampling spec. */
SamplingSpec samplingSpec();

/**
 * Worker threads a sampled run may fan its measurement windows across
 * (intra-point parallelism; default 1). Window results are slotted by
 * window index and aggregated in that order, so sampled results are
 * byte-identical for every job count.
 */
void setSamplingJobs(unsigned jobs);

/** The current sampling worker-thread count. */
unsigned samplingJobs();

/**
 * Process-wide DRAM channel/rank overrides (the bh_bench --channels and
 * --ranks flags route through this, like --sample via setSamplingSpec).
 * Folded into any config whose own fields are 0 by
 * resolveExperimentConfig(). Solo-IPC baselines deliberately stay on the
 * default single-channel organization: weighted speedup compares against
 * the same denominator across the channel-count axis.
 */
struct ChannelSpec
{
    unsigned channels = 0; ///< 0 = default (1 channel).
    unsigned ranks = 0;    ///< 0 = default (2 ranks).
};

/** Install the process-wide channel spec (thread-safe). */
void setChannelSpec(const ChannelSpec &spec);

/** The current process-wide channel spec. */
ChannelSpec channelSpec();

/** Snapshot file of @p config (resolved) inside checkpoint dir @p dir. */
std::string snapshotPath(const std::string &dir,
                         const ExperimentConfig &config);

/** Run one experiment point and compute its metrics. */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Canonical identity of an experiment point: every field that influences
 * the simulation, rendered as a stable string. Two configs with equal keys
 * produce bit-identical results, so the key doubles as the content
 * address of the ResultStore and the record key of the JSON export.
 */
std::string experimentKey(const ExperimentConfig &config);

/**
 * The (app, instructions) solo-run dependencies of @p configs, deduped in
 * first-use order. Warming these through soloIpc() before a parallel
 * sweep prevents workers from duplicating solo runs.
 */
std::vector<std::pair<std::string, std::uint64_t>>
soloDependencies(const std::vector<ExperimentConfig> &configs);

/**
 * One experiment (config identity + metrics + raw summary) as JSON. This
 * is the durable schema of the persistent ResultStore: it carries the
 * full benign-read-latency histogram (raw bins via stats/json_stats.h),
 * per-core records (IPC, retire/finish, reject stalls), the preventive/
 * demand ACT split, BreakHammer introspection (suspect marks, quota
 * rejections, final per-thread scores and quotas), and the oracle
 * verdict, so a stored record answers every query the figures and
 * examples make without re-simulating.
 */
JsonValue experimentResultToJson(const ExperimentConfig &config,
                                 const ExperimentResult &result);

/**
 * Rebuild an ExperimentResult from experimentResultToJson() output. The
 * round trip is exact: re-serializing the parsed result against the same
 * config reproduces the original document byte for byte (doubles are
 * dumped with 17 significant digits; the histogram round-trips raw bins).
 * @return false when @p v is missing required fields (e.g. a record
 *         written by an older schema), in which case @p out is untouched.
 */
bool experimentResultFromJson(const JsonValue &v, ExperimentResult *out);

} // namespace bh
