/**
 * @file
 * Experiment runner shared by the benchmark harness, the examples, and the
 * integration tests.
 *
 * Wraps System construction for a (mix, mechanism, N_RH, BreakHammer on/
 * off) tuple, caches per-application solo IPCs (the weighted-speedup
 * denominators), and computes the metrics each figure reports: weighted
 * speedup of benign applications, unfairness (max slowdown), preventive
 * action counts, DRAM energy, and latency percentiles. Scale knobs come
 * from the environment: BH_INSTS (instructions per benign core), BH_MIXES
 * (mixes per class), BH_FULL (full N_RH sweep).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/mixes.h"
#include "sim/system.h"
#include "stats/json.h"

namespace bh {

/** One experiment point. */
struct ExperimentConfig
{
    MixSpec mix;
    MitigationType mechanism = MitigationType::kNone;
    unsigned nRh = 1024;
    bool breakHammer = false;
    /** window == 0 (the default) selects scaledBreakHammerConfig(). */
    BreakHammerConfig bh = BreakHammerConfig{.window = 0};
    std::uint64_t instructions = 0; ///< 0 = use the BH_INSTS default.
    bool oracle = false;
    /** Ablation: reject a throttled thread's secondary misses too. */
    bool bluntThrottle = false;
    std::uint64_t seed = 1;
};

/** Metrics of one run, alongside the raw result. */
struct ExperimentResult
{
    RunResult raw;
    double weightedSpeedup = 0.0;
    double maxSlowdown = 0.0;
    double energyNj = 0.0;
    std::uint64_t preventiveActions = 0;
};

/** Default per-benign-core instruction count (BH_INSTS, default 150k). */
std::uint64_t defaultInstructions();

/** Mixes per class (BH_MIXES, default 2; the paper uses 15). */
unsigned mixesPerClass();

/** N_RH sweep: {4096, 1024, 64} by default; full 4K..64 with BH_FULL=1. */
std::vector<unsigned> nrhSweep();

/** Throttling window scaled to the simulated horizon (see .cc). */
BreakHammerConfig scaledBreakHammerConfig(std::uint64_t instructions);

/** Solo IPC of a catalog app (cached; no mitigation, core alone). */
double soloIpc(const std::string &app_name, std::uint64_t instructions);

/** Run one experiment point and compute its metrics. */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Canonical identity of an experiment point: every field that influences
 * the simulation, rendered as a stable string. Two configs with equal keys
 * produce bit-identical results, so the key doubles as the memoization
 * key of ExperimentPool and the record key of the JSON export.
 */
std::string experimentKey(const ExperimentConfig &config);

/**
 * The (app, instructions) solo-run dependencies of @p configs, deduped in
 * first-use order. Warming these through soloIpc() before a parallel
 * sweep prevents workers from duplicating solo runs.
 */
std::vector<std::pair<std::string, std::uint64_t>>
soloDependencies(const std::vector<ExperimentConfig> &configs);

/** One experiment (config identity + metrics + raw summary) as JSON. */
JsonValue experimentResultToJson(const ExperimentConfig &config,
                                 const ExperimentResult &result);

} // namespace bh
