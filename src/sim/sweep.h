/**
 * @file
 * Declarative experiment sweeps.
 *
 * The paper's evaluation is a (mix × mechanism × N_RH × BreakHammer ×
 * ablation) grid, and before this layer every figure driver hand-rolled
 * its own nested loops to enumerate it. A SweepSpec is the declarative
 * replacement: a named builder that collects axes and expands them into an
 * ordered std::vector<ExperimentConfig> with expand(). The expansion is a
 * pure function of the spec — no environment reads, no hidden state — so
 * two processes that build the same spec enumerate the same points, which
 * is what lets a ResultStore shard a sweep across machines by content
 * address and merge the results.
 *
 * Axes default to a single neutral value (no mitigation, N_RH = 1024,
 * BreakHammer off, one identity variant), so a spec only names the axes
 * it actually sweeps:
 *
 *   SweepSpec("fig06")
 *       .mixes(attackMixes())
 *       .mechanisms(pairedMitigations())
 *       .breakHammerAxis();          // off and on
 *
 * withBaselines() prepends each mix's canonical no-mitigation baseline
 * point (shared across every figure that normalizes against it), variant()
 * adds labeled config transforms for ablation axes, and merge() splices
 * another spec's expansion in for figures whose grid is a union of
 * differently-shaped sections.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace bh {

/** One labeled point transform of a sweep's variant axis. */
struct SweepVariant
{
    std::string label;
    std::function<void(ExperimentConfig &)> apply;
};

/** Declarative (mix × mechanism × N_RH × BH × variant) sweep builder. */
class SweepSpec
{
  public:
    SweepSpec() = default;
    explicit SweepSpec(std::string name) : name_(std::move(name)) {}

    /** Append one mix to the mix axis. */
    SweepSpec &mix(MixSpec m);

    /** Append @p ms to the mix axis. */
    SweepSpec &mixes(const std::vector<MixSpec> &ms);

    /**
     * Append mixes @p per_class instances of each class in @p patterns
     * (makeMix(pattern, 0..per_class-1)), the paper's per-class scaling.
     */
    SweepSpec &mixClasses(const std::vector<std::string> &patterns,
                          unsigned per_class);

    /** Append one mechanism to the axis (unset = {kNone}). */
    SweepSpec &mechanism(MitigationType m);

    /** Append @p ms to the mechanism axis. */
    SweepSpec &mechanisms(const std::vector<MitigationType> &ms);

    /** Replace the N_RH axis (default {1024}) with a single value. */
    SweepSpec &nRh(unsigned n);

    /** Replace the N_RH axis (default {1024}). */
    SweepSpec &nRhValues(const std::vector<unsigned> &values);

    /** Replace the BreakHammer axis (default {off}) with a single value. */
    SweepSpec &breakHammer(bool on);

    /** Sweep BreakHammer both off and on. */
    SweepSpec &breakHammerAxis();

    /**
     * Also emit each mix's canonical no-mitigation baseline point (the
     * normalization denominator shared across figures), ahead of the
     * mix's swept points. The baseline inherits instructions() — a
     * denominator must run at the same horizon as the points it
     * normalizes — but no other axis, tweak, or variant.
     */
    SweepSpec &withBaselines();

    /** Set the per-point instruction horizon (0 = BH_INSTS default). */
    SweepSpec &instructions(std::uint64_t n);

    /** Enable the RowHammer oracle on every point. */
    SweepSpec &oracle(bool on);

    /**
     * Add one labeled transform to the variant axis (ablation knobs,
     * TH_threat multipliers, attacker shapes, ...). Variants apply last,
     * after every other axis, so they may override any field. Adding the
     * first variant replaces the implicit identity variant.
     */
    SweepSpec &variant(std::string label,
                       std::function<void(ExperimentConfig &)> apply);

    /**
     * Apply @p tweak to every swept point (before variants). Baseline
     * points are exempt: they stay the canonical shared configuration.
     */
    SweepSpec &forEach(std::function<void(ExperimentConfig &)> tweak);

    /**
     * Splice @p other's expansion after this spec's own points — for
     * figures whose grid is a union of differently-shaped sections
     * (e.g. Fig 18's +BH pairings next to bare BlockHammer).
     */
    SweepSpec &merge(const SweepSpec &other);

    const std::string &name() const { return name_; }

    /**
     * Enumerate the grid, in deterministic order: per mix (insertion
     * order), the baseline first when requested, then N_RH (outer) ×
     * mechanism × BreakHammer × variant (inner), followed by merged
     * sections. Duplicate points are allowed (the ResultStore dedupes by
     * content address).
     */
    std::vector<ExperimentConfig> expand() const;

    /** Number of points expand() will produce. */
    std::size_t pointCount() const { return expand().size(); }

    /**
     * The canonical no-mitigation baseline point of @p mix. N_RH is
     * irrelevant without a mechanism; pinning it (1024) keeps the content
     * address — and thus the simulation — shared by every figure that
     * normalizes against the baseline.
     */
    static ExperimentConfig baselinePoint(const MixSpec &mix);

  private:
    std::string name_;
    std::vector<MixSpec> mixes_;
    std::vector<MitigationType> mechanisms_;
    std::vector<unsigned> nRh_{1024};
    std::vector<bool> breakHammer_{false};
    std::vector<SweepVariant> variants_;
    std::vector<std::function<void(ExperimentConfig &)>> tweaks_;
    std::vector<ExperimentConfig> merged_;
    std::uint64_t instructions_ = 0;
    bool oracle_ = false;
    bool baselines_ = false;
};

/**
 * Work-unit enumeration for the sweep service (svc/coordinator.h): the
 * resolved, content-address-deduplicated form of @p configs, in
 * first-occurrence order. Each returned config is a leasable unit —
 * fully explicit (resolveExperimentConfig()), so a worker can run it
 * without sharing this process's environment, and unique by
 * experimentKey(), so two figures sweeping the same point lease it once.
 */
std::vector<ExperimentConfig>
expandWorkUnits(const std::vector<ExperimentConfig> &configs);

} // namespace bh
