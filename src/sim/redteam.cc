#include "sim/redteam.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>

#include "common/log.h"
#include "sim/result_store.h"
#include "sim/sweep.h"

namespace bh {

namespace {

const char *
patternToken(AttackPattern p)
{
    switch (p) {
      case AttackPattern::kManySided: return "many";
      case AttackPattern::kDoubleSided: return "double";
      case AttackPattern::kHalfDouble: return "half";
    }
    return "many";
}

bool
patternFromToken(const std::string &token, AttackPattern *out)
{
    if (token == "many") {
        *out = AttackPattern::kManySided;
    } else if (token == "double") {
        *out = AttackPattern::kDoubleSided;
    } else if (token == "half") {
        *out = AttackPattern::kHalfDouble;
    } else {
        return false;
    }
    return true;
}

/** Parse a decimal u64 with no sign, no leading junk, no overflow. */
bool
parseU64Field(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text.size() > 19)
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = value;
    return true;
}

/** The "key=" prefix of @p field, or nullptr when it doesn't match. */
const char *
fieldValue(const std::string &field, const char *key)
{
    std::size_t n = std::string(key).size();
    if (field.size() <= n + 1 || field.compare(0, n, key) != 0 ||
        field[n] != '=')
        return nullptr;
    return field.c_str() + n + 1;
}

std::vector<std::string>
splitFields(const std::string &spec, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = spec.find(sep, start);
        fields.push_back(spec.substr(start, pos - start));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return fields;
}

/** The paper's default search targets: cheap per-row trackers plus the
 *  probabilistic baseline — the mechanisms whose preventive-action
 *  streams BreakHammer scores most directly. */
std::vector<MitigationType>
defaultMechanisms()
{
    return {MitigationType::kPara, MitigationType::kGraphene,
            MitigationType::kHydra};
}

} // namespace

std::string
redteamStrategyCanonical(const RedteamStrategy &s)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "pat=%s,obs=%u,bub=%u,grp=%u,ho=%llu",
                  patternToken(s.pattern), s.observeEvery,
                  static_cast<unsigned>(s.maxBubbles), s.group,
                  static_cast<unsigned long long>(s.handoffEpoch));
    return buf;
}

bool
parseRedteamStrategy(const std::string &spec, RedteamStrategy *out)
{
    std::vector<std::string> fields = splitFields(spec, ',');
    if (fields.size() != 5)
        return false;

    RedteamStrategy s;
    const char *pat = fieldValue(fields[0], "pat");
    const char *obs = fieldValue(fields[1], "obs");
    const char *bub = fieldValue(fields[2], "bub");
    const char *grp = fieldValue(fields[3], "grp");
    const char *ho = fieldValue(fields[4], "ho");
    if (!pat || !obs || !bub || !grp || !ho)
        return false;
    if (!patternFromToken(pat, &s.pattern))
        return false;

    std::uint64_t v = 0;
    if (!parseU64Field(obs, &v) || v > 1000000)
        return false;
    s.observeEvery = static_cast<unsigned>(v);
    if (!parseU64Field(bub, &v) || v < 1 || v > 65536)
        return false;
    s.maxBubbles = static_cast<std::uint32_t>(v);
    if (!parseU64Field(grp, &v) || v < 1 || v > 8)
        return false;
    s.group = static_cast<unsigned>(v);
    if (!parseU64Field(ho, &v) || v > 1000000000)
        return false;
    s.handoffEpoch = v;

    // Canonical means canonical: the parse must round-trip exactly, so
    // a spec key can never alias a differently written equivalent.
    if (redteamStrategyCanonical(s) != spec)
        return false;
    *out = s;
    return true;
}

void
applyRedteamStrategy(const RedteamStrategy &s,
                     std::vector<WorkloadSlot> *slots)
{
    unsigned attackers = 0;
    for (const WorkloadSlot &slot : *slots)
        if (slot.kind != WorkloadSlot::Kind::kBenign)
            ++attackers;
    if (attackers == 0)
        return;
    unsigned group = std::min(s.group, attackers);

    unsigned j = 0;
    for (WorkloadSlot &slot : *slots) {
        if (slot.kind == WorkloadSlot::Kind::kBenign)
            continue;
        slot.kind = WorkloadSlot::Kind::kAdaptiveAttacker;
        slot.attacker.pattern = s.pattern;
        slot.adaptive.observeEvery = s.observeEvery;
        slot.adaptive.maxBubbles = s.maxBubbles;
        slot.adaptive.groupSize = group;
        slot.adaptive.slotIndex = j % group;
        slot.adaptive.handoffEpoch = s.handoffEpoch;
        ++j;
    }
}

bool
parseRedteamSpec(const std::string &text, RedteamSpec *out)
{
    std::vector<std::string> fields = splitFields(text, '/');
    if (fields.size() != 3)
        return false;
    std::uint64_t seed = 0, rounds = 0, pop = 0;
    if (!parseU64Field(fields[0], &seed) || seed < 1)
        return false;
    if (!parseU64Field(fields[1], &rounds) || rounds < 1 || rounds > 16)
        return false;
    if (!parseU64Field(fields[2], &pop) || pop < 1 || pop > 64)
        return false;
    RedteamSpec spec;
    spec.seed = seed;
    spec.rounds = static_cast<unsigned>(rounds);
    spec.population = static_cast<unsigned>(pop);
    *out = spec;
    return true;
}

std::vector<RedteamStrategy>
redteamInitialPopulation(std::uint64_t seed, unsigned population)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    static const unsigned kObs[] = {16, 32, 64, 128};
    static const std::uint32_t kBub[] = {16, 32, 64};

    std::vector<RedteamStrategy> out;
    out.reserve(population);
    for (unsigned i = 0; i < population; ++i) {
        RedteamStrategy s;
        // Cycle the patterns so every spatial shape is represented even
        // in tiny populations; the remaining genes are seeded draws.
        s.pattern = static_cast<AttackPattern>(i % 3);
        s.observeEvery = kObs[rng.nextBounded(4)];
        s.maxBubbles = kBub[rng.nextBounded(3)];
        s.group = rng.nextBounded(2) == 0 ? 1 : 2;
        s.handoffEpoch = s.group > 1 ? 1024 : 0;
        out.push_back(s);
    }
    return out;
}

RedteamStrategy
mutateRedteamStrategy(Rng *rng, const RedteamStrategy &parent)
{
    RedteamStrategy s = parent;
    switch (rng->nextBounded(6)) {
      case 0:
        s.observeEvery = std::min(1024u, std::max(8u, s.observeEvery) * 2);
        break;
      case 1:
        s.observeEvery = std::max(8u, s.observeEvery / 2);
        break;
      case 2:
        s.maxBubbles = std::min<std::uint32_t>(4096, s.maxBubbles * 2);
        break;
      case 3:
        s.maxBubbles = std::max<std::uint32_t>(4, s.maxBubbles / 2);
        break;
      case 4:
        s.pattern = static_cast<AttackPattern>(
            (static_cast<unsigned>(s.pattern) + 1) % 3);
        break;
      default:
        if (s.group == 1) {
            s.group = 2;
            s.handoffEpoch = 1024;
        } else {
            s.group = 1;
            s.handoffEpoch = 0;
        }
        break;
    }
    if (s.observeEvery == 0)
        s.observeEvery = 8; // Mutations never produce a fixed baseline.
    return s;
}

double
redteamFitness(const ExperimentConfig &config,
               const ExperimentResult &result,
               std::uint64_t min_attacker_acts)
{
    std::uint64_t attacker_acts = 0;
    const auto &per_thread = result.raw.demandActsPerThread;
    for (std::size_t i = 0; i < config.mix.slots.size(); ++i)
        if (config.mix.slots[i].kind != WorkloadSlot::Kind::kBenign &&
            i < per_thread.size())
            attacker_acts += per_thread[i];
    if (attacker_acts < min_attacker_acts)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(result.preventiveActions) /
           static_cast<double>(attacker_acts);
}

RedteamReport
runRedteamSearch(const RedteamSpec &spec, ResultStore *store)
{
    std::vector<MitigationType> mechs =
        spec.mechanisms.empty() ? defaultMechanisms() : spec.mechanisms;

    // Two attacker slots: the rotation threat needs a hand-off partner.
    MixSpec mix = makeMix("MMAA", 0);

    // Fixed baselines: the non-adaptive form of every spatial pattern.
    std::vector<RedteamStrategy> fixed;
    for (unsigned p = 0; p < 3; ++p) {
        RedteamStrategy s;
        s.pattern = static_cast<AttackPattern>(p);
        s.observeEvery = 0;
        s.maxBubbles = 2;
        s.group = 1;
        s.handoffEpoch = 0;
        fixed.push_back(s);
    }

    struct Probe
    {
        std::string strategy;
        double fitness = 0.0;
        bool adaptive = false;
    };
    // Per mechanism, every probe evaluated so far (all rounds).
    std::vector<std::vector<Probe>> probes(mechs.size());

    RedteamReport report;
    std::set<std::string> seen; // Adaptive strategies already probed.
    std::vector<RedteamStrategy> population =
        redteamInitialPopulation(spec.seed, spec.population);

    for (unsigned round = 0; round < spec.rounds; ++round) {
        // Round grid: (strategy variant) × mechanism through the sweep
        // engine; round 0 carries the fixed baselines too.
        std::vector<RedteamStrategy> wave;
        if (round == 0)
            wave = fixed;
        for (const RedteamStrategy &s : population) {
            std::string key = redteamStrategyCanonical(s);
            if (seen.insert(key).second)
                wave.push_back(s);
        }
        if (wave.empty())
            break;

        SweepSpec sweep("redteam#" + std::to_string(round));
        sweep.mix(mix).mechanisms(mechs).nRh(512).breakHammer(true);
        sweep.instructions(spec.instructions);
        for (const RedteamStrategy &s : wave) {
            std::string rt = redteamStrategyCanonical(s);
            sweep.variant(rt, [rt](ExperimentConfig &cfg) {
                cfg.redteam = rt;
            });
        }
        std::vector<ExperimentConfig> configs = sweep.expand();
        store->prefetch(configs);

        for (const ExperimentConfig &cfg : configs) {
            const ExperimentResult &res = store->get(cfg);
            std::size_t mech_idx = 0;
            while (mechs[mech_idx] != cfg.mechanism)
                ++mech_idx;
            RedteamStrategy s;
            bool ok = parseRedteamStrategy(cfg.redteam, &s);
            BH_ASSERT(ok, "redteam probe with malformed spec");
            probes[mech_idx].push_back(
                {cfg.redteam, redteamFitness(cfg, res), s.adaptive()});
            ++report.probes;
        }

        // Next generation: rank this round's adaptive strategies by the
        // summed fitness across mechanisms (a strategy must travel), keep
        // the better half, breed the rest. All RNG state derives from
        // (seed, round) alone, so the search is order-independent.
        if (round + 1 == spec.rounds)
            break;
        struct Ranked
        {
            double fitness;
            std::string key;
            RedteamStrategy strategy;
        };
        std::vector<Ranked> ranked;
        for (const RedteamStrategy &s : population) {
            std::string key = redteamStrategyCanonical(s);
            double total = 0.0;
            for (const auto &mech_probes : probes)
                for (const Probe &p : mech_probes)
                    if (p.strategy == key)
                        total += p.fitness;
            ranked.push_back({total, key, s});
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const Ranked &a, const Ranked &b) {
                      if (a.fitness != b.fitness)
                          return a.fitness < b.fitness;
                      return a.key < b.key;
                  });
        std::size_t survivors =
            std::max<std::size_t>(1, (ranked.size() + 1) / 2);
        ranked.resize(std::min(ranked.size(), survivors));

        Rng rng(spec.seed * 0x51ed270b9ull + round + 1);
        std::vector<RedteamStrategy> next;
        for (const Ranked &r : ranked)
            next.push_back(r.strategy);
        while (next.size() < spec.population && !ranked.empty()) {
            const RedteamStrategy &parent =
                ranked[rng.nextBounded(ranked.size())].strategy;
            RedteamStrategy child = mutateRedteamStrategy(&rng, parent);
            // Re-draw (bounded) when the child was already probed.
            for (unsigned tries = 0;
                 tries < 8 && seen.count(redteamStrategyCanonical(child));
                 ++tries)
                child = mutateRedteamStrategy(&rng, child);
            next.push_back(child);
        }
        population = std::move(next);
    }

    // Verdict per mechanism: the best adaptive strategy must strictly
    // out-evade every fixed baseline.
    for (std::size_t m = 0; m < mechs.size(); ++m) {
        RedteamMechanismOutcome out;
        out.mechanism = mechs[m];
        double best_fixed = std::numeric_limits<double>::infinity();
        double best_adaptive = std::numeric_limits<double>::infinity();
        for (const Probe &p : probes[m]) {
            double &best = p.adaptive ? best_adaptive : best_fixed;
            std::string &label = p.adaptive ? out.bestAdaptiveStrategy
                                            : out.bestFixedStrategy;
            if (p.fitness < best ||
                (p.fitness == best && p.strategy < label)) {
                best = p.fitness;
                label = p.strategy;
            }
        }
        out.bestFixedFitness = best_fixed;
        out.bestAdaptiveFitness = best_adaptive;
        out.improved = best_adaptive < best_fixed;
        report.improvedAny = report.improvedAny || out.improved;
        report.mechanisms.push_back(out);
    }
    return report;
}

} // namespace bh
