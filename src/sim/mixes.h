/**
 * @file
 * Workload mix construction (§7 of the paper).
 *
 * The paper builds six benign four-core mix classes (HHHH, HHMM, MMMM,
 * HHLL, MMLL, LLLL) and six attack classes where the last slot runs the
 * attacker (HHHA, HHMA, MMMA, HLLA, MMLA, LLLA), 15 workloads per class.
 * Mixes are constructed deterministically from a class pattern and an
 * index that rotates through the application catalog.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/system.h"

namespace bh {

/** A named four-core workload mix. */
struct MixSpec
{
    std::string name;        ///< e.g. "HHMA#3".
    std::string pattern;     ///< e.g. "HHMA".
    std::vector<WorkloadSlot> slots;
};

/** The six benign mix classes. */
const std::vector<std::string> &benignMixPatterns();

/** The six attack mix classes (A = attacker slot). */
const std::vector<std::string> &attackMixPatterns();

/**
 * Build mix @p index of class @p pattern. Each character selects the tier
 * of a slot: H/M/L pick catalog apps (rotating with @p index), A installs
 * the many-sided hammer attacker.
 */
MixSpec makeMix(const std::string &pattern, unsigned index);

/** All benign app names used by a mix (slot order, attackers skipped). */
std::vector<std::string> benignApps(const MixSpec &mix);

} // namespace bh
