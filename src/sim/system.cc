#include "sim/system.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/env.h"
#include "common/log.h"
#include "common/snapshot.h"
#include "mitigation/blockhammer.h"

namespace bh {

namespace {

/** MSHR key space for uncached requests (disjoint from line addresses). */
constexpr Addr kUncachedKeyBase = 1ull << 63;

/** Leading bytes of every snapshot file. */
constexpr char kSnapshotMagic[] = "BHSNAP01";

static_assert(((System::kRollPeriodMask + 1) &
               System::kRollPeriodMask) == 0,
              "the roll cadence must be a power-of-two grid");

Addr
lineOf(Addr addr)
{
    return addr & ~static_cast<Addr>(kCacheLineBytes - 1);
}

} // namespace

std::vector<double>
RunResult::benignIpcs() const
{
    std::vector<double> out;
    for (const CoreResult &c : cores)
        if (c.benign)
            out.push_back(c.ipc);
    return out;
}

System::System(const SystemConfig &config,
               const std::vector<WorkloadSlot> &slots)
    : config_(config),
      mapper(config.spec.org, 4, config.interleave),
      llc(config.llc),
      mshr(config.mshrEntries, config.numCores),
      slots_(slots)
{
    BH_ASSERT(slots.size() == config.numCores,
              "one workload slot per core required");

    const unsigned channels = config_.spec.org.channels;
    if (config_.breakHammer)
        bh = std::make_unique<BreakHammer>(config_.numCores, config_.bh,
                                           &mshr);

    for (unsigned ch = 0; ch < channels; ++ch) {
        mcs.push_back(std::make_unique<MemoryController>(
            config_.spec, mapper, config_.mc, ch));
        MemoryController *mc = mcs.back().get();

        // One mitigation instance per channel: tracking tables index flat
        // (rank-major) banks, so per-rank state lives inside the channel's
        // instance exactly as it does on a single-channel part.
        mitigations.push_back(createMitigation(config_.mitigation,
                                               config_.nRh, config_.spec,
                                               config_.numCores));
        if (mitigations.back() != nullptr)
            mc->setMitigation(mitigations.back().get());

        if (bh)
            mc->setObserver(bh.get());

        // BlockHammer's AttackThrottler shares the MSHR throttle point.
        if (auto *bhm = dynamic_cast<BlockHammer *>(mitigations.back().get()))
            bhm->setThrottleTarget(&mshr);

        if (config_.enableOracle) {
            oracles.push_back(std::make_unique<HammerOracle>(
                config_.spec.org, config_.nRh));
            HammerOracle *oracle = oracles.back().get();
            mc->onRowProtected = [oracle](unsigned bank, unsigned row) {
                oracle->onRowProtected(bank, row);
            };
        }
        if (config_.enableCensus)
            censuses.push_back(
                std::make_unique<RowCensus>(msToCycles(64.0)));

        HammerOracle *oracle =
            config_.enableOracle ? oracles.back().get() : nullptr;
        RowCensus *census =
            config_.enableCensus ? censuses.back().get() : nullptr;
        mc->onDemandAct = [this, oracle, census](unsigned bank,
                                                 unsigned row,
                                                 ThreadId thread,
                                                 Cycle cycle) {
            ++demandActsByThread_[thread];
            if (oracle)
                oracle->onActivate(bank, row);
            if (census)
                census->recordAct(bank, row, cycle);
        };
        mc->onPeriodicRefresh = [oracle](unsigned rank, unsigned start,
                                         unsigned rows) {
            if (oracle)
                oracle->onRefreshSweep(rank, start, rows);
        };
        mc->onReadComplete = [this](const Request &req, Cycle done) {
            handleReadComplete(req, done);
        };
    }

    // Each core slot owns a private row region so apps never share rows.
    unsigned region = config_.spec.org.rowsPerBank / (config_.numCores * 2);
    benignSlot.resize(config_.numCores);
    rejectCountsQuota.resize(config_.numCores, false);
    rejectTouchesLlc.resize(config_.numCores, false);
    demandActsByThread_.resize(config_.numCores, 0);
    for (unsigned i = 0; i < config_.numCores; ++i) {
        const WorkloadSlot &slot = slots[i];
        std::uint64_t seed = config_.seed * 0x10001 + i * 0x9e3779b9;
        if (slot.kind == WorkloadSlot::Kind::kBenign) {
            benignSlot[i] = true;
            traces.push_back(std::make_unique<BenignTrace>(
                findApp(slot.appName), mapper, i * region, region, seed));
        } else {
            benignSlot[i] = false;
            AttackerConfig atk = slot.attacker;
            if (atk.rowBase == 0)
                atk.rowBase = i * region + 16;
            if (slot.kind == WorkloadSlot::Kind::kAdaptiveAttacker) {
                auto trace = std::make_unique<AdaptiveAttackerTrace>(
                    atk, slot.adaptive, mapper, seed);
                // The feedback view is this System; sampling is const
                // and fires only from next(), after construction.
                trace->bindFeedback(this, i);
                traces.push_back(std::move(trace));
            } else {
                traces.push_back(
                    std::make_unique<AttackerTrace>(atk, mapper, seed));
            }
        }
        cores.push_back(std::make_unique<Core>(
            i, traces.back().get(), this, config_.core, benignSlot[i]));
    }
}

ThrottleFeedback
System::sampleThrottleFeedback(ThreadId thread) const
{
    ThrottleFeedback fb;
    if (bh) {
        fb.score = bh->score(thread);
        fb.suspect =
            bh->isSuspect(thread) || bh->wasRecentSuspect(thread);
    }
    fb.quota = mshr.quota(thread);
    fb.fullQuota = mshr.fullQuota();
    fb.rejectStallCycles = cores[thread]->rejectStallCycles();
    return fb;
}

System::~System() = default;

unsigned
System::channelOf(Addr addr) const
{
    // A single-channel map always decodes channel 0; skip the decode.
    if (mcs.size() == 1)
        return 0;
    return mapper.decode(addr).channel;
}

bool
System::allChannelsHaveWriteRoom() const
{
    for (const auto &mc : mcs)
        if (!mc->canEnqueueWrite())
            return false;
    return true;
}

AccessOutcome
System::load(ThreadId thread, Addr addr, bool uncached, std::uint64_t token)
{
    if (uncached) {
        if (!mshr.canAllocate(thread)) {
            bool quota = mshr.totalInflight() < mshr.fullQuota();
            if (quota)
                mshr.noteQuotaRejection();
            rejectCountsQuota[thread] = quota;
            rejectTouchesLlc[thread] = false;
            return AccessOutcome::kRejected;
        }
        MemoryController &mc = *mcs[channelOf(addr)];
        if (!mc.canEnqueueRead()) {
            rejectCountsQuota[thread] = false;
            rejectTouchesLlc[thread] = false;
            return AccessOutcome::kRejected;
        }
        Addr key = kUncachedKeyBase + uncachedKeyCounter++;
        mshr.allocate(key, thread, false);
        mshr.merge(key, MshrWaiter{thread, token, true}, false);
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr;
        req.thread = thread;
        req.token = key;
        req.uncached = true;
        mc.enqueueRead(req, now);
        return AccessOutcome::kQueued;
    }

    Addr line = lineOf(addr);
    if (llc.access(line, false))
        return AccessOutcome::kHit;

    if (mshr.has(line)) {
        if (config_.bluntThrottle &&
            mshr.inflightOf(thread) >= mshr.quota(thread)) {
            mshr.noteQuotaRejection();
            rejectCountsQuota[thread] = true;
            rejectTouchesLlc[thread] = true;
            return AccessOutcome::kRejected;
        }
        mshr.merge(line, MshrWaiter{thread, token, true}, false);
        return AccessOutcome::kQueued;
    }
    if (!mshr.canAllocate(thread)) {
        bool quota = mshr.totalInflight() < mshr.fullQuota();
        if (quota)
            mshr.noteQuotaRejection();
        rejectCountsQuota[thread] = quota;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }
    // Room for the fill read plus a worst-case writeback: the victim's
    // channel is unknown until the LLC picks it, so all channels need
    // write space (identical to the old check with one channel).
    MemoryController &fill = *mcs[channelOf(line)];
    if (!fill.canEnqueueRead() || !allChannelsHaveWriteRoom()) {
        rejectCountsQuota[thread] = false;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }

    Llc::Victim victim;
    llc.allocate(line, false, &victim);
    if (victim.dirtyWriteback) {
        Request wb;
        wb.type = Request::Type::kWrite;
        wb.addr = victim.writebackLine;
        wb.thread = thread;
        mcs[channelOf(victim.writebackLine)]->enqueueWrite(wb, now);
    }
    mshr.allocate(line, thread, false);
    mshr.merge(line, MshrWaiter{thread, token, true}, false);

    Request req;
    req.type = Request::Type::kRead;
    req.addr = line;
    req.thread = thread;
    req.token = line;
    fill.enqueueRead(req, now);
    return AccessOutcome::kQueued;
}

AccessOutcome
System::store(ThreadId thread, Addr addr, bool uncached)
{
    if (uncached) {
        MemoryController &mc = *mcs[channelOf(addr)];
        if (!mc.canEnqueueWrite()) {
            rejectCountsQuota[thread] = false;
            rejectTouchesLlc[thread] = false;
            return AccessOutcome::kRejected;
        }
        Request req;
        req.type = Request::Type::kWrite;
        req.addr = addr;
        req.thread = thread;
        req.uncached = true;
        mc.enqueueWrite(req, now);
        return AccessOutcome::kHit;
    }

    Addr line = lineOf(addr);
    if (llc.access(line, true))
        return AccessOutcome::kHit;

    if (mshr.has(line)) {
        mshr.merge(line, MshrWaiter{thread, 0, false}, true);
        return AccessOutcome::kHit;
    }
    if (!mshr.canAllocate(thread)) {
        bool quota = mshr.totalInflight() < mshr.fullQuota();
        if (quota)
            mshr.noteQuotaRejection();
        rejectCountsQuota[thread] = quota;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }
    MemoryController &fill = *mcs[channelOf(line)];
    if (!fill.canEnqueueRead() || !allChannelsHaveWriteRoom()) {
        rejectCountsQuota[thread] = false;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }

    Llc::Victim victim;
    llc.allocate(line, true, &victim);
    if (victim.dirtyWriteback) {
        Request wb;
        wb.type = Request::Type::kWrite;
        wb.addr = victim.writebackLine;
        wb.thread = thread;
        mcs[channelOf(victim.writebackLine)]->enqueueWrite(wb, now);
    }
    mshr.allocate(line, thread, true);

    Request req;
    req.type = Request::Type::kRead; // Write-allocate fill.
    req.addr = line;
    req.thread = thread;
    req.token = line;
    fill.enqueueRead(req, now);
    return AccessOutcome::kHit;
}

void
System::handleReadComplete(const Request &req, Cycle done_cycle)
{
    ++completedReads;
    if (req.thread < cores.size() && benignSlot[req.thread])
        latencyHist.record(cyclesToNs(done_cycle - req.enqueueCycle));

    std::vector<MshrWaiter> waiters;
    bool any_store = mshr.release(req.token, &waiters);
    if (!req.uncached && any_store)
        llc.setDirty(lineOf(req.addr));
    for (const MshrWaiter &w : waiters)
        cores[w.thread]->completeLoad(w.token, done_cycle);
}

void
System::fillRejectSnapshot(RejectSnapshot *snap) const
{
    snap->mshrInflight = mshr.totalInflight();
    snap->readDepth.clear();
    snap->writeDepth.clear();
    snap->readsServed.clear();
    snap->writesServed.clear();
    for (const auto &mc : mcs) {
        snap->readDepth.push_back(mc->readQueueDepth());
        snap->writeDepth.push_back(mc->writeQueueDepth());
        snap->readsServed.push_back(mc->readsServed());
        snap->writesServed.push_back(mc->writesServed());
    }
    snap->completedReads = completedReads;
    snap->quotaWrites = mshr.quotaWrites();
    snap->quotas.clear();
    snap->inflight.clear();
    for (ThreadId t = 0; t < config_.numCores; ++t) {
        snap->quotas.push_back(mshr.quota(t));
        snap->inflight.push_back(mshr.inflightOf(t));
    }
}

Cycle
System::nextWakeCycle() const
{
    Cycle wake = mcs[0]->nextEventCycle(now);
    for (std::size_t ch = 1; ch < mcs.size(); ++ch)
        wake = std::min(wake, mcs[ch]->nextEventCycle(now));
    for (const auto &core : cores)
        wake = std::min(wake, core->nextEventCycle(now));
    if (bh) {
        // The dense loop only calls rollWindows at roll-grid marks, so
        // the next effective boundary is the first such mark at or after
        // the window end (same grid as isRollCycle — structurally, via
        // the shared helpers).
        Cycle at = std::max(now + 1, bh->nextWindowBoundary());
        wake = std::min(wake, nextRollCycleAtOrAfter(at));
    }
    return std::max(wake, now + 1);
}

void
System::accountSkippedCycles(Cycle skipped)
{
    for (unsigned i = 0; i < cores.size(); ++i) {
        if (!cores[i]->stalledOnReject())
            continue;
        cores[i]->addRejectStallCycles(skipped);
        if (rejectCountsQuota[i])
            mshr.addQuotaRejections(skipped);
        if (rejectTouchesLlc[i])
            llc.addMisses(skipped); // Each retry probes and misses.
    }
    for (auto &mc : mcs)
        mc->accountSkippedCycles(now + 1, now + skipped);
}

RunResult
System::run(std::uint64_t benign_target, Cycle max_cycles)
{
    for (auto &core : cores)
        if (core->benign())
            core->setTarget(benign_target);

    if (resumePending_) {
        // A restored snapshot re-enters the loop exactly where the
        // interrupted run left it: `now`, the skip loop's prevSnap, and
        // every component came from loadState(). Saving is side-effect-
        // free, so from here on the trajectory is the uninterrupted one.
        resumePending_ = false;
    } else {
        if (!envFlag("BH_DENSE_TICK"))
            fillRejectSnapshot(&prevSnap);
        now = 0;
    }

    return runLoop(max_cycles, benign_target);
}

RunResult
System::runDelta(std::uint64_t delta_insts, Cycle max_extra_cycles)
{
    for (auto &core : cores)
        if (core->benign())
            core->setWindowTarget(core->retired() + delta_insts);

    // The previous phase already ticked cycle `now` (its loop breaks
    // after the ticks); re-entering at the same cycle would tick it
    // twice.
    if (now > 0)
        ++now;
    resumePending_ = false;
    if (!envFlag("BH_DENSE_TICK"))
        fillRejectSnapshot(&prevSnap);
    return runLoop(now + max_extra_cycles, 0);
}

RunResult
System::runLoop(Cycle max_cycles, std::uint64_t ipc_target)
{
    // Reference mode: tick every cycle. The event-driven loop below must
    // match it bit for bit (test_system_skip compares both). ACT-delaying
    // mechanisms (BlockHammer) ride the event loop too: scheduler probes
    // are const, epoch state rolls in IMitigation::advanceTo() at the top
    // of every controller tick, and the controller's wake set includes
    // the mechanism's next release/epoch-boundary cycle.
    const bool dense = envFlag("BH_DENSE_TICK");

    // Checkpoint cadence marks, armed past the current progress so a
    // just-resumed run does not immediately re-save its own snapshot.
    const bool ckpt_armed =
        !checkpoint_.path.empty() &&
        (checkpoint_.everyInsts > 0 || checkpoint_.everyCycles > 0);
    std::uint64_t inst_mark = 0;
    Cycle cycle_mark = 0;
    auto min_benign_retired = [this]() {
        std::uint64_t min_retired = UINT64_MAX;
        for (const auto &core : cores)
            if (core->benign())
                min_retired = std::min(min_retired, core->retired());
        return min_retired == UINT64_MAX ? 0 : min_retired;
    };
    if (ckpt_armed) {
        if (checkpoint_.everyInsts)
            inst_mark = (min_benign_retired() / checkpoint_.everyInsts + 1) *
                        checkpoint_.everyInsts;
        if (checkpoint_.everyCycles)
            cycle_mark = (now / checkpoint_.everyCycles + 1) *
                         checkpoint_.everyCycles;
    }

    // Progress reporting rides the same cadence machinery but is armed
    // independently of snapshots: a sweep worker heartbeats without
    // checkpointing, a checkpointed local run never pays for callbacks.
    const bool prog_armed =
        checkpoint_.onProgress && checkpoint_.progressEveryInsts > 0;
    std::uint64_t prog_mark =
        prog_armed ? (min_benign_retired() /
                          checkpoint_.progressEveryInsts +
                      1) *
                         checkpoint_.progressEveryInsts
                   : 0;

    while (now < max_cycles) {
        if (ckpt_armed) {
            // Top-of-iteration is the one place a snapshot can cut the
            // loop: nothing at cycle `now` has run yet, so resume re-
            // enters here with bit-identical state.
            bool due = false;
            if (checkpoint_.everyCycles && now >= cycle_mark) {
                due = true;
                cycle_mark = (now / checkpoint_.everyCycles + 1) *
                             checkpoint_.everyCycles;
            }
            if (checkpoint_.everyInsts) {
                std::uint64_t retired = min_benign_retired();
                if (retired >= inst_mark) {
                    due = true;
                    inst_mark = (retired / checkpoint_.everyInsts + 1) *
                                checkpoint_.everyInsts;
                }
            }
            if (due) {
                std::string error;
                if (!saveSnapshot(checkpoint_.path, &error))
                    std::fprintf(stderr, "checkpoint failed: %s\n",
                                 error.c_str());
            }
        }
        if (prog_armed) {
            std::uint64_t retired = min_benign_retired();
            if (retired >= prog_mark) {
                checkpoint_.onProgress(retired);
                prog_mark = (retired / checkpoint_.progressEveryInsts + 1) *
                            checkpoint_.progressEveryInsts;
            }
        }

        bool all_done = true;
        for (auto &core : cores) {
            core->tick(now);
            if (core->benign() && !core->reachedTarget())
                all_done = false;
        }
        for (auto &mc : mcs)
            mc->tick(now);
        if (bh && isRollCycle(now))
            bh->rollWindows(now);
        if (all_done)
            break;
        Cycle next = now + 1;
        if (!dense) {
            // A tick with any memory-system activity can flip a
            // reject-blocked core's retry outcome at the very next
            // cycle, so that cycle must be simulated, not skipped. The
            // snapshot's monotone counters make a comparison against an
            // older snapshot sound: equality proves nothing happened in
            // between.
            bool retry_state_changed = false;
            bool any_reject = false;
            for (const auto &core : cores)
                if (core->stalledOnReject()) {
                    any_reject = true;
                    break;
                }
            if (any_reject) {
                fillRejectSnapshot(&curSnap);
                if (!(curSnap == prevSnap)) {
                    std::swap(curSnap, prevSnap);
                    retry_state_changed = true;
                }
            }
            if (!retry_state_changed) {
                // Jump to the next cycle anything can happen. Every
                // skipped cycle is a no-op tick for every component
                // except the batched reject-stall accounting.
                Cycle wake = std::min(nextWakeCycle(), max_cycles);
                if (wake > next) {
                    accountSkippedCycles(wake - next);
                    next = wake;
                }
            }
        }
        now = next;
    }

    RunResult result;
    result.cycles = now;
    result.hitCycleCap = now >= max_cycles;
    // Aggregate over channels: energies and action counts sum (each
    // channel's background term covers that channel's own ranks).
    for (const auto &mc : mcs) {
        const EnergyAccounting &energy = mc->engine().energy();
        result.energyNj += energy.totalNj(now, config_.spec.org.ranks);
        result.preventiveEnergyNj += energy.preventiveNj();
        result.preventiveActions += mc->preventiveActions();
        result.demandActs += mc->demandActs();
    }
    result.suspectMarks = bh ? bh->suspectMarks() : 0;
    result.quotaRejections = mshr.quotaRejections();
    result.demandActsPerThread = demandActsByThread_;
    if (bh) {
        for (unsigned t = 0; t < cores.size(); ++t) {
            result.bhScores.push_back(bh->score(t));
            result.bhQuotas.push_back(bh->quota(t));
        }
    }
    // Oracle: violations sum, the hottest row is the max across channels.
    for (const auto &oracle : oracles) {
        result.oracleViolations += oracle->violations();
        result.oracleMaxCount =
            std::max(result.oracleMaxCount, oracle->maxCount());
    }
    result.benignReadLatencyNs = latencyHist;
    if (!censuses.empty()) {
        // Censuses run on the same window grid; merge element-wise,
        // padding to the longest channel's window list.
        for (const auto &census : censuses)
            census->flush(now);
        for (const auto &census : censuses) {
            const auto &windows = census->windows();
            if (windows.size() > result.censusWindows.size())
                result.censusWindows.resize(windows.size());
            for (std::size_t i = 0; i < windows.size(); ++i) {
                RowCensus::WindowSummary &w = result.censusWindows[i];
                w.totalActs += windows[i].totalActs;
                w.rows512 += windows[i].rows512;
                w.rows128 += windows[i].rows128;
                w.rows64 += windows[i].rows64;
            }
        }
    }

    for (unsigned i = 0; i < cores.size(); ++i) {
        CoreResult cr;
        cr.name = traces[i]->name();
        cr.benign = cores[i]->benign();
        cr.retired = cores[i]->retired();
        cr.finishCycle = cores[i]->finishCycle();
        cr.rejectStalls = cores[i]->rejectStallCycles();
        if (cr.benign && cr.finishCycle > 0 && ipc_target > 0) {
            cr.ipc = static_cast<double>(ipc_target) /
                     static_cast<double>(cr.finishCycle);
        } else if (cr.benign) {
            // Hit the cycle cap before the target: report progress IPC.
            cr.ipc = static_cast<double>(cr.retired) /
                     static_cast<double>(now ? now : 1);
        } else {
            cr.ipc = static_cast<double>(cr.retired) /
                     static_cast<double>(now ? now : 1);
        }
        result.cores.push_back(cr);
    }
    return result;
}

// --- Statistical-sampling fast-forward ---------------------------------

namespace {

/**
 * Mitigation host swapped in during fastForward(): preventive actions
 * have no timing or energy cost (there is no detailed controller to
 * absorb them), but the observer notifications and row protections the
 * MemoryController would emit still fire, so BreakHammer's
 * scores/quotas and the oracle's counters keep evolving through the
 * skipped interval — the "functional warming" of the mitigation state.
 */
class FastForwardHost : public IMitigationHost
{
  public:
    IActionObserver *observer = nullptr;
    HammerOracle *oracle = nullptr;
    Cycle now = 0;

    void
    performVictimRefresh(unsigned flat_bank, unsigned row,
                         double weight) override
    {
        if (observer != nullptr)
            observer->onPreventiveAction(weight, now);
        if (oracle != nullptr)
            oracle->onRowProtected(flat_bank, row);
    }

    void
    performMigration(unsigned flat_bank, unsigned row) override
    {
        if (observer != nullptr)
            observer->onPreventiveAction(1.0, now);
        if (oracle != nullptr)
            oracle->onRowProtected(flat_bank, row);
    }

    void
    performRfm(unsigned flat_bank, double weight) override
    {
        (void)flat_bank;
        if (observer != nullptr)
            observer->onPreventiveAction(weight, now);
    }

    void
    performAlertBackoff(unsigned rfms, double weight) override
    {
        (void)rfms;
        if (observer != nullptr)
            observer->onPreventiveAction(weight, now);
    }

    void
    performTrackerAccess(unsigned flat_bank, Cycle duration,
                         double weight) override
    {
        (void)flat_bank;
        (void)duration;
        if (observer != nullptr)
            observer->onPreventiveAction(weight, now);
    }

    void
    notifyRowProtected(unsigned flat_bank, unsigned row) override
    {
        if (oracle != nullptr)
            oracle->onRowProtected(flat_bank, row);
    }

    void
    creditDirectScore(ThreadId thread, double amount) override
    {
        if (observer != nullptr)
            observer->onDirectScore(thread, amount, now);
    }
};

} // namespace

void
System::fastForward(std::uint64_t delta_insts)
{
    if (delta_insts == 0)
        return;
    BH_ASSERT(now > 0, "fast-forward needs a prior detailed phase");
    resumePending_ = false;

    // Per-core functional rates, estimated from the whole detailed
    // history so far; the slowest benign core's rate converts the
    // instruction delta into the interval's cycle span.
    std::vector<double> rate(cores.size(), 0.0);
    double slowest_benign = 0.0;
    for (unsigned i = 0; i < cores.size(); ++i) {
        rate[i] = static_cast<double>(cores[i]->retired()) /
                  static_cast<double>(now);
        if (cores[i]->benign() && rate[i] > 0.0 &&
            (slowest_benign == 0.0 || rate[i] < slowest_benign))
            slowest_benign = rate[i];
    }
    BH_ASSERT(slowest_benign > 0.0,
              "fast-forward needs a benign core with warm progress");
    Cycle ff_cycles = static_cast<Cycle>(std::ceil(
        static_cast<double>(delta_insts) / slowest_benign));
    const Cycle start = now;
    const Cycle end = start + ff_cycles;

    std::vector<std::uint64_t> total(cores.size(), 0);
    for (unsigned i = 0; i < cores.size(); ++i)
        total[i] = static_cast<std::uint64_t>(
            rate[i] * static_cast<double>(ff_cycles));

    // Drop all in-flight timing state as one coupled set: a stale
    // completion routed to a cleared core slot would be fatal.
    mshr.clearInflight();
    for (auto &mc : mcs)
        mc->beginFastForward();
    for (auto &core : cores)
        core->resetPipeline();

    // One host per channel so row protections route to that channel's
    // oracle; BreakHammer observes them all.
    std::vector<FastForwardHost> hosts(mcs.size());
    for (std::size_t ch = 0; ch < mcs.size(); ++ch) {
        hosts[ch].observer = bh.get();
        hosts[ch].oracle = oracles.empty() ? nullptr : oracles[ch].get();
        hosts[ch].now = start;
        if (mitigations[ch])
            mitigations[ch]->setHost(&hosts[ch]);
    }

    // Functional open-row table, seeded from the timing engines' last
    // detailed view, indexed [channel * banks + flat bank]. Row
    // transitions here are what drive the warming commits below; the
    // engines' own bank state is left as-is and re-converges during the
    // detailed warm-up phase that follows.
    unsigned banks = config_.spec.org.totalBanks();
    std::vector<long> openRow(mcs.size() * banks, -1);
    for (std::size_t ch = 0; ch < mcs.size(); ++ch)
        for (unsigned fb = 0; fb < banks; ++fb) {
            const BankState &bank = mcs[ch]->engine().bank(fb);
            if (bank.open)
                openRow[ch * banks + fb] =
                    static_cast<long>(bank.openRow);
        }

    auto dramAccess = [&](Addr addr, ThreadId thread, Cycle at) {
        DramAddress da = mapper.decode(addr);
        unsigned fb = mapper.flatBank(da);
        unsigned ch = da.channel;
        if (openRow[ch * banks + fb] == static_cast<long>(da.row))
            return;
        openRow[ch * banks + fb] = static_cast<long>(da.row);
        ++demandActsByThread_[thread];
        if (!oracles.empty())
            oracles[ch]->onActivate(fb, da.row);
        if (!censuses.empty())
            censuses[ch]->recordAct(fb, da.row, at);
        if (bh)
            bh->onDemandActivate(thread, fb, at);
        if (mitigations[ch])
            mitigations[ch]->commitAct(fb, da.row, thread, at);
    };
    auto touch = [&](ThreadId thread, const TraceRecord &r, Cycle at) {
        if (r.uncached) {
            dramAccess(r.addr, thread, at);
            return;
        }
        Addr line = lineOf(r.addr);
        if (llc.access(line, r.isWrite))
            return;
        Llc::Victim victim;
        llc.allocate(line, r.isWrite, &victim);
        if (victim.dirtyWriteback)
            dramAccess(victim.writebackLine, thread, at);
        dramAccess(line, thread, at);
    };

    // Virtual clock: advance in roll-grid slices so BreakHammer windows,
    // refresh sweeps, and mitigation epochs keep rolling on their usual
    // cadence while the cores interleave at their observed rates.
    std::vector<std::uint64_t> advanced(cores.size(), 0);
    Cycle t = start;
    while (t < end) {
        Cycle next = std::min<Cycle>(end, nextRollCycleAtOrAfter(t + 1));
        for (auto &host : hosts)
            host.now = next;
        for (unsigned i = 0; i < cores.size(); ++i) {
            std::uint64_t planned =
                next == end
                    ? total[i]
                    : static_cast<std::uint64_t>(
                          rate[i] * static_cast<double>(next - start));
            if (planned > total[i])
                planned = total[i];
            if (planned > advanced[i]) {
                ThreadId id = static_cast<ThreadId>(i);
                cores[i]->functionalAdvance(
                    planned - advanced[i],
                    [&](const TraceRecord &r) { touch(id, r, next); });
                advanced[i] = planned;
            }
        }
        for (auto &mc : mcs)
            mc->fastForwardTo(next);
        if (bh && isRollCycle(next))
            bh->rollWindows(next);
        t = next;
    }

    for (std::size_t ch = 0; ch < mcs.size(); ++ch)
        if (mitigations[ch])
            mitigations[ch]->setHost(mcs[ch].get());
    now = end;
    fillRejectSnapshot(&prevSnap);
}

// --- Snapshot / checkpoint ---------------------------------------------

void
System::setCheckpoint(const CheckpointConfig &config)
{
    checkpoint_ = config;
}

std::uint64_t
System::configFingerprint() const
{
    // Serialize every constructor input that shapes the object graph and
    // hash the bytes; the DRAM spec and derived thresholds are functions
    // of these (spec timing side effects are applied by the caller, but
    // only as a function of mechanism + nRh, both included).
    StateWriter w;
    w.u64(config_.numCores);
    w.u64(config_.spec.org.channels);
    w.u64(static_cast<std::uint64_t>(config_.interleave));
    w.u64(config_.spec.org.ranks);
    w.u64(config_.spec.org.bankGroups);
    w.u64(config_.spec.org.banksPerGroup);
    w.u64(config_.spec.org.rowsPerBank);
    const DramTimingNs &t = config_.spec.timingNs;
    for (double ns : {t.tRCD, t.tRP, t.tRAS, t.tCL, t.tCWL, t.tBL,
                      t.tCCD, t.tRRD_L, t.tRRD_S, t.tFAW, t.tWR, t.tRTP,
                      t.tWTR, t.tRTW, t.tRFC, t.tREFI, t.tRFM, t.tREFW})
        w.d(ns);
    w.u64(config_.mc.readQueueSize);
    w.u64(config_.mc.writeQueueSize);
    w.u64(config_.mc.frfcfsCap);
    w.u64(config_.mc.wqHighWatermark);
    w.u64(config_.mc.wqLowWatermark);
    w.u64(config_.mc.commandSpacing);
    w.u64(config_.mc.victimRowsPerRefresh);
    w.d(config_.mc.migrationLatencyNs);
    w.u64(config_.mc.refsPerSweep);
    w.u64(config_.llc.sizeBytes);
    w.u64(config_.llc.ways);
    w.u64(config_.llc.hitLatency);
    w.u64(config_.mshrEntries);
    w.u64(config_.core.windowSize);
    w.u64(config_.core.width);
    w.u64(config_.core.llcHitLatency);
    w.u64(static_cast<std::uint64_t>(config_.mitigation));
    w.u64(config_.nRh);
    w.b(config_.breakHammer);
    w.u64(config_.bh.window);
    w.d(config_.bh.thThreat);
    w.d(config_.bh.thOutlier);
    w.u64(config_.bh.pOldSuspect);
    w.u64(config_.bh.pNewSuspect);
    w.u64(static_cast<std::uint64_t>(config_.bh.attribution));
    w.b(config_.bh.singleCounterSet);
    w.b(config_.bluntThrottle);
    w.b(config_.enableOracle);
    w.b(config_.enableCensus);
    w.u64(config_.seed);
    for (const WorkloadSlot &slot : slots_) {
        w.u64(static_cast<std::uint64_t>(slot.kind));
        w.str(slot.appName);
        w.u64(static_cast<std::uint64_t>(slot.attacker.pattern));
        w.u64(slot.attacker.numAggressors);
        w.u64(slot.attacker.rowBase);
        w.u64(slot.attacker.rowSpacing);
        w.u64(slot.attacker.numBanks);
        w.u64(slot.attacker.bubbles);
        w.u64(slot.adaptive.observeEvery);
        w.u64(slot.adaptive.maxBubbles);
        w.u64(slot.adaptive.rotationStride);
        w.u64(slot.adaptive.calmStreak);
        w.u64(slot.adaptive.groupSize);
        w.u64(slot.adaptive.slotIndex);
        w.u64(slot.adaptive.handoffEpoch);
    }
    return fnv1a64(w.data().data(), w.data().size());
}

void
System::saveState(StateWriter &w) const
{
    w.tag("system");
    w.u64(now);
    w.u64(uncachedKeyCounter);
    w.u64(completedReads);
    latencyHist.saveState(w);
    saveBoolVector(w, rejectCountsQuota);
    saveBoolVector(w, rejectTouchesLlc);
    saveU64VectorBulk(w, demandActsByThread_);

    // The skip loop's retry-state snapshot: restoring it keeps a resumed
    // run on the interrupted run's exact skip trajectory.
    w.tag("rejectsnap");
    w.u64(prevSnap.mshrInflight);
    saveU64VectorBulk(w, prevSnap.readDepth);
    saveU64VectorBulk(w, prevSnap.writeDepth);
    saveU64VectorBulk(w, prevSnap.readsServed);
    saveU64VectorBulk(w, prevSnap.writesServed);
    w.u64(prevSnap.completedReads);
    w.u64(prevSnap.quotaWrites);
    saveUnsignedVector(w, prevSnap.quotas);
    saveUnsignedVector(w, prevSnap.inflight);

    llc.saveState(w);
    mshr.saveState(w);

    // One section per channel: controller, then its mitigation/oracle/
    // census instances (presence flags match the constructed graph).
    w.tag("channels");
    w.u64(mcs.size());
    for (std::size_t ch = 0; ch < mcs.size(); ++ch) {
        mcs[ch]->saveState(w);
        w.b(mitigations[ch] != nullptr);
        if (mitigations[ch])
            mitigations[ch]->saveState(w);
        w.b(!oracles.empty());
        if (!oracles.empty())
            oracles[ch]->saveState(w);
        w.b(!censuses.empty());
        if (!censuses.empty())
            censuses[ch]->saveState(w);
    }

    w.b(bh != nullptr);
    if (bh)
        bh->saveState(w);

    w.u64(cores.size());
    for (const auto &core : cores)
        core->saveState(w);
}

void
System::loadState(StateReader &r)
{
    r.tag("system");
    now = r.u64();
    uncachedKeyCounter = r.u64();
    completedReads = r.u64();
    latencyHist.loadState(r);
    loadBoolVector(r, &rejectCountsQuota);
    loadBoolVector(r, &rejectTouchesLlc);
    loadU64VectorBulk(r, &demandActsByThread_);
    if (!r.ok() || rejectCountsQuota.size() != config_.numCores ||
        rejectTouchesLlc.size() != config_.numCores ||
        demandActsByThread_.size() != config_.numCores) {
        r.fail();
        return;
    }

    r.tag("rejectsnap");
    prevSnap.mshrInflight = static_cast<unsigned>(r.u64());
    loadU64VectorBulk(r, &prevSnap.readDepth);
    loadU64VectorBulk(r, &prevSnap.writeDepth);
    loadU64VectorBulk(r, &prevSnap.readsServed);
    loadU64VectorBulk(r, &prevSnap.writesServed);
    prevSnap.completedReads = r.u64();
    prevSnap.quotaWrites = r.u64();
    loadUnsignedVector(r, &prevSnap.quotas);
    loadUnsignedVector(r, &prevSnap.inflight);

    llc.loadState(r);
    mshr.loadState(r);

    r.tag("channels");
    if (r.u64() != mcs.size()) {
        r.fail();
        return;
    }
    for (std::size_t ch = 0; ch < mcs.size(); ++ch) {
        mcs[ch]->loadState(r);
        if (r.b() != (mitigations[ch] != nullptr)) {
            r.fail();
            return;
        }
        if (mitigations[ch])
            mitigations[ch]->loadState(r);
        if (r.b() != !oracles.empty()) {
            r.fail();
            return;
        }
        if (!oracles.empty())
            oracles[ch]->loadState(r);
        if (r.b() != !censuses.empty()) {
            r.fail();
            return;
        }
        if (!censuses.empty())
            censuses[ch]->loadState(r);
    }

    if (r.b() != (bh != nullptr)) {
        r.fail();
        return;
    }
    if (bh)
        bh->loadState(r);

    if (r.u64() != cores.size()) {
        r.fail();
        return;
    }
    for (auto &core : cores)
        core->loadState(r);
}

std::string
System::snapshotBlob() const
{
    StateWriter w;
    w.reserve(3 << 20);
    w.str(kSnapshotMagic);
    w.u32(kSnapshotVersion);
    w.str(checkpoint_.identity);
    w.u64(configFingerprint());
    saveState(w);
    std::string blob = w.take();
    std::uint64_t checksum = fnv1a64Chunked(blob.data(), blob.size());
    StateWriter tail;
    tail.u64(checksum);
    blob += tail.data();
    return blob;
}

bool
System::saveSnapshot(const std::string &path, std::string *error) const
{
    return writeFileAtomic(path, snapshotBlob(), error);
}

bool
System::resumeFromSnapshot(const std::string &path, std::string *error)
{
    std::string blob;
    if (!readFile(path, &blob)) {
        if (error)
            *error = "no snapshot at " + path;
        return false;
    }
    if (!restoreSnapshotBlob(blob, error))
        return false;
    BH_LOG("resumed snapshot %s at cycle %llu", path.c_str(),
           static_cast<unsigned long long>(now));
    return true;
}

bool
System::restoreSnapshotBlob(const std::string &blob, std::string *error)
{
    if (blob.size() < 8) {
        if (error)
            *error = "snapshot too short";
        return false;
    }
    // Verify the checksum over the raw bytes before interpreting any of
    // them: a torn or bit-flipped file must read as "no snapshot".
    StateReader tail(blob.substr(blob.size() - 8));
    std::uint64_t stored = tail.u64();
    std::uint64_t actual = fnv1a64Chunked(blob.data(), blob.size() - 8);
    if (stored != actual) {
        if (error)
            *error = "snapshot checksum mismatch (torn write?)";
        return false;
    }

    // Borrow the payload instead of copying it: blobs are megabytes and
    // the sampling driver restores one per measurement window.
    StateReader r(std::string_view(blob.data(), blob.size() - 8),
                  StateReader::Borrow{});
    if (r.str() != kSnapshotMagic) {
        if (error)
            *error = "not a snapshot file";
        return false;
    }
    if (r.u32() != kSnapshotVersion) {
        if (error)
            *error = "snapshot format version mismatch";
        return false;
    }
    std::string identity = r.str();
    if (!checkpoint_.identity.empty() &&
        identity != checkpoint_.identity) {
        if (error)
            *error = "snapshot identity mismatch";
        return false;
    }
    if (r.u64() != configFingerprint()) {
        if (error)
            *error = "snapshot was taken under a different configuration";
        return false;
    }

    loadState(r);
    if (!r.ok() || !r.atEnd()) {
        if (error)
            *error = "snapshot payload is malformed";
        return false;
    }
    resumePending_ = true;
    return true;
}

} // namespace bh
