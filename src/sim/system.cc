#include "sim/system.h"

#include <algorithm>

#include "common/env.h"
#include "common/log.h"
#include "mitigation/blockhammer.h"

namespace bh {

namespace {

/** MSHR key space for uncached requests (disjoint from line addresses). */
constexpr Addr kUncachedKeyBase = 1ull << 63;

/**
 * Cadence of the idle-path BreakHammer rollWindows call in System::run.
 * The skip-ahead wake-up for window boundaries rounds up to this same
 * grid — the two sites must never drift apart.
 */
constexpr Cycle kRollPeriodMask = 0xfff;

Addr
lineOf(Addr addr)
{
    return addr & ~static_cast<Addr>(kCacheLineBytes - 1);
}

} // namespace

std::vector<double>
RunResult::benignIpcs() const
{
    std::vector<double> out;
    for (const CoreResult &c : cores)
        if (c.benign)
            out.push_back(c.ipc);
    return out;
}

System::System(const SystemConfig &config,
               const std::vector<WorkloadSlot> &slots)
    : config_(config),
      mapper(config.spec.org),
      llc(config.llc),
      mshr(config.mshrEntries, config.numCores)
{
    BH_ASSERT(slots.size() == config.numCores,
              "one workload slot per core required");

    mc = std::make_unique<MemoryController>(config_.spec, mapper,
                                            config_.mc);

    mitigation = createMitigation(config_.mitigation, config_.nRh,
                                  config_.spec, config_.numCores);
    if (mitigation != nullptr)
        mc->setMitigation(mitigation.get());

    if (config_.breakHammer) {
        bh = std::make_unique<BreakHammer>(config_.numCores, config_.bh,
                                           &mshr);
        mc->setObserver(bh.get());
    }

    // BlockHammer's AttackThrottler shares the MSHR throttle point.
    if (auto *bhm = dynamic_cast<BlockHammer *>(mitigation.get()))
        bhm->setThrottleTarget(&mshr);

    if (config_.enableOracle) {
        oracle = std::make_unique<HammerOracle>(config_.spec.org,
                                                config_.nRh);
        mc->onRowProtected = [this](unsigned bank, unsigned row) {
            oracle->onRowProtected(bank, row);
        };
    }
    if (config_.enableCensus)
        census = std::make_unique<RowCensus>(msToCycles(64.0));

    mc->onDemandAct = [this](unsigned bank, unsigned row, ThreadId thread,
                             Cycle cycle) {
        (void)thread;
        if (oracle)
            oracle->onActivate(bank, row);
        if (census)
            census->recordAct(bank, row, cycle);
    };
    mc->onPeriodicRefresh = [this](unsigned rank, unsigned start,
                                   unsigned rows) {
        if (oracle)
            oracle->onRefreshSweep(rank, start, rows);
    };
    mc->onReadComplete = [this](const Request &req, Cycle done) {
        handleReadComplete(req, done);
    };

    // Each core slot owns a private row region so apps never share rows.
    unsigned region = config_.spec.org.rowsPerBank / (config_.numCores * 2);
    benignSlot.resize(config_.numCores);
    rejectCountsQuota.resize(config_.numCores, false);
    rejectTouchesLlc.resize(config_.numCores, false);
    for (unsigned i = 0; i < config_.numCores; ++i) {
        const WorkloadSlot &slot = slots[i];
        std::uint64_t seed = config_.seed * 0x10001 + i * 0x9e3779b9;
        if (slot.kind == WorkloadSlot::Kind::kBenign) {
            benignSlot[i] = true;
            traces.push_back(std::make_unique<BenignTrace>(
                findApp(slot.appName), mapper, i * region, region, seed));
        } else {
            benignSlot[i] = false;
            AttackerConfig atk = slot.attacker;
            if (atk.rowBase == 0)
                atk.rowBase = i * region + 16;
            traces.push_back(
                std::make_unique<AttackerTrace>(atk, mapper, seed));
        }
        cores.push_back(std::make_unique<Core>(
            i, traces.back().get(), this, config_.core, benignSlot[i]));
    }
}

System::~System() = default;

AccessOutcome
System::load(ThreadId thread, Addr addr, bool uncached, std::uint64_t token)
{
    if (uncached) {
        if (!mshr.canAllocate(thread)) {
            bool quota = mshr.totalInflight() < mshr.fullQuota();
            if (quota)
                mshr.noteQuotaRejection();
            rejectCountsQuota[thread] = quota;
            rejectTouchesLlc[thread] = false;
            return AccessOutcome::kRejected;
        }
        if (!mc->canEnqueueRead()) {
            rejectCountsQuota[thread] = false;
            rejectTouchesLlc[thread] = false;
            return AccessOutcome::kRejected;
        }
        Addr key = kUncachedKeyBase + uncachedKeyCounter++;
        mshr.allocate(key, thread, false);
        mshr.merge(key, MshrWaiter{thread, token, true}, false);
        Request req;
        req.type = Request::Type::kRead;
        req.addr = addr;
        req.thread = thread;
        req.token = key;
        req.uncached = true;
        mc->enqueueRead(req, now);
        return AccessOutcome::kQueued;
    }

    Addr line = lineOf(addr);
    if (llc.access(line, false))
        return AccessOutcome::kHit;

    if (mshr.has(line)) {
        if (config_.bluntThrottle &&
            mshr.inflightOf(thread) >= mshr.quota(thread)) {
            mshr.noteQuotaRejection();
            rejectCountsQuota[thread] = true;
            rejectTouchesLlc[thread] = true;
            return AccessOutcome::kRejected;
        }
        mshr.merge(line, MshrWaiter{thread, token, true}, false);
        return AccessOutcome::kQueued;
    }
    if (!mshr.canAllocate(thread)) {
        bool quota = mshr.totalInflight() < mshr.fullQuota();
        if (quota)
            mshr.noteQuotaRejection();
        rejectCountsQuota[thread] = quota;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }
    if (!mc->canEnqueueRead() || !mc->canEnqueueWrite()) {
        rejectCountsQuota[thread] = false;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected; // Room for a worst-case writeback.
    }

    Llc::Victim victim;
    llc.allocate(line, false, &victim);
    if (victim.dirtyWriteback) {
        Request wb;
        wb.type = Request::Type::kWrite;
        wb.addr = victim.writebackLine;
        wb.thread = thread;
        mc->enqueueWrite(wb, now);
    }
    mshr.allocate(line, thread, false);
    mshr.merge(line, MshrWaiter{thread, token, true}, false);

    Request req;
    req.type = Request::Type::kRead;
    req.addr = line;
    req.thread = thread;
    req.token = line;
    mc->enqueueRead(req, now);
    return AccessOutcome::kQueued;
}

AccessOutcome
System::store(ThreadId thread, Addr addr, bool uncached)
{
    if (uncached) {
        if (!mc->canEnqueueWrite()) {
            rejectCountsQuota[thread] = false;
            rejectTouchesLlc[thread] = false;
            return AccessOutcome::kRejected;
        }
        Request req;
        req.type = Request::Type::kWrite;
        req.addr = addr;
        req.thread = thread;
        req.uncached = true;
        mc->enqueueWrite(req, now);
        return AccessOutcome::kHit;
    }

    Addr line = lineOf(addr);
    if (llc.access(line, true))
        return AccessOutcome::kHit;

    if (mshr.has(line)) {
        mshr.merge(line, MshrWaiter{thread, 0, false}, true);
        return AccessOutcome::kHit;
    }
    if (!mshr.canAllocate(thread)) {
        bool quota = mshr.totalInflight() < mshr.fullQuota();
        if (quota)
            mshr.noteQuotaRejection();
        rejectCountsQuota[thread] = quota;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }
    if (!mc->canEnqueueRead() || !mc->canEnqueueWrite()) {
        rejectCountsQuota[thread] = false;
        rejectTouchesLlc[thread] = true;
        return AccessOutcome::kRejected;
    }

    Llc::Victim victim;
    llc.allocate(line, true, &victim);
    if (victim.dirtyWriteback) {
        Request wb;
        wb.type = Request::Type::kWrite;
        wb.addr = victim.writebackLine;
        wb.thread = thread;
        mc->enqueueWrite(wb, now);
    }
    mshr.allocate(line, thread, true);

    Request req;
    req.type = Request::Type::kRead; // Write-allocate fill.
    req.addr = line;
    req.thread = thread;
    req.token = line;
    mc->enqueueRead(req, now);
    return AccessOutcome::kHit;
}

void
System::handleReadComplete(const Request &req, Cycle done_cycle)
{
    ++completedReads;
    if (req.thread < cores.size() && benignSlot[req.thread])
        latencyHist.record(cyclesToNs(done_cycle - req.enqueueCycle));

    std::vector<MshrWaiter> waiters;
    bool any_store = mshr.release(req.token, &waiters);
    if (!req.uncached && any_store)
        llc.setDirty(lineOf(req.addr));
    for (const MshrWaiter &w : waiters)
        cores[w.thread]->completeLoad(w.token, done_cycle);
}

void
System::fillRejectSnapshot(RejectSnapshot *snap) const
{
    snap->mshrInflight = mshr.totalInflight();
    snap->readDepth = mc->readQueueDepth();
    snap->writeDepth = mc->writeQueueDepth();
    snap->readsServed = mc->readsServed();
    snap->writesServed = mc->writesServed();
    snap->completedReads = completedReads;
    snap->quotaWrites = mshr.quotaWrites();
    snap->quotas.clear();
    snap->inflight.clear();
    for (ThreadId t = 0; t < config_.numCores; ++t) {
        snap->quotas.push_back(mshr.quota(t));
        snap->inflight.push_back(mshr.inflightOf(t));
    }
}

Cycle
System::nextWakeCycle() const
{
    Cycle wake = mc->nextEventCycle(now);
    for (const auto &core : cores)
        wake = std::min(wake, core->nextEventCycle(now));
    if (bh) {
        // The dense loop only calls rollWindows at kRollPeriodMask+1
        // marks, so the next effective boundary is the first such mark
        // at or after the window end.
        Cycle at = std::max(now + 1, bh->nextWindowBoundary());
        at = (at + kRollPeriodMask) & ~kRollPeriodMask;
        wake = std::min(wake, at);
    }
    return std::max(wake, now + 1);
}

void
System::accountSkippedCycles(Cycle skipped)
{
    for (unsigned i = 0; i < cores.size(); ++i) {
        if (!cores[i]->stalledOnReject())
            continue;
        cores[i]->addRejectStallCycles(skipped);
        if (rejectCountsQuota[i])
            mshr.addQuotaRejections(skipped);
        if (rejectTouchesLlc[i])
            llc.addMisses(skipped); // Each retry probes and misses.
    }
    mc->accountSkippedCycles(now + 1, now + skipped);
}

RunResult
System::run(std::uint64_t benign_target, Cycle max_cycles)
{
    for (auto &core : cores)
        if (core->benign())
            core->setTarget(benign_target);

    // Reference mode: tick every cycle. The event-driven loop below must
    // match it bit for bit (test_system_skip compares both). ACT-delaying
    // mechanisms (BlockHammer) ride the event loop too: scheduler probes
    // are const, epoch state rolls in IMitigation::advanceTo() at the top
    // of every controller tick, and the controller's wake set includes
    // the mechanism's next release/epoch-boundary cycle.
    const bool dense = envFlag("BH_DENSE_TICK");

    if (!dense)
        fillRejectSnapshot(&prevSnap);

    now = 0;
    while (now < max_cycles) {
        bool all_done = true;
        for (auto &core : cores) {
            core->tick(now);
            if (core->benign() && !core->reachedTarget())
                all_done = false;
        }
        mc->tick(now);
        if (bh && (now & kRollPeriodMask) == 0)
            bh->rollWindows(now);
        if (all_done)
            break;
        Cycle next = now + 1;
        if (!dense) {
            // A tick with any memory-system activity can flip a
            // reject-blocked core's retry outcome at the very next
            // cycle, so that cycle must be simulated, not skipped. The
            // snapshot's monotone counters make a comparison against an
            // older snapshot sound: equality proves nothing happened in
            // between.
            bool retry_state_changed = false;
            bool any_reject = false;
            for (const auto &core : cores)
                if (core->stalledOnReject()) {
                    any_reject = true;
                    break;
                }
            if (any_reject) {
                fillRejectSnapshot(&curSnap);
                if (!(curSnap == prevSnap)) {
                    std::swap(curSnap, prevSnap);
                    retry_state_changed = true;
                }
            }
            if (!retry_state_changed) {
                // Jump to the next cycle anything can happen. Every
                // skipped cycle is a no-op tick for every component
                // except the batched reject-stall accounting.
                Cycle wake = std::min(nextWakeCycle(), max_cycles);
                if (wake > next) {
                    accountSkippedCycles(wake - next);
                    next = wake;
                }
            }
        }
        now = next;
    }

    RunResult result;
    result.cycles = now;
    result.hitCycleCap = now >= max_cycles;
    const EnergyAccounting &energy = mc->engine().energy();
    result.energyNj = energy.totalNj(now, config_.spec.org.ranks);
    result.preventiveEnergyNj = energy.preventiveNj();
    result.preventiveActions = mc->preventiveActions();
    result.demandActs = mc->demandActs();
    result.suspectMarks = bh ? bh->suspectMarks() : 0;
    result.quotaRejections = mshr.quotaRejections();
    if (bh) {
        for (unsigned t = 0; t < cores.size(); ++t) {
            result.bhScores.push_back(bh->score(t));
            result.bhQuotas.push_back(bh->quota(t));
        }
    }
    result.oracleViolations = oracle ? oracle->violations() : 0;
    result.oracleMaxCount = oracle ? oracle->maxCount() : 0;
    result.benignReadLatencyNs = latencyHist;
    if (census) {
        census->flush(now);
        result.censusWindows = census->windows();
    }

    for (unsigned i = 0; i < cores.size(); ++i) {
        CoreResult cr;
        cr.name = traces[i]->name();
        cr.benign = cores[i]->benign();
        cr.retired = cores[i]->retired();
        cr.finishCycle = cores[i]->finishCycle();
        cr.rejectStalls = cores[i]->rejectStallCycles();
        if (cr.benign && cr.finishCycle > 0) {
            cr.ipc = static_cast<double>(benign_target) /
                     static_cast<double>(cr.finishCycle);
        } else if (cr.benign) {
            // Hit the cycle cap before the target: report progress IPC.
            cr.ipc = static_cast<double>(cr.retired) /
                     static_cast<double>(now ? now : 1);
        } else {
            cr.ipc = static_cast<double>(cr.retired) /
                     static_cast<double>(now ? now : 1);
        }
        result.cores.push_back(cr);
    }
    return result;
}

} // namespace bh
