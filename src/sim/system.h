/**
 * @file
 * The full simulated system: cores, shared LLC + MSHRs, memory controller,
 * mitigation mechanism, BreakHammer, and the instrumentation the paper's
 * evaluation reports on.
 *
 * The System implements ICoreMemory and performs the LLC/MSHR handshake:
 * hits complete at the LLC latency, primary misses allocate an MSHR (gated
 * by the owner thread's BreakHammer quota) and enqueue a DRAM read,
 * secondary misses merge for free, uncached accesses (attacker traffic)
 * bypass the LLC but still consume MSHRs — the resource BreakHammer
 * throttles (§4.3).
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "breakhammer/breakhammer.h"
#include "cache/llc.h"
#include "cache/mshr.h"
#include "core/core.h"
#include "dram/address.h"
#include "dram/row_census.h"
#include "dram/spec.h"
#include "mem/controller.h"
#include "mitigation/factory.h"
#include "sim/oracle.h"
#include "stats/histogram.h"
#include "trace/adaptive.h"
#include "trace/attacker.h"
#include "trace/benign.h"
#include "trace/feedback_view.h"

namespace bh {

/** One core slot of a workload mix. */
struct WorkloadSlot
{
    enum class Kind
    {
        kBenign,
        kAttacker,
        /** Closed-loop adaptive attacker (trace/adaptive.h). */
        kAdaptiveAttacker,
    };

    Kind kind = Kind::kBenign;
    std::string appName;     ///< Catalog profile (benign slots).
    AttackerConfig attacker; ///< Attack pattern (both attacker kinds).
    AdaptiveConfig adaptive; ///< Adaptation loop (adaptive slots only).
};

/** Complete system configuration. */
struct SystemConfig
{
    unsigned numCores = 4;
    DramSpec spec = DramSpec::ddr5();
    /** Channel-bit placement when spec.org.channels > 1. */
    Interleave interleave = Interleave::kMop;
    LlcConfig llc;
    unsigned mshrEntries = 64;
    CoreConfig core;
    McConfig mc;
    MitigationType mitigation = MitigationType::kNone;
    unsigned nRh = 1024;
    bool breakHammer = false;
    BreakHammerConfig bh;
    /**
     * Ablation knob (§4.3 / §4.4 discussion): when set, a throttled
     * thread's secondary misses are rejected too, instead of merging into
     * in-flight MSHRs — the "blunt" throttle point the paper's design
     * deliberately avoids.
     */
    bool bluntThrottle = false;
    bool enableOracle = false;
    bool enableCensus = false;
    std::uint64_t seed = 1;
};

/** Per-core outcome of a run. */
struct CoreResult
{
    std::string name;
    bool benign = true;
    std::uint64_t retired = 0;
    Cycle finishCycle = 0; ///< When the instruction target was reached.
    double ipc = 0.0;
    std::uint64_t rejectStalls = 0;
};

/** Outcome of one simulation. */
struct RunResult
{
    std::vector<CoreResult> cores;
    Cycle cycles = 0;
    double energyNj = 0.0;
    double preventiveEnergyNj = 0.0;
    std::uint64_t preventiveActions = 0;
    std::uint64_t demandActs = 0;
    std::uint64_t suspectMarks = 0;
    std::uint64_t quotaRejections = 0;
    std::uint64_t oracleViolations = 0;
    std::uint32_t oracleMaxCount = 0;
    /**
     * Final BreakHammer introspection, per thread (§4 "feedback to system
     * software"): the active-set RowHammer-preventive score and the
     * dynamic MSHR quota at the end of the run. Empty when BreakHammer is
     * not attached.
     */
    std::vector<double> bhScores;
    std::vector<unsigned> bhQuotas;
    /**
     * Demand activations attributed per thread (summed over channels).
     * The adversarial engine's evasion accounting: an adaptive attacker
     * is better when it forces fewer preventive actions per attacker
     * activation than the fixed pattern does.
     */
    std::vector<std::uint64_t> demandActsPerThread;
    Histogram benignReadLatencyNs{2.0, 4096};
    std::vector<RowCensus::WindowSummary> censusWindows;
    bool hitCycleCap = false;

    /** IPC of benign cores, in slot order. */
    std::vector<double> benignIpcs() const;
};

/** The simulated machine. */
class System : public ICoreMemory, public IThrottleFeedbackView
{
  public:
    System(const SystemConfig &config,
           const std::vector<WorkloadSlot> &slots);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Cadence grid of the idle-path BreakHammer rollWindows call in the
     * dense reference loop AND of the skip-ahead loop's window wake-up
     * rounding: the two sites must use the same grid or the loops
     * diverge. Both go through isRollCycle()/nextRollCycleAtOrAfter()
     * below, and test_system_skip checks the helpers against each other,
     * so the coupling is structural, not a comment.
     */
    static constexpr Cycle kRollPeriodMask = 0xfff;

    /** Whether the dense loop calls rollWindows at @p cycle. */
    static constexpr bool
    isRollCycle(Cycle cycle)
    {
        return (cycle & kRollPeriodMask) == 0;
    }

    /** First roll-grid cycle at or after @p cycle (skip-ahead wake-up). */
    static constexpr Cycle
    nextRollCycleAtOrAfter(Cycle cycle)
    {
        return (cycle + kRollPeriodMask) & ~kRollPeriodMask;
    }

    /** Snapshot blob format version (bump on layout change).
     *  v2: Histogram state gained the dropped-NaN-sample counter.
     *  v3: per-channel controller/mitigation/oracle/census sections and
     *      per-channel RejectSnapshot vectors (multi-channel scale-out);
     *      stale v2 snapshots recompute, never mislead.
     *  v4: per-thread demand-ACT accumulators in the system section and
     *      adaptive-attacker trace state (adversarial engine); the
     *      config fingerprint also covers the new slot fields. */
    static constexpr std::uint32_t kSnapshotVersion = 4;

    /** Mid-run checkpointing configuration (see setCheckpoint()). */
    struct CheckpointConfig
    {
        /** Snapshot file path; empty disables checkpointing. */
        std::string path;
        /**
         * Save whenever the slowest benign core's retired-instruction
         * count crosses a multiple of this (0 = no instruction cadence).
         */
        std::uint64_t everyInsts = 0;
        /** Save whenever `now` crosses a multiple of this (0 = off). */
        Cycle everyCycles = 0;
        /**
         * Opaque caller identity (e.g. the experiment content address
         * plus a schema version) embedded in the snapshot and required
         * to match on resume; empty skips the check.
         */
        std::string identity;

        /**
         * Observation-only progress callback, invoked at the same
         * top-of-iteration point snapshots are cut, whenever the slowest
         * benign core's retired count crosses a multiple of
         * progressEveryInsts (0 disables it). The sweep-service worker
         * hangs its lease heartbeats here; like checkpointing, invoking
         * it must not (and does not) perturb the simulation.
         */
        std::function<void(std::uint64_t retired)> onProgress;
        std::uint64_t progressEveryInsts = 0;
    };

    /**
     * Arm mid-run checkpointing: run() saves a full-state snapshot to
     * config.path at the configured cadence (atomically — a kill during
     * a save leaves the previous snapshot intact). Saving is observation
     * only: a checkpointed run's results are bit-identical to an
     * uncheckpointed one.
     */
    void setCheckpoint(const CheckpointConfig &config);

    /**
     * Serialize the complete simulation state to @p path: per-core
     * pipeline and trace-cursor state, LLC tags, MSHR contents, the
     * memory controller (queues, maintenance, completions, refresh,
     * timing engine, energy counters), the mitigation mechanism,
     * BreakHammer, oracle/census when attached, RNG streams, and the
     * in-flight latency histogram. The blob is versioned, carries a
     * config fingerprint plus the caller identity, and ends in a
     * checksum; any mismatch on load falls back to recompute.
     */
    bool saveSnapshot(const std::string &path,
                      std::string *error = nullptr) const;

    /**
     * The saveSnapshot() byte string without the file write: the
     * statistical-sampling driver keeps one warm ancestor's blob in
     * memory and restores it into a fresh System per measurement window.
     */
    std::string snapshotBlob() const;

    /**
     * Restore a snapshotBlob()/saveSnapshot() byte string into this
     * freshly constructed System; same contract and checks as
     * resumeFromSnapshot() minus the file read.
     */
    bool restoreSnapshotBlob(const std::string &blob,
                             std::string *error = nullptr);

    /**
     * Restore a saveSnapshot() blob into this freshly constructed
     * System. On success the next run() continues mid-loop from the
     * snapshot cycle and produces byte-identical results to a run that
     * was never interrupted. Returns false (leaving an arbitrary partial
     * state — discard the instance) when the file is missing, damaged,
     * of another version, or from a different config/identity.
     */
    bool resumeFromSnapshot(const std::string &path,
                            std::string *error = nullptr);

    /**
     * Run until every benign core retired @p benign_target instructions
     * (or @p max_cycles elapse).
     *
     * The loop is event-driven: after ticking every component at the
     * current cycle it computes the earliest cycle at which any of them
     * can make progress (core retire, controller issue slot or
     * completion, refresh deadline, BreakHammer window boundary) and
     * jumps there, batching the stall accounting of reject-blocked cores
     * across the skipped dead cycles. Setting BH_DENSE_TICK=1 in the
     * environment selects the reference cycle-by-cycle loop instead; both
     * produce bit-identical results (test_system_skip enforces this).
     */
    RunResult run(std::uint64_t benign_target, Cycle max_cycles);

    /**
     * Continue the simulation (detailed, same event-driven loop as
     * run()) until every benign core retires @p delta_insts MORE
     * instructions than it already has, or @p max_extra_cycles elapse.
     * Unlike run() the clock is not reset and each core gets its own
     * absolute target, so back-to-back calls chain phases — the
     * statistical-sampling driver runs an unmeasured warm phase followed
     * by a measured phase and differences the two RunResults. Per-core
     * finishCycle() latches are cleared on entry; the returned CoreResult
     * ipc fields are whole-run progress rates (callers derive window IPC
     * from finishCycle deltas).
     */
    RunResult runDelta(std::uint64_t delta_insts, Cycle max_extra_cycles);

    /**
     * Jump the simulation forward by roughly @p delta_insts per benign
     * core without detailed timing (SMARTS-style functional warming).
     * In-flight pipeline/queue state is discarded, then every core
     * replays its trace functionally at the per-core rate observed so
     * far while the LLC, the mitigation mechanism's tracking tables,
     * BreakHammer's windows/scores/quotas, periodic-refresh sweeps, and
     * the row census all keep evolving; only DRAM timing, latency, and
     * energy accounting stand still. The clock advances to the cycle the
     * slowest benign core would have needed. Requires a prior detailed
     * phase (rates come from retired()/now). Follow with a detailed
     * warm-up phase (runDelta) before measuring — the drained timing
     * state and approximate row states need to re-converge.
     */
    void fastForward(std::uint64_t delta_insts);

    // --- ICoreMemory ---
    AccessOutcome load(ThreadId thread, Addr addr, bool uncached,
                       std::uint64_t token) override;
    AccessOutcome store(ThreadId thread, Addr addr, bool uncached) override;

    // --- IThrottleFeedbackView (adaptive attacker feedback surface) ---
    ThrottleFeedback
    sampleThrottleFeedback(ThreadId thread) const override;

    BreakHammer *breakHammer() { return bh.get(); }
    MemoryController &controller(unsigned ch = 0) { return *mcs[ch]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(mcs.size());
    }
    const SystemConfig &config() const { return config_; }

  private:
    void handleReadComplete(const Request &req, Cycle done_cycle);

    /**
     * The shared simulation loop + result assembly behind run() and
     * runDelta(): ticks from the current `now` until every benign core
     * reached its armed target or @p max_cycles is hit. @p ipc_target
     * is the common benign instruction target run() reports IPC against;
     * 0 (runDelta) reports whole-run progress rates instead.
     */
    RunResult runLoop(Cycle max_cycles, std::uint64_t ipc_target);

    /**
     * Stable hash over every constructor input that shapes the object
     * graph; a snapshot from a different configuration must never load.
     */
    std::uint64_t configFingerprint() const;

    /** Serialize all mutable state (the payload of saveSnapshot()). */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output; failure leaves partial state. */
    void loadState(StateReader &r);

    /** Earliest cycle > now at which any component can make progress. */
    Cycle nextWakeCycle() const;

    /**
     * Everything a rejected access's retry outcome can depend on: MSHR
     * occupancy (per thread — canAllocate() compares a thread's inflight
     * count to its quota), queue depths, and quotas. While this is
     * unchanged, reject-blocked cores repeat the identical rejection;
     * whenever a tick changes it, the next cycle must be simulated so
     * their retries re-evaluate (they might succeed).
     *
     * The monotone counters (completions, issues, quota writes) matter:
     * a single tick can mutate state and restore the same values — e.g.
     * enqueue + issue leaving the depth equal, or release +
     * re-allocation leaving every inflight count equal while mshr.has()
     * flipped for the retried line. A core rejected mid-tick may have
     * observed the intermediate state, so only a tick with *no* such
     * activity at all may be followed by skipped batched retries.
     */
    struct RejectSnapshot
    {
        unsigned mshrInflight = 0;
        /** Per channel, indexed like mcs — scalar-per-channel vectors so
         *  compensating changes across channels can never alias. */
        std::vector<std::uint64_t> readDepth;
        std::vector<std::uint64_t> writeDepth;
        std::vector<std::uint64_t> readsServed;
        std::vector<std::uint64_t> writesServed;
        std::uint64_t completedReads = 0;
        std::uint64_t quotaWrites = 0;
        std::vector<unsigned> quotas;
        std::vector<unsigned> inflight;

        bool
        operator==(const RejectSnapshot &o) const
        {
            return mshrInflight == o.mshrInflight &&
                   readDepth == o.readDepth && writeDepth == o.writeDepth &&
                   readsServed == o.readsServed &&
                   writesServed == o.writesServed &&
                   completedReads == o.completedReads &&
                   quotaWrites == o.quotaWrites &&
                   quotas == o.quotas && inflight == o.inflight;
        }
    };

    /** Fill @p snap in place (reuses its vectors' capacity). */
    void fillRejectSnapshot(RejectSnapshot *snap) const;

    /**
     * Account the per-cycle side effects of @p skipped dead cycles: each
     * reject-blocked core repeats one identical rejected retry per cycle
     * (a reject-stall, plus a quota-rejection count when the rejection
     * was quota-caused). All other component state is provably frozen
     * across the skipped range.
     */
    void accountSkippedCycles(Cycle skipped);

    /** Channel that owns @p addr (0 with a single-channel map). */
    unsigned channelOf(Addr addr) const;

    /** Worst-case writeback room: write space on every channel. */
    bool allChannelsHaveWriteRoom() const;

    // bh-audit: skip(config_) -- constructor config; loadState validates it against the stream
    SystemConfig config_;
    // bh-audit: skip(mapper) -- derived from config_.spec at construction
    AddressMap mapper;
    /** One controller per channel, index == channel id. Mitigation,
     *  oracle, and census instances pair with controllers one-to-one
     *  (tables are per-channel structures; flat banks are channel-local,
     *  so per-rank state lives in each channel's instance). BreakHammer
     *  is shared: it scores threads, not banks. */
    std::vector<std::unique_ptr<MemoryController>> mcs;
    Llc llc;
    MshrFile mshr;
    std::vector<std::unique_ptr<IMitigation>> mitigations;
    std::unique_ptr<BreakHammer> bh;
    std::vector<std::unique_ptr<HammerOracle>> oracles;
    std::vector<std::unique_ptr<RowCensus>> censuses;

    // bh-audit: skip(traces) -- each trace is serialized by its Core (Core::saveState)
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<Core>> cores;
    // bh-audit: skip(benignSlot) -- derived from the workload mix at construction
    std::vector<bool> benignSlot;

    /**
     * Per thread: whether its most recent rejection counted as a quota
     * rejection, and whether its retry path probes the LLC (cached
     * accesses count one miss per retry). Set on every kRejected return.
     * While the memory system is frozen, retries repeat the identical
     * branch, so these flags let accountSkippedCycles() replay their
     * stats without re-executing.
     */
    std::vector<bool> rejectCountsQuota;
    std::vector<bool> rejectTouchesLlc;

    Histogram latencyHist{2.0, 4096};
    std::uint64_t uncachedKeyCounter = 0;
    std::uint64_t completedReads = 0;

    /** Demand ACTs attributed per thread, summed over channels (the
     *  controllers' onDemandAct callbacks feed it). */
    std::vector<std::uint64_t> demandActsByThread_;

    /** Persistent snapshot buffers for the skip loop (no per-tick
     *  allocation; only filled while some core is reject-blocked). */
    RejectSnapshot prevSnap;
    RejectSnapshot curSnap;  // bh-audit: skip(curSnap) -- scratch buffer refilled every comparison

    Cycle now = 0;

    /** Checkpoint settings; inactive while path is empty. */
    // bh-audit: skip(checkpoint_) -- host-side harness setting, not simulation state
    CheckpointConfig checkpoint_;

    /**
     * Set by resumeFromSnapshot(): the next run() continues from the
     * restored `now`/prevSnap instead of starting at cycle 0.
     */
    // bh-audit: skip(resumePending_) -- transient resume latch, consumed by the next run()
    bool resumePending_ = false;

    /** Slots the constructor received (config fingerprint input). */
    // bh-audit: skip(slots_) -- constructor config, keyed by ExperimentConfig
    std::vector<WorkloadSlot> slots_;
};

} // namespace bh
