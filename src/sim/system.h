/**
 * @file
 * The full simulated system: cores, shared LLC + MSHRs, memory controller,
 * mitigation mechanism, BreakHammer, and the instrumentation the paper's
 * evaluation reports on.
 *
 * The System implements ICoreMemory and performs the LLC/MSHR handshake:
 * hits complete at the LLC latency, primary misses allocate an MSHR (gated
 * by the owner thread's BreakHammer quota) and enqueue a DRAM read,
 * secondary misses merge for free, uncached accesses (attacker traffic)
 * bypass the LLC but still consume MSHRs — the resource BreakHammer
 * throttles (§4.3).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "breakhammer/breakhammer.h"
#include "cache/llc.h"
#include "cache/mshr.h"
#include "core/core.h"
#include "dram/address.h"
#include "dram/row_census.h"
#include "dram/spec.h"
#include "mem/controller.h"
#include "mitigation/factory.h"
#include "sim/oracle.h"
#include "stats/histogram.h"
#include "trace/attacker.h"
#include "trace/benign.h"

namespace bh {

/** One core slot of a workload mix. */
struct WorkloadSlot
{
    enum class Kind
    {
        kBenign,
        kAttacker,
    };

    Kind kind = Kind::kBenign;
    std::string appName;     ///< Catalog profile (benign slots).
    AttackerConfig attacker; ///< Attack pattern (attacker slots).
};

/** Complete system configuration. */
struct SystemConfig
{
    unsigned numCores = 4;
    DramSpec spec = DramSpec::ddr5();
    LlcConfig llc;
    unsigned mshrEntries = 64;
    CoreConfig core;
    McConfig mc;
    MitigationType mitigation = MitigationType::kNone;
    unsigned nRh = 1024;
    bool breakHammer = false;
    BreakHammerConfig bh;
    /**
     * Ablation knob (§4.3 / §4.4 discussion): when set, a throttled
     * thread's secondary misses are rejected too, instead of merging into
     * in-flight MSHRs — the "blunt" throttle point the paper's design
     * deliberately avoids.
     */
    bool bluntThrottle = false;
    bool enableOracle = false;
    bool enableCensus = false;
    std::uint64_t seed = 1;
};

/** Per-core outcome of a run. */
struct CoreResult
{
    std::string name;
    bool benign = true;
    std::uint64_t retired = 0;
    Cycle finishCycle = 0; ///< When the instruction target was reached.
    double ipc = 0.0;
    std::uint64_t rejectStalls = 0;
};

/** Outcome of one simulation. */
struct RunResult
{
    std::vector<CoreResult> cores;
    Cycle cycles = 0;
    double energyNj = 0.0;
    double preventiveEnergyNj = 0.0;
    std::uint64_t preventiveActions = 0;
    std::uint64_t demandActs = 0;
    std::uint64_t suspectMarks = 0;
    std::uint64_t quotaRejections = 0;
    std::uint64_t oracleViolations = 0;
    std::uint32_t oracleMaxCount = 0;
    Histogram benignReadLatencyNs{2.0, 4096};
    std::vector<RowCensus::WindowSummary> censusWindows;
    bool hitCycleCap = false;

    /** IPC of benign cores, in slot order. */
    std::vector<double> benignIpcs() const;
};

/** The simulated machine. */
class System : public ICoreMemory
{
  public:
    System(const SystemConfig &config,
           const std::vector<WorkloadSlot> &slots);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run until every benign core retired @p benign_target instructions
     * (or @p max_cycles elapse).
     */
    RunResult run(std::uint64_t benign_target, Cycle max_cycles);

    // --- ICoreMemory ---
    AccessOutcome load(ThreadId thread, Addr addr, bool uncached,
                       std::uint64_t token) override;
    AccessOutcome store(ThreadId thread, Addr addr, bool uncached) override;

    BreakHammer *breakHammer() { return bh.get(); }
    MemoryController &controller() { return *mc; }
    const SystemConfig &config() const { return config_; }

  private:
    void handleReadComplete(const Request &req, Cycle done_cycle);

    SystemConfig config_;
    AddressMapper mapper;
    std::unique_ptr<MemoryController> mc;
    Llc llc;
    MshrFile mshr;
    std::unique_ptr<IMitigation> mitigation;
    std::unique_ptr<BreakHammer> bh;
    std::unique_ptr<HammerOracle> oracle;
    std::unique_ptr<RowCensus> census;

    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<bool> benignSlot;

    Histogram latencyHist{2.0, 4096};
    std::uint64_t uncachedKeyCounter = 0;
    Cycle now = 0;
};

} // namespace bh
