#include "sim/mixes.h"

#include "common/log.h"
#include "trace/benign.h"

namespace bh {

const std::vector<std::string> &
benignMixPatterns()
{
    static const std::vector<std::string> patterns = {
        "HHHH", "HHMM", "MMMM", "HHLL", "MMLL", "LLLL",
    };
    return patterns;
}

const std::vector<std::string> &
attackMixPatterns()
{
    static const std::vector<std::string> patterns = {
        "HHHA", "HHMA", "MMMA", "HLLA", "MMLA", "LLLA",
    };
    return patterns;
}

MixSpec
makeMix(const std::string &pattern, unsigned index)
{
    MixSpec mix;
    mix.pattern = pattern;
    mix.name = pattern + "#" + std::to_string(index);

    // Per-tier rotation: distinct slots of the same tier get distinct
    // apps; distinct indices shift the rotation.
    unsigned tier_uses[3] = {0, 0, 0};

    for (char c : pattern) {
        WorkloadSlot slot;
        if (c == 'A') {
            slot.kind = WorkloadSlot::Kind::kAttacker;
            slot.attacker = AttackerConfig{};
            slot.attacker.numAggressors = 4 + (index % 3) * 2;
        } else {
            IntensityTier tier;
            unsigned tier_idx;
            switch (c) {
              case 'H': tier = IntensityTier::kHigh; tier_idx = 0; break;
              case 'M': tier = IntensityTier::kMedium; tier_idx = 1; break;
              case 'L': tier = IntensityTier::kLow; tier_idx = 2; break;
              default: BH_FATAL("unknown mix pattern character");
            }
            std::vector<AppProfile> apps = appsInTier(tier);
            BH_ASSERT(!apps.empty(), "empty application tier");
            unsigned pick = (index + tier_uses[tier_idx]) %
                            static_cast<unsigned>(apps.size());
            ++tier_uses[tier_idx];
            slot.kind = WorkloadSlot::Kind::kBenign;
            slot.appName = apps[pick].name;
        }
        mix.slots.push_back(slot);
    }
    return mix;
}

std::vector<std::string>
benignApps(const MixSpec &mix)
{
    std::vector<std::string> out;
    for (const WorkloadSlot &slot : mix.slots)
        if (slot.kind == WorkloadSlot::Kind::kBenign)
            out.push_back(slot.appName);
    return out;
}

} // namespace bh
