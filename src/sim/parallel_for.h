/**
 * @file
 * Work-stealing parallelFor shared by the experiment scheduler (inter-
 * point parallelism across a grid) and the statistical-sampling driver
 * (intra-point parallelism across measurement windows).
 *
 * Tasks are simulation runs lasting milliseconds to seconds, so a
 * mutex-per-deque pool is plenty cheap relative to task granularity.
 * Determinism is the caller's contract: each task must be a pure
 * function of its index, writing into an index-addressed slot, so the
 * result vector is independent of worker count and steal order.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bh {

/**
 * A work-stealing index pool: each worker owns a deque of task indices
 * and steals from the back of a victim's deque when its own runs dry.
 */
class StealingQueues
{
  public:
    StealingQueues(std::size_t num_tasks, unsigned num_workers)
        : queues(num_workers), mutexes(num_workers)
    {
        // Round-robin sharding interleaves the (typically
        // similarly-expensive) neighbors of a grid across workers, so
        // initial shards are balanced before any stealing happens.
        for (std::size_t i = 0; i < num_tasks; ++i)
            queues[i % num_workers].push_back(i);
    }

    /** Pop from own queue, else steal; false when all queues are dry. */
    bool
    pop(unsigned worker, std::size_t *out)
    {
        {
            std::lock_guard<std::mutex> lock(mutexes[worker]);
            if (!queues[worker].empty()) {
                *out = queues[worker].front();
                queues[worker].pop_front();
                return true;
            }
        }
        for (std::size_t offset = 1; offset < queues.size(); ++offset) {
            unsigned victim =
                (worker + offset) % static_cast<unsigned>(queues.size());
            std::lock_guard<std::mutex> lock(mutexes[victim]);
            if (!queues[victim].empty()) {
                *out = queues[victim].back();
                queues[victim].pop_back();
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<std::deque<std::size_t>> queues;
    std::vector<std::mutex> mutexes;
};

/** Run @p task(i) for every index in [0, num_tasks) on @p threads workers. */
inline void
parallelFor(std::size_t num_tasks, unsigned threads,
            const std::function<void(std::size_t)> &task)
{
    if (num_tasks == 0)
        return;
    if (threads <= 1 || num_tasks == 1) {
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads, num_tasks));
    StealingQueues queues(num_tasks, workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            std::size_t index;
            while (queues.pop(w, &index))
                task(index);
        });
    }
    for (std::thread &t : pool)
        t.join();
}

} // namespace bh
