/**
 * @file
 * Parallel experiment engine.
 *
 * The experiment grids of the paper's evaluation — (mix × mechanism ×
 * N_RH × BreakHammer on/off) — are embarrassingly parallel: every point
 * is an independent System simulation. The ExperimentScheduler shards an
 * arbitrary vector of ExperimentConfigs across a work-stealing pool of
 * worker threads and guarantees that the results are bit-identical no
 * matter how many workers run them:
 *
 *  - every System is seeded from its config alone (optionally derived
 *    per grid index with deriveRunSeed(), never from execution order);
 *  - the shared solo-IPC cache (weighted-speedup denominators) is warmed
 *    before the sweep, so no worker recomputes — or races to compute —
 *    a denominator mid-run;
 *  - results land in a slot indexed by grid position, and the optional
 *    streaming sink orders its JSON export by that index.
 *
 * Memoization across figures and processes lives one layer up, in the
 * content-addressed ResultStore (sim/result_store.h), which feeds its
 * misses through this scheduler.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "stats/result_log.h"

namespace bh {

/** Scheduler tuning and streaming hooks. */
struct SchedulerOptions
{
    /** Worker threads; 0 = one per hardware thread. */
    unsigned threads = 0;

    /**
     * Warm the solo-IPC cache (one solo run per unique (app, insts)
     * pair, in parallel) before the experiment sweep.
     */
    bool precacheSoloIpcs = true;

    /**
     * Derive each run's seed from (config.seed, grid index) via
     * deriveRunSeed() so grid points decorrelate without the caller
     * hand-assigning seeds. Off by default: results then match a direct
     * runExperiment() of the same config.
     */
    bool deriveSeeds = false;

    /**
     * Streamed completion callback, invoked serially (under a lock) from
     * worker threads, in completion order — which is not deterministic;
     * use the index argument (or a ResultLog) to reorder.
     */
    std::function<void(std::size_t index, const ExperimentConfig &config,
                       const ExperimentResult &result)>
        onResult;

    /** Optional sink: every result is appended as (index, key, JSON). */
    ResultLog *log = nullptr;
};

/** Work-stealing parallel runner for experiment grids. */
class ExperimentScheduler
{
  public:
    explicit ExperimentScheduler(SchedulerOptions options = {});

    /**
     * Run every config and return results in grid order. Blocks until
     * the whole grid completes. Deterministic: the result vector is a
     * pure function of @p configs, independent of thread count.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentConfig> &configs);

    /** Worker threads this scheduler will use. */
    unsigned threadCount() const { return threads; }

    /**
     * Mix @p base_seed with @p index (SplitMix64 finalizer) into a
     * decorrelated, order-independent per-run seed.
     */
    static std::uint64_t deriveRunSeed(std::uint64_t base_seed,
                                       std::size_t index);

  private:
    SchedulerOptions options;
    unsigned threads;
};

} // namespace bh
