/**
 * @file
 * RowHammer oracle: ground-truth security checker used by the test suite.
 *
 * Tracks, per (bank, row), the number of activations since the row's
 * victims were last refreshed — by a preventive action (the controller
 * reports those through notifyRowProtected) or by the periodic refresh
 * sweep. A mitigation mechanism is RowHammer-safe iff this count never
 * reaches N_RH. The oracle records violations instead of aborting so tests
 * can assert on them.
 */
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/snapshot.h"
#include "common/types.h"
#include "dram/spec.h"

namespace bh {

/** Ground-truth per-row hammer counting. */
class HammerOracle
{
  public:
    HammerOracle(const DramOrg &org, unsigned n_rh)
        : org_(org), nRh(n_rh)
    {}

    /** A demand activation of (bank, row). */
    void
    onActivate(unsigned flat_bank, unsigned row)
    {
        std::uint32_t &count = counts[key(flat_bank, row)];
        ++count;
        if (count > maxCount_)
            maxCount_ = count;
        if (count == nRh)
            ++violations_; // Counted once, at the first crossing.
    }

    /** The victims of (bank, row) were preventively refreshed. */
    void
    onRowProtected(unsigned flat_bank, unsigned row)
    {
        counts.erase(key(flat_bank, row));
    }

    /**
     * A periodic REF refreshed per-bank rows [start, start + rows) on
     * @p rank. Aggressors with both neighbours inside the swept range
     * lose their accumulated disturbance (conservative at the edges).
     */
    void
    onRefreshSweep(unsigned rank, unsigned start, unsigned rows)
    {
        if (rows < 3)
            return; // Conservative: too narrow to cover both victims.
        unsigned base = rank * org_.banksPerRank();
        for (unsigned b = 0; b < org_.banksPerRank(); ++b) {
            for (unsigned r = 1; r + 1 < rows; ++r) {
                unsigned row = (start + r) % org_.rowsPerBank;
                counts.erase(key(base + b, row));
            }
        }
    }

    /** Rows whose activation count ever reached N_RH (must stay 0). */
    std::uint64_t violations() const { return violations_; }

    /** Largest hammer count ever observed. */
    std::uint32_t maxCount() const { return maxCount_; }

    unsigned threshold() const { return nRh; }

    /** Serialize the per-row counts and the verdict counters. */
    void
    saveState(StateWriter &w) const
    {
        w.tag("oracle");
        saveUnorderedMap(
            w, counts, [](StateWriter &sw, std::uint64_t k) { sw.u64(k); },
            [](StateWriter &sw, std::uint32_t v) { sw.u32(v); });
        w.u64(violations_);
        w.u64(maxCount_);
    }

    /** Restore saveState() output. */
    void
    loadState(StateReader &r)
    {
        r.tag("oracle");
        loadUnorderedMap(
            r, &counts,
            [](StateReader &sr, std::uint64_t *k) { *k = sr.u64(); },
            [](StateReader &sr, std::uint32_t *v) { *v = sr.u32(); });
        violations_ = r.u64();
        maxCount_ = static_cast<std::uint32_t>(r.u64());
    }

  private:
    static std::uint64_t
    key(unsigned flat_bank, unsigned row)
    {
        return (static_cast<std::uint64_t>(flat_bank) << 32) | row;
    }

    DramOrg org_;  // bh-audit: skip(org_) -- constructor config, keyed by ExperimentConfig
    unsigned nRh;  // bh-audit: skip(nRh) -- constructor config, keyed by ExperimentConfig
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    std::uint64_t violations_ = 0;
    std::uint32_t maxCount_ = 0;
};

} // namespace bh
