#include "sim/experiment.h"

#include <map>
#include <mutex>

#include "common/env.h"
#include "stats/metrics.h"

namespace bh {

std::uint64_t
defaultInstructions()
{
    // The paper simulates 100M instructions per benign core; the default
    // here is scaled down for laptop-speed regeneration of every figure
    // (EXPERIMENTS.md records the scale used). Override with BH_INSTS.
    return envU64("BH_INSTS", 100000);
}

unsigned
mixesPerClass()
{
    return static_cast<unsigned>(
        envU64("BH_MIXES", envFlag("BH_FULL") ? 5 : 1));
}

std::vector<unsigned>
nrhSweep()
{
    if (envFlag("BH_FULL"))
        return {4096, 2048, 1024, 512, 256, 128, 64};
    return {4096, 1024, 64};
}

BreakHammerConfig
scaledBreakHammerConfig(std::uint64_t instructions)
{
    // The paper's 64 ms throttling window and TH_threat = 32 assume
    // 100M-instruction runs. Scale the window with the simulated horizon
    // so several windows fit (training, reset, and quota-restore
    // semantics stay intact), and scale TH_threat by the same ratio so
    // the score a thread must accumulate per window keeps its meaning.
    BreakHammerConfig config;
    Cycle horizon_guess = instructions * 6; // ~IPC 0.3 contended H mixes.
    config.window = std::max<Cycle>(200000, horizon_guess / 5);
    double ratio = static_cast<double>(config.window) /
                   static_cast<double>(msToCycles(64.0));
    config.thThreat = std::max(2.0, 32.0 * ratio);
    return config;
}

double
soloIpc(const std::string &app_name, std::uint64_t instructions)
{
    static std::map<std::pair<std::string, std::uint64_t>, double> cache;
    static std::mutex mutex;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find({app_name, instructions});
        if (it != cache.end())
            return it->second;
    }

    SystemConfig config;
    config.numCores = 1;
    config.mitigation = MitigationType::kNone;
    std::vector<WorkloadSlot> slots(1);
    slots[0].kind = WorkloadSlot::Kind::kBenign;
    slots[0].appName = app_name;

    System system(config, slots);
    RunResult result = system.run(instructions, instructions * 150);
    double ipc = result.cores[0].ipc;

    std::lock_guard<std::mutex> lock(mutex);
    cache[{app_name, instructions}] = ipc;
    return ipc;
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    std::uint64_t insts =
        config.instructions ? config.instructions : defaultInstructions();

    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(config.mix.slots.size());
    sys.spec = DramSpec::ddr5();
    applyTimingSideEffects(config.mechanism, config.nRh, &sys.spec);
    sys.mitigation = config.mechanism;
    sys.nRh = config.nRh;
    sys.breakHammer = config.breakHammer;
    sys.bh = config.bh.window ? config.bh : scaledBreakHammerConfig(insts);
    sys.enableOracle = config.oracle;
    sys.seed = config.seed;

    // The cycle cap bounds pathological configurations (e.g., BlockHammer
    // at N_RH = 64); capped runs report progress IPC, which is the right
    // measure for a workload that cannot finish.
    System system(sys, config.mix.slots);
    ExperimentResult out;
    out.raw = system.run(insts, insts * 150);

    std::vector<double> shared = out.raw.benignIpcs();
    std::vector<double> alone;
    for (const std::string &app : benignApps(config.mix))
        alone.push_back(soloIpc(app, insts));

    out.weightedSpeedup = weightedSpeedup(shared, alone);
    out.maxSlowdown = maxSlowdown(shared, alone);
    out.energyNj = out.raw.energyNj;
    out.preventiveActions = out.raw.preventiveActions;
    return out;
}

} // namespace bh
