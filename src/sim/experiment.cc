#include "sim/experiment.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/env.h"
#include "common/log.h"
#include "common/snapshot.h"
#include "sim/parallel_for.h"
#include "sim/redteam.h"
#include "sim/result_store.h"
#include "stats/json_stats.h"
#include "stats/metrics.h"

namespace bh {

namespace {

using SoloKey = std::pair<std::string, std::uint64_t>;

std::mutex &
soloMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<SoloKey, double> &
soloCache()
{
    static std::map<SoloKey, double> cache;
    return cache;
}

std::function<void(const std::string &, std::uint64_t, double)> &
soloSink()
{
    static std::function<void(const std::string &, std::uint64_t, double)>
        sink;
    return sink;
}

const void *&
soloSinkOwner()
{
    static const void *owner = nullptr;
    return owner;
}

std::mutex &
checkpointMutex()
{
    static std::mutex mutex;
    return mutex;
}

CheckpointSpec &
checkpointSpecStorage()
{
    static CheckpointSpec spec;
    return spec;
}

std::mutex &
samplingMutex()
{
    static std::mutex mutex;
    return mutex;
}

SamplingSpec &
samplingSpecStorage()
{
    static SamplingSpec spec;
    return spec;
}

unsigned &
samplingJobsStorage()
{
    static unsigned jobs = 1;
    return jobs;
}

std::mutex &
channelMutex()
{
    static std::mutex mutex;
    return mutex;
}

ChannelSpec &
channelSpecStorage()
{
    static ChannelSpec spec;
    return spec;
}

} // namespace

std::uint64_t
defaultInstructions()
{
    // The paper simulates 100M instructions per benign core; the default
    // here is scaled down for laptop-speed regeneration of every figure
    // (EXPERIMENTS.md records the scale used). Override with BH_INSTS.
    return envU64("BH_INSTS", 100000);
}

unsigned
mixesPerClass()
{
    return static_cast<unsigned>(
        envU64("BH_MIXES", envFlag("BH_FULL") ? 5 : 1));
}

std::vector<unsigned>
nrhSweep()
{
    if (envFlag("BH_FULL"))
        return {4096, 2048, 1024, 512, 256, 128, 64};
    return {4096, 1024, 64};
}

BreakHammerConfig
scaledBreakHammerConfig(std::uint64_t instructions)
{
    // The paper's 64 ms throttling window and TH_threat = 32 assume
    // 100M-instruction runs. Scale the window with the simulated horizon
    // so several windows fit (training, reset, and quota-restore
    // semantics stay intact), and scale TH_threat by the same ratio so
    // the score a thread must accumulate per window keeps its meaning.
    BreakHammerConfig config;
    Cycle horizon_guess = instructions * 6; // ~IPC 0.3 contended H mixes.
    config.window = std::max<Cycle>(200000, horizon_guess / 5);
    double ratio = static_cast<double>(config.window) /
                   static_cast<double>(msToCycles(64.0));
    config.thThreat = std::max(2.0, 32.0 * ratio);
    return config;
}

double
soloIpc(const std::string &app_name, std::uint64_t instructions)
{
    {
        std::lock_guard<std::mutex> lock(soloMutex());
        auto it = soloCache().find({app_name, instructions});
        if (it != soloCache().end())
            return it->second;
    }

    SystemConfig config;
    config.numCores = 1;
    config.mitigation = MitigationType::kNone;
    std::vector<WorkloadSlot> slots(1);
    slots[0].kind = WorkloadSlot::Kind::kBenign;
    slots[0].appName = app_name;

    System system(config, slots);
    RunResult result = system.run(instructions, instructions * 150);
    double ipc = result.cores[0].ipc;

    std::lock_guard<std::mutex> lock(soloMutex());
    // Only the first computation fires the sink: if another worker won
    // the race, its value is already cached (identical — the run is a
    // pure function of (app, insts)) and already persisted.
    if (soloCache().emplace(SoloKey{app_name, instructions}, ipc).second &&
        soloSink())
        soloSink()(app_name, instructions, ipc);
    return ipc;
}

void
primeSoloIpc(const std::string &app_name, std::uint64_t instructions,
             double ipc)
{
    std::lock_guard<std::mutex> lock(soloMutex());
    soloCache().emplace(SoloKey{app_name, instructions}, ipc);
}

void
setSoloIpcSink(std::function<void(const std::string &, std::uint64_t,
                                  double)>
                   sink,
               const void *owner)
{
    std::lock_guard<std::mutex> lock(soloMutex());
    soloSink() = std::move(sink);
    soloSinkOwner() = owner;
}

void
clearSoloIpcSink(const void *owner)
{
    std::lock_guard<std::mutex> lock(soloMutex());
    if (soloSinkOwner() != owner)
        return; // A later-opened store took over; leave its sink alone.
    soloSink() = nullptr;
    soloSinkOwner() = nullptr;
}

ExperimentConfig
resolveExperimentConfig(const ExperimentConfig &config)
{
    ExperimentConfig resolved = config;
    if (resolved.instructions == 0)
        resolved.instructions = defaultInstructions();
    if (resolved.bh.window == 0)
        resolved.bh = scaledBreakHammerConfig(resolved.instructions);
    if (!resolved.sample.enabled())
        resolved.sample = samplingSpec();
    ChannelSpec ch = channelSpec();
    if (resolved.channels == 0)
        resolved.channels = ch.channels ? ch.channels : 1;
    if (resolved.ranks == 0)
        resolved.ranks = ch.ranks ? ch.ranks : 2;
    return resolved;
}

void
setChannelSpec(const ChannelSpec &spec)
{
    std::lock_guard<std::mutex> lock(channelMutex());
    channelSpecStorage() = spec;
}

ChannelSpec
channelSpec()
{
    std::lock_guard<std::mutex> lock(channelMutex());
    return channelSpecStorage();
}

void
setSamplingSpec(const SamplingSpec &spec)
{
    std::lock_guard<std::mutex> lock(samplingMutex());
    samplingSpecStorage() = spec;
}

SamplingSpec
samplingSpec()
{
    std::lock_guard<std::mutex> lock(samplingMutex());
    return samplingSpecStorage();
}

void
setSamplingJobs(unsigned jobs)
{
    std::lock_guard<std::mutex> lock(samplingMutex());
    samplingJobsStorage() = jobs ? jobs : 1;
}

unsigned
samplingJobs()
{
    std::lock_guard<std::mutex> lock(samplingMutex());
    return samplingJobsStorage();
}

void
setCheckpointSpec(const CheckpointSpec &spec)
{
    std::lock_guard<std::mutex> lock(checkpointMutex());
    checkpointSpecStorage() = spec;
}

CheckpointSpec
checkpointSpec()
{
    std::lock_guard<std::mutex> lock(checkpointMutex());
    return checkpointSpecStorage();
}

namespace {

ProgressHook &
progressHookStorage()
{
    static ProgressHook hook;
    return hook;
}

} // namespace

void
setProgressHook(const ProgressHook &hook)
{
    std::lock_guard<std::mutex> lock(checkpointMutex());
    progressHookStorage() = hook;
}

ProgressHook
progressHook()
{
    std::lock_guard<std::mutex> lock(checkpointMutex());
    return progressHookStorage();
}

std::string
snapshotPath(const std::string &dir, const ExperimentConfig &config)
{
    std::string key = experimentKey(resolveExperimentConfig(config));
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.snap",
                  static_cast<unsigned long long>(
                      fnv1a64(key.data(), key.size())));
    return dir + "/" + name;
}

namespace {

/** The SystemConfig a resolved ExperimentConfig simulates. */
SystemConfig
systemConfigFor(const ExperimentConfig &cfg)
{
    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(cfg.mix.slots.size());
    sys.spec = DramSpec::ddr5();
    applyTimingSideEffects(cfg.mechanism, cfg.nRh, &sys.spec);
    // Organization overrides, resolved (non-zero) by the caller. Timing
    // is organization-independent, so overriding after the side effects
    // keeps the mechanism-specific tREFI/tRFC edits intact.
    if (cfg.channels)
        sys.spec.org.channels = cfg.channels;
    if (cfg.ranks)
        sys.spec.org.ranks = cfg.ranks;
    sys.mitigation = cfg.mechanism;
    sys.nRh = cfg.nRh;
    sys.breakHammer = cfg.breakHammer;
    sys.bh = cfg.bh;
    sys.enableOracle = cfg.oracle;
    sys.bluntThrottle = cfg.bluntThrottle;
    sys.seed = cfg.seed;
    return sys;
}

/**
 * Two-sided 95% Student-t critical value for @p df degrees of freedom
 * (small-sample window counts need the fat tails; beyond 30 the normal
 * 1.96 is within half a percent).
 */
double
tCritical95(std::uint64_t df)
{
    static const double table[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return table[df - 1];
    return 1.96;
}

/** Mean and 95% CI half-width of one per-window metric series. */
SampledMetric
summarizeWindows(const std::vector<double> &xs)
{
    SampledMetric m;
    if (xs.empty())
        return m;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    m.mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2)
        return m;
    double ss = 0.0;
    for (double x : xs) {
        double d = x - m.mean;
        ss += d * d;
    }
    double var = ss / static_cast<double>(xs.size() - 1);
    m.ci95 = tCritical95(xs.size() - 1) *
             std::sqrt(var / static_cast<double>(xs.size()));
    return m;
}

/**
 * The interval-sampled estimator behind runExperiment(): one ancestor
 * System runs the detailed warm-up, then walks the rest of the horizon
 * functionally ONCE, dropping an in-memory snapshot blob at each
 * window's warm-start — total fast-forward work is O(horizon), where
 * re-fast-forwarding every window from the shared warm-up snapshot
 * would be O(nwin * horizon). The blobs then fan out to nwin
 * independent detailed windows (optionally across samplingJobs()
 * worker threads); window k's work — restore blob k, detailed re-warm
 * W, detailed measure M — is a pure function of k, so results are
 * byte-identical for every job count. Headline metrics anchor on the
 * exactly-measured warm-up and extend it at the steady-state window
 * rates; window spread becomes the 95% CIs in `sampling`.
 */
ExperimentResult
runSampledExperiment(const ExperimentConfig &cfg)
{
    const SamplingSpec &sp = cfg.sample;
    const std::uint64_t insts = cfg.instructions;
    const std::uint64_t stride =
        sp.fastForward + sp.warmup + sp.measure;
    const std::uint64_t nwin = (insts - sp.warmup) / stride;
    BH_ASSERT(nwin > 0, "caller checked a window fits the horizon");

    SystemConfig sys = systemConfigFor(cfg);

    // One shared ancestor: the detailed warm-up, then a single serial
    // functional pass over the horizon. Each window's warm-start state
    // is captured as an in-memory snapshot blob along the way; the
    // ancestor itself never runs the detailed phases (the workers fork
    // those from the blobs), so between two snapshots it fast-forwards
    // a full stride.
    System ancestor(sys, cfg.mix.slots);
    RunResult warm_res =
        ancestor.run(sp.warmup, sp.warmup * 150 + 1000000);
    std::vector<std::string> blobs(nwin);
    for (std::uint64_t k = 0; k < nwin; ++k) {
        ancestor.fastForward(k == 0 ? sp.fastForward : stride);
        blobs[k] = ancestor.snapshotBlob();
    }

    // Solo denominators, resolved before the fan-out so the window
    // workers only ever read the cache.
    std::vector<double> alone;
    for (const std::string &app : benignApps(cfg.mix))
        alone.push_back(soloIpc(app, insts));

    struct WindowOutcome
    {
        std::vector<double> coreIpcs; ///< All cores, benign and attacker.
        std::vector<double> coreRetired;
        std::vector<double> coreRejectStalls;
        double ws = 0.0;
        double maxsd = 0.0;
        double preventive = 0.0;
        double demand = 0.0;
        double quotaRej = 0.0;
        double suspect = 0.0;
        double energy = 0.0;
        double preventiveEnergy = 0.0;
        double cycles = 0.0;
        double p99 = 0.0;
        Histogram hist{2.0, 4096};
        std::vector<double> bhScores;
        std::vector<unsigned> bhQuotas;
        std::vector<std::string> names;
        std::vector<bool> benign;
        bool capped = false;
        bool valid = false;
    };
    std::vector<WindowOutcome> wins(nwin);

    auto runWindow = [&](System &sim, std::uint64_t k) {
        std::string err;
        bool restored = sim.restoreSnapshotBlob(blobs[k], &err);
        BH_ASSERT(restored, "own snapshot blob must restore");
        (void)restored;
        Cycle phase_cap = std::max<Cycle>(
            (sp.warmup + sp.measure) * 150, 1000000);
        RunResult w = sim.runDelta(sp.warmup, phase_cap);
        RunResult m = sim.runDelta(sp.measure, phase_cap);

        WindowOutcome &out = wins[k];
        out.capped = w.hitCycleCap || m.hitCycleCap;
        double span = static_cast<double>(
            m.cycles > w.cycles ? m.cycles - w.cycles : 1);
        out.cycles = span;

        std::vector<double> benign_ipcs;
        for (std::size_t i = 0; i < m.cores.size(); ++i) {
            double retired_delta =
                static_cast<double>(m.cores[i].retired) -
                static_cast<double>(w.cores[i].retired);
            double ipc;
            if (m.cores[i].benign && m.cores[i].finishCycle > w.cycles) {
                // The measured phase ran [w.cycles+1, finishCycle].
                ipc = static_cast<double>(sp.measure) /
                      static_cast<double>(m.cores[i].finishCycle -
                                          w.cycles);
            } else {
                // Capped window: progress rate over the phase span.
                ipc = retired_delta / span;
            }
            out.coreIpcs.push_back(ipc);
            out.coreRetired.push_back(retired_delta);
            out.coreRejectStalls.push_back(
                static_cast<double>(m.cores[i].rejectStalls) -
                static_cast<double>(w.cores[i].rejectStalls));
            out.names.push_back(m.cores[i].name);
            out.benign.push_back(m.cores[i].benign);
            if (m.cores[i].benign)
                benign_ipcs.push_back(ipc);
        }

        // Weighted speedup / max slowdown of this window (inline: a
        // capped window can report a zero IPC, which the metrics-layer
        // helpers assert against).
        BH_ASSERT(benign_ipcs.size() == alone.size(),
                  "solo denominators must match benign slots");
        for (std::size_t i = 0; i < benign_ipcs.size(); ++i) {
            double a = alone[i] > 0.0 ? alone[i] : 1.0;
            out.ws += benign_ipcs[i] / a;
            double sd = a / std::max(benign_ipcs[i], 1e-12);
            out.maxsd = std::max(out.maxsd, sd);
        }

        out.preventive = static_cast<double>(m.preventiveActions) -
                         static_cast<double>(w.preventiveActions);
        out.demand = static_cast<double>(m.demandActs) -
                     static_cast<double>(w.demandActs);
        out.quotaRej = static_cast<double>(m.quotaRejections) -
                       static_cast<double>(w.quotaRejections);
        out.suspect = static_cast<double>(m.suspectMarks) -
                      static_cast<double>(w.suspectMarks);
        out.energy = m.energyNj - w.energyNj;
        out.preventiveEnergy =
            m.preventiveEnergyNj - w.preventiveEnergyNj;

        // This window's latency distribution: the cumulative histograms
        // differenced bin by bin.
        const std::vector<std::uint64_t> &mb =
            m.benignReadLatencyNs.rawBins();
        const std::vector<std::uint64_t> &wb =
            w.benignReadLatencyNs.rawBins();
        std::vector<std::uint64_t> diff(mb.size(), 0);
        for (std::size_t i = 0; i < mb.size(); ++i)
            diff[i] = mb[i] - wb[i];
        out.hist = Histogram::fromRaw(
            m.benignReadLatencyNs.binWidth(), std::move(diff),
            m.benignReadLatencyNs.sum() - w.benignReadLatencyNs.sum(),
            m.benignReadLatencyNs.max());
        out.p99 = out.hist.percentile(99);

        out.bhScores = m.bhScores;
        out.bhQuotas = m.bhQuotas;
        out.valid = true;
    };

    // Each worker drives ONE System and restores successive blobs into
    // it: a snapshot carries the complete mutable state (the checkpoint
    // tests enforce bit-exact resume into a fresh System), so window k's
    // outcome is a pure function of blobs[k] no matter which worker —
    // or how warm a System — runs it. Windows are striped, not stolen:
    // they cost roughly the same, and striping keeps the per-worker
    // System without any queue bookkeeping. Worker 0 recycles the
    // ancestor (its FF chain is done; the restore overwrites all state),
    // sparing one System construction on every sampled point.
    const unsigned jobs = std::max(1u, samplingJobs());
    const unsigned workers = static_cast<unsigned>(
        std::min<std::uint64_t>(jobs, nwin));
    parallelFor(workers, workers, [&](std::size_t wk) {
        std::unique_ptr<System> local;
        if (wk != 0)
            local = std::make_unique<System>(sys, cfg.mix.slots);
        System &sim = wk == 0 ? ancestor : *local;
        for (std::uint64_t k = wk; k < nwin; k += workers)
            runWindow(sim, k);
    });

    // Aggregate in window-index order — never completion order — so the
    // result is a pure function of the config.
    std::vector<double> wss, sds, prevs, p99s;
    double prev_sum = 0, demand_sum = 0, quota_sum = 0, suspect_sum = 0;
    double energy_sum = 0, prev_energy_sum = 0;
    std::vector<double> stalls_sum, ipc_sum;
    Histogram merged{2.0, 4096};
    bool any_capped = false;
    for (const WindowOutcome &win : wins) {
        BH_ASSERT(win.valid, "every sampling window must complete");
        wss.push_back(win.ws);
        sds.push_back(win.maxsd);
        prevs.push_back(win.preventive);
        p99s.push_back(win.p99);
        prev_sum += win.preventive;
        demand_sum += win.demand;
        quota_sum += win.quotaRej;
        suspect_sum += win.suspect;
        energy_sum += win.energy;
        prev_energy_sum += win.preventiveEnergy;
        if (stalls_sum.empty()) {
            stalls_sum.resize(win.coreRetired.size(), 0.0);
            ipc_sum.resize(win.coreRetired.size(), 0.0);
        }
        for (std::size_t i = 0; i < win.coreRetired.size(); ++i) {
            stalls_sum[i] += win.coreRejectStalls[i];
            ipc_sum[i] += win.coreIpcs[i];
        }
        merged.merge(win.hist);
        any_capped = any_capped || win.capped;
    }

    ExperimentResult out;
    out.sampling.enabled = true;
    out.sampling.warmup = sp.warmup;
    out.sampling.measure = sp.measure;
    out.sampling.fastForward = sp.fastForward;
    out.sampling.windows = nwin;
    out.sampling.weightedSpeedup = summarizeWindows(wss);
    out.sampling.maxSlowdown = summarizeWindows(sds);
    out.sampling.preventiveActions = summarizeWindows(prevs);
    out.sampling.p99LatencyNs = summarizeWindows(p99s);

    // Headline metrics anchor on the ancestor's exactly-measured warm-up
    // and extend it at the steady-state window rates. A pure window mean
    // would stamp the steady state across the whole horizon and miss the
    // cold-start transient that exact runs include (empty caches, idle
    // row trackers), which biases WS high and ACT counts low. The
    // `sampling` block above intentionally stays a pure per-window
    // statistic, so its mean is the steady-state value, not the
    // headline estimate.
    const double nwin_d = static_cast<double>(nwin);
    const double tail_insts = static_cast<double>(insts - sp.warmup);
    const double tail_scale =
        tail_insts / static_cast<double>(sp.measure);
    auto extrapolate = [&](double warm_exact, double window_sum) {
        return warm_exact + window_sum / nwin_d * tail_scale;
    };

    const std::size_t ncores = wins.back().names.size();
    BH_ASSERT(warm_res.cores.size() == ncores,
              "warm-up cores must match window cores");

    // Per-core completion estimate: the warm-up finish cycle is exact;
    // the remaining (insts - W) instructions proceed at the mean
    // detailed-window IPC.
    std::vector<double> est_cycles(ncores, 0.0);
    double max_benign_cycles = 1.0;
    for (std::size_t i = 0; i < ncores; ++i) {
        double warm_finish =
            warm_res.cores[i].finishCycle > 0
                ? static_cast<double>(warm_res.cores[i].finishCycle)
                : static_cast<double>(warm_res.cycles);
        double mean_ipc = std::max(ipc_sum[i] / nwin_d, 1e-12);
        est_cycles[i] = warm_finish + tail_insts / mean_ipc;
        if (wins.back().benign[i])
            max_benign_cycles =
                std::max(max_benign_cycles, est_cycles[i]);
    }

    out.energyNj = extrapolate(warm_res.energyNj, energy_sum);
    out.preventiveActions = static_cast<std::uint64_t>(std::llround(
        extrapolate(static_cast<double>(warm_res.preventiveActions),
                    prev_sum)));

    out.raw.cycles =
        static_cast<Cycle>(std::llround(max_benign_cycles));
    out.raw.energyNj = out.energyNj;
    out.raw.preventiveEnergyNj =
        extrapolate(warm_res.preventiveEnergyNj, prev_energy_sum);
    out.raw.preventiveActions = out.preventiveActions;
    out.raw.demandActs = static_cast<std::uint64_t>(std::llround(
        extrapolate(static_cast<double>(warm_res.demandActs),
                    demand_sum)));
    out.raw.quotaRejections = static_cast<std::uint64_t>(std::llround(
        extrapolate(static_cast<double>(warm_res.quotaRejections),
                    quota_sum)));
    out.raw.suspectMarks = static_cast<std::uint64_t>(std::llround(
        extrapolate(static_cast<double>(warm_res.suspectMarks),
                    suspect_sum)));
    out.raw.hitCycleCap = any_capped;
    out.raw.benignReadLatencyNs = merged;
    out.raw.bhScores = wins.back().bhScores;
    out.raw.bhQuotas = wins.back().bhQuotas;

    double ws = 0.0, maxsd = 0.0;
    std::size_t bi = 0;
    for (std::size_t i = 0; i < ncores; ++i) {
        CoreResult cr;
        cr.name = wins.back().names[i];
        cr.benign = wins.back().benign[i];
        if (cr.benign) {
            double ipc = static_cast<double>(insts) / est_cycles[i];
            double a =
                bi < alone.size() && alone[bi] > 0.0 ? alone[bi] : 1.0;
            ws += ipc / a;
            maxsd = std::max(maxsd, a / std::max(ipc, 1e-12));
            ++bi;
            cr.ipc = ipc;
            cr.retired = insts;
            cr.finishCycle =
                static_cast<Cycle>(std::llround(est_cycles[i]));
        } else {
            // The attacker runs until the slowest benign core finishes;
            // extend its warm-up progress at the mean window rate.
            double rate = std::max(ipc_sum[i] / nwin_d, 0.0);
            double retired =
                static_cast<double>(warm_res.cores[i].retired) +
                rate * std::max(max_benign_cycles -
                                    static_cast<double>(warm_res.cycles),
                                0.0);
            cr.retired = static_cast<std::uint64_t>(
                std::llround(std::max(retired, 0.0)));
            cr.ipc = retired / max_benign_cycles;
            cr.finishCycle = 0;
        }
        cr.rejectStalls = static_cast<std::uint64_t>(std::llround(
            extrapolate(
                static_cast<double>(warm_res.cores[i].rejectStalls),
                stalls_sum[i])));
        out.raw.cores.push_back(std::move(cr));
    }
    out.weightedSpeedup = ws;
    out.maxSlowdown = maxsd;
    return out;
}

} // namespace

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    ExperimentConfig cfg = resolveExperimentConfig(config);
    std::uint64_t insts = cfg.instructions;

    // Red-team probes rewrite the mix's attacker slots into adaptive
    // traces before either run path constructs a System. The rewrite is
    // part of the config identity (the `|rt=` key suffix), so a probe
    // can never be served a canonical fixed-attacker record.
    if (!cfg.redteam.empty()) {
        RedteamStrategy strategy;
        if (!parseRedteamStrategy(cfg.redteam, &strategy))
            BH_FATAL("malformed redteam strategy spec");
        applyRedteamStrategy(strategy, &cfg.mix.slots);
    }

    if (cfg.sample.enabled()) {
        std::uint64_t stride =
            cfg.sample.fastForward + cfg.sample.warmup + cfg.sample.measure;
        bool fits = insts > cfg.sample.warmup &&
                    (insts - cfg.sample.warmup) / stride > 0;
        if (cfg.oracle) {
            // The oracle audits every activation; a fast-forwarded
            // interval has no exact activation stream to audit, so
            // oracle points always run exact.
            BH_LOG("sampling disabled for oracle point %s",
                   cfg.mix.name.c_str());
        } else if (!fits) {
            BH_LOG("sampling spec %llu/%llu/%llu has no window within "
                   "%llu insts; running exact",
                   static_cast<unsigned long long>(cfg.sample.warmup),
                   static_cast<unsigned long long>(cfg.sample.measure),
                   static_cast<unsigned long long>(cfg.sample.fastForward),
                   static_cast<unsigned long long>(insts));
        } else {
            return runSampledExperiment(cfg);
        }
    }

    SystemConfig sys = systemConfigFor(cfg);

    // The cycle cap bounds pathological configurations (e.g., BlockHammer
    // at N_RH = 64); capped runs report progress IPC, which is the right
    // measure for a workload that cannot finish.
    auto system = std::make_unique<System>(sys, cfg.mix.slots);

    CheckpointSpec ckpt = checkpointSpec();
    ProgressHook hook = progressHook();
    System::CheckpointConfig cc;
    std::string snap_path;
    if (ckpt.enabled()) {
        // The identity ties a snapshot to the exact simulation semantics:
        // the experiment content address plus the store schema version,
        // which is bumped whenever results become non-reproducible. A
        // stale snapshot therefore falls back to recompute, exactly like
        // a stale store record.
        snap_path = snapshotPath(ckpt.dir, cfg);
        cc.path = snap_path;
        cc.everyInsts = ckpt.everyInsts;
        cc.everyCycles = ckpt.everyCycles;
        cc.identity = experimentKey(cfg) + "|store_schema=" +
                      std::to_string(ResultStore::kSchemaVersion);
    }
    if (hook.enabled()) {
        // The heartbeat rides the checkpoint cadence machinery but is
        // armed independently: snapshots and progress each work alone.
        cc.progressEveryInsts = hook.everyInsts;
        cc.onProgress = [fn = hook.fn, cfg,
                         insts](std::uint64_t retired) {
            fn(cfg, retired, insts);
        };
    }
    if (ckpt.enabled() || hook.enabled())
        system->setCheckpoint(cc);
    if (ckpt.enabled()) {
        std::string resume_error;
        if (!system->resumeFromSnapshot(snap_path, &resume_error)) {
            BH_LOG("snapshot %s: %s; computing from scratch",
                   snap_path.c_str(), resume_error.c_str());
            // A failed resume may leave partially loaded state behind;
            // rebuild the System so the cold run starts clean.
            system = std::make_unique<System>(sys, cfg.mix.slots);
            system->setCheckpoint(cc);
        }
    }

    ExperimentResult out;
    out.raw = system->run(insts, insts * 150);
    if (!snap_path.empty()) {
        // Completed: the snapshot is stale. A SIGKILL mid-save can also
        // orphan the atomic-write temp file; sweep it too.
        std::remove(snap_path.c_str());
        std::remove((snap_path + ".tmp").c_str());
    }

    std::vector<double> shared = out.raw.benignIpcs();
    std::vector<double> alone;
    for (const std::string &app : benignApps(cfg.mix))
        alone.push_back(soloIpc(app, insts));

    out.weightedSpeedup = weightedSpeedup(shared, alone);
    out.maxSlowdown = maxSlowdown(shared, alone);
    out.energyNj = out.raw.energyNj;
    out.preventiveActions = out.raw.preventiveActions;
    return out;
}

std::string
experimentKey(const ExperimentConfig &config)
{
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "mix=%s|mech=%s|nrh=%u|bh=%d|win=%llu|thr=%.17g|out=%.17g|po=%u|"
        "pn=%u|attr=%d|single=%d|insts=%llu|oracle=%d|blunt=%d|seed=%llu",
        config.mix.name.c_str(), mitigationName(config.mechanism),
        config.nRh, config.breakHammer ? 1 : 0,
        static_cast<unsigned long long>(config.bh.window),
        config.bh.thThreat, config.bh.thOutlier, config.bh.pOldSuspect,
        config.bh.pNewSuspect,
        config.bh.attribution == ScoreAttribution::kWinnerTakesAll ? 1 : 0,
        config.bh.singleCounterSet ? 1 : 0,
        static_cast<unsigned long long>(config.instructions),
        config.oracle ? 1 : 0, config.bluntThrottle ? 1 : 0,
        static_cast<unsigned long long>(config.seed));
    std::string key = buf;
    // Appended only when sampling is on: every pre-sampling key (and
    // every exact run's key) stays byte-identical, so existing store
    // records keep their content addresses while sampled results can
    // never alias an exact record of the same point.
    if (config.sample.enabled()) {
        char sbuf[80];
        std::snprintf(
            sbuf, sizeof(sbuf), "|sample=%llu/%llu/%llu",
            static_cast<unsigned long long>(config.sample.warmup),
            static_cast<unsigned long long>(config.sample.measure),
            static_cast<unsigned long long>(config.sample.fastForward));
        key += sbuf;
    }
    // Same append-only rule for the organization: only non-default
    // channel/rank counts are spelled out (0 = unresolved default), so
    // single-channel records keep their addresses while multi-channel
    // runs can never alias them.
    bool nondefault_channels = config.channels > 1;
    bool nondefault_ranks = config.ranks != 0 && config.ranks != 2;
    if (nondefault_channels || nondefault_ranks) {
        char obuf[48];
        std::snprintf(obuf, sizeof(obuf), "|ch=%u|rk=%u",
                      config.channels ? config.channels : 1,
                      config.ranks ? config.ranks : 2);
        key += obuf;
    }
    // Red-team probes carry their canonical strategy spec. Append-only
    // like the blocks above: canonical figure records (empty redteam)
    // keep their addresses, and no probe can ever alias them.
    if (!config.redteam.empty())
        key += "|rt=" + config.redteam;
    return key;
}

std::vector<std::pair<std::string, std::uint64_t>>
soloDependencies(const std::vector<ExperimentConfig> &configs)
{
    std::vector<std::pair<std::string, std::uint64_t>> deps;
    for (const ExperimentConfig &config : configs) {
        std::uint64_t insts =
            config.instructions ? config.instructions
                                : defaultInstructions();
        for (const std::string &app : benignApps(config.mix)) {
            std::pair<std::string, std::uint64_t> dep{app, insts};
            bool seen = false;
            for (const auto &existing : deps)
                if (existing == dep) {
                    seen = true;
                    break;
                }
            if (!seen)
                deps.push_back(std::move(dep));
        }
    }
    return deps;
}

JsonValue
experimentResultToJson(const ExperimentConfig &config,
                       const ExperimentResult &result)
{
    JsonValue out = JsonValue::object();
    out.set("key", experimentKey(config));
    out.set("mix", config.mix.name);
    out.set("mechanism", mitigationName(config.mechanism));
    out.set("nrh", config.nRh);
    out.set("breakhammer", config.breakHammer);

    out.set("weighted_speedup", result.weightedSpeedup);
    out.set("max_slowdown", result.maxSlowdown);
    out.set("energy_nj", result.energyNj);
    out.set("preventive_actions", result.preventiveActions);

    // Present only for interval-sampled runs: the window parameters and
    // mean ± 95% CI for every sampled headline metric.
    if (result.sampling.enabled) {
        auto metric = [](const SampledMetric &m) {
            JsonValue v = JsonValue::object();
            v.set("mean", m.mean);
            v.set("ci95", m.ci95);
            return v;
        };
        JsonValue s = JsonValue::object();
        s.set("warmup", result.sampling.warmup);
        s.set("measure", result.sampling.measure);
        s.set("fast_forward", result.sampling.fastForward);
        s.set("windows", result.sampling.windows);
        s.set("weighted_speedup", metric(result.sampling.weightedSpeedup));
        s.set("max_slowdown", metric(result.sampling.maxSlowdown));
        s.set("preventive_actions",
              metric(result.sampling.preventiveActions));
        s.set("p99_latency_ns", metric(result.sampling.p99LatencyNs));
        out.set("sampling", std::move(s));
    }

    // Present only for red-team probes: the strategy spec and the
    // per-thread demand-ACT split the fuzzer's evasion fitness divides
    // by, so a warm store re-ranks strategies without re-simulating.
    if (!config.redteam.empty()) {
        JsonValue rt = JsonValue::object();
        rt.set("spec", config.redteam);
        JsonValue acts = JsonValue::array();
        for (std::uint64_t a : result.raw.demandActsPerThread)
            acts.push(a);
        rt.set("demand_acts_per_thread", std::move(acts));
        out.set("redteam", std::move(rt));
    }

    JsonValue raw = JsonValue::object();
    raw.set("cycles", result.raw.cycles);
    raw.set("demand_acts", result.raw.demandActs);
    raw.set("suspect_marks", result.raw.suspectMarks);
    raw.set("quota_rejections", result.raw.quotaRejections);
    raw.set("hit_cycle_cap", result.raw.hitCycleCap);
    raw.set("preventive_energy_nj", result.raw.preventiveEnergyNj);
    raw.set("oracle_violations", result.raw.oracleViolations);
    raw.set("oracle_max_count", result.raw.oracleMaxCount);

    JsonValue cores = JsonValue::array();
    for (const CoreResult &c : result.raw.cores) {
        JsonValue core = JsonValue::object();
        core.set("name", c.name);
        core.set("benign", c.benign);
        core.set("retired", c.retired);
        core.set("finish_cycle", c.finishCycle);
        core.set("ipc", c.ipc);
        core.set("reject_stalls", c.rejectStalls);
        cores.push(std::move(core));
    }
    raw.set("cores", std::move(cores));

    JsonValue bh_scores = JsonValue::array();
    for (double s : result.raw.bhScores)
        bh_scores.push(s);
    raw.set("bh_scores", std::move(bh_scores));
    JsonValue bh_quotas = JsonValue::array();
    for (unsigned q : result.raw.bhQuotas)
        bh_quotas.push(q);
    raw.set("bh_quotas", std::move(bh_quotas));

    const Histogram &lat = result.raw.benignReadLatencyNs;
    JsonValue latency = JsonValue::object();
    latency.set("count", lat.count());
    latency.set("mean", lat.mean());
    latency.set("p50", lat.percentile(50));
    latency.set("p90", lat.percentile(90));
    latency.set("p99", lat.percentile(99));
    latency.set("p999", lat.percentile(99.9));
    latency.set("max", lat.max());
    latency.set("histogram", histogramToJson(lat));
    raw.set("benign_read_latency_ns", std::move(latency));
    out.set("raw", std::move(raw));
    return out;
}

namespace {

/** Member @p key of @p obj iff it exists with type @p type, else null.
 *  This is the store's corruption gate: every access in
 *  experimentResultFromJson goes through it so a wrong-typed or
 *  truncated payload reads as a cache miss, never a crash. */
const JsonValue *
typedMember(const JsonValue &obj, const char *key, JsonValue::Type type)
{
    if (!obj.isObject())
        return nullptr;
    const JsonValue *member = obj.find(key);
    if (member == nullptr || member->type() != type)
        return nullptr;
    return member;
}

/** Validate the histogramToJson() shape before the (assert-happy)
 *  histogramFromJson() parser touches it. */
bool
histogramJsonIsWellFormed(const JsonValue &v)
{
    // A generous ceiling on the bin vector a record may ask us to
    // allocate (the simulator's histograms use 4096 bins): a corrupt
    // num_bins must read as a cache miss, not throw bad_alloc.
    constexpr std::uint64_t kMaxBins = 1u << 20;
    const JsonValue *bin_width =
        typedMember(v, "bin_width", JsonValue::Type::kNumber);
    const JsonValue *num_bins =
        typedMember(v, "num_bins", JsonValue::Type::kNumber);
    const JsonValue *bins =
        typedMember(v, "bins", JsonValue::Type::kArray);
    if (bin_width == nullptr || bin_width->asDouble() <= 0.0 ||
        num_bins == nullptr || num_bins->asDouble() < 0.0 ||
        num_bins->asU64() > kMaxBins || bins == nullptr ||
        typedMember(v, "sum", JsonValue::Type::kNumber) == nullptr ||
        typedMember(v, "max", JsonValue::Type::kNumber) == nullptr)
        return false;
    for (std::size_t i = 0; i < bins->size(); ++i) {
        const JsonValue &pair = bins->at(i);
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(0).isNumber() || !pair.at(1).isNumber() ||
            pair.at(0).asU64() > num_bins->asU64())
            return false;
    }
    return true;
}

/** Parse a {"mean": x, "ci95": y} sampled-metric object. */
bool
sampledMetricFromJson(const JsonValue &v, SampledMetric *out)
{
    const JsonValue *mean =
        typedMember(v, "mean", JsonValue::Type::kNumber);
    const JsonValue *ci = typedMember(v, "ci95", JsonValue::Type::kNumber);
    if (mean == nullptr || ci == nullptr)
        return false;
    out->mean = mean->asDouble();
    out->ci95 = ci->asDouble();
    return true;
}

} // namespace

bool
experimentResultFromJson(const JsonValue &v, ExperimentResult *out)
{
    // Everything is checked for presence AND type before use: a record
    // from an older layout — or a same-version record damaged on disk —
    // reports false and is treated as a cache miss, per the ResultStore
    // "recompute, never misread" contract.
    using Type = JsonValue::Type;
    const JsonValue *ws = typedMember(v, "weighted_speedup", Type::kNumber);
    const JsonValue *sd = typedMember(v, "max_slowdown", Type::kNumber);
    const JsonValue *energy = typedMember(v, "energy_nj", Type::kNumber);
    const JsonValue *prev =
        typedMember(v, "preventive_actions", Type::kNumber);
    const JsonValue *raw = typedMember(v, "raw", Type::kObject);
    if (!ws || !sd || !energy || !prev || !raw)
        return false;

    const JsonValue *cycles = typedMember(*raw, "cycles", Type::kNumber);
    const JsonValue *demand =
        typedMember(*raw, "demand_acts", Type::kNumber);
    const JsonValue *marks =
        typedMember(*raw, "suspect_marks", Type::kNumber);
    const JsonValue *rejections =
        typedMember(*raw, "quota_rejections", Type::kNumber);
    const JsonValue *capped =
        typedMember(*raw, "hit_cycle_cap", Type::kBool);
    const JsonValue *prev_energy =
        typedMember(*raw, "preventive_energy_nj", Type::kNumber);
    const JsonValue *violations =
        typedMember(*raw, "oracle_violations", Type::kNumber);
    const JsonValue *max_count =
        typedMember(*raw, "oracle_max_count", Type::kNumber);
    const JsonValue *cores = typedMember(*raw, "cores", Type::kArray);
    const JsonValue *bh_scores =
        typedMember(*raw, "bh_scores", Type::kArray);
    const JsonValue *bh_quotas =
        typedMember(*raw, "bh_quotas", Type::kArray);
    const JsonValue *latency =
        typedMember(*raw, "benign_read_latency_ns", Type::kObject);
    if (!cycles || !demand || !marks || !rejections || !capped ||
        !prev_energy || !violations || !max_count || !cores ||
        !bh_scores || !bh_quotas || !latency)
        return false;
    const JsonValue *histogram =
        typedMember(*latency, "histogram", Type::kObject);
    if (histogram == nullptr || !histogramJsonIsWellFormed(*histogram))
        return false;
    for (std::size_t i = 0; i < bh_scores->size(); ++i)
        if (!bh_scores->at(i).isNumber())
            return false;
    for (std::size_t i = 0; i < bh_quotas->size(); ++i)
        if (!bh_quotas->at(i).isNumber())
            return false;

    ExperimentResult r;
    r.weightedSpeedup = ws->asDouble();
    r.maxSlowdown = sd->asDouble();
    r.energyNj = energy->asDouble();
    r.preventiveActions = prev->asU64();

    // The sampling block is optional (exact records lack it), but when
    // present it must be complete — a truncated one is corruption.
    if (const JsonValue *sampling = v.find("sampling")) {
        const JsonValue *warmup =
            typedMember(*sampling, "warmup", Type::kNumber);
        const JsonValue *measure =
            typedMember(*sampling, "measure", Type::kNumber);
        const JsonValue *ff =
            typedMember(*sampling, "fast_forward", Type::kNumber);
        const JsonValue *windows =
            typedMember(*sampling, "windows", Type::kNumber);
        const JsonValue *sws =
            typedMember(*sampling, "weighted_speedup", Type::kObject);
        const JsonValue *ssd =
            typedMember(*sampling, "max_slowdown", Type::kObject);
        const JsonValue *sprev =
            typedMember(*sampling, "preventive_actions", Type::kObject);
        const JsonValue *sp99 =
            typedMember(*sampling, "p99_latency_ns", Type::kObject);
        if (!warmup || !measure || !ff || !windows || !sws || !ssd ||
            !sprev || !sp99)
            return false;
        r.sampling.enabled = true;
        r.sampling.warmup = warmup->asU64();
        r.sampling.measure = measure->asU64();
        r.sampling.fastForward = ff->asU64();
        r.sampling.windows = windows->asU64();
        if (!sampledMetricFromJson(*sws, &r.sampling.weightedSpeedup) ||
            !sampledMetricFromJson(*ssd, &r.sampling.maxSlowdown) ||
            !sampledMetricFromJson(*sprev,
                                   &r.sampling.preventiveActions) ||
            !sampledMetricFromJson(*sp99, &r.sampling.p99LatencyNs))
            return false;
    }

    // The redteam block is likewise optional-but-complete (only probe
    // records carry it).
    if (const JsonValue *redteam = v.find("redteam")) {
        const JsonValue *spec =
            typedMember(*redteam, "spec", Type::kString);
        const JsonValue *acts =
            typedMember(*redteam, "demand_acts_per_thread", Type::kArray);
        if (!spec || !acts)
            return false;
        for (std::size_t i = 0; i < acts->size(); ++i)
            if (!acts->at(i).isNumber())
                return false;
        for (std::size_t i = 0; i < acts->size(); ++i)
            r.raw.demandActsPerThread.push_back(acts->at(i).asU64());
    }

    r.raw.cycles = cycles->asU64();
    r.raw.demandActs = demand->asU64();
    r.raw.suspectMarks = marks->asU64();
    r.raw.quotaRejections = rejections->asU64();
    r.raw.hitCycleCap = capped->asBool();
    r.raw.preventiveEnergyNj = prev_energy->asDouble();
    r.raw.oracleViolations = violations->asU64();
    r.raw.oracleMaxCount = static_cast<std::uint32_t>(max_count->asU64());
    // The top-level metrics mirror their raw counterparts (runExperiment
    // copies them out); restore both so direct RunResult readers agree.
    r.raw.energyNj = r.energyNj;
    r.raw.preventiveActions = r.preventiveActions;

    for (std::size_t i = 0; i < cores->size(); ++i) {
        const JsonValue &c = cores->at(i);
        const JsonValue *name = typedMember(c, "name", Type::kString);
        const JsonValue *benign = typedMember(c, "benign", Type::kBool);
        const JsonValue *retired = typedMember(c, "retired", Type::kNumber);
        const JsonValue *finish =
            typedMember(c, "finish_cycle", Type::kNumber);
        const JsonValue *ipc = typedMember(c, "ipc", Type::kNumber);
        const JsonValue *stalls =
            typedMember(c, "reject_stalls", Type::kNumber);
        if (!name || !benign || !retired || !finish || !ipc || !stalls)
            return false;
        CoreResult core;
        core.name = name->asString();
        core.benign = benign->asBool();
        core.retired = retired->asU64();
        core.finishCycle = finish->asU64();
        core.ipc = ipc->asDouble();
        core.rejectStalls = stalls->asU64();
        r.raw.cores.push_back(std::move(core));
    }

    for (std::size_t i = 0; i < bh_scores->size(); ++i)
        r.raw.bhScores.push_back(bh_scores->at(i).asDouble());
    for (std::size_t i = 0; i < bh_quotas->size(); ++i)
        r.raw.bhQuotas.push_back(
            static_cast<unsigned>(bh_quotas->at(i).asU64()));

    r.raw.benignReadLatencyNs = histogramFromJson(*histogram);

    *out = std::move(r);
    return true;
}

} // namespace bh
