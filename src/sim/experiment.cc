#include "sim/experiment.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "common/env.h"
#include "stats/metrics.h"

namespace bh {

std::uint64_t
defaultInstructions()
{
    // The paper simulates 100M instructions per benign core; the default
    // here is scaled down for laptop-speed regeneration of every figure
    // (EXPERIMENTS.md records the scale used). Override with BH_INSTS.
    return envU64("BH_INSTS", 100000);
}

unsigned
mixesPerClass()
{
    return static_cast<unsigned>(
        envU64("BH_MIXES", envFlag("BH_FULL") ? 5 : 1));
}

std::vector<unsigned>
nrhSweep()
{
    if (envFlag("BH_FULL"))
        return {4096, 2048, 1024, 512, 256, 128, 64};
    return {4096, 1024, 64};
}

BreakHammerConfig
scaledBreakHammerConfig(std::uint64_t instructions)
{
    // The paper's 64 ms throttling window and TH_threat = 32 assume
    // 100M-instruction runs. Scale the window with the simulated horizon
    // so several windows fit (training, reset, and quota-restore
    // semantics stay intact), and scale TH_threat by the same ratio so
    // the score a thread must accumulate per window keeps its meaning.
    BreakHammerConfig config;
    Cycle horizon_guess = instructions * 6; // ~IPC 0.3 contended H mixes.
    config.window = std::max<Cycle>(200000, horizon_guess / 5);
    double ratio = static_cast<double>(config.window) /
                   static_cast<double>(msToCycles(64.0));
    config.thThreat = std::max(2.0, 32.0 * ratio);
    return config;
}

double
soloIpc(const std::string &app_name, std::uint64_t instructions)
{
    static std::map<std::pair<std::string, std::uint64_t>, double> cache;
    static std::mutex mutex;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find({app_name, instructions});
        if (it != cache.end())
            return it->second;
    }

    SystemConfig config;
    config.numCores = 1;
    config.mitigation = MitigationType::kNone;
    std::vector<WorkloadSlot> slots(1);
    slots[0].kind = WorkloadSlot::Kind::kBenign;
    slots[0].appName = app_name;

    System system(config, slots);
    RunResult result = system.run(instructions, instructions * 150);
    double ipc = result.cores[0].ipc;

    std::lock_guard<std::mutex> lock(mutex);
    cache[{app_name, instructions}] = ipc;
    return ipc;
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    std::uint64_t insts =
        config.instructions ? config.instructions : defaultInstructions();

    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(config.mix.slots.size());
    sys.spec = DramSpec::ddr5();
    applyTimingSideEffects(config.mechanism, config.nRh, &sys.spec);
    sys.mitigation = config.mechanism;
    sys.nRh = config.nRh;
    sys.breakHammer = config.breakHammer;
    sys.bh = config.bh.window ? config.bh : scaledBreakHammerConfig(insts);
    sys.enableOracle = config.oracle;
    sys.bluntThrottle = config.bluntThrottle;
    sys.seed = config.seed;

    // The cycle cap bounds pathological configurations (e.g., BlockHammer
    // at N_RH = 64); capped runs report progress IPC, which is the right
    // measure for a workload that cannot finish.
    System system(sys, config.mix.slots);
    ExperimentResult out;
    out.raw = system.run(insts, insts * 150);

    std::vector<double> shared = out.raw.benignIpcs();
    std::vector<double> alone;
    for (const std::string &app : benignApps(config.mix))
        alone.push_back(soloIpc(app, insts));

    out.weightedSpeedup = weightedSpeedup(shared, alone);
    out.maxSlowdown = maxSlowdown(shared, alone);
    out.energyNj = out.raw.energyNj;
    out.preventiveActions = out.raw.preventiveActions;
    return out;
}

std::string
experimentKey(const ExperimentConfig &config)
{
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "mix=%s|mech=%s|nrh=%u|bh=%d|win=%llu|thr=%.17g|out=%.17g|po=%u|"
        "pn=%u|attr=%d|single=%d|insts=%llu|oracle=%d|blunt=%d|seed=%llu",
        config.mix.name.c_str(), mitigationName(config.mechanism),
        config.nRh, config.breakHammer ? 1 : 0,
        static_cast<unsigned long long>(config.bh.window),
        config.bh.thThreat, config.bh.thOutlier, config.bh.pOldSuspect,
        config.bh.pNewSuspect,
        config.bh.attribution == ScoreAttribution::kWinnerTakesAll ? 1 : 0,
        config.bh.singleCounterSet ? 1 : 0,
        static_cast<unsigned long long>(config.instructions),
        config.oracle ? 1 : 0, config.bluntThrottle ? 1 : 0,
        static_cast<unsigned long long>(config.seed));
    return buf;
}

std::vector<std::pair<std::string, std::uint64_t>>
soloDependencies(const std::vector<ExperimentConfig> &configs)
{
    std::vector<std::pair<std::string, std::uint64_t>> deps;
    for (const ExperimentConfig &config : configs) {
        std::uint64_t insts =
            config.instructions ? config.instructions
                                : defaultInstructions();
        for (const std::string &app : benignApps(config.mix)) {
            std::pair<std::string, std::uint64_t> dep{app, insts};
            bool seen = false;
            for (const auto &existing : deps)
                if (existing == dep) {
                    seen = true;
                    break;
                }
            if (!seen)
                deps.push_back(std::move(dep));
        }
    }
    return deps;
}

JsonValue
experimentResultToJson(const ExperimentConfig &config,
                       const ExperimentResult &result)
{
    JsonValue out = JsonValue::object();
    out.set("key", experimentKey(config));
    out.set("mix", config.mix.name);
    out.set("mechanism", mitigationName(config.mechanism));
    out.set("nrh", config.nRh);
    out.set("breakhammer", config.breakHammer);

    out.set("weighted_speedup", result.weightedSpeedup);
    out.set("max_slowdown", result.maxSlowdown);
    out.set("energy_nj", result.energyNj);
    out.set("preventive_actions", result.preventiveActions);

    JsonValue raw = JsonValue::object();
    raw.set("cycles", result.raw.cycles);
    raw.set("demand_acts", result.raw.demandActs);
    raw.set("suspect_marks", result.raw.suspectMarks);
    raw.set("quota_rejections", result.raw.quotaRejections);
    raw.set("hit_cycle_cap", result.raw.hitCycleCap);
    JsonValue ipcs = JsonValue::array();
    for (double ipc : result.raw.benignIpcs())
        ipcs.push(ipc);
    raw.set("benign_ipcs", std::move(ipcs));
    const Histogram &lat = result.raw.benignReadLatencyNs;
    JsonValue latency = JsonValue::object();
    latency.set("count", lat.count());
    latency.set("mean", lat.mean());
    latency.set("p50", lat.percentile(50));
    latency.set("p90", lat.percentile(90));
    latency.set("p99", lat.percentile(99));
    latency.set("p999", lat.percentile(99.9));
    latency.set("max", lat.max());
    raw.set("benign_read_latency_ns", std::move(latency));
    out.set("raw", std::move(raw));
    return out;
}

} // namespace bh
