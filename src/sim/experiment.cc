#include "sim/experiment.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/env.h"
#include "common/log.h"
#include "common/snapshot.h"
#include "sim/result_store.h"
#include "stats/json_stats.h"
#include "stats/metrics.h"

namespace bh {

namespace {

using SoloKey = std::pair<std::string, std::uint64_t>;

std::mutex &
soloMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<SoloKey, double> &
soloCache()
{
    static std::map<SoloKey, double> cache;
    return cache;
}

std::function<void(const std::string &, std::uint64_t, double)> &
soloSink()
{
    static std::function<void(const std::string &, std::uint64_t, double)>
        sink;
    return sink;
}

const void *&
soloSinkOwner()
{
    static const void *owner = nullptr;
    return owner;
}

std::mutex &
checkpointMutex()
{
    static std::mutex mutex;
    return mutex;
}

CheckpointSpec &
checkpointSpecStorage()
{
    static CheckpointSpec spec;
    return spec;
}

} // namespace

std::uint64_t
defaultInstructions()
{
    // The paper simulates 100M instructions per benign core; the default
    // here is scaled down for laptop-speed regeneration of every figure
    // (EXPERIMENTS.md records the scale used). Override with BH_INSTS.
    return envU64("BH_INSTS", 100000);
}

unsigned
mixesPerClass()
{
    return static_cast<unsigned>(
        envU64("BH_MIXES", envFlag("BH_FULL") ? 5 : 1));
}

std::vector<unsigned>
nrhSweep()
{
    if (envFlag("BH_FULL"))
        return {4096, 2048, 1024, 512, 256, 128, 64};
    return {4096, 1024, 64};
}

BreakHammerConfig
scaledBreakHammerConfig(std::uint64_t instructions)
{
    // The paper's 64 ms throttling window and TH_threat = 32 assume
    // 100M-instruction runs. Scale the window with the simulated horizon
    // so several windows fit (training, reset, and quota-restore
    // semantics stay intact), and scale TH_threat by the same ratio so
    // the score a thread must accumulate per window keeps its meaning.
    BreakHammerConfig config;
    Cycle horizon_guess = instructions * 6; // ~IPC 0.3 contended H mixes.
    config.window = std::max<Cycle>(200000, horizon_guess / 5);
    double ratio = static_cast<double>(config.window) /
                   static_cast<double>(msToCycles(64.0));
    config.thThreat = std::max(2.0, 32.0 * ratio);
    return config;
}

double
soloIpc(const std::string &app_name, std::uint64_t instructions)
{
    {
        std::lock_guard<std::mutex> lock(soloMutex());
        auto it = soloCache().find({app_name, instructions});
        if (it != soloCache().end())
            return it->second;
    }

    SystemConfig config;
    config.numCores = 1;
    config.mitigation = MitigationType::kNone;
    std::vector<WorkloadSlot> slots(1);
    slots[0].kind = WorkloadSlot::Kind::kBenign;
    slots[0].appName = app_name;

    System system(config, slots);
    RunResult result = system.run(instructions, instructions * 150);
    double ipc = result.cores[0].ipc;

    std::lock_guard<std::mutex> lock(soloMutex());
    // Only the first computation fires the sink: if another worker won
    // the race, its value is already cached (identical — the run is a
    // pure function of (app, insts)) and already persisted.
    if (soloCache().emplace(SoloKey{app_name, instructions}, ipc).second &&
        soloSink())
        soloSink()(app_name, instructions, ipc);
    return ipc;
}

void
primeSoloIpc(const std::string &app_name, std::uint64_t instructions,
             double ipc)
{
    std::lock_guard<std::mutex> lock(soloMutex());
    soloCache().emplace(SoloKey{app_name, instructions}, ipc);
}

void
setSoloIpcSink(std::function<void(const std::string &, std::uint64_t,
                                  double)>
                   sink,
               const void *owner)
{
    std::lock_guard<std::mutex> lock(soloMutex());
    soloSink() = std::move(sink);
    soloSinkOwner() = owner;
}

void
clearSoloIpcSink(const void *owner)
{
    std::lock_guard<std::mutex> lock(soloMutex());
    if (soloSinkOwner() != owner)
        return; // A later-opened store took over; leave its sink alone.
    soloSink() = nullptr;
    soloSinkOwner() = nullptr;
}

ExperimentConfig
resolveExperimentConfig(const ExperimentConfig &config)
{
    ExperimentConfig resolved = config;
    if (resolved.instructions == 0)
        resolved.instructions = defaultInstructions();
    if (resolved.bh.window == 0)
        resolved.bh = scaledBreakHammerConfig(resolved.instructions);
    return resolved;
}

void
setCheckpointSpec(const CheckpointSpec &spec)
{
    std::lock_guard<std::mutex> lock(checkpointMutex());
    checkpointSpecStorage() = spec;
}

CheckpointSpec
checkpointSpec()
{
    std::lock_guard<std::mutex> lock(checkpointMutex());
    return checkpointSpecStorage();
}

std::string
snapshotPath(const std::string &dir, const ExperimentConfig &config)
{
    std::string key = experimentKey(resolveExperimentConfig(config));
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.snap",
                  static_cast<unsigned long long>(
                      fnv1a64(key.data(), key.size())));
    return dir + "/" + name;
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    ExperimentConfig cfg = resolveExperimentConfig(config);
    std::uint64_t insts = cfg.instructions;

    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(cfg.mix.slots.size());
    sys.spec = DramSpec::ddr5();
    applyTimingSideEffects(cfg.mechanism, cfg.nRh, &sys.spec);
    sys.mitigation = cfg.mechanism;
    sys.nRh = cfg.nRh;
    sys.breakHammer = cfg.breakHammer;
    sys.bh = cfg.bh;
    sys.enableOracle = cfg.oracle;
    sys.bluntThrottle = cfg.bluntThrottle;
    sys.seed = cfg.seed;

    // The cycle cap bounds pathological configurations (e.g., BlockHammer
    // at N_RH = 64); capped runs report progress IPC, which is the right
    // measure for a workload that cannot finish.
    auto system = std::make_unique<System>(sys, cfg.mix.slots);

    CheckpointSpec ckpt = checkpointSpec();
    std::string snap_path;
    if (ckpt.enabled()) {
        // The identity ties a snapshot to the exact simulation semantics:
        // the experiment content address plus the store schema version,
        // which is bumped whenever results become non-reproducible. A
        // stale snapshot therefore falls back to recompute, exactly like
        // a stale store record.
        System::CheckpointConfig cc;
        snap_path = snapshotPath(ckpt.dir, cfg);
        cc.path = snap_path;
        cc.everyInsts = ckpt.everyInsts;
        cc.everyCycles = ckpt.everyCycles;
        cc.identity = experimentKey(cfg) + "|store_schema=" +
                      std::to_string(ResultStore::kSchemaVersion);
        system->setCheckpoint(cc);
        std::string resume_error;
        if (!system->resumeFromSnapshot(snap_path, &resume_error)) {
            BH_LOG("snapshot %s: %s; computing from scratch",
                   snap_path.c_str(), resume_error.c_str());
            // A failed resume may leave partially loaded state behind;
            // rebuild the System so the cold run starts clean.
            system = std::make_unique<System>(sys, cfg.mix.slots);
            system->setCheckpoint(cc);
        }
    }

    ExperimentResult out;
    out.raw = system->run(insts, insts * 150);
    if (!snap_path.empty()) {
        // Completed: the snapshot is stale. A SIGKILL mid-save can also
        // orphan the atomic-write temp file; sweep it too.
        std::remove(snap_path.c_str());
        std::remove((snap_path + ".tmp").c_str());
    }

    std::vector<double> shared = out.raw.benignIpcs();
    std::vector<double> alone;
    for (const std::string &app : benignApps(cfg.mix))
        alone.push_back(soloIpc(app, insts));

    out.weightedSpeedup = weightedSpeedup(shared, alone);
    out.maxSlowdown = maxSlowdown(shared, alone);
    out.energyNj = out.raw.energyNj;
    out.preventiveActions = out.raw.preventiveActions;
    return out;
}

std::string
experimentKey(const ExperimentConfig &config)
{
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "mix=%s|mech=%s|nrh=%u|bh=%d|win=%llu|thr=%.17g|out=%.17g|po=%u|"
        "pn=%u|attr=%d|single=%d|insts=%llu|oracle=%d|blunt=%d|seed=%llu",
        config.mix.name.c_str(), mitigationName(config.mechanism),
        config.nRh, config.breakHammer ? 1 : 0,
        static_cast<unsigned long long>(config.bh.window),
        config.bh.thThreat, config.bh.thOutlier, config.bh.pOldSuspect,
        config.bh.pNewSuspect,
        config.bh.attribution == ScoreAttribution::kWinnerTakesAll ? 1 : 0,
        config.bh.singleCounterSet ? 1 : 0,
        static_cast<unsigned long long>(config.instructions),
        config.oracle ? 1 : 0, config.bluntThrottle ? 1 : 0,
        static_cast<unsigned long long>(config.seed));
    return buf;
}

std::vector<std::pair<std::string, std::uint64_t>>
soloDependencies(const std::vector<ExperimentConfig> &configs)
{
    std::vector<std::pair<std::string, std::uint64_t>> deps;
    for (const ExperimentConfig &config : configs) {
        std::uint64_t insts =
            config.instructions ? config.instructions
                                : defaultInstructions();
        for (const std::string &app : benignApps(config.mix)) {
            std::pair<std::string, std::uint64_t> dep{app, insts};
            bool seen = false;
            for (const auto &existing : deps)
                if (existing == dep) {
                    seen = true;
                    break;
                }
            if (!seen)
                deps.push_back(std::move(dep));
        }
    }
    return deps;
}

JsonValue
experimentResultToJson(const ExperimentConfig &config,
                       const ExperimentResult &result)
{
    JsonValue out = JsonValue::object();
    out.set("key", experimentKey(config));
    out.set("mix", config.mix.name);
    out.set("mechanism", mitigationName(config.mechanism));
    out.set("nrh", config.nRh);
    out.set("breakhammer", config.breakHammer);

    out.set("weighted_speedup", result.weightedSpeedup);
    out.set("max_slowdown", result.maxSlowdown);
    out.set("energy_nj", result.energyNj);
    out.set("preventive_actions", result.preventiveActions);

    JsonValue raw = JsonValue::object();
    raw.set("cycles", result.raw.cycles);
    raw.set("demand_acts", result.raw.demandActs);
    raw.set("suspect_marks", result.raw.suspectMarks);
    raw.set("quota_rejections", result.raw.quotaRejections);
    raw.set("hit_cycle_cap", result.raw.hitCycleCap);
    raw.set("preventive_energy_nj", result.raw.preventiveEnergyNj);
    raw.set("oracle_violations", result.raw.oracleViolations);
    raw.set("oracle_max_count", result.raw.oracleMaxCount);

    JsonValue cores = JsonValue::array();
    for (const CoreResult &c : result.raw.cores) {
        JsonValue core = JsonValue::object();
        core.set("name", c.name);
        core.set("benign", c.benign);
        core.set("retired", c.retired);
        core.set("finish_cycle", c.finishCycle);
        core.set("ipc", c.ipc);
        core.set("reject_stalls", c.rejectStalls);
        cores.push(std::move(core));
    }
    raw.set("cores", std::move(cores));

    JsonValue bh_scores = JsonValue::array();
    for (double s : result.raw.bhScores)
        bh_scores.push(s);
    raw.set("bh_scores", std::move(bh_scores));
    JsonValue bh_quotas = JsonValue::array();
    for (unsigned q : result.raw.bhQuotas)
        bh_quotas.push(q);
    raw.set("bh_quotas", std::move(bh_quotas));

    const Histogram &lat = result.raw.benignReadLatencyNs;
    JsonValue latency = JsonValue::object();
    latency.set("count", lat.count());
    latency.set("mean", lat.mean());
    latency.set("p50", lat.percentile(50));
    latency.set("p90", lat.percentile(90));
    latency.set("p99", lat.percentile(99));
    latency.set("p999", lat.percentile(99.9));
    latency.set("max", lat.max());
    latency.set("histogram", histogramToJson(lat));
    raw.set("benign_read_latency_ns", std::move(latency));
    out.set("raw", std::move(raw));
    return out;
}

namespace {

/** Member @p key of @p obj iff it exists with type @p type, else null.
 *  This is the store's corruption gate: every access in
 *  experimentResultFromJson goes through it so a wrong-typed or
 *  truncated payload reads as a cache miss, never a crash. */
const JsonValue *
typedMember(const JsonValue &obj, const char *key, JsonValue::Type type)
{
    if (!obj.isObject())
        return nullptr;
    const JsonValue *member = obj.find(key);
    if (member == nullptr || member->type() != type)
        return nullptr;
    return member;
}

/** Validate the histogramToJson() shape before the (assert-happy)
 *  histogramFromJson() parser touches it. */
bool
histogramJsonIsWellFormed(const JsonValue &v)
{
    // A generous ceiling on the bin vector a record may ask us to
    // allocate (the simulator's histograms use 4096 bins): a corrupt
    // num_bins must read as a cache miss, not throw bad_alloc.
    constexpr std::uint64_t kMaxBins = 1u << 20;
    const JsonValue *bin_width =
        typedMember(v, "bin_width", JsonValue::Type::kNumber);
    const JsonValue *num_bins =
        typedMember(v, "num_bins", JsonValue::Type::kNumber);
    const JsonValue *bins =
        typedMember(v, "bins", JsonValue::Type::kArray);
    if (bin_width == nullptr || bin_width->asDouble() <= 0.0 ||
        num_bins == nullptr || num_bins->asDouble() < 0.0 ||
        num_bins->asU64() > kMaxBins || bins == nullptr ||
        typedMember(v, "sum", JsonValue::Type::kNumber) == nullptr ||
        typedMember(v, "max", JsonValue::Type::kNumber) == nullptr)
        return false;
    for (std::size_t i = 0; i < bins->size(); ++i) {
        const JsonValue &pair = bins->at(i);
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(0).isNumber() || !pair.at(1).isNumber() ||
            pair.at(0).asU64() > num_bins->asU64())
            return false;
    }
    return true;
}

} // namespace

bool
experimentResultFromJson(const JsonValue &v, ExperimentResult *out)
{
    // Everything is checked for presence AND type before use: a record
    // from an older layout — or a same-version record damaged on disk —
    // reports false and is treated as a cache miss, per the ResultStore
    // "recompute, never misread" contract.
    using Type = JsonValue::Type;
    const JsonValue *ws = typedMember(v, "weighted_speedup", Type::kNumber);
    const JsonValue *sd = typedMember(v, "max_slowdown", Type::kNumber);
    const JsonValue *energy = typedMember(v, "energy_nj", Type::kNumber);
    const JsonValue *prev =
        typedMember(v, "preventive_actions", Type::kNumber);
    const JsonValue *raw = typedMember(v, "raw", Type::kObject);
    if (!ws || !sd || !energy || !prev || !raw)
        return false;

    const JsonValue *cycles = typedMember(*raw, "cycles", Type::kNumber);
    const JsonValue *demand =
        typedMember(*raw, "demand_acts", Type::kNumber);
    const JsonValue *marks =
        typedMember(*raw, "suspect_marks", Type::kNumber);
    const JsonValue *rejections =
        typedMember(*raw, "quota_rejections", Type::kNumber);
    const JsonValue *capped =
        typedMember(*raw, "hit_cycle_cap", Type::kBool);
    const JsonValue *prev_energy =
        typedMember(*raw, "preventive_energy_nj", Type::kNumber);
    const JsonValue *violations =
        typedMember(*raw, "oracle_violations", Type::kNumber);
    const JsonValue *max_count =
        typedMember(*raw, "oracle_max_count", Type::kNumber);
    const JsonValue *cores = typedMember(*raw, "cores", Type::kArray);
    const JsonValue *bh_scores =
        typedMember(*raw, "bh_scores", Type::kArray);
    const JsonValue *bh_quotas =
        typedMember(*raw, "bh_quotas", Type::kArray);
    const JsonValue *latency =
        typedMember(*raw, "benign_read_latency_ns", Type::kObject);
    if (!cycles || !demand || !marks || !rejections || !capped ||
        !prev_energy || !violations || !max_count || !cores ||
        !bh_scores || !bh_quotas || !latency)
        return false;
    const JsonValue *histogram =
        typedMember(*latency, "histogram", Type::kObject);
    if (histogram == nullptr || !histogramJsonIsWellFormed(*histogram))
        return false;
    for (std::size_t i = 0; i < bh_scores->size(); ++i)
        if (!bh_scores->at(i).isNumber())
            return false;
    for (std::size_t i = 0; i < bh_quotas->size(); ++i)
        if (!bh_quotas->at(i).isNumber())
            return false;

    ExperimentResult r;
    r.weightedSpeedup = ws->asDouble();
    r.maxSlowdown = sd->asDouble();
    r.energyNj = energy->asDouble();
    r.preventiveActions = prev->asU64();

    r.raw.cycles = cycles->asU64();
    r.raw.demandActs = demand->asU64();
    r.raw.suspectMarks = marks->asU64();
    r.raw.quotaRejections = rejections->asU64();
    r.raw.hitCycleCap = capped->asBool();
    r.raw.preventiveEnergyNj = prev_energy->asDouble();
    r.raw.oracleViolations = violations->asU64();
    r.raw.oracleMaxCount = static_cast<std::uint32_t>(max_count->asU64());
    // The top-level metrics mirror their raw counterparts (runExperiment
    // copies them out); restore both so direct RunResult readers agree.
    r.raw.energyNj = r.energyNj;
    r.raw.preventiveActions = r.preventiveActions;

    for (std::size_t i = 0; i < cores->size(); ++i) {
        const JsonValue &c = cores->at(i);
        const JsonValue *name = typedMember(c, "name", Type::kString);
        const JsonValue *benign = typedMember(c, "benign", Type::kBool);
        const JsonValue *retired = typedMember(c, "retired", Type::kNumber);
        const JsonValue *finish =
            typedMember(c, "finish_cycle", Type::kNumber);
        const JsonValue *ipc = typedMember(c, "ipc", Type::kNumber);
        const JsonValue *stalls =
            typedMember(c, "reject_stalls", Type::kNumber);
        if (!name || !benign || !retired || !finish || !ipc || !stalls)
            return false;
        CoreResult core;
        core.name = name->asString();
        core.benign = benign->asBool();
        core.retired = retired->asU64();
        core.finishCycle = finish->asU64();
        core.ipc = ipc->asDouble();
        core.rejectStalls = stalls->asU64();
        r.raw.cores.push_back(std::move(core));
    }

    for (std::size_t i = 0; i < bh_scores->size(); ++i)
        r.raw.bhScores.push_back(bh_scores->at(i).asDouble());
    for (std::size_t i = 0; i < bh_quotas->size(); ++i)
        r.raw.bhQuotas.push_back(
            static_cast<unsigned>(bh_quotas->at(i).asU64()));

    r.raw.benignReadLatencyNs = histogramFromJson(*histogram);

    *out = std::move(r);
    return true;
}

} // namespace bh
