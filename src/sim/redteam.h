/**
 * @file
 * Deterministic red-team fuzzer over attacker-strategy × mechanism space.
 *
 * A RedteamStrategy is the genome of one adaptive attacker: spatial
 * pattern, observation cadence, pacing ceiling, and thread-rotation group
 * — rendered as a canonical spec string that doubles as the `|rt=` key
 * suffix of every persisted probe (so probes never alias canonical figure
 * records) and as the ExperimentConfig::redteam field that makes
 * runExperiment() rewrite the mix's attacker slots into adaptive traces.
 *
 * runRedteamSearch() is a seed-deterministic evolutionary loop: a fixed
 * initial population (plus non-adaptive `obs=0` baselines, one per
 * pattern) probes every mechanism through the existing SweepSpec engine
 * and the ResultStore, survivors are ranked by evasion fitness
 * (preventive actions per attacker activation — lower is more evasive),
 * and children are mutated with an Rng derived from the spec seed alone.
 * Every decision is a pure function of (spec, store contents), so a
 * search re-run against a warm store simulates nothing and reports
 * byte-identical results at any job count.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/experiment.h"
#include "trace/adaptive.h"

namespace bh {

class ResultStore;

/** One attacker strategy: the genome of the red-team search. */
struct RedteamStrategy
{
    AttackPattern pattern = AttackPattern::kManySided;
    /** Records between feedback observations; 0 = fixed (no loop). */
    unsigned observeEvery = 64;
    /** Pacing ceiling the adaptation may back off to. */
    std::uint32_t maxBubbles = 64;
    /** Thread-rotation group size over the mix's attacker slots. */
    unsigned group = 1;
    /** Records per rotation ownership epoch (0 = no hand-off). */
    std::uint64_t handoffEpoch = 0;

    bool adaptive() const { return observeEvery > 0; }
};

/**
 * Canonical spec string: `pat=<many|double|half>,obs=N,bub=N,grp=N,ho=N`.
 * Strict field order; no characters that could collide with the `|`
 * separators of experimentKey().
 */
std::string redteamStrategyCanonical(const RedteamStrategy &s);

/**
 * Parse a canonical spec string. Strict: all five fields, in order,
 * within bounds (obs <= 1e6, 1 <= bub <= 65536, 1 <= grp <= 8,
 * ho <= 1e9). @return false leaves @p out untouched.
 */
bool parseRedteamStrategy(const std::string &spec, RedteamStrategy *out);

/**
 * Rewrite @p slots' attacker slots into adaptive attackers per @p s
 * (rotation group capped at the attacker-slot count). Benign slots are
 * untouched. An `obs=0` strategy yields a trace whose record stream is
 * bit-identical to the fixed AttackerTrace — the fuzzer's baselines.
 */
void applyRedteamStrategy(const RedteamStrategy &s,
                          std::vector<WorkloadSlot> *slots);

/** Fuzzer-loop parameters (the bh_bench --redteam=SEED/ROUNDS/POP flag). */
struct RedteamSpec
{
    std::uint64_t seed = 1;
    unsigned rounds = 2;
    unsigned population = 4;
    /** Per-probe horizon (0 = the BH_INSTS default). Not in the flag. */
    std::uint64_t instructions = 0;
    /** Mechanisms searched (empty = {PARA, Graphene, Hydra}). */
    std::vector<MitigationType> mechanisms;
};

/** Parse "SEED/ROUNDS/POP" (all >= 1; rounds <= 16, pop <= 64). */
bool parseRedteamSpec(const std::string &text, RedteamSpec *out);

/** The deterministic round-0 population for @p seed. */
std::vector<RedteamStrategy>
redteamInitialPopulation(std::uint64_t seed, unsigned population);

/** One deterministic mutation of @p parent drawn from @p rng. */
RedteamStrategy mutateRedteamStrategy(Rng *rng,
                                      const RedteamStrategy &parent);

/**
 * Evasion fitness of a probe: preventive actions per attacker demand
 * activation (lower = more evasive at equal activations). Probes whose
 * attacker slots activated fewer than @p min_attacker_acts rows are
 * disqualified (+infinity): total back-off is not evasion.
 */
double redteamFitness(const ExperimentConfig &config,
                      const ExperimentResult &result,
                      std::uint64_t min_attacker_acts = 32);

/** Best fixed-vs-adaptive outcome under one mechanism. */
struct RedteamMechanismOutcome
{
    MitigationType mechanism = MitigationType::kNone;
    double bestFixedFitness = 0.0;
    double bestAdaptiveFitness = 0.0;
    std::string bestFixedStrategy;
    std::string bestAdaptiveStrategy;
    /** Strictly lower adaptive fitness than every fixed baseline. */
    bool improved = false;
};

/** Outcome of one runRedteamSearch(). */
struct RedteamReport
{
    std::vector<RedteamMechanismOutcome> mechanisms;
    std::size_t probes = 0;   ///< Probe points evaluated (all rounds).
    bool improvedAny = false; ///< Some mechanism was out-evaded.
};

/**
 * Run the full fuzzer loop against @p store (probes persist under their
 * `|rt=` keys; a warm store simulates nothing). Deterministic for a
 * given (spec, store) at any job count.
 */
RedteamReport runRedteamSearch(const RedteamSpec &spec,
                               ResultStore *store);

} // namespace bh
