#include "sim/scheduler.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>

namespace bh {

namespace {

/**
 * A work-stealing index pool: each worker owns a deque of task indices
 * and steals from the back of a victim's deque when its own runs dry.
 * Tasks are simulation runs lasting milliseconds to seconds, so
 * mutex-per-deque is plenty cheap relative to task granularity.
 */
class StealingQueues
{
  public:
    StealingQueues(std::size_t num_tasks, unsigned num_workers)
        : queues(num_workers), mutexes(num_workers)
    {
        // Round-robin sharding interleaves the (typically
        // similarly-expensive) neighbors of a grid across workers, so
        // initial shards are balanced before any stealing happens.
        for (std::size_t i = 0; i < num_tasks; ++i)
            queues[i % num_workers].push_back(i);
    }

    /** Pop from own queue, else steal; false when all queues are dry. */
    bool
    pop(unsigned worker, std::size_t *out)
    {
        {
            std::lock_guard<std::mutex> lock(mutexes[worker]);
            if (!queues[worker].empty()) {
                *out = queues[worker].front();
                queues[worker].pop_front();
                return true;
            }
        }
        for (std::size_t offset = 1; offset < queues.size(); ++offset) {
            unsigned victim =
                (worker + offset) % static_cast<unsigned>(queues.size());
            std::lock_guard<std::mutex> lock(mutexes[victim]);
            if (!queues[victim].empty()) {
                *out = queues[victim].back();
                queues[victim].pop_back();
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<std::deque<std::size_t>> queues;
    std::vector<std::mutex> mutexes;
};

/** Run @p task(i) for every index in [0, num_tasks) on @p threads workers. */
void
parallelFor(std::size_t num_tasks, unsigned threads,
            const std::function<void(std::size_t)> &task)
{
    if (num_tasks == 0)
        return;
    if (threads <= 1 || num_tasks == 1) {
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads, num_tasks));
    StealingQueues queues(num_tasks, workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            std::size_t index;
            while (queues.pop(w, &index))
                task(index);
        });
    }
    for (std::thread &t : pool)
        t.join();
}

} // namespace

ExperimentScheduler::ExperimentScheduler(SchedulerOptions options)
    : options(std::move(options))
{
    threads = this->options.threads
                  ? this->options.threads
                  : std::max(1u, std::thread::hardware_concurrency());
}

std::uint64_t
ExperimentScheduler::deriveRunSeed(std::uint64_t base_seed,
                                   std::size_t index)
{
    // SplitMix64 finalizer over (base, index): decorrelated, and a pure
    // function of the grid position — never of execution order.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                                      (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return z ? z : 1;
}

std::vector<ExperimentResult>
ExperimentScheduler::run(const std::vector<ExperimentConfig> &configs)
{
    std::vector<ExperimentConfig> grid = configs;
    if (options.deriveSeeds)
        for (std::size_t i = 0; i < grid.size(); ++i)
            grid[i].seed = deriveRunSeed(grid[i].seed, i);

    if (options.precacheSoloIpcs) {
        // Phase 1: warm the weighted-speedup denominators. Each unique
        // (app, insts) solo run executes exactly once; without this,
        // workers holding the same mix would duplicate the run and one
        // result would be discarded at cache insert.
        std::vector<std::pair<std::string, std::uint64_t>> deps =
            soloDependencies(grid);
        parallelFor(deps.size(), threads, [&](std::size_t i) {
            soloIpc(deps[i].first, deps[i].second);
        });
    }

    // Phase 2: the experiment grid itself.
    std::vector<ExperimentResult> results(grid.size());
    std::mutex stream_mutex;
    parallelFor(grid.size(), threads, [&](std::size_t i) {
        results[i] = runExperiment(grid[i]);
        if (options.log)
            options.log->append(i, experimentKey(grid[i]),
                                experimentResultToJson(grid[i],
                                                       results[i]));
        if (options.onResult) {
            std::lock_guard<std::mutex> lock(stream_mutex);
            options.onResult(i, grid[i], results[i]);
        }
    });
    return results;
}

} // namespace bh
