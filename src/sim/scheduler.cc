#include "sim/scheduler.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "sim/parallel_for.h"

namespace bh {

ExperimentScheduler::ExperimentScheduler(SchedulerOptions options)
    : options(std::move(options))
{
    threads = this->options.threads
                  ? this->options.threads
                  : std::max(1u, std::thread::hardware_concurrency());
}

std::uint64_t
ExperimentScheduler::deriveRunSeed(std::uint64_t base_seed,
                                   std::size_t index)
{
    // SplitMix64 finalizer over (base, index): decorrelated, and a pure
    // function of the grid position — never of execution order.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                                      (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return z ? z : 1;
}

std::vector<ExperimentResult>
ExperimentScheduler::run(const std::vector<ExperimentConfig> &configs)
{
    std::vector<ExperimentConfig> grid = configs;
    if (options.deriveSeeds)
        for (std::size_t i = 0; i < grid.size(); ++i)
            grid[i].seed = deriveRunSeed(grid[i].seed, i);

    if (options.precacheSoloIpcs) {
        // Phase 1: warm the weighted-speedup denominators. Each unique
        // (app, insts) solo run executes exactly once; without this,
        // workers holding the same mix would duplicate the run and one
        // result would be discarded at cache insert.
        std::vector<std::pair<std::string, std::uint64_t>> deps =
            soloDependencies(grid);
        parallelFor(deps.size(), threads, [&](std::size_t i) {
            soloIpc(deps[i].first, deps[i].second);
        });
    }

    // Phase 2: the experiment grid itself.
    std::vector<ExperimentResult> results(grid.size());
    std::mutex stream_mutex;
    parallelFor(grid.size(), threads, [&](std::size_t i) {
        results[i] = runExperiment(grid[i]);
        if (options.log)
            options.log->append(i, experimentKey(grid[i]),
                                experimentResultToJson(grid[i],
                                                       results[i]));
        if (options.onResult) {
            std::lock_guard<std::mutex> lock(stream_mutex);
            options.onResult(i, grid[i], results[i]);
        }
    });
    return results;
}

} // namespace bh
