#include "sim/sweep.h"

#include <set>
#include <utility>

namespace bh {

SweepSpec &
SweepSpec::mix(MixSpec m)
{
    mixes_.push_back(std::move(m));
    return *this;
}

SweepSpec &
SweepSpec::mixes(const std::vector<MixSpec> &ms)
{
    mixes_.insert(mixes_.end(), ms.begin(), ms.end());
    return *this;
}

SweepSpec &
SweepSpec::mixClasses(const std::vector<std::string> &patterns,
                      unsigned per_class)
{
    for (const std::string &pattern : patterns)
        for (unsigned i = 0; i < per_class; ++i)
            mixes_.push_back(makeMix(pattern, i));
    return *this;
}

SweepSpec &
SweepSpec::mechanism(MitigationType m)
{
    mechanisms_.push_back(m);
    return *this;
}

SweepSpec &
SweepSpec::mechanisms(const std::vector<MitigationType> &ms)
{
    mechanisms_.insert(mechanisms_.end(), ms.begin(), ms.end());
    return *this;
}

SweepSpec &
SweepSpec::nRh(unsigned n)
{
    nRh_ = {n};
    return *this;
}

SweepSpec &
SweepSpec::nRhValues(const std::vector<unsigned> &values)
{
    nRh_ = values;
    return *this;
}

SweepSpec &
SweepSpec::breakHammer(bool on)
{
    breakHammer_ = {on};
    return *this;
}

SweepSpec &
SweepSpec::breakHammerAxis()
{
    breakHammer_ = {false, true};
    return *this;
}

SweepSpec &
SweepSpec::withBaselines()
{
    baselines_ = true;
    return *this;
}

SweepSpec &
SweepSpec::instructions(std::uint64_t n)
{
    instructions_ = n;
    return *this;
}

SweepSpec &
SweepSpec::oracle(bool on)
{
    oracle_ = on;
    return *this;
}

SweepSpec &
SweepSpec::variant(std::string label,
                   std::function<void(ExperimentConfig &)> apply)
{
    variants_.push_back({std::move(label), std::move(apply)});
    return *this;
}

SweepSpec &
SweepSpec::forEach(std::function<void(ExperimentConfig &)> tweak)
{
    tweaks_.push_back(std::move(tweak));
    return *this;
}

SweepSpec &
SweepSpec::merge(const SweepSpec &other)
{
    std::vector<ExperimentConfig> points = other.expand();
    merged_.insert(merged_.end(), points.begin(), points.end());
    return *this;
}

ExperimentConfig
SweepSpec::baselinePoint(const MixSpec &mix)
{
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.breakHammer = false;
    return cfg;
}

std::vector<ExperimentConfig>
SweepSpec::expand() const
{
    std::vector<ExperimentConfig> out;
    for (const MixSpec &m : mixes_) {
        if (baselines_) {
            ExperimentConfig base = baselinePoint(m);
            // The baseline must run at the same horizon as the points it
            // normalizes, or speedup ratios would compare runs of
            // different lengths; every other field stays canonical.
            base.instructions = instructions_;
            out.push_back(base);
        }
        // An unset mechanism axis means "no mitigation", like the other
        // axes' neutral defaults — never a silently empty grid.
        static const std::vector<MitigationType> kNoMitigation = {
            MitigationType::kNone};
        const std::vector<MitigationType> &mechs =
            mechanisms_.empty() ? kNoMitigation : mechanisms_;
        for (unsigned n_rh : nRh_) {
            for (MitigationType mech : mechs) {
                for (bool bh_on : breakHammer_) {
                    ExperimentConfig base;
                    base.mix = m;
                    base.mechanism = mech;
                    base.nRh = n_rh;
                    base.breakHammer = bh_on;
                    base.instructions = instructions_;
                    base.oracle = oracle_;
                    for (const auto &tweak : tweaks_)
                        tweak(base);
                    if (variants_.empty()) {
                        out.push_back(base);
                        continue;
                    }
                    for (const SweepVariant &v : variants_) {
                        ExperimentConfig cfg = base;
                        if (v.apply)
                            v.apply(cfg);
                        out.push_back(cfg);
                    }
                }
            }
        }
    }
    out.insert(out.end(), merged_.begin(), merged_.end());
    return out;
}

std::vector<ExperimentConfig>
expandWorkUnits(const std::vector<ExperimentConfig> &configs)
{
    std::vector<ExperimentConfig> units;
    std::set<std::string> seen;
    for (const ExperimentConfig &config : configs) {
        // Resolve before keying, like every persistent-cache consumer:
        // the defaulted form would alias every BH_INSTS scale (and the
        // process-wide --sample/--channels specs) to one address.
        ExperimentConfig resolved = resolveExperimentConfig(config);
        if (seen.insert(experimentKey(resolved)).second)
            units.push_back(std::move(resolved));
    }
    return units;
}

} // namespace bh
