/**
 * @file
 * Persistent, content-addressed experiment result store.
 *
 * Every experiment point is identified by experimentKey() — a stable
 * string over every field that influences the simulation — and the
 * simulator is deterministic, so a result computed once is valid forever
 * (for a given schema version) in any process on any machine. The
 * ResultStore exploits that: it is the memoizing cache the bench figures
 * share (the role the in-memory ExperimentPool used to play), optionally
 * backed by an append-only JSONL file so repeated `bh_bench` invocations
 * reuse points across processes.
 *
 * Disk layout (one directory per store):
 *
 *   <dir>/results.jsonl — one record per line:
 *     {"v":N,"kind":"experiment","key":"<experimentKey>","payload":{...}}
 *     {"v":N,"kind":"solo","app":"<name>","insts":I,"ipc":X}
 *
 * The payload is experimentResultToJson() output, which round-trips
 * exactly, so a warm run re-serializes byte-identical JSON without
 * simulating anything. Records whose "v" differs from kSchemaVersion are
 * skipped at load (a schema change triggers recompute, never
 * corruption), as are torn or malformed lines. Appends write whole lines
 * with a single O_APPEND-style write, so two stores can be merged by
 * concatenating their results.jsonl files; duplicate keys are benign
 * (first record wins — deterministic simulation makes them identical).
 *
 * Sharding: setShard(i, n) makes prefetch() compute only the points
 * whose content address hashes to shard i of n (1-based), so a grid can
 * be split across machines — each shard writes its own store, and the
 * shards' files are merged by concatenation. Because every run is seeded
 * from its config alone (the scheduler's deterministic per-index
 * seeding), a sharded grid is bit-identical to an unsharded one.
 *
 * Solo-IPC runs (the weighted-speedup denominators) persist through the
 * same file: open() primes the shared solo cache from "solo" records and
 * installs a sink that appends each freshly computed solo IPC.
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.h"
#include "stats/json.h"

namespace bh {

/** Counters describing how a store session resolved its requests. */
struct ResultStoreStats
{
    std::size_t loaded = 0;      ///< Records parsed from disk at open().
    std::size_t skipped = 0;     ///< Disk records ignored (version/corrupt).
    std::size_t hits = 0;        ///< Requests served from a disk record.
    std::size_t computed = 0;    ///< Requests that ran a simulation.
    std::size_t shardSkipped = 0; ///< Prefetch points owned by other shards.
    std::size_t soloLoaded = 0;  ///< Solo IPCs primed from disk.
    std::size_t soloComputed = 0; ///< Solo IPCs simulated and appended.
    std::size_t ingested = 0;    ///< Records ingested from sweep workers.
};

/** Content-addressed experiment cache with optional JSONL persistence. */
class ResultStore
{
  public:
    /**
     * Store format version. Bump when experimentResultToJson()'s schema
     * or experimentKey()'s layout changes incompatibly — or when a
     * simulation-semantics change makes old records non-reproducible;
     * records written under any other version are recomputed, not
     * misread.
     *
     * v2: BlockHammer's epoch state rolls at exact boundaries
     * (IMitigation::advanceTo) instead of at scheduler probe times, so
     * BlockHammer-point records written by v1 no longer match what the
     * simulator computes.
     */
    static constexpr std::uint64_t kSchemaVersion = 2;

    /** @param threads Worker threads for prefetch() grids. */
    explicit ResultStore(unsigned threads = 1);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Attach @p dir (created if absent): load its results.jsonl, prime
     * the solo-IPC cache from it, and append future misses to it. The
     * backing file is guarded by an advisory exclusive flock() for the
     * lifetime of the store — a second live writer (another coordinator,
     * or a local --store run racing one) would interleave appends and
     * break the single-writer invariant, so it fails fast here instead.
     * @return false (with @p error set) when the directory cannot be
     *         created, the file cannot be opened for append, or another
     *         process holds the store.
     */
    bool open(const std::string &dir, std::string *error);

    /** Whether a directory is attached (misses persist). */
    bool persistent() const { return fd >= 0; }

    /**
     * Restrict prefetch() to shard @p index of @p count (1-based): only
     * points with shardOf(key, count) == index are computed; the rest
     * are skipped (unless already on disk, which still resolves). get()
     * is unaffected — an explicit point request always computes.
     */
    void setShard(unsigned index, unsigned count);

    /** Owning shard of @p key among @p count shards (1-based; FNV-1a). */
    static unsigned shardOf(const std::string &key, unsigned count);

    /**
     * Resolve every config: disk hits are parsed into the cache, the
     * rest (minus other shards' points) simulate in parallel on the
     * ExperimentScheduler, streaming each finished record to disk.
     */
    void prefetch(const std::vector<ExperimentConfig> &configs);

    /**
     * Cached result of @p config; resolves from disk or computes inline
     * (and persists) when absent.
     */
    const ExperimentResult &get(const ExperimentConfig &config);

    /**
     * Like get(), but never computes: resolves from the cache or a disk
     * record, or returns nullptr. The sweep coordinator uses this to
     * mark warm units done without leasing them.
     */
    const ExperimentResult *lookup(const ExperimentConfig &config);

    /**
     * Ingest an externally computed record (a sweep worker's `result`
     * payload — experimentResultToJson() output for @p config): parse it,
     * cache it, and append it to the backing file in the canonical
     * serialization, exactly as if this process had simulated the point.
     * A key already resolved is left untouched (first record wins, like
     * concatenated shard files). The caller is the single writer — the
     * coordinator's event loop — so ingest never races a local compute.
     * @return false (with @p error set) when @p payload does not parse
     *         as a result record.
     */
    bool ingest(const ExperimentConfig &config, const JsonValue &payload,
                std::string *error);

    /**
     * Ingest a worker-computed solo IPC: prime the process-wide cache
     * and persist a "solo" record, deduplicating repeats (every worker
     * computes its own denominators, so the same pair arrives once per
     * worker).
     */
    void ingestSolo(const std::string &app, std::uint64_t insts,
                    double ipc);

    /** Number of distinct points resolved (hit or computed) so far. */
    std::size_t size() const;

    /** Session counters (loads, hits, simulations, appends). */
    ResultStoreStats stats() const;

    /**
     * Every resolved point as a JSON array sorted by content address —
     * bit-identical across job counts, shard layouts, and warm/cold
     * runs.
     */
    JsonValue toJson() const;

    unsigned threadCount() const { return threads; }

  private:
    struct Entry
    {
        ExperimentConfig config;
        ExperimentResult result;
    };

    /** Load results.jsonl (missing file is an empty store). */
    void loadFile(const std::string &path);

    /** Append one whole line with a single write() (thread-safe). */
    void appendLine(const std::string &line);

    void appendExperiment(const ExperimentConfig &config,
                          const ExperimentResult &result);

    /**
     * Move a disk payload into the cache if one exists for @p key.
     * Requires @p lock held; returns the entry or nullptr.
     */
    const Entry *resolveFromDisk(const std::string &key,
                                 const ExperimentConfig &config);

    mutable std::mutex mutex;
    std::map<std::string, Entry> cache;
    /** (app, insts) solo pairs already persisted via ingestSolo(). */
    std::map<std::pair<std::string, std::uint64_t>, bool> soloIngested;
    /** Loaded but not-yet-requested records: key -> compact payload
     *  dump, parsed lazily by resolveFromDisk(). */
    std::map<std::string, std::string> diskPayloads;
    ResultStoreStats counters;
    int fd = -1;
    bool writeFailed = false;
    unsigned threads;
    unsigned shardIndex = 0; ///< 0 = unsharded.
    unsigned shardCount = 0;
};

} // namespace bh
