#include "sim/result_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <utility>

#include "common/log.h"
#include "sim/scheduler.h"

namespace bh {

namespace {

constexpr const char *kResultsFile = "results.jsonl";

} // namespace

ResultStore::ResultStore(unsigned threads)
    : threads(threads ? threads
                      : std::max(1u, std::thread::hardware_concurrency()))
{}

ResultStore::~ResultStore()
{
    if (fd >= 0) {
        // Only releases the sink if this store still owns it — a store
        // opened later has already replaced it.
        clearSoloIpcSink(this);
        ::close(fd);
    }
}

bool
ResultStore::open(const std::string &dir, std::string *error)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (error)
            *error = "cannot create store directory " + dir + ": " +
                     ec.message();
        return false;
    }

    std::string path = dir + "/" + kResultsFile;
    loadFile(path);

    // O_APPEND with each record written by one write() call: whole lines
    // land contiguously even with concurrent appenders (on local
    // filesystems), so the worst a crash mid-run leaves is one torn
    // final line, which the loader skips. stdio buffering is avoided
    // deliberately — a buffered stream flushes large records in chunks
    // that could interleave between processes.
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot open " + path + " for append: " +
                     std::strerror(errno);
        return false;
    }

    // Advisory single-writer lock, held until the store is destroyed.
    // Two concurrent appenders would be *mostly* safe (whole-line
    // O_APPEND writes), but they would duplicate simulations and — more
    // importantly — a second sweep coordinator on the same store would
    // split one fleet's results across two ingest paths. Fail fast with
    // a clear message instead of interleaving.
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        if (error)
            *error = "store " + dir + " is locked by another process " +
                     "(a coordinator or --store run already owns it): " +
                     std::strerror(errno);
        ::close(fd);
        fd = -1;
        return false;
    }

    setSoloIpcSink(
        [this](const std::string &app, std::uint64_t insts, double ipc) {
            JsonValue rec = JsonValue::object();
            rec.set("v", kSchemaVersion);
            rec.set("kind", "solo");
            rec.set("app", app);
            rec.set("insts", insts);
            rec.set("ipc", ipc);
            appendLine(rec.dump());
            std::lock_guard<std::mutex> lock(mutex);
            soloIngested.emplace(std::make_pair(app, insts), true);
            ++counters.soloComputed;
        },
        this);
    return true;
}

void
ResultStore::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return; // A fresh store: nothing on disk yet.

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JsonValue rec;
        std::string parse_error;
        if (!JsonValue::parse(line, &rec, &parse_error) ||
            !rec.isObject()) {
            // Torn or malformed line. A crashed writer's torn record has
            // no trailing newline, so the next append — a perfectly valid
            // record — lands on the same physical line and would be lost
            // with it. Recover it: scan for an embedded record start and
            // parse the suffix, skipping only the torn prefix.
            bool recovered = false;
            for (std::size_t pos = line.find("{\"v\":", 1);
                 pos != std::string::npos;
                 pos = line.find("{\"v\":", pos + 1)) {
                JsonValue tail;
                if (JsonValue::parse(line.substr(pos), &tail) &&
                    tail.isObject()) {
                    std::fprintf(stderr,
                                 "result store: recovered a record fused "
                                 "to a torn write on line %zu of %s\n",
                                 line_no, path.c_str());
                    rec = std::move(tail);
                    recovered = true;
                    break;
                }
            }
            ++counters.skipped; // The torn prefix (or the whole line).
            if (!recovered) {
                std::fprintf(stderr,
                             "result store: skipping malformed line %zu "
                             "of %s\n",
                             line_no, path.c_str());
                continue;
            }
        }
        const JsonValue *version = rec.find("v");
        const JsonValue *kind = rec.find("kind");
        if (version == nullptr || !version->isNumber() ||
            version->asU64() != kSchemaVersion || kind == nullptr ||
            !kind->isString()) {
            ++counters.skipped; // Other schema version: recompute.
            continue;
        }
        if (kind->asString() == "experiment") {
            const JsonValue *key = rec.find("key");
            const JsonValue *payload = rec.find("payload");
            if (key == nullptr || !key->isString() || payload == nullptr) {
                ++counters.skipped;
                continue;
            }
            // Keep the payload as its compact dump, not a parsed tree:
            // a store can hold far more records than one run requests,
            // and resolveFromDisk() re-parses only the requested ones.
            if (diskPayloads.emplace(key->asString(), payload->dump())
                    .second)
                ++counters.loaded;
        } else if (kind->asString() == "solo") {
            const JsonValue *app = rec.find("app");
            const JsonValue *insts = rec.find("insts");
            const JsonValue *ipc = rec.find("ipc");
            if (app == nullptr || insts == nullptr || ipc == nullptr) {
                ++counters.skipped;
                continue;
            }
            primeSoloIpc(app->asString(), insts->asU64(),
                         ipc->asDouble());
            // Mark the pair as already persisted so a later ingestSolo()
            // (a warm coordinator's workers recompute their own
            // denominators) does not append a duplicate line.
            soloIngested.emplace(
                std::make_pair(app->asString(), insts->asU64()), true);
            ++counters.soloLoaded;
        } else {
            ++counters.skipped;
        }
    }
    BH_LOG("store: loaded %zu experiment + %zu solo records from %s "
           "(%zu skipped)",
           counters.loaded, counters.soloLoaded, path.c_str(),
           counters.skipped);
}

void
ResultStore::appendLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex);
    // After one failure the stream may sit mid-record (a short write has
    // no trailing newline); appending more would fuse it with the next
    // record into one malformed line. Stop persisting entirely — which
    // is also what the warning promises.
    if (fd < 0 || writeFailed)
        return;
    std::string record = line;
    record.push_back('\n');
    ssize_t written = ::write(fd, record.data(), record.size());
    if (written != static_cast<ssize_t>(record.size())) {
        // Warn once: a full disk mid-sweep must not silently drop every
        // remaining record while the run reports success.
        writeFailed = true;
        std::fprintf(stderr,
                     "result store: append failed (%s); further results "
                     "of this run will NOT be persisted\n",
                     written < 0 ? std::strerror(errno)
                                 : "short write");
    }
}

void
ResultStore::appendExperiment(const ExperimentConfig &config,
                              const ExperimentResult &result)
{
    if (fd < 0)
        return;
    JsonValue rec = JsonValue::object();
    rec.set("v", kSchemaVersion);
    rec.set("kind", "experiment");
    rec.set("key", experimentKey(config));
    rec.set("payload", experimentResultToJson(config, result));
    appendLine(rec.dump());
}

void
ResultStore::setShard(unsigned index, unsigned count)
{
    shardIndex = index;
    shardCount = count;
}

unsigned
ResultStore::shardOf(const std::string &key, unsigned count)
{
    // FNV-1a over the content address: stable across processes,
    // machines, and figure orderings — the property that lets shards be
    // assigned without any coordination.
    std::uint64_t hash = 14695981039346656037ull;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return count ? static_cast<unsigned>(hash % count) + 1 : 1;
}

const ResultStore::Entry *
ResultStore::resolveFromDisk(const std::string &key,
                             const ExperimentConfig &config)
{
    auto disk = diskPayloads.find(key);
    if (disk == diskPayloads.end())
        return nullptr;
    JsonValue payload;
    ExperimentResult parsed;
    if (!JsonValue::parse(disk->second, &payload) ||
        !experimentResultFromJson(payload, &parsed)) {
        // Same version but unreadable payload: drop it and recompute.
        diskPayloads.erase(disk);
        ++counters.skipped;
        return nullptr;
    }
    diskPayloads.erase(disk);
    ++counters.hits;
    return &cache.emplace(key, Entry{config, std::move(parsed)})
                .first->second;
}

void
ResultStore::prefetch(const std::vector<ExperimentConfig> &configs)
{
    std::vector<ExperimentConfig> missing;
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::set<std::string> requested;
        for (const ExperimentConfig &config : configs) {
            // Content addresses are always over the RESOLVED config:
            // keying a defaulted one would alias every BH_INSTS scale to
            // the same record and serve wrong-horizon results.
            ExperimentConfig resolved = resolveExperimentConfig(config);
            std::string key = experimentKey(resolved);
            if (cache.count(key) || !requested.insert(key).second)
                continue;
            if (resolveFromDisk(key, resolved) != nullptr)
                continue;
            if (shardCount &&
                shardOf(key, shardCount) != shardIndex) {
                ++counters.shardSkipped;
                continue;
            }
            missing.push_back(std::move(resolved));
        }
    }
    if (missing.empty()) {
        BH_LOG("prefetch: %zu points, all cached", configs.size());
        return;
    }
    BH_LOG("prefetch: %zu points, simulating %zu on %u thread(s)",
           configs.size(), missing.size(), threads);

    SchedulerOptions options;
    options.threads = threads;
    // Stream every finished point to disk as workers complete it, so an
    // interrupted sweep resumes where it stopped instead of restarting.
    options.onResult = [this](std::size_t, const ExperimentConfig &config,
                              const ExperimentResult &result) {
        appendExperiment(config, result);
    };
    ExperimentScheduler scheduler(options);
    std::vector<ExperimentResult> results = scheduler.run(missing);

    std::lock_guard<std::mutex> lock(mutex);
    counters.computed += missing.size();
    for (std::size_t i = 0; i < missing.size(); ++i)
        cache.emplace(experimentKey(missing[i]),
                      Entry{missing[i], results[i]});
}

const ExperimentResult &
ResultStore::get(const ExperimentConfig &config)
{
    ExperimentConfig resolved = resolveExperimentConfig(config);
    std::string key = experimentKey(resolved);
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second.result;
        if (const Entry *entry = resolveFromDisk(key, resolved))
            return entry->result;
    }
    ExperimentResult result = runExperiment(resolved);
    appendExperiment(resolved, result);
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.computed;
    return cache.emplace(key, Entry{std::move(resolved), std::move(result)})
        .first->second.result;
}

const ExperimentResult *
ResultStore::lookup(const ExperimentConfig &config)
{
    ExperimentConfig resolved = resolveExperimentConfig(config);
    std::string key = experimentKey(resolved);
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return &it->second.result;
    if (const Entry *entry = resolveFromDisk(key, resolved))
        return &entry->result;
    return nullptr;
}

bool
ResultStore::ingest(const ExperimentConfig &config,
                    const JsonValue &payload, std::string *error)
{
    ExperimentConfig resolved = resolveExperimentConfig(config);
    std::string key = experimentKey(resolved);
    ExperimentResult parsed;
    if (!experimentResultFromJson(payload, &parsed)) {
        if (error)
            *error = "result payload for " + key +
                     " is not a valid experiment record";
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (cache.count(key))
            return true; // First record won already (re-leased unit).
        diskPayloads.erase(key);
        cache.emplace(key, Entry{resolved, parsed});
        ++counters.ingested;
    }
    // Re-serialize through the canonical encoder rather than appending
    // the wire payload verbatim: the stored line is then byte-identical
    // to what a local simulation of the same point would have written
    // (the round trip is exact — experiment.h documents it).
    JsonValue rec = JsonValue::object();
    rec.set("v", kSchemaVersion);
    rec.set("kind", "experiment");
    rec.set("key", key);
    rec.set("payload", experimentResultToJson(resolved, parsed));
    appendLine(rec.dump());
    return true;
}

void
ResultStore::ingestSolo(const std::string &app, std::uint64_t insts,
                        double ipc)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!soloIngested.emplace(std::make_pair(app, insts), true)
                 .second)
            return; // Another worker already delivered this pair.
    }
    // Prime the process-wide cache (so a coordinator-side render never
    // recomputes a denominator) WITHOUT tripping the solo sink: the sink
    // fires on computation only, and this value was computed elsewhere.
    primeSoloIpc(app, insts, ipc);
    JsonValue rec = JsonValue::object();
    rec.set("v", kSchemaVersion);
    rec.set("kind", "solo");
    rec.set("app", app);
    rec.set("insts", insts);
    rec.set("ipc", ipc);
    appendLine(rec.dump());
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return cache.size();
}

ResultStoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

JsonValue
ResultStore::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex);
    JsonValue arr = JsonValue::array();
    for (const auto &entry : cache) // std::map: sorted by key already
        arr.push(experimentResultToJson(entry.second.config,
                                        entry.second.result));
    return arr;
}

} // namespace bh
