#include "mem/controller.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

namespace {

/** Sentinel sequence number meaning "no candidate". */
constexpr std::uint64_t kNoSeq = static_cast<std::uint64_t>(-1);

} // namespace

MemoryController::MemoryController(const DramSpec &spec,
                                   const AddressMap &mapper,
                                   const McConfig &config, unsigned channel)
    : spec_(spec), mapper(mapper), config_(config), channel_(channel),
      engine_(spec),
      readQ(spec.org.totalBanks()),
      writeQ(spec.org.totalBanks()),
      readScan(spec.org.totalBanks()),
      writeScan(spec.org.totalBanks()),
      maintQ(spec.org.totalBanks()),
      nextRefAt(spec.org.ranks, spec.timing.tREFI),
      refSweepPos(spec.org.ranks, 0),
      hitStreak(spec.org.totalBanks(), 0)
{}

void
MemoryController::setMitigation(IMitigation *m)
{
    mitigation = m;
    if (m != nullptr)
        m->setHost(this);
}

void
MemoryController::enqueueRead(Request req, Cycle now)
{
    BH_ASSERT(canEnqueueRead(), "read queue overflow");
    req.da = mapper.decode(req.addr);
    BH_ASSERT(req.da.channel == channel_, "read routed to wrong channel");
    req.flatBank = mapper.flatBank(req.da);
    req.enqueueCycle = now;
    readQ.push(req);
    invalidateScan(true, req.flatBank);
}

void
MemoryController::enqueueWrite(Request req, Cycle now)
{
    BH_ASSERT(canEnqueueWrite(), "write queue overflow");
    req.da = mapper.decode(req.addr);
    BH_ASSERT(req.da.channel == channel_, "write routed to wrong channel");
    req.flatBank = mapper.flatBank(req.da);
    req.enqueueCycle = now;
    writeQ.push(req);
    invalidateScan(false, req.flatBank);
}

// --- Scan-cache maintenance -------------------------------------------

const MemoryController::BankScan &
MemoryController::scanOf(bool is_read, unsigned fb) const
{
    BankScan &scan = (is_read ? readScan : writeScan)[fb];
    if (scan.valid)
        return scan;
    scan.hitPos = kNoPos;
    scan.confPos = kNoPos;
    const BankState &bank = engine_.bank(fb);
    const std::deque<QueuedRequest> &fifo =
        (is_read ? readQ : writeQ).bank(fb);
    if (!bank.open) {
        // No open row: every entry is a conflict, the oldest leads.
        if (!fifo.empty())
            scan.confPos = 0;
        scan.valid = true;
        return scan;
    }
    for (std::size_t i = 0; i < fifo.size(); ++i) {
        if (fifo[i].req.da.row == bank.openRow) {
            if (scan.hitPos == kNoPos)
                scan.hitPos = i;
        } else if (scan.confPos == kNoPos) {
            scan.confPos = i;
        }
        if (scan.hitPos != kNoPos && scan.confPos != kNoPos)
            break;
    }
    scan.valid = true;
    return scan;
}

void
MemoryController::invalidateScan(bool is_read, unsigned fb)
{
    (is_read ? readScan : writeScan)[fb].valid = false;
}

void
MemoryController::invalidateRowState(unsigned fb)
{
    readScan[fb].valid = false;
    writeScan[fb].valid = false;
}

void
MemoryController::invalidateRank(unsigned rank)
{
    unsigned base = rank * spec_.org.banksPerRank();
    for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i)
        invalidateRowState(base + i);
}

void
MemoryController::invalidateAllRowState()
{
    for (unsigned r = 0; r < spec_.org.ranks; ++r)
        invalidateRank(r);
}

// --- IMitigationHost -------------------------------------------------

void
MemoryController::performVictimRefresh(unsigned flat_bank, unsigned row,
                                       double weight)
{
    MaintOp op;
    op.victimRows = config_.victimRowsPerRefresh;
    op.duration = spec_.timing.tRC * op.victimRows;
    op.protectedRow = static_cast<long>(row);
    maintQ[flat_bank].push_back(op);
    ++maintOpsPending_;
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::performMigration(unsigned flat_bank, unsigned row)
{
    MaintOp op;
    op.isMigration = true;
    op.duration = nsToCycles(config_.migrationLatencyNs);
    op.protectedRow = static_cast<long>(row);
    maintQ[flat_bank].push_back(op);
    ++maintOpsPending_;
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(1.0, lastSeenCycle);
}

void
MemoryController::performRfm(unsigned flat_bank, double weight)
{
    MaintOp op;
    op.duration = spec_.timing.tRFM;
    maintQ[flat_bank].push_back(op);
    ++maintOpsPending_;
    engine_.energy().addRfm();
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::performAlertBackoff(unsigned rfms, double weight)
{
    // The back-off blocks the whole device while the DRAM performs its
    // internal preventive refreshes (JEDEC PRAC ABO protocol).
    Cycle duration = spec_.timing.tRFM * rfms;
    for (unsigned r = 0; r < spec_.org.ranks; ++r) {
        engine_.blockRank(r, lastSeenCycle, duration);
        for (unsigned i = 0; i < rfms; ++i)
            engine_.energy().addRfm();
    }
    invalidateAllRowState(); // blockRank closes every open row.
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::performTrackerAccess(unsigned flat_bank, Cycle duration,
                                       double weight)
{
    MaintOp op;
    op.duration = duration;
    maintQ[flat_bank].push_back(op);
    ++maintOpsPending_;
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::notifyRowProtected(unsigned flat_bank, unsigned row)
{
    if (onRowProtected)
        onRowProtected(flat_bank, row);
}

void
MemoryController::creditDirectScore(ThreadId thread, double amount)
{
    if (observer != nullptr)
        observer->onDirectScore(thread, amount, lastSeenCycle);
}

// --- Tick pipeline ----------------------------------------------------

void
MemoryController::processCompletions(Cycle now)
{
    while (!completions.empty() && completions.top().readyAt <= now) {
        PendingCompletion done = completions.top();
        completions.pop();
        const Request req = pendingReads[done.index];
        freePendingSlots.push_back(done.index);
        if (onReadComplete)
            onReadComplete(req, done.readyAt);
    }
}

bool
MemoryController::rankHasRefreshPending(unsigned rank, Cycle now) const
{
    return now >= nextRefAt[rank];
}

bool
MemoryController::serviceRefresh(Cycle now)
{
    for (unsigned rank = 0; rank < spec_.org.ranks; ++rank) {
        if (!rankHasRefreshPending(rank, now))
            continue;
        if (engine_.rankQuiesced(rank, now)) {
            engine_.issueRefresh(rank, now);
            invalidateRank(rank);
            useCommandSlot(now);
            nextRefAt[rank] += spec_.timing.tREFI;

            unsigned sweep_rows = std::max(
                1u, spec_.org.rowsPerBank / config_.refsPerSweep);
            unsigned start = refSweepPos[rank];
            refSweepPos[rank] =
                (start + sweep_rows) % spec_.org.rowsPerBank;
            if (onPeriodicRefresh)
                onPeriodicRefresh(rank, start, sweep_rows);
            if (mitigation != nullptr)
                mitigation->onPeriodicRefresh(rank, start, sweep_rows, now);
            return true;
        }
        // Quiesce: precharge open banks of this rank, oldest first.
        unsigned base = rank * spec_.org.banksPerRank();
        for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i) {
            unsigned fb = base + i;
            if (engine_.bank(fb).open &&
                engine_.canIssue(DramCommand::kPre, fb, now)) {
                engine_.issuePre(fb, now);
                hitStreak[fb] = 0;
                invalidateRowState(fb);
                useCommandSlot(now);
                return true;
            }
        }
    }
    return false;
}

bool
MemoryController::serviceMaintenance(Cycle now)
{
    if (maintOpsPending_ == 0)
        return false;
    for (unsigned fb = 0; fb < maintQ.size(); ++fb) {
        if (maintQ[fb].empty())
            continue;
        // Never start a blackout on a rank that is quiescing for REF;
        // otherwise a stream of preventive actions could starve refresh.
        if (rankHasRefreshPending(engine_.rankOf(fb), now))
            continue;
        const BankState &bank = engine_.bank(fb);
        if (bank.open) {
            if (engine_.canIssue(DramCommand::kPre, fb, now)) {
                engine_.issuePre(fb, now);
                hitStreak[fb] = 0;
                invalidateRowState(fb);
                useCommandSlot(now);
                return true;
            }
            continue;
        }
        if (now < bank.blockedUntil)
            continue;
        MaintOp op = maintQ[fb].front();
        maintQ[fb].pop_front();
        --maintOpsPending_;
        engine_.blockBank(fb, now, op.duration);
        if (op.isMigration)
            engine_.energy().addMigration();
        else if (op.victimRows > 0)
            engine_.energy().addVictimRefresh(op.victimRows);
        if (op.protectedRow >= 0)
            notifyRowProtected(fb, static_cast<unsigned>(op.protectedRow));
        useCommandSlot(now);
        return true;
    }
    return false;
}

void
MemoryController::issueDemandAct(const Request &req, Cycle now)
{
    engine_.issueAct(req.flatBank, req.da.row, now);
    invalidateRowState(req.flatBank);
    hitStreak[req.flatBank] = 0;
    ++demandActs_;
    if (onDemandAct)
        onDemandAct(req.flatBank, req.da.row, req.thread, now);
    if (observer != nullptr)
        observer->onDemandActivate(req.thread, req.flatBank, now);
    if (mitigation != nullptr)
        mitigation->commitAct(req.flatBank, req.da.row, req.thread, now);
}

void
MemoryController::issueColumn(BankedRequestQueue &queue, bool is_read,
                              unsigned fb, std::size_t pos,
                              bool counts_against_cap, Cycle now)
{
    const QueuedRequest &qr = queue.bank(fb)[pos];
    if (is_read) {
        Cycle ready = engine_.issueRead(fb, now);
        std::uint64_t slot;
        if (!freePendingSlots.empty()) {
            slot = freePendingSlots.back();
            freePendingSlots.pop_back();
            pendingReads[slot] = qr.req;
        } else {
            slot = pendingReads.size();
            pendingReads.push_back(qr.req);
        }
        completions.push(PendingCompletion{ready, slot});
        ++readsServed_;
    } else {
        engine_.issueWrite(fb, now);
        ++writesServed_;
    }
    if (counts_against_cap)
        ++hitStreak[fb];
    queue.erase(fb, pos);
    invalidateScan(is_read, fb);
    useCommandSlot(now);
}

bool
MemoryController::tryIssueForQueue(BankedRequestQueue &queue, bool is_read,
                                   Cycle now)
{
    DramCommand col_cmd = is_read ? DramCommand::kRead : DramCommand::kWrite;

    // Pass 1: oldest row-hit request whose bank's hit streak is under the
    // cap (FR-FCFS+Cap: row hits first, but no more than `cap` younger
    // hits may bypass an older row-conflict request to the same bank).
    // Within a bank only the oldest hit can fire (younger hits share its
    // bank timing and inherit its conflict), so the globally oldest
    // eligible hit is the min-seq per-bank candidate.
    {
        std::uint64_t best_seq = kNoSeq;
        unsigned best_fb = 0;
        std::size_t best_pos = 0;
        bool best_conflict = false;
        for (unsigned fb : queue.activeBanks()) {
            const BankState &bank = engine_.bank(fb);
            if (!bank.open)
                continue;
            if (!maintQ[fb].empty())
                continue;
            if (rankHasRefreshPending(engine_.rankOf(fb), now))
                continue;
            const BankScan &scan = scanOf(is_read, fb);
            if (scan.hitPos == kNoPos)
                continue;
            if (!engine_.canIssue(col_cmd, fb, now))
                continue;
            // Entries ahead of the oldest hit are all row conflicts.
            bool older_conflict = scan.hitPos > 0;
            if (older_conflict && hitStreak[fb] >= config_.frfcfsCap)
                continue;
            std::uint64_t seq = queue.bank(fb)[scan.hitPos].seq;
            if (seq < best_seq) {
                best_seq = seq;
                best_fb = fb;
                best_pos = scan.hitPos;
                best_conflict = older_conflict;
            }
        }
        if (best_seq != kNoSeq) {
            issueColumn(queue, is_read, best_fb, best_pos, best_conflict,
                        now);
            return true;
        }
    }

    // Pass 2: oldest request that needs an ACT or a PRE. Per bank the
    // first actionable entry is unique: a closed bank's candidate is its
    // oldest request whose row the mitigation has released (probes are
    // const, so a delayed older entry is simply skipped — exactly the
    // linear reference scan's behaviour), an open bank's is its oldest
    // row conflict, precharging only when no same-row hit is pending or
    // the hit streak hit the reordering cap.
    bool delays = mitigation != nullptr && mitigation->delaysActs();

    std::uint64_t best_seq = kNoSeq;
    unsigned best_fb = 0;
    std::size_t best_pos = 0;
    bool best_is_pre = false;

    for (unsigned fb : queue.activeBanks()) {
        if (!maintQ[fb].empty())
            continue;
        if (rankHasRefreshPending(engine_.rankOf(fb), now))
            continue;
        const BankState &bank = engine_.bank(fb);
        const std::deque<QueuedRequest> &fifo = queue.bank(fb);

        if (!bank.open) {
            if (!engine_.canIssue(DramCommand::kAct, fb, now))
                continue;
            std::size_t pos = 0;
            if (delays) {
                pos = kNoPos;
                for (std::size_t i = 0; i < fifo.size(); ++i) {
                    const Request &r = fifo[i].req;
                    if (mitigation->probeActReleaseCycle(
                            fb, r.da.row, r.thread, now) <= now) {
                        pos = i;
                        break;
                    }
                }
                if (pos == kNoPos)
                    continue; // Every queued row is delayed right now.
            }
            if (fifo[pos].seq < best_seq) {
                best_seq = fifo[pos].seq;
                best_fb = fb;
                best_pos = pos;
                best_is_pre = false;
            }
            continue;
        }

        const BankScan &scan = scanOf(is_read, fb);
        if (scan.confPos == kNoPos)
            continue; // Only same-row entries: column not legal yet.
        bool hit_pending = scan.hitPos != kNoPos;
        if (hit_pending && hitStreak[fb] < config_.frfcfsCap)
            continue; // Keep the row open for the pending hit.
        if (!engine_.canIssue(DramCommand::kPre, fb, now))
            continue;
        std::uint64_t seq = fifo[scan.confPos].seq;
        if (seq < best_seq) {
            best_seq = seq;
            best_fb = fb;
            best_pos = scan.confPos;
            best_is_pre = true;
        }
    }

    if (best_seq == kNoSeq)
        return false;
    if (!best_is_pre) {
        const Request &req = queue.bank(best_fb)[best_pos].req;
        // Guard the delaysActs() contract: a mechanism that overrides
        // probeActReleaseCycle() without also overriding delaysActs()
        // would silently lose its ACT delays on this fast path. Probes
        // are const, so re-asking here is always safe.
        BH_ASSERT(mitigation == nullptr ||
                      mitigation->probeActReleaseCycle(best_fb, req.da.row,
                                                       req.thread, now) <=
                          now,
                  "mitigation delays ACTs but delaysActs() returns false");
        issueDemandAct(req, now);
        useCommandSlot(now);
        return true;
    }
    engine_.issuePre(best_fb, now);
    hitStreak[best_fb] = 0;
    invalidateRowState(best_fb);
    useCommandSlot(now);
    return true;
}

bool
MemoryController::stepDrainFlag(bool draining) const
{
    if (draining)
        return writeQ.size() > config_.wqLowWatermark;
    return writeQ.size() >= config_.wqHighWatermark ||
           (readQ.empty() && !writeQ.empty());
}

void
MemoryController::accountSkippedCycles(Cycle first, Cycle last)
{
    // Dense ticks in [first, last] did nothing (the skip loop proved it),
    // but each one with a free command slot stepped the drain hysteresis.
    Cycle start = std::max(first, nextCommandAt);
    if (start > last)
        return;
    Cycle steps = last - start + 1;
    bool f1 = stepDrainFlag(drainingWrites);
    if (f1 == drainingWrites)
        return; // Fixed point.
    if (stepDrainFlag(f1) == f1) {
        drainingWrites = f1; // Converges after one step.
        return;
    }
    // Period-2 oscillation: parity of the step count decides.
    if (steps % 2 != 0)
        drainingWrites = f1;
}

// --- Fast-forward support ----------------------------------------------

void
MemoryController::beginFastForward()
{
    unsigned banks = spec_.org.totalBanks();
    readQ = BankedRequestQueue(banks);
    writeQ = BankedRequestQueue(banks);
    drainingWrites = false;
    for (std::deque<MaintOp> &q : maintQ)
        q.clear();
    maintOpsPending_ = 0;
    pendingReads.clear();
    freePendingSlots.clear();
    completions = decltype(completions)();
    std::fill(hitStreak.begin(), hitStreak.end(), 0u);
    invalidateAllRowState();
}

void
MemoryController::fastForwardTo(Cycle to)
{
    unsigned sweep_rows =
        std::max(1u, spec_.org.rowsPerBank / config_.refsPerSweep);
    for (unsigned rank = 0; rank < spec_.org.ranks; ++rank) {
        while (nextRefAt[rank] <= to) {
            Cycle when = nextRefAt[rank];
            nextRefAt[rank] += spec_.timing.tREFI;
            unsigned start = refSweepPos[rank];
            refSweepPos[rank] =
                (start + sweep_rows) % spec_.org.rowsPerBank;
            if (onPeriodicRefresh)
                onPeriodicRefresh(rank, start, sweep_rows);
            if (mitigation != nullptr)
                mitigation->onPeriodicRefresh(rank, start, sweep_rows,
                                              when);
        }
    }
    if (mitigation != nullptr)
        mitigation->advanceTo(to);
    lastSeenCycle = to;
}

bool
MemoryController::serviceDemand(Cycle now)
{
    drainingWrites = stepDrainFlag(drainingWrites);

    if (drainingWrites && !writeQ.empty()) {
        if (tryIssueForQueue(writeQ, false, now))
            return true;
        // Keep reads flowing if writes are timing-blocked.
        return tryIssueForQueue(readQ, true, now);
    }
    if (tryIssueForQueue(readQ, true, now))
        return true;
    return !writeQ.empty() && tryIssueForQueue(writeQ, false, now);
}

void
MemoryController::tick(Cycle now)
{
    lastSeenCycle = now;
    // Roll time-based mitigation state (epoch boundaries) before any
    // scheduling decision — and before the command-slot gate, exactly as
    // a dense per-cycle loop would reach this point every cycle. The
    // skip-ahead loop ticks at every cycle nextEventCycle() names, and
    // that set includes nextTimedEventCycle(), so both loops roll at the
    // same cycle.
    if (mitigation != nullptr)
        mitigation->advanceTo(now);
    processCompletions(now);
    if (!commandSlotFree(now))
        return;
    if (serviceRefresh(now))
        return;
    if (serviceMaintenance(now))
        return;
    serviceDemand(now);
}

// --- Snapshot serialization --------------------------------------------

namespace {

void
saveRequest(StateWriter &w, const Request &req)
{
    w.u8(req.type == Request::Type::kWrite ? 1 : 0);
    w.u64(req.addr);
    w.u64(req.da.rank);
    w.u64(req.da.bankGroup);
    w.u64(req.da.bank);
    w.u64(req.da.row);
    w.u64(req.da.column);
    w.u64(req.flatBank);
    w.u64(req.thread);
    w.u64(req.enqueueCycle);
    w.u64(req.token);
    w.b(req.uncached);
}

void
loadRequest(StateReader &r, Request *req)
{
    req->type = r.u8() ? Request::Type::kWrite : Request::Type::kRead;
    req->addr = r.u64();
    req->da.rank = static_cast<unsigned>(r.u64());
    req->da.bankGroup = static_cast<unsigned>(r.u64());
    req->da.bank = static_cast<unsigned>(r.u64());
    req->da.row = static_cast<unsigned>(r.u64());
    req->da.column = static_cast<unsigned>(r.u64());
    req->flatBank = static_cast<unsigned>(r.u64());
    req->thread = static_cast<ThreadId>(r.u64());
    req->enqueueCycle = r.u64();
    req->token = r.u64();
    req->uncached = r.b();
}

} // namespace

void
BankedRequestQueue::saveState(
    StateWriter &w, void (*save_req)(StateWriter &, const Request &)) const
{
    w.tag("bankq");
    w.u64(banks_.size());
    for (const std::deque<QueuedRequest> &fifo : banks_) {
        w.u64(fifo.size());
        for (const QueuedRequest &qr : fifo) {
            save_req(w, qr.req);
            w.u64(qr.seq);
        }
    }
    // The active-bank list order never steers scheduling (candidates
    // compare by seq), but restoring it verbatim keeps a resumed run on
    // the uninterrupted run's exact trajectory.
    saveUnsignedVector(w, active_);
    w.u64(nextSeq_);
}

void
BankedRequestQueue::loadState(StateReader &r,
                              void (*load_req)(StateReader &, Request *))
{
    r.tag("bankq");
    if (r.u64() != banks_.size()) {
        r.fail();
        return;
    }
    size_ = 0;
    for (std::deque<QueuedRequest> &fifo : banks_) {
        fifo.clear();
        std::uint64_t n = r.u64();
        if (!r.ok() || n > r.remaining()) {
            r.fail();
            return;
        }
        for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
            QueuedRequest qr;
            load_req(r, &qr.req);
            qr.seq = r.u64();
            fifo.push_back(qr);
        }
        size_ += fifo.size();
    }
    loadUnsignedVector(r, &active_);
    nextSeq_ = r.u64();
    if (!r.ok())
        return;
    std::fill(activePos_.begin(), activePos_.end(), -1);
    for (std::size_t i = 0; i < active_.size(); ++i) {
        unsigned fb = active_[i];
        if (fb >= banks_.size() || banks_[fb].empty()) {
            r.fail();
            return;
        }
        activePos_[fb] = static_cast<int>(i);
    }
    for (std::size_t fb = 0; fb < banks_.size(); ++fb)
        if (!banks_[fb].empty() && activePos_[fb] < 0) {
            r.fail(); // Non-empty bank absent from the active list.
            return;
        }
}

void
MemoryController::saveState(StateWriter &w) const
{
    w.tag("controller");
    engine_.saveState(w);
    readQ.saveState(w, &saveRequest);
    writeQ.saveState(w, &saveRequest);
    w.b(drainingWrites);

    w.u64(maintQ.size());
    for (const std::deque<MaintOp> &q : maintQ) {
        w.u64(q.size());
        for (const MaintOp &op : q) {
            w.u64(op.duration);
            w.u64(op.victimRows);
            w.b(op.isMigration);
            w.u64(static_cast<std::uint64_t>(op.protectedRow));
        }
    }

    // Completions: drain a copy in ready order. Completion times are
    // strictly increasing with issue order (one column command per
    // command slot, fixed read latency), so rebuilding by pushes in this
    // order reproduces the pop sequence exactly.
    saveVector(w, pendingReads, &saveRequest);
    saveU64Vector(w, freePendingSlots);
    auto pq = completions;
    w.u64(pq.size());
    while (!pq.empty()) {
        w.u64(pq.top().readyAt);
        w.u64(pq.top().index);
        pq.pop();
    }

    saveVector(w, nextRefAt, [](StateWriter &sw, Cycle c) { sw.u64(c); });
    saveUnsignedVector(w, refSweepPos);
    saveUnsignedVector(w, hitStreak);
    w.u64(nextCommandAt);
    w.u64(lastSeenCycle);
    w.u64(preventiveActions_);
    w.u64(demandActs_);
    w.u64(readsServed_);
    w.u64(writesServed_);
}

void
MemoryController::loadState(StateReader &r)
{
    r.tag("controller");
    engine_.loadState(r);
    readQ.loadState(r, &loadRequest);
    writeQ.loadState(r, &loadRequest);
    drainingWrites = r.b();

    if (r.u64() != maintQ.size()) {
        r.fail();
        return;
    }
    maintOpsPending_ = 0;
    for (std::deque<MaintOp> &q : maintQ) {
        q.clear();
        std::uint64_t n = r.u64();
        if (!r.ok() || n > r.remaining()) {
            r.fail();
            return;
        }
        for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
            MaintOp op;
            op.duration = r.u64();
            op.victimRows = static_cast<unsigned>(r.u64());
            op.isMigration = r.b();
            op.protectedRow = static_cast<long>(r.u64());
            q.push_back(op);
        }
        maintOpsPending_ += q.size();
    }

    loadVector(r, &pendingReads, &loadRequest);
    loadU64Vector(r, &freePendingSlots);
    completions = decltype(completions)();
    std::uint64_t n_completions = r.u64();
    if (!r.ok() || n_completions > r.remaining()) {
        r.fail();
        return;
    }
    for (std::uint64_t i = 0; i < n_completions && r.ok(); ++i) {
        PendingCompletion c{};
        c.readyAt = r.u64();
        c.index = r.u64();
        if (c.index >= pendingReads.size()) {
            r.fail();
            return;
        }
        completions.push(c);
    }

    std::vector<Cycle> ref_at;
    std::vector<unsigned> sweep, streak;
    loadVector(r, &ref_at, [](StateReader &sr, Cycle *c) { *c = sr.u64(); });
    loadUnsignedVector(r, &sweep);
    loadUnsignedVector(r, &streak);
    if (!r.ok() || ref_at.size() != nextRefAt.size() ||
        sweep.size() != refSweepPos.size() ||
        streak.size() != hitStreak.size()) {
        r.fail();
        return;
    }
    nextRefAt = std::move(ref_at);
    refSweepPos = std::move(sweep);
    hitStreak = std::move(streak);
    nextCommandAt = r.u64();
    lastSeenCycle = r.u64();
    preventiveActions_ = r.u64();
    demandActs_ = r.u64();
    readsServed_ = r.u64();
    writesServed_ = r.u64();

    // The scan caches are pure accelerations of scanOf(); recompute
    // lazily rather than serializing them.
    for (BankScan &scan : readScan)
        scan.valid = false;
    for (BankScan &scan : writeScan)
        scan.valid = false;
}

// --- Skip-ahead support ------------------------------------------------

Cycle
MemoryController::demandEventCycle(const BankedRequestQueue &queue,
                                   bool is_read, Cycle now) const
{
    DramCommand col_cmd = is_read ? DramCommand::kRead : DramCommand::kWrite;
    bool delays = mitigation != nullptr && mitigation->delaysActs();
    Cycle at = kNeverCycle;
    for (unsigned fb : queue.activeBanks()) {
        // Banks gated by maintenance or refresh wake through those paths'
        // own events (computed in nextEventCycle), not through demand.
        if (!maintQ[fb].empty())
            continue;
        if (rankHasRefreshPending(engine_.rankOf(fb), now))
            continue;
        const BankState &bank = engine_.bank(fb);
        if (!bank.open) {
            Cycle issue_at =
                engine_.earliestIssue(DramCommand::kAct, fb, now);
            if (delays) {
                // Mitigation row delays (BlockHammer) postpone the ACT
                // beyond the bank timing: the bank's next chance is the
                // earliest release among its queued rows. Probes are
                // const and already account for the epoch boundary
                // clearing every delay, so this stays a valid lower
                // bound; delays added by *future* commits only move the
                // true event later, making an early wake a harmless
                // no-op tick.
                Cycle release = kNeverCycle;
                for (const QueuedRequest &qr : queue.bank(fb)) {
                    Cycle r = mitigation->probeActReleaseCycle(
                        fb, qr.req.da.row, qr.req.thread, now);
                    if (r <= now) {
                        release = now;
                        break;
                    }
                    release = std::min(release, r);
                }
                issue_at = std::max(issue_at, release);
            }
            at = std::min(at, issue_at);
            continue;
        }
        const BankScan &scan = scanOf(is_read, fb);
        bool hit_capped =
            scan.hitPos != kNoPos && scan.hitPos > 0 &&
            hitStreak[fb] >= config_.frfcfsCap;
        if (scan.hitPos != kNoPos && !hit_capped)
            at = std::min(at, engine_.earliestIssue(col_cmd, fb, now));
        if (scan.confPos != kNoPos &&
            (scan.hitPos == kNoPos || hitStreak[fb] >= config_.frfcfsCap))
            at = std::min(at,
                          engine_.earliestIssue(DramCommand::kPre, fb, now));
    }
    return at;
}

Cycle
MemoryController::nextEventCycle(Cycle now) const
{
    // Read completions fire before the command-slot gate in tick().
    Cycle completion_at =
        completions.empty() ? kNeverCycle : completions.top().readyAt;

    Cycle cmd_at = kNeverCycle;

    // Refresh: upcoming deadlines, or quiesce progress of a pending REF.
    for (unsigned rank = 0; rank < spec_.org.ranks; ++rank) {
        if (!rankHasRefreshPending(rank, now)) {
            cmd_at = std::min(cmd_at, nextRefAt[rank]);
            continue;
        }
        Cycle quiesced = engine_.quiescedAt(rank, now);
        if (quiesced != kNeverCycle) {
            // All banks closed: REF issues once every blackout expires.
            cmd_at = std::min(cmd_at, quiesced);
            continue;
        }
        // Some bank still open: the next quiesce step is its PRE.
        unsigned base = rank * spec_.org.banksPerRank();
        for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i) {
            unsigned fb = base + i;
            if (engine_.bank(fb).open)
                cmd_at = std::min(cmd_at, engine_.earliestIssue(
                                              DramCommand::kPre, fb, now));
        }
    }

    // Maintenance: pending ops start when their bank is closed and clear.
    if (maintOpsPending_ > 0) {
        for (unsigned fb = 0; fb < maintQ.size(); ++fb) {
            if (maintQ[fb].empty())
                continue;
            if (rankHasRefreshPending(engine_.rankOf(fb), now))
                continue; // Wakes through the refresh path above.
            const BankState &bank = engine_.bank(fb);
            if (bank.open)
                cmd_at = std::min(cmd_at, engine_.earliestIssue(
                                              DramCommand::kPre, fb, now));
            else
                cmd_at = std::min(cmd_at,
                                  std::max(now + 1, bank.blockedUntil));
        }
    }

    // Demand scheduling on both queues (drain-mode hysteresis only picks
    // the order; considering both directions is a safe lower bound).
    cmd_at = std::min(cmd_at, demandEventCycle(readQ, true, now));
    cmd_at = std::min(cmd_at, demandEventCycle(writeQ, false, now));

    // Every command waits for the command-bus slot; completions do not.
    if (cmd_at != kNeverCycle)
        cmd_at = std::max(cmd_at, nextCommandAt);

    Cycle at = std::min(completion_at, cmd_at);

    // Time-based mitigation state (BlockHammer's epoch boundary) rolls in
    // tick() before the command-slot gate, so it is not subject to
    // nextCommandAt: the skip-ahead loop must tick at the boundary itself
    // or quota resets would land late.
    if (mitigation != nullptr)
        at = std::min(at, mitigation->nextTimedEventCycle(now));

    return std::max(at, now + 1);
}

} // namespace bh
