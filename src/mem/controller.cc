#include "mem/controller.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

MemoryController::MemoryController(const DramSpec &spec,
                                   const AddressMapper &mapper,
                                   const McConfig &config)
    : spec_(spec), mapper(mapper), config_(config), engine_(spec),
      maintQ(spec.org.totalBanks()),
      nextRefAt(spec.org.ranks, spec.timing.tREFI),
      refSweepPos(spec.org.ranks, 0),
      hitStreak(spec.org.totalBanks(), 0)
{}

void
MemoryController::setMitigation(IMitigation *m)
{
    mitigation = m;
    if (m != nullptr)
        m->setHost(this);
}

void
MemoryController::enqueueRead(Request req, Cycle now)
{
    BH_ASSERT(canEnqueueRead(), "read queue overflow");
    req.da = mapper.decode(req.addr);
    req.flatBank = mapper.flatBank(req.da);
    req.enqueueCycle = now;
    readQ.push_back(req);
}

void
MemoryController::enqueueWrite(Request req, Cycle now)
{
    BH_ASSERT(canEnqueueWrite(), "write queue overflow");
    req.da = mapper.decode(req.addr);
    req.flatBank = mapper.flatBank(req.da);
    req.enqueueCycle = now;
    writeQ.push_back(req);
}

// --- IMitigationHost -------------------------------------------------

void
MemoryController::performVictimRefresh(unsigned flat_bank, unsigned row,
                                       double weight)
{
    MaintOp op;
    op.victimRows = config_.victimRowsPerRefresh;
    op.duration = spec_.timing.tRC * op.victimRows;
    op.protectedRow = static_cast<long>(row);
    maintQ[flat_bank].push_back(op);
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::performMigration(unsigned flat_bank, unsigned row)
{
    MaintOp op;
    op.isMigration = true;
    op.duration = nsToCycles(config_.migrationLatencyNs);
    op.protectedRow = static_cast<long>(row);
    maintQ[flat_bank].push_back(op);
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(1.0, lastSeenCycle);
}

void
MemoryController::performRfm(unsigned flat_bank, double weight)
{
    MaintOp op;
    op.duration = spec_.timing.tRFM;
    maintQ[flat_bank].push_back(op);
    engine_.energy().addRfm();
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::performAlertBackoff(unsigned rfms, double weight)
{
    // The back-off blocks the whole device while the DRAM performs its
    // internal preventive refreshes (JEDEC PRAC ABO protocol).
    Cycle duration = spec_.timing.tRFM * rfms;
    for (unsigned r = 0; r < spec_.org.ranks; ++r) {
        engine_.blockRank(r, lastSeenCycle, duration);
        for (unsigned i = 0; i < rfms; ++i)
            engine_.energy().addRfm();
    }
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::performTrackerAccess(unsigned flat_bank, Cycle duration,
                                       double weight)
{
    MaintOp op;
    op.duration = duration;
    maintQ[flat_bank].push_back(op);
    ++preventiveActions_;
    if (observer != nullptr)
        observer->onPreventiveAction(weight, lastSeenCycle);
}

void
MemoryController::notifyRowProtected(unsigned flat_bank, unsigned row)
{
    if (onRowProtected)
        onRowProtected(flat_bank, row);
}

void
MemoryController::creditDirectScore(ThreadId thread, double amount)
{
    if (observer != nullptr)
        observer->onDirectScore(thread, amount, lastSeenCycle);
}

// --- Tick pipeline ----------------------------------------------------

void
MemoryController::processCompletions(Cycle now)
{
    while (!completions.empty() && completions.top().readyAt <= now) {
        PendingCompletion done = completions.top();
        completions.pop();
        const Request req = pendingReads[done.index];
        freePendingSlots.push_back(done.index);
        if (onReadComplete)
            onReadComplete(req, done.readyAt);
    }
}

bool
MemoryController::rankHasRefreshPending(unsigned rank, Cycle now) const
{
    return now >= nextRefAt[rank];
}

bool
MemoryController::serviceRefresh(Cycle now)
{
    for (unsigned rank = 0; rank < spec_.org.ranks; ++rank) {
        if (!rankHasRefreshPending(rank, now))
            continue;
        if (engine_.rankQuiesced(rank, now)) {
            engine_.issueRefresh(rank, now);
            useCommandSlot(now);
            nextRefAt[rank] += spec_.timing.tREFI;

            unsigned sweep_rows = std::max(
                1u, spec_.org.rowsPerBank / config_.refsPerSweep);
            unsigned start = refSweepPos[rank];
            refSweepPos[rank] =
                (start + sweep_rows) % spec_.org.rowsPerBank;
            if (onPeriodicRefresh)
                onPeriodicRefresh(rank, start, sweep_rows);
            if (mitigation != nullptr)
                mitigation->onPeriodicRefresh(rank, start, sweep_rows, now);
            return true;
        }
        // Quiesce: precharge open banks of this rank, oldest first.
        unsigned base = rank * spec_.org.banksPerRank();
        for (unsigned i = 0; i < spec_.org.banksPerRank(); ++i) {
            unsigned fb = base + i;
            if (engine_.bank(fb).open &&
                engine_.canIssue(DramCommand::kPre, fb, now)) {
                engine_.issuePre(fb, now);
                hitStreak[fb] = 0;
                useCommandSlot(now);
                return true;
            }
        }
    }
    return false;
}

bool
MemoryController::serviceMaintenance(Cycle now)
{
    for (unsigned fb = 0; fb < maintQ.size(); ++fb) {
        if (maintQ[fb].empty())
            continue;
        // Never start a blackout on a rank that is quiescing for REF;
        // otherwise a stream of preventive actions could starve refresh.
        if (rankHasRefreshPending(engine_.rankOf(fb), now))
            continue;
        const BankState &bank = engine_.bank(fb);
        if (bank.open) {
            if (engine_.canIssue(DramCommand::kPre, fb, now)) {
                engine_.issuePre(fb, now);
                hitStreak[fb] = 0;
                useCommandSlot(now);
                return true;
            }
            continue;
        }
        if (now < bank.blockedUntil)
            continue;
        MaintOp op = maintQ[fb].front();
        maintQ[fb].pop_front();
        engine_.blockBank(fb, now, op.duration);
        if (op.isMigration)
            engine_.energy().addMigration();
        else if (op.victimRows > 0)
            engine_.energy().addVictimRefresh(op.victimRows);
        if (op.protectedRow >= 0)
            notifyRowProtected(fb, static_cast<unsigned>(op.protectedRow));
        useCommandSlot(now);
        return true;
    }
    return false;
}

void
MemoryController::issueDemandAct(const Request &req, Cycle now)
{
    engine_.issueAct(req.flatBank, req.da.row, now);
    hitStreak[req.flatBank] = 0;
    ++demandActs_;
    if (onDemandAct)
        onDemandAct(req.flatBank, req.da.row, req.thread, now);
    if (observer != nullptr)
        observer->onDemandActivate(req.thread, req.flatBank, now);
    if (mitigation != nullptr)
        mitigation->onActivate(req.flatBank, req.da.row, req.thread, now);
}

bool
MemoryController::tryIssueForQueue(std::deque<Request> &queue, bool is_read,
                                   Cycle now)
{
    DramCommand col_cmd = is_read ? DramCommand::kRead : DramCommand::kWrite;

    // Pass 1: oldest row-hit request whose bank's hit streak is under the
    // cap (FR-FCFS+Cap: row hits first, but no more than `cap` younger
    // hits may bypass an older row-conflict request to the same bank).
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        unsigned fb = req.flatBank;
        const BankState &bank = engine_.bank(fb);
        if (!bank.open || bank.openRow != req.da.row)
            continue;
        if (!maintQ[fb].empty())
            continue;
        if (rankHasRefreshPending(engine_.rankOf(fb), now))
            continue;
        if (!engine_.canIssue(col_cmd, fb, now))
            continue;

        // Does an older row-conflict request to this bank wait?
        bool older_conflict = false;
        for (std::size_t j = 0; j < i; ++j) {
            if (queue[j].flatBank == fb && queue[j].da.row != req.da.row) {
                older_conflict = true;
                break;
            }
        }
        if (older_conflict && hitStreak[fb] >= config_.frfcfsCap)
            continue;

        if (is_read) {
            Cycle ready = engine_.issueRead(fb, now);
            std::uint64_t slot;
            if (!freePendingSlots.empty()) {
                slot = freePendingSlots.back();
                freePendingSlots.pop_back();
                pendingReads[slot] = req;
            } else {
                slot = pendingReads.size();
                pendingReads.push_back(req);
            }
            completions.push(PendingCompletion{ready, slot});
            ++readsServed_;
        } else {
            engine_.issueWrite(fb, now);
            ++writesServed_;
        }
        if (older_conflict)
            ++hitStreak[fb];
        queue.erase(queue.begin() + static_cast<long>(i));
        useCommandSlot(now);
        return true;
    }

    // Pass 2: oldest request that needs an ACT or a PRE.
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        unsigned fb = req.flatBank;
        const BankState &bank = engine_.bank(fb);
        if (!maintQ[fb].empty())
            continue;
        if (rankHasRefreshPending(engine_.rankOf(fb), now))
            continue;

        if (!bank.open) {
            if (!engine_.canIssue(DramCommand::kAct, fb, now))
                continue;
            if (mitigation != nullptr &&
                mitigation->actReleaseCycle(fb, req.da.row, req.thread,
                                            now) > now)
                continue; // BlockHammer-style row delay.
            issueDemandAct(req, now);
            useCommandSlot(now);
            return true;
        }

        if (bank.openRow != req.da.row) {
            // Close the row only when no same-row hit is pending or the
            // hit streak hit the reordering cap.
            bool hit_pending = false;
            for (const Request &other : queue) {
                if (other.flatBank == fb && other.da.row == bank.openRow) {
                    hit_pending = true;
                    break;
                }
            }
            if (hit_pending && hitStreak[fb] < config_.frfcfsCap)
                continue;
            if (!engine_.canIssue(DramCommand::kPre, fb, now))
                continue;
            engine_.issuePre(fb, now);
            hitStreak[fb] = 0;
            useCommandSlot(now);
            return true;
        }
        // Open row matches but the column command was not legal yet.
    }
    return false;
}

bool
MemoryController::serviceDemand(Cycle now)
{
    if (drainingWrites) {
        if (writeQ.size() <= config_.wqLowWatermark)
            drainingWrites = false;
    } else if (writeQ.size() >= config_.wqHighWatermark ||
               (readQ.empty() && !writeQ.empty())) {
        drainingWrites = true;
    }

    if (drainingWrites && !writeQ.empty()) {
        if (tryIssueForQueue(writeQ, false, now))
            return true;
        // Keep reads flowing if writes are timing-blocked.
        return tryIssueForQueue(readQ, true, now);
    }
    if (tryIssueForQueue(readQ, true, now))
        return true;
    return !writeQ.empty() && tryIssueForQueue(writeQ, false, now);
}

void
MemoryController::tick(Cycle now)
{
    lastSeenCycle = now;
    processCompletions(now);
    if (!commandSlotFree(now))
        return;
    if (serviceRefresh(now))
        return;
    if (serviceMaintenance(now))
        return;
    serviceDemand(now);
}

} // namespace bh
