/**
 * @file
 * Memory request record exchanged between the LLC/MSHR layer and the
 * memory controller.
 */
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/address.h"

namespace bh {

/** One DRAM-bound request. */
struct Request
{
    enum class Type
    {
        kRead,
        kWrite,
    };

    Type type = Type::kRead;
    Addr addr = 0;
    DramAddress da;
    unsigned flatBank = 0;
    ThreadId thread = kInvalidThread;
    Cycle enqueueCycle = 0;
    /** Opaque id the requester uses to match completions. */
    std::uint64_t token = 0;
    /** True for cache-bypassing accesses (attacker clflush model). */
    bool uncached = false;
};

} // namespace bh
