/**
 * @file
 * Memory controller: request queues, FR-FCFS+Cap scheduling, periodic
 * refresh, and the maintenance machinery behind RowHammer-preventive
 * actions.
 *
 * Scheduling follows Table 1 of the paper: 64-entry read/write queues and
 * FR-FCFS with a cap of 4 on column-over-row reordering (Mutlu &
 * Moscibroda, MICRO'07). Writes drain in batches between watermarks.
 * Preventive actions requested by the attached mitigation mechanism run as
 * prioritized per-bank maintenance operations; each one notifies the
 * attached action observer (BreakHammer) and the row-protection listener
 * (the RowHammer oracle in tests).
 *
 * Requests are indexed per bank: each queue keeps one age-ordered FIFO per
 * flat bank plus a global enqueue sequence number, so the FR-FCFS scan
 * touches only non-empty banks instead of walking the whole queue per
 * candidate. Per bank, the scheduler caches the oldest row-hit and oldest
 * row-conflict positions; the cache is invalidated only on enqueue, issue,
 * or a row-state change of that bank. Selection order is provably
 * identical to a linear oldest-first scan: within a bank the eligible
 * candidate is unique, so picking the globally smallest sequence number
 * among per-bank candidates reproduces the linear scan's choice. ACT-
 * delaying mechanisms (BlockHammer) are queried through the const
 * probeActReleaseCycle() — a closed bank's candidate is its oldest
 * *released* entry — and commit their tracking state only when the ACT
 * actually issues, so probing is free of side effects and the scan stays
 * cached.
 *
 * nextEventCycle() exposes a conservative lower bound on the next cycle
 * tick() can do anything, which System::run's skip-ahead loop uses to jump
 * over dead cycles.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"
#include "dram/address.h"
#include "dram/timing.h"
#include "mem/request.h"
#include "mitigation/mitigation.h"
#include "stats/histogram.h"

namespace bh {

/** Controller configuration (defaults = Table 1). */
struct McConfig
{
    unsigned readQueueSize = 64;
    unsigned writeQueueSize = 64;
    unsigned frfcfsCap = 4;  ///< Cap on column-over-row reordering.
    unsigned wqHighWatermark = 48;
    unsigned wqLowWatermark = 16;
    /** Command-bus spacing in CPU cycles (~tCK at DDR5-4800). */
    Cycle commandSpacing = 2;
    /** Victim rows refreshed per preventive refresh (blast radius 1). */
    unsigned victimRowsPerRefresh = 2;
    /** AQUA row migration blackout in nanoseconds (row read + write). */
    double migrationLatencyNs = 1300.0;
    /** REF commands per full per-bank row sweep (JEDEC: 8192). */
    unsigned refsPerSweep = 8192;
};

/** One queued request, stamped with its global enqueue order. */
struct QueuedRequest
{
    Request req;
    std::uint64_t seq = 0; ///< Smaller = older (FCFS age).
};

/**
 * Age-ordered request queue indexed by flat bank. Each bank holds its
 * requests in enqueue order; cross-bank age is compared via `seq`. The
 * active-bank list lets the scheduler iterate only banks that hold work.
 */
class BankedRequestQueue
{
  public:
    explicit BankedRequestQueue(unsigned num_banks)
        : banks_(num_banks), activePos_(num_banks, -1)
    {}

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const std::deque<QueuedRequest> &bank(unsigned fb) const
    {
        return banks_[fb];
    }

    /** Non-empty banks, unordered (candidates compare by seq anyway). */
    const std::vector<unsigned> &activeBanks() const { return active_; }

    /** Serialize the per-bank FIFOs and the global sequence counter. */
    void saveState(StateWriter &w,
                   void (*save_req)(StateWriter &, const Request &)) const;

    /** Restore saveState() output into a same-bank-count queue. */
    void loadState(StateReader &r,
                   void (*load_req)(StateReader &, Request *));

    void
    push(const Request &req)
    {
        unsigned fb = req.flatBank;
        if (banks_[fb].empty()) {
            activePos_[fb] = static_cast<int>(active_.size());
            active_.push_back(fb);
        }
        banks_[fb].push_back(QueuedRequest{req, nextSeq_++});
        ++size_;
    }

    /** Remove the entry at @p pos of bank @p fb's FIFO. */
    void
    erase(unsigned fb, std::size_t pos)
    {
        std::deque<QueuedRequest> &fifo = banks_[fb];
        fifo.erase(fifo.begin() + static_cast<long>(pos));
        --size_;
        if (fifo.empty()) {
            // Swap-remove from the active list, patching the moved slot.
            int slot = activePos_[fb];
            unsigned moved = active_.back();
            active_[static_cast<std::size_t>(slot)] = moved;
            activePos_[moved] = slot;
            active_.pop_back();
            activePos_[fb] = -1;
        }
    }

  private:
    std::vector<std::deque<QueuedRequest>> banks_;
    std::vector<unsigned> active_;
    // bh-audit: skip(activePos_) -- index over active_, rebuilt in loadState
    std::vector<int> activePos_; ///< Per bank: index into active_, or -1.
    // bh-audit: skip(size_) -- recomputed from the fifos in loadState
    std::size_t size_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** The memory controller for one channel. */
class MemoryController : public IMitigationHost
{
  public:
    /**
     * @param channel This controller's channel index in [0, org.channels);
     *        enqueued requests must decode to it.
     */
    MemoryController(const DramSpec &spec, const AddressMap &mapper,
                     const McConfig &config, unsigned channel = 0);

    /** Channel index this controller serves. */
    unsigned channel() const { return channel_; }

    /** Space in the read queue? */
    bool
    canEnqueueRead() const
    {
        return readQ.size() < config_.readQueueSize;
    }

    /** Space in the write queue? */
    bool
    canEnqueueWrite() const
    {
        return writeQ.size() < config_.writeQueueSize;
    }

    /** Enqueue a read; @pre canEnqueueRead(). */
    void enqueueRead(Request req, Cycle now);

    /** Enqueue a write; @pre canEnqueueWrite(). */
    void enqueueWrite(Request req, Cycle now);

    /** Advance one CPU cycle. */
    void tick(Cycle now);

    /**
     * Lower bound > @p now on the next cycle tick() can do anything
     * (complete a read, issue a command, start maintenance, or service a
     * refresh), assuming no new requests arrive in between. Waking up
     * earlier than the true next action is harmless (the tick is a no-op,
     * exactly as a dense tick would be); waking later never happens.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Replay the tick-granular bookkeeping of the dead cycles
     * [first, last] the skip-ahead loop jumped over: every such cycle
     * with a free command slot would have re-evaluated the write-drain
     * hysteresis, whose flag can oscillate with period 2 when the read
     * queue is empty and the write queue sits at/below the low
     * watermark — so its final state depends on how many evaluations
     * ran, not just on the frozen queue sizes.
     */
    void accountSkippedCycles(Cycle first, Cycle last);

    /**
     * Discard all in-flight work (fast-forward support): request queues,
     * pending read completions, and queued maintenance operations are
     * dropped without firing their callbacks. Counters, refresh
     * bookkeeping, and the timing engine survive — the clock is about to
     * jump far past every engine constraint anyway. The caller must have
     * cleared the MSHR entries and core window slots these requests were
     * wired to.
     */
    void beginFastForward();

    /**
     * Functionally retire every periodic refresh due up to cycle @p to:
     * the per-rank sweep pointers advance and each elapsed REF fires
     * onPeriodicRefresh and the mitigation's onPeriodicRefresh hook at
     * its scheduled cycle — so tracking tables reset on their normal
     * cadence even though no commands issue. Finishes by advancing the
     * mitigation's timed state (advanceTo) and the observer timestamp
     * to @p to.
     */
    void fastForwardTo(Cycle to);

    /** Fires when read data is fully returned. */
    // bh-audit: skip(onReadComplete) -- wiring callback installed by System
    std::function<void(const Request &, Cycle)> onReadComplete;

    /** Fires on every demand activation: (bank, row, thread, cycle). */
    // bh-audit: skip(onDemandAct) -- wiring callback installed by System
    std::function<void(unsigned, unsigned, ThreadId, Cycle)> onDemandAct;

    /** Fires when a row's victims were refreshed (oracle reset). */
    // bh-audit: skip(onRowProtected) -- wiring callback installed by System
    std::function<void(unsigned, unsigned)> onRowProtected;

    /**
     * Fires when a periodic REF retires: (rank, sweep_start, sweep_rows).
     * The per-bank rows [sweep_start, sweep_start + sweep_rows) of the rank
     * were refreshed by this REF.
     */
    // bh-audit: skip(onPeriodicRefresh) -- wiring callback installed by System
    std::function<void(unsigned, unsigned, unsigned)> onPeriodicRefresh;

    void setMitigation(IMitigation *m);
    void setObserver(IActionObserver *o) { observer = o; }

    // --- IMitigationHost ---
    void performVictimRefresh(unsigned flat_bank, unsigned row,
                              double weight) override;
    void performMigration(unsigned flat_bank, unsigned row) override;
    void performRfm(unsigned flat_bank, double weight) override;
    void performAlertBackoff(unsigned rfms, double weight) override;
    void performTrackerAccess(unsigned flat_bank, Cycle duration,
                              double weight) override;
    void notifyRowProtected(unsigned flat_bank, unsigned row) override;
    void creditDirectScore(ThreadId thread, double amount) override;

    // --- Introspection ---
    TimingEngine &engine() { return engine_; }
    const TimingEngine &engine() const { return engine_; }

    /** Total preventive actions performed (Fig 10's metric). */
    std::uint64_t preventiveActions() const { return preventiveActions_; }

    std::uint64_t demandActs() const { return demandActs_; }
    std::uint64_t readsServed() const { return readsServed_; }
    std::uint64_t writesServed() const { return writesServed_; }
    std::size_t readQueueDepth() const { return readQ.size(); }
    std::size_t writeQueueDepth() const { return writeQ.size(); }

    /**
     * Serialize the controller's complete mutable state: queues,
     * maintenance ops, in-flight completions, refresh bookkeeping,
     * drain/cap/command-slot state, counters, and the timing engine.
     * The mitigation mechanism serializes separately (System owns it).
     */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output into a same-config controller. */
    void loadState(StateReader &r);

  private:
    /** One pending RowHammer-preventive maintenance operation. */
    struct MaintOp
    {
        Cycle duration = 0;
        unsigned victimRows = 0;   ///< Energy accounting.
        bool isMigration = false;
        long protectedRow = -1;    ///< Aggressor row to report, or -1.
    };

    struct PendingCompletion
    {
        Cycle readyAt;
        std::uint64_t index; ///< Into pendingReads.
        bool
        operator>(const PendingCompletion &other) const
        {
            return readyAt > other.readyAt;
        }
    };

    static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

    /**
     * Cached scan summary of one bank's FIFO against its current open
     * row: the oldest row-hit and oldest row-conflict positions. Valid
     * only while the bank FIFO and the bank's row state are unchanged.
     */
    struct BankScan
    {
        bool valid = false;
        std::size_t hitPos = kNoPos;  ///< Oldest entry, row == openRow.
        std::size_t confPos = kNoPos; ///< Oldest entry, row != openRow.
    };

    bool commandSlotFree(Cycle now) const { return now >= nextCommandAt; }
    void useCommandSlot(Cycle now) { nextCommandAt = now + config_.commandSpacing; }

    bool stepDrainFlag(bool draining) const;
    void processCompletions(Cycle now);
    bool serviceRefresh(Cycle now);
    bool serviceMaintenance(Cycle now);
    bool serviceDemand(Cycle now);
    bool tryIssueForQueue(BankedRequestQueue &queue, bool is_read,
                          Cycle now);
    void issueColumn(BankedRequestQueue &queue, bool is_read, unsigned fb,
                     std::size_t pos, bool counts_against_cap, Cycle now);
    void issueDemandAct(const Request &req, Cycle now);
    bool rankHasRefreshPending(unsigned rank, Cycle now) const;

    const BankScan &scanOf(bool is_read, unsigned fb) const;
    void invalidateScan(bool is_read, unsigned fb);
    void invalidateRowState(unsigned fb);
    void invalidateRank(unsigned rank);
    void invalidateAllRowState();

    Cycle demandEventCycle(const BankedRequestQueue &queue, bool is_read,
                           Cycle now) const;

    DramSpec spec_;            // bh-audit: skip(spec_) -- constructor config, keyed by ExperimentConfig
    const AddressMap &mapper;  // bh-audit: skip(mapper) -- non-owning wiring, owned by System
    McConfig config_;          // bh-audit: skip(config_) -- constructor config, keyed by ExperimentConfig
    unsigned channel_ = 0;     // bh-audit: skip(channel_) -- construction identity, fixed for the run
    TimingEngine engine_;

    BankedRequestQueue readQ;
    BankedRequestQueue writeQ;
    /** Lazily refreshed scan caches, per flat bank (see scanOf()). */
    // bh-audit: skip(readScan) -- lazy cache, invalidated in loadState
    mutable std::vector<BankScan> readScan;
    // bh-audit: skip(writeScan) -- lazy cache, invalidated in loadState
    mutable std::vector<BankScan> writeScan;
    bool drainingWrites = false;

    std::vector<std::deque<MaintOp>> maintQ; ///< Per flat bank.
    // bh-audit: skip(maintOpsPending_) -- recomputed from maintQ in loadState
    std::size_t maintOpsPending_ = 0; ///< Total ops across maintQ.

    // Read completions in flight.
    std::vector<Request> pendingReads;
    std::vector<std::uint64_t> freePendingSlots;
    std::priority_queue<PendingCompletion,
                        std::vector<PendingCompletion>,
                        std::greater<PendingCompletion>>
        completions;

    // Refresh bookkeeping.
    std::vector<Cycle> nextRefAt;     ///< Per rank.
    std::vector<unsigned> refSweepPos; ///< Per rank, row sweep pointer.

    // FR-FCFS cap state: consecutive row hits served per bank while an
    // older row-conflict request waits.
    std::vector<unsigned> hitStreak;

    IMitigation *mitigation = nullptr;   // bh-audit: skip(mitigation) -- non-owning wiring installed by System
    IActionObserver *observer = nullptr; // bh-audit: skip(observer) -- non-owning wiring installed by System

    Cycle nextCommandAt = 0;
    Cycle lastSeenCycle = 0;

    std::uint64_t preventiveActions_ = 0;
    std::uint64_t demandActs_ = 0;
    std::uint64_t readsServed_ = 0;
    std::uint64_t writesServed_ = 0;
};

} // namespace bh
