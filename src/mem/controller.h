/**
 * @file
 * Memory controller: request queues, FR-FCFS+Cap scheduling, periodic
 * refresh, and the maintenance machinery behind RowHammer-preventive
 * actions.
 *
 * Scheduling follows Table 1 of the paper: 64-entry read/write queues and
 * FR-FCFS with a cap of 4 on column-over-row reordering (Mutlu &
 * Moscibroda, MICRO'07). Writes drain in batches between watermarks.
 * Preventive actions requested by the attached mitigation mechanism run as
 * prioritized per-bank maintenance operations; each one notifies the
 * attached action observer (BreakHammer) and the row-protection listener
 * (the RowHammer oracle in tests).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"
#include "dram/address.h"
#include "dram/timing.h"
#include "mem/request.h"
#include "mitigation/mitigation.h"
#include "stats/histogram.h"

namespace bh {

/** Controller configuration (defaults = Table 1). */
struct McConfig
{
    unsigned readQueueSize = 64;
    unsigned writeQueueSize = 64;
    unsigned frfcfsCap = 4;  ///< Cap on column-over-row reordering.
    unsigned wqHighWatermark = 48;
    unsigned wqLowWatermark = 16;
    /** Command-bus spacing in CPU cycles (~tCK at DDR5-4800). */
    Cycle commandSpacing = 2;
    /** Victim rows refreshed per preventive refresh (blast radius 1). */
    unsigned victimRowsPerRefresh = 2;
    /** AQUA row migration blackout in nanoseconds (row read + write). */
    double migrationLatencyNs = 1300.0;
    /** REF commands per full per-bank row sweep (JEDEC: 8192). */
    unsigned refsPerSweep = 8192;
};

/** The memory controller for one channel. */
class MemoryController : public IMitigationHost
{
  public:
    MemoryController(const DramSpec &spec, const AddressMapper &mapper,
                     const McConfig &config);

    /** Space in the read queue? */
    bool
    canEnqueueRead() const
    {
        return readQ.size() < config_.readQueueSize;
    }

    /** Space in the write queue? */
    bool
    canEnqueueWrite() const
    {
        return writeQ.size() < config_.writeQueueSize;
    }

    /** Enqueue a read; @pre canEnqueueRead(). */
    void enqueueRead(Request req, Cycle now);

    /** Enqueue a write; @pre canEnqueueWrite(). */
    void enqueueWrite(Request req, Cycle now);

    /** Advance one CPU cycle. */
    void tick(Cycle now);

    /** Fires when read data is fully returned. */
    std::function<void(const Request &, Cycle)> onReadComplete;

    /** Fires on every demand activation: (bank, row, thread, cycle). */
    std::function<void(unsigned, unsigned, ThreadId, Cycle)> onDemandAct;

    /** Fires when a row's victims were refreshed (oracle reset). */
    std::function<void(unsigned, unsigned)> onRowProtected;

    /**
     * Fires when a periodic REF retires: (rank, sweep_start, sweep_rows).
     * The per-bank rows [sweep_start, sweep_start + sweep_rows) of the rank
     * were refreshed by this REF.
     */
    std::function<void(unsigned, unsigned, unsigned)> onPeriodicRefresh;

    void setMitigation(IMitigation *m);
    void setObserver(IActionObserver *o) { observer = o; }

    // --- IMitigationHost ---
    void performVictimRefresh(unsigned flat_bank, unsigned row,
                              double weight) override;
    void performMigration(unsigned flat_bank, unsigned row) override;
    void performRfm(unsigned flat_bank, double weight) override;
    void performAlertBackoff(unsigned rfms, double weight) override;
    void performTrackerAccess(unsigned flat_bank, Cycle duration,
                              double weight) override;
    void notifyRowProtected(unsigned flat_bank, unsigned row) override;
    void creditDirectScore(ThreadId thread, double amount) override;

    // --- Introspection ---
    TimingEngine &engine() { return engine_; }
    const TimingEngine &engine() const { return engine_; }

    /** Total preventive actions performed (Fig 10's metric). */
    std::uint64_t preventiveActions() const { return preventiveActions_; }

    std::uint64_t demandActs() const { return demandActs_; }
    std::uint64_t readsServed() const { return readsServed_; }
    std::uint64_t writesServed() const { return writesServed_; }
    std::size_t readQueueDepth() const { return readQ.size(); }
    std::size_t writeQueueDepth() const { return writeQ.size(); }

  private:
    /** One pending RowHammer-preventive maintenance operation. */
    struct MaintOp
    {
        Cycle duration = 0;
        unsigned victimRows = 0;   ///< Energy accounting.
        bool isMigration = false;
        long protectedRow = -1;    ///< Aggressor row to report, or -1.
    };

    struct PendingCompletion
    {
        Cycle readyAt;
        std::uint64_t index; ///< Into pendingReads.
        bool
        operator>(const PendingCompletion &other) const
        {
            return readyAt > other.readyAt;
        }
    };

    bool commandSlotFree(Cycle now) const { return now >= nextCommandAt; }
    void useCommandSlot(Cycle now) { nextCommandAt = now + config_.commandSpacing; }

    void processCompletions(Cycle now);
    bool serviceRefresh(Cycle now);
    bool serviceMaintenance(Cycle now);
    bool serviceDemand(Cycle now);
    bool tryIssueForQueue(std::deque<Request> &queue, bool is_read,
                          Cycle now);
    void issueDemandAct(const Request &req, Cycle now);
    bool rankHasRefreshPending(unsigned rank, Cycle now) const;

    DramSpec spec_;
    const AddressMapper &mapper;
    McConfig config_;
    TimingEngine engine_;

    std::deque<Request> readQ;
    std::deque<Request> writeQ;
    bool drainingWrites = false;

    std::vector<std::deque<MaintOp>> maintQ; ///< Per flat bank.

    // Read completions in flight.
    std::vector<Request> pendingReads;
    std::vector<std::uint64_t> freePendingSlots;
    std::priority_queue<PendingCompletion,
                        std::vector<PendingCompletion>,
                        std::greater<PendingCompletion>>
        completions;

    // Refresh bookkeeping.
    std::vector<Cycle> nextRefAt;     ///< Per rank.
    std::vector<unsigned> refSweepPos; ///< Per rank, row sweep pointer.

    // FR-FCFS cap state: consecutive row hits served per bank while an
    // older row-conflict request waits.
    std::vector<unsigned> hitStreak;

    IMitigation *mitigation = nullptr;
    IActionObserver *observer = nullptr;

    Cycle nextCommandAt = 0;
    Cycle lastSeenCycle = 0;

    std::uint64_t preventiveActions_ = 0;
    std::uint64_t demandActs_ = 0;
    std::uint64_t readsServed_ = 0;
    std::uint64_t writesServed_ = 0;
};

} // namespace bh
