/**
 * @file
 * Trace-driven out-of-order core model (Table 1: 4.2 GHz, 4-wide issue,
 * 128-entry instruction window).
 *
 * Follows the Ramulator2 SimpleO3 approach: non-memory instructions retire
 * immediately (they only occupy issue slots and window entries); loads hold
 * their window entry until data returns; stores retire at issue and drain
 * through the write path. The window gives memory-level parallelism, and a
 * full window (or a rejected memory access, e.g., an MSHR-quota rejection
 * injected by BreakHammer) stalls the front end — the backpressure that
 * makes MSHR-quota throttling effective.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"
#include "trace/trace.h"

namespace bh {

/** Outcome of presenting a memory access to the memory system. */
enum class AccessOutcome
{
    kHit,      ///< Completes after the LLC hit latency.
    kQueued,   ///< Miss in flight; completion arrives via callback.
    kRejected, ///< No resources (MSHR quota / queue full); retry later.
};

/** Interface the core uses to touch the memory system. */
class ICoreMemory
{
  public:
    virtual ~ICoreMemory() = default;

    /**
     * Issue a load.
     * @param token Core-private id echoed in the completion callback.
     */
    virtual AccessOutcome load(ThreadId thread, Addr addr, bool uncached,
                               std::uint64_t token) = 0;

    /** Issue a store (fire-and-forget for the core). */
    virtual AccessOutcome store(ThreadId thread, Addr addr,
                                bool uncached) = 0;
};

/** Core configuration (defaults = Table 1). */
struct CoreConfig
{
    unsigned windowSize = 128;
    unsigned width = 4; ///< Issue and retire width.
    Cycle llcHitLatency = 40; ///< Load-to-use latency of an LLC hit.
};

/** One trace-driven hardware thread. */
class Core
{
  public:
    /**
     * @param benign Benign cores define simulation end and metrics;
     *               attacker cores run for as long as the simulation does.
     */
    Core(ThreadId id, TraceSource *trace, ICoreMemory *memory,
         const CoreConfig &config, bool benign);

    /** Advance one CPU cycle. */
    void tick(Cycle now);

    /** Completion callback for a queued load. */
    void completeLoad(std::uint64_t token, Cycle now);

    ThreadId id() const { return id_; }
    bool benign() const { return benign_; }
    std::uint64_t retired() const { return retired_; }

    /** First cycle at which @p target instructions had retired (or 0). */
    Cycle
    finishCycle() const
    {
        return finishCycle_;
    }

    /** Arm the retirement target that latches finishCycle(). */
    void setTarget(std::uint64_t target) { target_ = target; }

    /**
     * Arm a fresh retirement target AND clear the finishCycle() latch, so
     * a core that already finished an earlier phase can be re-measured.
     * Used by the statistical-sampling driver between the warm-up and
     * measurement phases of a window; setTarget() deliberately never
     * clears the latch (a resumed checkpoint run must keep the finish
     * cycle a core latched before the snapshot).
     */
    void
    setWindowTarget(std::uint64_t target)
    {
        target_ = target;
        finishCycle_ = 0;
    }

    bool
    reachedTarget() const
    {
        return target_ != 0 && retired_ >= target_;
    }

    /** Cycles the front end was blocked by a rejected memory access. */
    std::uint64_t rejectStallCycles() const { return rejectStalls; }

    /**
     * Earliest cycle > @p now at which this core's tick can do anything
     * beyond what a stalled tick does, assuming the memory system's state
     * does not change in between. kNeverCycle means only an external event
     * (a load completion, a quota or queue state change) can unblock it.
     * Called by System::run's skip-ahead loop right after tick(now).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Whether the last issue attempt was rejected by the memory system
     * while window slots remain: every further cycle with unchanged memory
     * state repeats the identical rejected retry. System::run batches
     * those retries' stall accounting across skipped cycles.
     */
    bool
    stalledOnReject() const
    {
        return occupancy < window.size() && stalledOnReject_;
    }

    /** Account @p cycles skipped reject-stall cycles (skip-ahead loop). */
    void addRejectStallCycles(std::uint64_t cycles)
    {
        rejectStalls += cycles;
    }

    /** Memory accesses issued (loads + stores). */
    std::uint64_t memoryAccesses() const { return memAccesses; }

    /**
     * Discard all in-flight pipeline state (fast-forward support): the
     * instruction window empties and any reject-stall clears, but the
     * trace cursor (a partially consumed record's remaining bubbles)
     * carries over so the instruction stream continues seamlessly. The
     * caller must have discarded the matching MSHR/controller in-flight
     * state too — a completion for a cleared slot would be fatal.
     */
    void resetPipeline();

    /**
     * Retire @p insts instructions functionally: no timing, no window
     * occupancy, no memory-system backpressure. Bubbles retire silently;
     * each memory access is handed to @p sink (the functional-warming
     * path of the sampling fast-forward). retired()/memoryAccesses()
     * advance exactly as a detailed run over the same stream would.
     */
    void functionalAdvance(std::uint64_t insts,
                           const std::function<void(const TraceRecord &)>
                               &sink);

    /** Serialize the core's mutable pipeline state (not the config). */
    void saveState(StateWriter &w) const;

    /** Restore saveState() output into a same-config core. */
    void loadState(StateReader &r);

  private:
    struct WindowEntry
    {
        Cycle doneAt = 0; ///< kNeverCycle while waiting on a fill.
    };

    bool issueOne(Cycle now);

    ThreadId id_;         // bh-audit: skip(id_) -- construction identity, fixed for the run
    TraceSource *trace;
    ICoreMemory *memory;  // bh-audit: skip(memory) -- non-owning wiring installed by System
    CoreConfig config_;   // bh-audit: skip(config_) -- constructor config, keyed by ExperimentConfig
    bool benign_;         // bh-audit: skip(benign_) -- constructor config (slot role from the mix)

    std::vector<WindowEntry> window;
    unsigned head = 0;
    unsigned occupancy = 0;
    std::uint64_t issueCounter = 0; ///< Doubles as the load token.

    std::uint32_t pendingBubbles = 0;
    bool recValid = false;
    bool stalledOnReject_ = false; ///< Last issue attempt was rejected.
    TraceRecord rec;

    std::uint64_t retired_ = 0;
    std::uint64_t target_ = 0;
    Cycle finishCycle_ = 0;
    std::uint64_t rejectStalls = 0;
    std::uint64_t memAccesses = 0;
};

} // namespace bh
