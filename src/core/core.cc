#include "core/core.h"

#include <algorithm>

#include "common/log.h"

namespace bh {

Core::Core(ThreadId id, TraceSource *trace, ICoreMemory *memory,
           const CoreConfig &config, bool benign)
    : id_(id), trace(trace), memory(memory), config_(config),
      benign_(benign), window(config.windowSize)
{
    BH_ASSERT(config.windowSize > 0 && config.width > 0,
              "degenerate core configuration");
}

void
Core::completeLoad(std::uint64_t token, Cycle now)
{
    // Tokens are issue indices; at most windowSize are in flight, so the
    // slot is simply the token modulo the window size.
    WindowEntry &entry = window[token % window.size()];
    BH_ASSERT(entry.doneAt == kNeverCycle, "load completion for idle slot");
    entry.doneAt = now;
}

bool
Core::issueOne(Cycle now)
{
    if (pendingBubbles == 0 && !recValid) {
        rec = trace->next();
        recValid = true;
        pendingBubbles = rec.bubbles;
    }

    unsigned slot =
        static_cast<unsigned>(issueCounter % window.size());

    if (pendingBubbles > 0) {
        // Non-memory instruction: occupies a window slot, retires freely.
        window[slot].doneAt = now;
        --pendingBubbles;
        ++issueCounter;
        ++occupancy;
        stalledOnReject_ = false;
        return true;
    }

    // Memory access at the head of the pending record.
    if (rec.isWrite) {
        AccessOutcome out = memory->store(id_, rec.addr, rec.uncached);
        if (out == AccessOutcome::kRejected) {
            ++rejectStalls;
            stalledOnReject_ = true;
            return false;
        }
        window[slot].doneAt = now; // Stores retire at issue.
    } else {
        AccessOutcome out =
            memory->load(id_, rec.addr, rec.uncached, issueCounter);
        switch (out) {
          case AccessOutcome::kHit:
            window[slot].doneAt = now + config_.llcHitLatency;
            break;
          case AccessOutcome::kQueued:
            window[slot].doneAt = kNeverCycle;
            break;
          case AccessOutcome::kRejected:
            ++rejectStalls;
            stalledOnReject_ = true;
            return false;
        }
    }
    ++memAccesses;
    ++issueCounter;
    ++occupancy;
    recValid = false;
    stalledOnReject_ = false;
    return true;
}

void
Core::resetPipeline()
{
    for (WindowEntry &entry : window)
        entry.doneAt = 0;
    // issueCounter survives (tokens must stay unique across the reset),
    // so the retire head must re-align with the next issue slot — a head
    // left at 0 would retire stale entries and let issues lap pending
    // slots.
    head = static_cast<unsigned>(issueCounter % window.size());
    occupancy = 0;
    stalledOnReject_ = false;
}

void
Core::functionalAdvance(std::uint64_t insts,
                        const std::function<void(const TraceRecord &)> &sink)
{
    std::uint64_t remaining = insts;
    while (remaining > 0) {
        if (pendingBubbles == 0 && !recValid) {
            rec = trace->next();
            recValid = true;
            pendingBubbles = rec.bubbles;
        }
        if (pendingBubbles > 0) {
            std::uint64_t n =
                std::min<std::uint64_t>(pendingBubbles, remaining);
            pendingBubbles -= static_cast<std::uint32_t>(n);
            retired_ += n;
            remaining -= n;
            continue;
        }
        // The record's memory access counts as one instruction, exactly
        // as issueOne() accounts it.
        sink(rec);
        ++memAccesses;
        ++retired_;
        --remaining;
        recValid = false;
    }
}

void
Core::saveState(StateWriter &w) const
{
    w.tag("core");
    saveVector(w, window, [](StateWriter &sw, const WindowEntry &e) {
        sw.u64(e.doneAt);
    });
    w.u64(head);
    w.u64(occupancy);
    w.u64(issueCounter);
    w.u32(pendingBubbles);
    w.b(recValid);
    w.b(stalledOnReject_);
    w.u32(rec.bubbles);
    w.b(rec.isWrite);
    w.b(rec.uncached);
    w.u64(rec.addr);
    w.u64(retired_);
    w.u64(target_);
    w.u64(finishCycle_);
    w.u64(rejectStalls);
    w.u64(memAccesses);
    trace->saveState(w);
}

void
Core::loadState(StateReader &r)
{
    r.tag("core");
    std::vector<WindowEntry> win;
    loadVector(r, &win, [](StateReader &sr, WindowEntry *e) {
        e->doneAt = sr.u64();
    });
    if (!r.ok() || win.size() != window.size()) {
        r.fail();
        return;
    }
    window = std::move(win);
    head = static_cast<unsigned>(r.u64());
    occupancy = static_cast<unsigned>(r.u64());
    issueCounter = r.u64();
    pendingBubbles = r.u32();
    recValid = r.b();
    stalledOnReject_ = r.b();
    rec.bubbles = r.u32();
    rec.isWrite = r.b();
    rec.uncached = r.b();
    rec.addr = r.u64();
    retired_ = r.u64();
    target_ = r.u64();
    finishCycle_ = r.u64();
    rejectStalls = r.u64();
    memAccesses = r.u64();
    trace->loadState(r);
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    // The earliest in-order retire the core can perform on its own: the
    // head entry's completion time. A head waiting on a DRAM fill
    // (kNeverCycle) is woken by the controller's completion event instead.
    Cycle retire_at = kNeverCycle;
    if (occupancy > 0) {
        Cycle done = window[head].doneAt;
        if (done != kNeverCycle)
            retire_at = std::max(done, now + 1);
    }

    // Window slots remain and the last attempt was not a rejection: the
    // very next cycle issues something (or discovers a rejection).
    if (occupancy < window.size() && !stalledOnReject_)
        return now + 1;

    // Window full, or reject-blocked: while the memory system's state is
    // frozen, ticks are no-ops apart from the batched stall accounting.
    return retire_at;
}

void
Core::tick(Cycle now)
{
    // Retire in order from the window head.
    for (unsigned i = 0; i < config_.width && occupancy > 0; ++i) {
        WindowEntry &entry = window[head];
        if (entry.doneAt == kNeverCycle || entry.doneAt > now)
            break;
        head = (head + 1) % static_cast<unsigned>(window.size());
        --occupancy;
        ++retired_;
        if (target_ != 0 && retired_ == target_ && finishCycle_ == 0)
            finishCycle_ = now;
    }

    // Issue new work while slots and width remain.
    for (unsigned i = 0; i < config_.width; ++i) {
        if (occupancy >= window.size())
            break;
        if (!issueOne(now))
            break;
    }
}

} // namespace bh
