#include "mitigation/prac.h"

#include <algorithm>

namespace bh {

void
pracApplyTiming(DramSpec *spec)
{
    // The per-row counter is read-modified-written during precharge; the
    // JEDEC PRAC proposal lengthens the row cycle by a few nanoseconds.
    spec->timingNs.tRP += 4.0;
    spec->refreshTiming();
}

Prac::Prac(unsigned n_rh, const DramSpec &spec, unsigned abo_rfms)
    : alertTh(std::max(2u, n_rh / 4)),
      aboRfms(abo_rfms),
      rowCounts(spec.org.totalBanks()),
      banksPerRank(spec.org.banksPerRank()),
      rowsPerBank(spec.org.rowsPerBank)
{}

void
Prac::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                 Cycle now)
{
    (void)thread;
    (void)now;
    std::uint32_t &count = rowCounts[flat_bank][row];
    if (++count < alertTh)
        return;
    // alert_n: the controller performs the ABO protocol; the chip
    // refreshes this row's victims during the back-off and resets its
    // counter.
    ++alerts_;
    host->performAlertBackoff(aboRfms, 1.0);
    host->notifyRowProtected(flat_bank, row);
    rowCounts[flat_bank].erase(row);
}

void
Prac::onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                        unsigned sweep_rows, Cycle now)
{
    (void)now;
    unsigned base_bank = rank * banksPerRank;
    for (unsigned b = 0; b < banksPerRank; ++b) {
        auto &bank_counts = rowCounts[base_bank + b];
        for (unsigned r = 0; r < sweep_rows; ++r)
            bank_counts.erase((sweep_start + r) % rowsPerBank);
    }
}

void
Prac::saveState(StateWriter &w) const
{
    w.tag("prac");
    w.u64(alerts_);
    w.u64(rowCounts.size());
    for (const auto &bank_counts : rowCounts)
        saveUnorderedMap(
            w, bank_counts,
            [](StateWriter &sw, std::uint32_t k) { sw.u32(k); },
            [](StateWriter &sw, std::uint32_t v) { sw.u32(v); });
}

void
Prac::loadState(StateReader &r)
{
    r.tag("prac");
    alerts_ = r.u64();
    if (r.u64() != rowCounts.size()) {
        r.fail();
        return;
    }
    for (auto &bank_counts : rowCounts)
        loadUnorderedMap(
            r, &bank_counts,
            [](StateReader &sr, std::uint32_t *k) { *k = sr.u32(); },
            [](StateReader &sr, std::uint32_t *v) { *v = sr.u32(); });
}

} // namespace bh
