#include "mitigation/para.h"

#include <cmath>

#include "common/log.h"

namespace bh {

double
Para::deriveProbability(unsigned n_rh, double fail_probability)
{
    BH_ASSERT(n_rh > 0, "PARA needs a positive threshold");
    double p = 1.0 - std::exp(std::log(fail_probability) /
                              static_cast<double>(n_rh));
    return p > 1.0 ? 1.0 : p;
}

Para::Para(unsigned n_rh, double fail_probability, std::uint64_t seed)
    : p(deriveProbability(n_rh, fail_probability)), rng(seed)
{}

void
Para::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                 Cycle now)
{
    (void)thread;
    (void)now;
    if (rng.nextBool(p))
        host->performVictimRefresh(flat_bank, row, 1.0);
}

void
Para::saveState(StateWriter &w) const
{
    w.tag("para");
    w.u64(rng.rawState());
}

void
Para::loadState(StateReader &r)
{
    r.tag("para");
    std::uint64_t raw = r.u64();
    if (r.ok())
        rng.setRawState(raw);
}

} // namespace bh
