#include "mitigation/twice.h"

#include <algorithm>

namespace bh {

Twice::Twice(unsigned n_rh, const DramSpec &spec)
    : threshold(std::max(1u, n_rh / 4)), tables(spec.org.totalBanks())
{
    // Pruning happens every 16 REF intervals; the prune rate is the pace a
    // row must sustain to ever reach the trigger threshold in a window.
    refsPerPrune = 16;
    double periods_per_window =
        static_cast<double>(spec.timing.tREFW) /
        (static_cast<double>(spec.timing.tREFI) * refsPerPrune);
    pruneRate = static_cast<double>(threshold) / periods_per_window;
    windowLength = spec.timing.tREFW / 2;
}

void
Twice::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                  Cycle now)
{
    (void)thread;
    if (now - windowStart >= windowLength) {
        for (auto &t : tables)
            t.clear();
        windowStart = now;
    }
    Entry &e = tables[flat_bank][row];
    if (++e.acts >= threshold) {
        e.acts = 0;
        host->performVictimRefresh(flat_bank, row, 1.0);
    }
}

void
Twice::onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                         unsigned sweep_rows, Cycle now)
{
    (void)rank;
    (void)sweep_start;
    (void)sweep_rows;
    (void)now;
    if (++refsSeen < refsPerPrune)
        return;
    refsSeen = 0;
    for (auto &table : tables) {
        for (auto it = table.begin(); it != table.end();) {
            Entry &e = it->second;
            ++e.life;
            if (static_cast<double>(e.acts) <
                pruneRate * static_cast<double>(e.life)) {
                it = table.erase(it);
            } else {
                ++it;
            }
        }
    }
}

void
Twice::saveState(StateWriter &w) const
{
    w.tag("twice");
    w.u64(refsSeen);
    w.u64(windowStart);
    w.u64(tables.size());
    for (const auto &table : tables)
        saveUnorderedMap(
            w, table,
            [](StateWriter &sw, std::uint32_t k) { sw.u32(k); },
            [](StateWriter &sw, const Entry &e) {
                sw.u32(e.acts);
                sw.u32(e.life);
            });
}

void
Twice::loadState(StateReader &r)
{
    r.tag("twice");
    refsSeen = static_cast<unsigned>(r.u64());
    windowStart = r.u64();
    if (r.u64() != tables.size()) {
        r.fail();
        return;
    }
    for (auto &table : tables)
        loadUnorderedMap(
            r, &table,
            [](StateReader &sr, std::uint32_t *k) { *k = sr.u32(); },
            [](StateReader &sr, Entry *e) {
                e->acts = sr.u32();
                e->life = sr.u32();
            });
}

} // namespace bh
