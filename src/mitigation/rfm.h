/**
 * @file
 * Periodic Refresh Management (RFM) per the DDR5 standard (JESD79-5).
 *
 * The controller counts rolling activations per bank (RAA counter) and
 * issues an RFM command whenever the count reaches RAAIMT, giving the DRAM
 * chip a time window for internal preventive refreshes. The DRAM-side
 * mitigation is modelled with exact per-row counters (the paper's
 * methodology assumes a per-row activation counter in DRAM for RFM/PRAC,
 * §7): during an RFM window the chip refreshes the victims of every row
 * whose counter crossed the service threshold.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** RFM-based mitigation (controller + DRAM-side model). */
class Rfm : public IMitigation
{
  public:
    Rfm(unsigned n_rh, const DramSpec &spec);

    const char *name() const override { return "RFM"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                           unsigned sweep_rows, Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned raaimt() const { return raaimt_; }
    unsigned serviceThreshold() const { return serviceTh; }

  private:
    // bh-audit: skip(raaimt_) -- constructor config, keyed by ExperimentConfig
    unsigned raaimt_;   ///< RAA Initial Management Threshold.
    // bh-audit: skip(serviceTh) -- constructor config, keyed by ExperimentConfig
    unsigned serviceTh; ///< DRAM-side per-row service threshold.
    std::vector<unsigned> raa; ///< Per-bank rolling activation counter.
    /** DRAM-side per-row activation counters, one map per bank. */
    std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> rowCounts;
    unsigned banksPerRank;  // bh-audit: skip(banksPerRank) -- constructor config, keyed by ExperimentConfig
    unsigned rowsPerBank;   // bh-audit: skip(rowsPerBank) -- constructor config, keyed by ExperimentConfig
};

} // namespace bh
