#include "mitigation/rega.h"

#include <algorithm>

namespace bh {

void
regaApplyTiming(DramSpec *spec, unsigned n_rh)
{
    // Each activation hides a number of victim refreshes proportional to
    // 1/N_RH; the extra parallel-refresh time stretches tRAS. The constant
    // is chosen so the stretch is ~10% of tRC at N_RH = 1K and grows
    // inversely with N_RH (REGA's published V-parameter scaling trend).
    double extra_ns = 4800.0 / static_cast<double>(std::max(1u, n_rh));
    spec->timingNs.tRAS += extra_ns;
    spec->refreshTiming();
}

Rega::Rega(unsigned n_rh, unsigned num_threads)
    : regaT(std::max(1u, n_rh / 2)), threadActs(num_threads, 0)
{}

void
Rega::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                 Cycle now)
{
    (void)flat_bank;
    (void)row;
    (void)now;
    if (thread >= threadActs.size())
        return; // Controller-generated traffic is not attributed.
    if (++threadActs[thread] >= regaT) {
        threadActs[thread] = 0;
        host->creditDirectScore(thread, 1.0);
    }
}

void
Rega::saveState(StateWriter &w) const
{
    w.tag("rega");
    saveU64Vector(w, threadActs);
}

void
Rega::loadState(StateReader &r)
{
    r.tag("rega");
    std::vector<std::uint64_t> acts;
    loadU64Vector(r, &acts);
    if (!r.ok() || acts.size() != threadActs.size()) {
        r.fail();
        return;
    }
    threadActs = std::move(acts);
}

} // namespace bh
