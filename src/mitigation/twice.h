/**
 * @file
 * TWiCe: Time Window Counter based row refresh (Lee et al., ISCA'19).
 *
 * Keeps a per-bank table of activated rows with an activation count and a
 * lifetime (in refresh intervals). Rows whose count falls behind the prune
 * rate (rows that could not reach N_RH within the remaining window) are
 * periodically pruned; rows whose count reaches the trigger threshold get a
 * preventive victim refresh.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** TWiCe mitigation mechanism. */
class Twice : public IMitigation
{
  public:
    Twice(unsigned n_rh, const DramSpec &spec);

    const char *name() const override { return "TWiCe"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                           unsigned sweep_rows, Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned triggerThreshold() const { return threshold; }

    /** Tracked entries in one bank's table (for cost comparisons). */
    std::size_t tableSize(unsigned flat_bank) const
    {
        return tables[flat_bank].size();
    }

  private:
    struct Entry
    {
        std::uint32_t acts = 0;
        std::uint32_t life = 0; ///< Age in pruning periods.
    };

    unsigned threshold;  // bh-audit: skip(threshold) -- constructor config, keyed by ExperimentConfig
    // bh-audit: skip(pruneRate) -- constructor config, keyed by ExperimentConfig
    double pruneRate; ///< Minimum ACTs per period to stay tracked.
    // bh-audit: skip(refsPerPrune) -- constructor config, keyed by ExperimentConfig
    unsigned refsPerPrune;
    unsigned refsSeen = 0;
    Cycle windowLength;  // bh-audit: skip(windowLength) -- constructor config, keyed by ExperimentConfig
    Cycle windowStart = 0;
    std::vector<std::unordered_map<std::uint32_t, Entry>> tables;
};

} // namespace bh
