#include "mitigation/graphene.h"

#include <algorithm>

namespace bh {

Graphene::Graphene(unsigned n_rh, const DramSpec &spec)
    : threshold(std::max(1u, n_rh / 8))
{
    // Max activations a bank can absorb within one reset period bounds the
    // number of rows that can reach the threshold, which sizes the table.
    resetPeriod = spec.timing.tREFW / 2;
    double max_acts = static_cast<double>(resetPeriod) /
                      static_cast<double>(spec.timing.tRC);
    auto cap = static_cast<unsigned>(max_acts / threshold) + 1;
    capacity = std::clamp(cap, 64u, 262144u);
    tables.assign(spec.org.totalBanks(), MisraGries(capacity));
}

void
Graphene::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                     Cycle now)
{
    (void)thread;
    if (now - lastReset >= resetPeriod) {
        for (MisraGries &t : tables)
            t.clear();
        lastReset = now;
    }
    MisraGries &table = tables[flat_bank];
    if (table.increment(row) >= threshold) {
        table.resetRow(row);
        host->performVictimRefresh(flat_bank, row, 1.0);
    }
}

void
Graphene::saveState(StateWriter &w) const
{
    w.tag("graphene");
    w.u64(lastReset);
    w.u64(tables.size());
    for (const MisraGries &t : tables)
        t.saveState(w);
}

void
Graphene::loadState(StateReader &r)
{
    r.tag("graphene");
    lastReset = r.u64();
    if (r.u64() != tables.size()) {
        r.fail();
        return;
    }
    for (MisraGries &t : tables)
        t.loadState(r);
}

} // namespace bh
