/**
 * @file
 * BlockHammer: throttling-based RowHammer prevention (Yaglikci et al.,
 * HPCA'21) — the paper's state-of-the-art throttling baseline (§8.3).
 *
 * RowBlocker: two time-interleaved counting Bloom filters per bank estimate
 * per-row activation counts over half-refresh-window epochs; rows whose
 * estimate crosses the blacklist threshold have further activations delayed
 * so they cannot reach N_RH activations within a refresh window.
 *
 * AttackThrottler: threads responsible for many blacklisted-row activations
 * get their memory-request resources (MSHR quota) reduced for the rest of
 * the epoch.
 *
 * Unlike BreakHammer, BlockHammer *is* the RowHammer defense: benign rows
 * that legitimately exceed the blacklist threshold (common at low N_RH, see
 * Table 3) get delayed too, which is exactly the behaviour Fig 18 shows.
 */
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/throttle_target.h"
#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** Counting Bloom filter used by the RowBlocker. */
class CountingBloomFilter
{
  public:
    CountingBloomFilter(unsigned num_counters = 1024, unsigned hashes = 4)
        : counters(num_counters, 0), numHashes(hashes)
    {}

    void
    increment(std::uint64_t key)
    {
        for (unsigned h = 0; h < numHashes; ++h)
            ++counters[slot(key, h)];
    }

    /** Count estimate: minimum over the key's hash slots (never under). */
    std::uint32_t
    estimate(std::uint64_t key) const
    {
        std::uint32_t est = UINT32_MAX;
        for (unsigned h = 0; h < numHashes; ++h)
            est = std::min(est, counters[slot(key, h)]);
        return est;
    }

    void clear() { std::fill(counters.begin(), counters.end(), 0); }

    /** Serialize the counter array. */
    void
    saveState(StateWriter &w) const
    {
        w.tag("cbf");
        saveU32Vector(w, counters);
    }

    /** Restore saveState() output into a same-geometry filter. */
    void
    loadState(StateReader &r)
    {
        r.tag("cbf");
        std::vector<std::uint32_t> c;
        loadU32Vector(r, &c);
        if (!r.ok() || c.size() != counters.size()) {
            r.fail();
            return;
        }
        counters = std::move(c);
    }

  private:
    std::size_t
    slot(std::uint64_t key, unsigned h) const
    {
        std::uint64_t x = key * 0x9e3779b97f4a7c15ull +
                          (h + 1) * 0xbf58476d1ce4e5b9ull;
        x ^= x >> 31;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 29;
        return static_cast<std::size_t>(x % counters.size());
    }

    std::vector<std::uint32_t> counters;
    unsigned numHashes;  // bh-audit: skip(numHashes) -- constructor config, keyed by ExperimentConfig
};

/** BlockHammer mitigation mechanism. */
class BlockHammer : public IMitigation
{
  public:
    BlockHammer(unsigned n_rh, const DramSpec &spec, unsigned num_threads);

    const char *name() const override { return "BlockHammer"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                   Cycle now) override;

    /**
     * Pure query — never rolls the epoch. A row whose delay would have
     * been cleared by an epoch boundary at or before @p now reports
     * itself released; the state itself rolls in advanceTo()/commitAct().
     */
    Cycle probeActReleaseCycle(unsigned flat_bank, unsigned row,
                               ThreadId thread, Cycle now) const override;

    /** Roll the RowBlocker/AttackThrottler epoch state to @p now. */
    void advanceTo(Cycle now) override { rollEpoch(now); }

    /**
     * The next epoch boundary: every blacklist delay clears and every
     * throttled thread's quota is restored there, so the skip-ahead loop
     * must simulate that cycle.
     */
    Cycle nextTimedEventCycle(Cycle now) const override;

    bool delaysActs() const override { return true; }

    /** Attach the AttackThrottler's resource target (optional). */
    void setThrottleTarget(IThrottleTarget *t) { throttleTarget = t; }

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned blacklistThreshold() const { return nbl; }
    Cycle blacklistDelay() const { return tDelay; }
    std::uint64_t blacklistedActs() const { return blacklistedActs_; }

  private:
    void rollEpoch(Cycle now);

    std::uint64_t
    keyOf(unsigned flat_bank, unsigned row) const
    {
        return (static_cast<std::uint64_t>(flat_bank) << 32) | row;
    }

    // bh-audit: skip(nbl) -- constructor config, keyed by ExperimentConfig
    unsigned nbl;    ///< Blacklist threshold (N_RH / 4).
    // bh-audit: skip(tDelay) -- constructor config, keyed by ExperimentConfig
    Cycle tDelay;    ///< Enforced ACT spacing for blacklisted rows.
    // bh-audit: skip(epochLength) -- constructor config, keyed by ExperimentConfig
    Cycle epochLength;
    Cycle epochStart = 0;

    /** Two time-interleaved CBFs; `active` is the fully trained one. */
    std::array<CountingBloomFilter, 2> cbf;
    unsigned active = 0;

    /** Last ACT cycle of blacklisted rows (cleared each epoch). */
    std::unordered_map<std::uint64_t, Cycle> lastBlacklistedAct;

    // AttackThrottler state.
    // bh-audit: skip(throttleTarget) -- non-owning wiring installed by System
    IThrottleTarget *throttleTarget = nullptr;
    std::vector<std::uint64_t> threadBlacklistActs;
    // bh-audit: skip(attackThreshold) -- constructor config, keyed by ExperimentConfig
    unsigned attackThreshold;
    std::uint64_t blacklistedActs_ = 0;
};

} // namespace bh
