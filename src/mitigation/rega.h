/**
 * @file
 * REGA: refresh-generating activations (Marazzi et al., S&P'23).
 *
 * REGA modifies the DRAM chip so each subarray refreshes victim rows in
 * parallel with normal activations, using a second row buffer. Protection
 * is by construction — there are no discrete preventive actions — but the
 * parallel refreshes lengthen the activation cycle. We model that as an
 * N_RH-dependent stretch of tRAS applied to the device spec (see
 * regaApplyTiming); the mitigation object itself only implements the score
 * attribution BreakHammer uses for REGA: one point per REGA_T activations
 * performed by a thread (§4.1).
 */
#pragma once

#include <vector>

#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** Stretch @p spec's tRAS for REGA operation at threshold @p n_rh. */
void regaApplyTiming(DramSpec *spec, unsigned n_rh);

/** REGA mitigation mechanism (score attribution only; see file docs). */
class Rega : public IMitigation
{
  public:
    Rega(unsigned n_rh, unsigned num_threads);

    const char *name() const override { return "REGA"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned scorePeriod() const { return regaT; }

  private:
    // bh-audit: skip(regaT) -- constructor config, keyed by ExperimentConfig
    unsigned regaT; ///< Activations per attributed score point.
    std::vector<std::uint64_t> threadActs;
};

} // namespace bh
