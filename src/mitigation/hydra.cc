#include "mitigation/hydra.h"

#include <algorithm>

namespace bh {

Hydra::Hydra(unsigned n_rh, const DramSpec &spec, unsigned rows_per_group,
             unsigned rcc_entries)
    : rowTh(std::max(2u, n_rh / 4)),
      groupTh(std::max(1u, n_rh / 8)),
      rowsPerGroup(rows_per_group),
      rccCapacity(rcc_entries)
{
    // An RCT access behaves like one DRAM read: ACT + RD + PRE worth of
    // bank occupancy.
    rctAccessLatency = spec.timing.tRCD + spec.timing.tCL +
                       spec.timing.tBL + spec.timing.tRP;
    windowLength = spec.timing.tREFW / 2;
    unsigned groups_per_bank =
        (spec.org.rowsPerBank + rows_per_group - 1) / rows_per_group;
    gct.assign(spec.org.totalBanks(),
               std::vector<std::uint32_t>(groups_per_bank, 0));
}

void
Hydra::rccTouch(std::uint64_t row_key, unsigned flat_bank)
{
    auto it = rccIndex.find(row_key);
    if (it != rccIndex.end()) {
        rccLru.splice(rccLru.begin(), rccLru, it->second);
        return;
    }
    ++rccMisses_;
    // Fetching (and possibly writing back) an RCT entry occupies the bank
    // like a read and counts as a RowHammer-preventive action (§4.1).
    host->performTrackerAccess(flat_bank, rctAccessLatency, 1.0);
    if (rccLru.size() >= rccCapacity) {
        rccIndex.erase(rccLru.back());
        rccLru.pop_back();
    }
    rccLru.push_front(row_key);
    rccIndex[row_key] = rccLru.begin();
}

void
Hydra::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                  Cycle now)
{
    (void)thread;
    if (now - windowStart >= windowLength) {
        for (auto &bank : gct)
            std::fill(bank.begin(), bank.end(), 0);
        rct.clear();
        rccLru.clear();
        rccIndex.clear();
        windowStart = now;
    }

    unsigned group = row / rowsPerGroup;
    std::uint32_t &gcount = gct[flat_bank][group];
    if (gcount < groupTh) {
        ++gcount;
        return;
    }

    // Escalated group: per-row tracking via RCT/RCC.
    std::uint64_t key = (static_cast<std::uint64_t>(flat_bank) << 32) | row;
    auto it = rct.find(key);
    if (it == rct.end()) {
        // Conservative initialization: the row may have contributed up to
        // the whole group count before escalation.
        it = rct.emplace(key, gcount).first;
    }
    rccTouch(key, flat_bank);
    if (++it->second >= rowTh) {
        it->second = 0;
        host->performVictimRefresh(flat_bank, row, 1.0);
    }
}

void
Hydra::saveState(StateWriter &w) const
{
    w.tag("hydra");
    w.u64(windowStart);
    w.u64(rccMisses_);
    w.u64(gct.size());
    for (const auto &bank : gct)
        saveU32Vector(w, bank);
    saveUnorderedMap(
        w, rct, [](StateWriter &sw, std::uint64_t k) { sw.u64(k); },
        [](StateWriter &sw, std::uint32_t v) { sw.u32(v); });
    // The RCC is an LRU list plus a key->iterator index; the list order
    // IS the replacement state, so it serializes front to back and the
    // index is rebuilt on load.
    w.u64(rccLru.size());
    for (std::uint64_t key : rccLru)
        w.u64(key);
}

void
Hydra::loadState(StateReader &r)
{
    r.tag("hydra");
    windowStart = r.u64();
    rccMisses_ = r.u64();
    if (r.u64() != gct.size()) {
        r.fail();
        return;
    }
    for (auto &bank : gct) {
        std::vector<std::uint32_t> counts;
        loadU32Vector(r, &counts);
        if (!r.ok() || counts.size() != bank.size()) {
            r.fail();
            return;
        }
        bank = std::move(counts);
    }
    loadUnorderedMap(
        r, &rct, [](StateReader &sr, std::uint64_t *k) { *k = sr.u64(); },
        [](StateReader &sr, std::uint32_t *v) { *v = sr.u32(); });
    std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining()) {
        r.fail();
        return;
    }
    rccLru.clear();
    rccIndex.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        rccLru.push_back(r.u64());
        rccIndex[rccLru.back()] = std::prev(rccLru.end());
    }
}

} // namespace bh
