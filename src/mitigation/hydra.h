/**
 * @file
 * Hydra: hybrid group/per-row tracking (Qureshi et al., ISCA'22).
 *
 * A small on-chip Group Count Table (GCT) aggregates activations over row
 * groups; when a group's count crosses the group threshold, tracking for
 * that group switches to per-row counters stored in DRAM (the Row Count
 * Table, RCT), conservatively initialized to the group count. A Row Count
 * Cache (RCC) in the controller caches RCT entries; an RCC miss costs a
 * DRAM access — one of Hydra's RowHammer-preventive actions the paper's
 * score attribution counts (§4.1), alongside the preventive refreshes
 * issued when a per-row counter reaches the row threshold.
 */
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** Hydra mitigation mechanism. */
class Hydra : public IMitigation
{
  public:
    Hydra(unsigned n_rh, const DramSpec &spec, unsigned rows_per_group = 128,
          unsigned rcc_entries = 4096);

    const char *name() const override { return "Hydra"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned rowThreshold() const { return rowTh; }
    unsigned groupThreshold() const { return groupTh; }
    std::uint64_t rccMisses() const { return rccMisses_; }

  private:
    /** Touch the RCC; on miss, charge the DRAM-side RCT access. */
    void rccTouch(std::uint64_t row_key, unsigned flat_bank);

    unsigned rowTh;          // bh-audit: skip(rowTh) -- constructor config, keyed by ExperimentConfig
    unsigned groupTh;        // bh-audit: skip(groupTh) -- constructor config, keyed by ExperimentConfig
    unsigned rowsPerGroup;   // bh-audit: skip(rowsPerGroup) -- constructor config, keyed by ExperimentConfig
    unsigned rccCapacity;    // bh-audit: skip(rccCapacity) -- constructor config, keyed by ExperimentConfig
    Cycle rctAccessLatency;  // bh-audit: skip(rctAccessLatency) -- constructor config, keyed by ExperimentConfig
    Cycle windowLength;      // bh-audit: skip(windowLength) -- constructor config, keyed by ExperimentConfig
    Cycle windowStart = 0;

    /** GCT: per-bank vector of group counters. */
    std::vector<std::vector<std::uint32_t>> gct;
    /** RCT: per-row counters for escalated groups (DRAM-resident). */
    std::unordered_map<std::uint64_t, std::uint32_t> rct;
    /** RCC: LRU cache over RCT keys. */
    std::list<std::uint64_t> rccLru;
    // bh-audit: skip(rccIndex) -- iterator index over rccLru, rebuilt in loadState
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        rccIndex;

    std::uint64_t rccMisses_ = 0;
};

} // namespace bh
