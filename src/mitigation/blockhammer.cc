#include "mitigation/blockhammer.h"

#include <algorithm>

namespace bh {

BlockHammer::BlockHammer(unsigned n_rh, const DramSpec &spec,
                         unsigned num_threads)
    : nbl(std::max(2u, n_rh / 4)),
      epochLength(spec.timing.tREFW / 2),
      threadBlacklistActs(num_threads, 0),
      attackThreshold(std::max(4u, n_rh / 2))
{
    // After blacklisting at NBL, spacing ACTs by tDelay caps a row at
    // NBL + epoch/tDelay <= N_RH / 2 activations per epoch, i.e., at most
    // N_RH per refresh window across the two epochs it can span.
    tDelay = epochLength / std::max(1u, nbl);
}

void
BlockHammer::rollEpoch(Cycle now)
{
    while (now - epochStart >= epochLength) {
        cbf[active].clear();
        active ^= 1;
        epochStart += epochLength;
        lastBlacklistedAct.clear();
        std::fill(threadBlacklistActs.begin(), threadBlacklistActs.end(),
                  0);
        if (throttleTarget != nullptr) {
            for (ThreadId t = 0; t < threadBlacklistActs.size(); ++t)
                throttleTarget->setQuota(t, throttleTarget->fullQuota());
        }
    }
}

void
BlockHammer::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                       Cycle now)
{
    rollEpoch(now);
    std::uint64_t key = keyOf(flat_bank, row);
    cbf[0].increment(key);
    cbf[1].increment(key);

    if (cbf[active].estimate(key) >= nbl) {
        ++blacklistedActs_;
        lastBlacklistedAct[key] = now;
        if (thread < threadBlacklistActs.size()) {
            if (++threadBlacklistActs[thread] >= attackThreshold &&
                throttleTarget != nullptr) {
                // AttackThrottler: pin the offender to a small quota for
                // the remainder of the epoch.
                unsigned reduced =
                    std::max(1u, throttleTarget->fullQuota() / 8);
                throttleTarget->setQuota(thread, reduced);
            }
        }
    }
}

Cycle
BlockHammer::probeActReleaseCycle(unsigned flat_bank, unsigned row,
                                  ThreadId thread, Cycle now) const
{
    (void)thread;
    // An elapsed epoch boundary clears every delay; report that outcome
    // without applying the roll (probes must stay side-effect-free).
    if (now - epochStart >= epochLength)
        return now;
    std::uint64_t key = keyOf(flat_bank, row);
    if (cbf[active].estimate(key) < nbl)
        return now;
    auto it = lastBlacklistedAct.find(key);
    if (it == lastBlacklistedAct.end())
        return now;
    // The boundary releases the row even if the raw spacing would not.
    return std::min(it->second + tDelay, epochStart + epochLength);
}

Cycle
BlockHammer::nextTimedEventCycle(Cycle now) const
{
    Cycle boundary = epochStart + epochLength;
    while (boundary <= now)
        boundary += epochLength;
    return boundary;
}

void
BlockHammer::saveState(StateWriter &w) const
{
    w.tag("blockhammer");
    w.u64(epochStart);
    w.u64(active);
    cbf[0].saveState(w);
    cbf[1].saveState(w);
    saveUnorderedMap(
        w, lastBlacklistedAct,
        [](StateWriter &sw, std::uint64_t k) { sw.u64(k); },
        [](StateWriter &sw, Cycle v) { sw.u64(v); });
    saveU64Vector(w, threadBlacklistActs);
    w.u64(blacklistedActs_);
}

void
BlockHammer::loadState(StateReader &r)
{
    r.tag("blockhammer");
    epochStart = r.u64();
    active = static_cast<unsigned>(r.u64());
    cbf[0].loadState(r);
    cbf[1].loadState(r);
    loadUnorderedMap(
        r, &lastBlacklistedAct,
        [](StateReader &sr, std::uint64_t *k) { *k = sr.u64(); },
        [](StateReader &sr, Cycle *v) { *v = sr.u64(); });
    std::vector<std::uint64_t> acts;
    loadU64Vector(r, &acts);
    if (!r.ok() || acts.size() != threadBlacklistActs.size() ||
        active > 1) {
        r.fail();
        return;
    }
    threadBlacklistActs = std::move(acts);
    blacklistedActs_ = r.u64();
}

} // namespace bh
