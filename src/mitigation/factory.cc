#include "mitigation/factory.h"

#include "common/log.h"
#include "mitigation/aqua.h"
#include "mitigation/blockhammer.h"
#include "mitigation/graphene.h"
#include "mitigation/hydra.h"
#include "mitigation/para.h"
#include "mitigation/prac.h"
#include "mitigation/rega.h"
#include "mitigation/rfm.h"
#include "mitigation/twice.h"

namespace bh {

const char *
mitigationName(MitigationType type)
{
    switch (type) {
      case MitigationType::kNone: return "NoDefense";
      case MitigationType::kPara: return "PARA";
      case MitigationType::kGraphene: return "Graphene";
      case MitigationType::kHydra: return "Hydra";
      case MitigationType::kTwice: return "TWiCe";
      case MitigationType::kAqua: return "AQUA";
      case MitigationType::kRega: return "REGA";
      case MitigationType::kRfm: return "RFM";
      case MitigationType::kPrac: return "PRAC";
      case MitigationType::kBlockHammer: return "BlockHammer";
    }
    return "?";
}

const std::vector<MitigationType> &
pairedMitigations()
{
    static const std::vector<MitigationType> list = {
        MitigationType::kPara,  MitigationType::kGraphene,
        MitigationType::kHydra, MitigationType::kTwice,
        MitigationType::kAqua,  MitigationType::kRega,
        MitigationType::kRfm,   MitigationType::kPrac,
    };
    return list;
}

void
applyTimingSideEffects(MitigationType type, unsigned n_rh, DramSpec *spec)
{
    switch (type) {
      case MitigationType::kRega:
        regaApplyTiming(spec, n_rh);
        break;
      case MitigationType::kPrac:
        pracApplyTiming(spec);
        break;
      default:
        break;
    }
}

std::unique_ptr<IMitigation>
createMitigation(MitigationType type, unsigned n_rh, const DramSpec &spec,
                 unsigned num_threads)
{
    switch (type) {
      case MitigationType::kNone:
        return nullptr;
      case MitigationType::kPara:
        return std::make_unique<Para>(n_rh);
      case MitigationType::kGraphene:
        return std::make_unique<Graphene>(n_rh, spec);
      case MitigationType::kHydra:
        return std::make_unique<Hydra>(n_rh, spec);
      case MitigationType::kTwice:
        return std::make_unique<Twice>(n_rh, spec);
      case MitigationType::kAqua:
        return std::make_unique<Aqua>(n_rh, spec);
      case MitigationType::kRega:
        return std::make_unique<Rega>(n_rh, num_threads);
      case MitigationType::kRfm:
        return std::make_unique<Rfm>(n_rh, spec);
      case MitigationType::kPrac:
        return std::make_unique<Prac>(n_rh, spec);
      case MitigationType::kBlockHammer:
        return std::make_unique<BlockHammer>(n_rh, spec, num_threads);
    }
    BH_PANIC("unhandled mitigation type");
}

} // namespace bh
