/**
 * @file
 * Misra-Gries frequent-element tracker (Misra & Gries, 1982), the counter
 * core of Graphene and AQUA.
 *
 * Uses the standard global-offset formulation of "decrement all": an entry's
 * effective count is `weight - offset`; entries whose weight falls to the
 * offset are stale and their slots are reclaimed lazily with a rotating scan
 * cursor, giving amortized O(1) updates while preserving exact Misra-Gries
 * semantics (a new element is only admitted when some counter has reached
 * zero).
 */
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/log.h"
#include "common/snapshot.h"

namespace bh {

/** Misra-Gries summary over row identifiers. */
class MisraGries
{
  public:
    explicit MisraGries(unsigned capacity) : capacity_(capacity)
    {
        BH_ASSERT(capacity > 0, "Misra-Gries needs at least one counter");
        table.reserve(capacity * 2);
    }

    /**
     * Record one occurrence of @p row.
     * @return The row's effective counter after the update (0 if the row
     *         could not be admitted, i.e., all counters were decremented).
     */
    std::uint64_t
    increment(std::uint64_t row)
    {
        auto it = table.find(row);
        if (it != table.end()) {
            if (it->second <= offset) {
                it->second = offset + 1; // Stale entry: effectively new.
            } else {
                ++it->second;
            }
            return it->second - offset;
        }
        if (table.size() < capacity_) {
            table.emplace(row, offset + 1);
            return 1;
        }
        // Try to reclaim one stale slot.
        if (reclaimOne()) {
            table.emplace(row, offset + 1);
            return 1;
        }
        // Classic Misra-Gries: decrement everything, do not admit.
        ++offset;
        return 0;
    }

    /** Effective counter of @p row (0 if untracked or stale). */
    std::uint64_t
    estimate(std::uint64_t row) const
    {
        auto it = table.find(row);
        if (it == table.end() || it->second <= offset)
            return 0;
        return it->second - offset;
    }

    /** Reset @p row's counter to zero, keeping it tracked. */
    void
    resetRow(std::uint64_t row)
    {
        auto it = table.find(row);
        if (it != table.end())
            it->second = offset;
    }

    /** Drop all state (periodic table reset). */
    void
    clear()
    {
        table.clear();
        offset = 0;
    }

    std::size_t trackedRows() const { return table.size(); }
    unsigned capacity() const { return capacity_; }

    /**
     * Serialize the summary. Iteration order is part of the state here:
     * reclaimOne() erases the first stale entry an iteration finds, so
     * the table's bucket structure must survive the round trip
     * (saveUnorderedMap/loadUnorderedMap guarantee that).
     */
    void
    saveState(StateWriter &w) const
    {
        w.tag("misra_gries");
        w.u64(offset);
        saveUnorderedMap(
            w, table,
            [](StateWriter &sw, std::uint64_t k) { sw.u64(k); },
            [](StateWriter &sw, std::uint64_t v) { sw.u64(v); });
    }

    /** Restore saveState() output into a same-capacity summary. */
    void
    loadState(StateReader &r)
    {
        r.tag("misra_gries");
        offset = r.u64();
        loadUnorderedMap(
            r, &table,
            [](StateReader &sr, std::uint64_t *k) { *k = sr.u64(); },
            [](StateReader &sr, std::uint64_t *v) { *v = sr.u64(); });
    }

  private:
    /** Erase one stale entry if any exists (amortized by full scan). */
    bool
    reclaimOne()
    {
        for (auto it = table.begin(); it != table.end(); ++it) {
            if (it->second <= offset) {
                table.erase(it);
                return true;
            }
        }
        return false;
    }

    unsigned capacity_;  // bh-audit: skip(capacity_) -- constructor config, keyed by ExperimentConfig
    std::uint64_t offset = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> table;
};

} // namespace bh
