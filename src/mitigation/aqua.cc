#include "mitigation/aqua.h"

#include <algorithm>

namespace bh {

Aqua::Aqua(unsigned n_rh, const DramSpec &spec)
    : threshold(std::max(1u, n_rh / 8))
{
    resetPeriod = spec.timing.tREFW / 2;
    double max_acts = static_cast<double>(resetPeriod) /
                      static_cast<double>(spec.timing.tRC);
    auto cap = static_cast<unsigned>(max_acts / threshold) + 1;
    tables.assign(spec.org.totalBanks(),
                  MisraGries(std::clamp(cap, 64u, 262144u)));
}

void
Aqua::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                 Cycle now)
{
    (void)thread;
    if (now - lastReset >= resetPeriod) {
        for (MisraGries &t : tables)
            t.clear();
        lastReset = now;
    }
    MisraGries &table = tables[flat_bank];
    if (table.increment(row) >= threshold) {
        table.resetRow(row);
        ++migrations_;
        host->performMigration(flat_bank, row);
    }
}

void
Aqua::saveState(StateWriter &w) const
{
    w.tag("aqua");
    w.u64(lastReset);
    w.u64(migrations_);
    w.u64(tables.size());
    for (const MisraGries &t : tables)
        t.saveState(w);
}

void
Aqua::loadState(StateReader &r)
{
    r.tag("aqua");
    lastReset = r.u64();
    migrations_ = r.u64();
    if (r.u64() != tables.size()) {
        r.fail();
        return;
    }
    for (MisraGries &t : tables)
        t.loadState(r);
}

} // namespace bh
