/**
 * @file
 * AQUA: quarantine of aggressor rows via row migration (Saxena et al.,
 * MICRO'22).
 *
 * Aggressors are detected with a Misra-Gries tracker (like Graphene); on
 * detection the row's content is migrated to a quarantine region, which
 * separates it from its victims. The migration itself is the RowHammer-
 * preventive action: a long bank blackout (row read + quarantine write),
 * which is why AQUA's preventive actions are the costliest the paper
 * evaluates (Fig 11's note on AQUA's latency scale).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "dram/spec.h"
#include "mitigation/misra_gries.h"
#include "mitigation/mitigation.h"

namespace bh {

/** AQUA mitigation mechanism. */
class Aqua : public IMitigation
{
  public:
    Aqua(unsigned n_rh, const DramSpec &spec);

    const char *name() const override { return "AQUA"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned migrationThreshold() const { return threshold; }
    std::uint64_t migrations() const { return migrations_; }

  private:
    unsigned threshold;  // bh-audit: skip(threshold) -- constructor config, keyed by ExperimentConfig
    Cycle resetPeriod;   // bh-audit: skip(resetPeriod) -- constructor config, keyed by ExperimentConfig
    Cycle lastReset = 0;
    std::vector<MisraGries> tables;
    std::uint64_t migrations_ = 0;
};

} // namespace bh
