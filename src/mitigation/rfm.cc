#include "mitigation/rfm.h"

#include <algorithm>

namespace bh {

Rfm::Rfm(unsigned n_rh, const DramSpec &spec)
    : raaimt_(std::clamp(n_rh / 8, 4u, 128u)),
      serviceTh(std::max(2u, n_rh / 4)),
      raa(spec.org.totalBanks(), 0),
      rowCounts(spec.org.totalBanks()),
      banksPerRank(spec.org.banksPerRank()),
      rowsPerBank(spec.org.rowsPerBank)
{}

void
Rfm::commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                Cycle now)
{
    (void)thread;
    (void)now;
    ++rowCounts[flat_bank][row];

    if (++raa[flat_bank] < raaimt_)
        return;
    raa[flat_bank] = 0;
    host->performRfm(flat_bank, 1.0);

    // DRAM-side service: refresh victims of every row in this bank whose
    // counter crossed the service threshold.
    auto &bank_counts = rowCounts[flat_bank];
    for (auto it = bank_counts.begin(); it != bank_counts.end();) {
        if (it->second >= serviceTh) {
            host->notifyRowProtected(flat_bank, it->first);
            it = bank_counts.erase(it);
        } else {
            ++it;
        }
    }
}

void
Rfm::onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                       unsigned sweep_rows, Cycle now)
{
    (void)now;
    // Rows refreshed by the periodic sweep restart their counters.
    unsigned base_bank = rank * banksPerRank;
    for (unsigned b = 0; b < banksPerRank; ++b) {
        auto &bank_counts = rowCounts[base_bank + b];
        for (unsigned r = 0; r < sweep_rows; ++r)
            bank_counts.erase((sweep_start + r) % rowsPerBank);
    }
}

void
Rfm::saveState(StateWriter &w) const
{
    w.tag("rfm");
    saveUnsignedVector(w, raa);
    w.u64(rowCounts.size());
    for (const auto &bank_counts : rowCounts)
        saveUnorderedMap(
            w, bank_counts,
            [](StateWriter &sw, std::uint32_t k) { sw.u32(k); },
            [](StateWriter &sw, std::uint32_t v) { sw.u32(v); });
}

void
Rfm::loadState(StateReader &r)
{
    r.tag("rfm");
    std::vector<unsigned> raa_state;
    loadUnsignedVector(r, &raa_state);
    if (!r.ok() || raa_state.size() != raa.size() ||
        r.u64() != rowCounts.size()) {
        r.fail();
        return;
    }
    raa = std::move(raa_state);
    for (auto &bank_counts : rowCounts)
        loadUnorderedMap(
            r, &bank_counts,
            [](StateReader &sr, std::uint32_t *k) { *k = sr.u32(); },
            [](StateReader &sr, std::uint32_t *v) { *v = sr.u32(); });
}

} // namespace bh
