/**
 * @file
 * Graphene: Misra-Gries-based aggressor tracking (Park et al., MICRO'20).
 *
 * One Misra-Gries table per bank counts activations of the most frequent
 * rows; when a row's counter reaches the refresh threshold, its victims are
 * preventively refreshed and the counter resets. Tables reset every half
 * refresh window. The refresh threshold is N_RH / 8: the factor covers the
 * Misra-Gries undercount (<= threshold) and the table-reset boundary (see
 * DESIGN.md §5), keeping the oracle-checked activation bound below N_RH.
 */
#pragma once

#include <vector>

#include "dram/spec.h"
#include "mitigation/misra_gries.h"
#include "mitigation/mitigation.h"

namespace bh {

/** Graphene mitigation mechanism. */
class Graphene : public IMitigation
{
  public:
    Graphene(unsigned n_rh, const DramSpec &spec);

    const char *name() const override { return "Graphene"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned refreshThreshold() const { return threshold; }
    unsigned tableCapacity() const { return capacity; }

  private:
    unsigned threshold;  // bh-audit: skip(threshold) -- constructor config, keyed by ExperimentConfig
    unsigned capacity;   // bh-audit: skip(capacity) -- constructor config, keyed by ExperimentConfig
    Cycle resetPeriod;   // bh-audit: skip(resetPeriod) -- constructor config, keyed by ExperimentConfig
    Cycle lastReset = 0;
    std::vector<MisraGries> tables; ///< One per flat bank.
};

} // namespace bh
