/**
 * @file
 * PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA'14).
 *
 * Stateless: on every demand activation, with probability p, preventively
 * refresh the activated row's neighbours. p is derived from the RowHammer
 * threshold so that the probability an aggressor row reaches N_RH
 * activations without a single preventive refresh stays below a target
 * failure probability: (1 - p)^N_RH <= P_fail.
 */
#pragma once

#include "common/rng.h"
#include "mitigation/mitigation.h"

namespace bh {

/** PARA mitigation mechanism. */
class Para : public IMitigation
{
  public:
    /**
     * @param n_rh RowHammer threshold.
     * @param fail_probability Target per-row failure probability.
     */
    explicit Para(unsigned n_rh, double fail_probability = 1e-15,
                  std::uint64_t seed = 0x9a7a);

    const char *name() const override { return "PARA"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    /** The configured refresh probability. */
    double probability() const { return p; }

    /** Derive the refresh probability for a threshold. */
    static double deriveProbability(unsigned n_rh, double fail_probability);

  private:
    double p;  // bh-audit: skip(p) -- constructor config, keyed by ExperimentConfig
    Rng rng;
};

} // namespace bh
