/**
 * @file
 * Interfaces connecting RowHammer mitigation mechanisms, the memory
 * controller, and BreakHammer.
 *
 * A mitigation mechanism observes committed demand row activations via
 * `commitAct` and requests RowHammer-preventive actions through the
 * `IMitigationHost` (implemented by the memory controller): victim-row
 * refreshes, row migrations (AQUA), RFM commands, or an alert back-off
 * (PRAC). The host executes the action as a bank/rank maintenance
 * blackout, accounts its energy, informs the RowHammer oracle that the
 * aggressor's victims were refreshed, and notifies the attached
 * `IActionObserver` (BreakHammer) so it can attribute RowHammer-preventive
 * scores (§4.1).
 *
 * The interface separates *probes* from *commits* so the controller's
 * scheduler (and the skip-ahead loop's event computation) can query a
 * mechanism speculatively, any number of times, in any order:
 *
 *  - `probeActReleaseCycle()` is a const, side-effect-free query — N
 *    probes followed by one commit must behave exactly like one probe
 *    followed by one commit;
 *  - `commitAct()` mutates tracking state and fires only when the
 *    controller actually issues the ACT;
 *  - `advanceTo()` rolls purely time-based state (epoch rollovers, quota
 *    resets) and is called once per controller tick, before scheduling;
 *  - `nextTimedEventCycle()` exposes the next cycle at which that
 *    time-based state changes, so the skip-ahead loop never jumps past a
 *    throttling decision.
 */
#pragma once

#include "common/snapshot.h"
#include "common/types.h"

namespace bh {

/** Sink for the action stream BreakHammer consumes (§4.1). */
class IActionObserver
{
  public:
    virtual ~IActionObserver() = default;

    /** A demand activation by @p thread (attribution bookkeeping). */
    virtual void onDemandActivate(ThreadId thread, unsigned flat_bank,
                                  Cycle now) = 0;

    /**
     * A RowHammer-preventive action of cost @p weight was performed;
     * the observer attributes scores proportionally to per-thread
     * activation counts since the previous action.
     */
    virtual void onPreventiveAction(double weight, Cycle now) = 0;

    /**
     * Direct per-thread score credit (REGA's attribution: one point per
     * REGA_T activations performed by the thread, §4.1).
     */
    virtual void onDirectScore(ThreadId thread, double amount,
                               Cycle now) = 0;
};

/** Services the memory controller offers to a mitigation mechanism. */
class IMitigationHost
{
  public:
    virtual ~IMitigationHost() = default;

    /**
     * Preventively refresh the victims of @p row in @p flat_bank.
     * Blocks the bank for blast-radius * 2 row cycles, resets the
     * aggressor's hammer progress, and notifies the observer.
     * @param weight Observer score weight of this action.
     */
    virtual void performVictimRefresh(unsigned flat_bank, unsigned row,
                                      double weight) = 0;

    /** AQUA row migration: long bank blackout; resets hammer progress. */
    virtual void performMigration(unsigned flat_bank, unsigned row) = 0;

    /**
     * Issue an RFM to @p flat_bank (tRFM blackout). The caller (the
     * DRAM-side model) decides which rows get protected and reports them
     * via notifyRowProtected.
     */
    virtual void performRfm(unsigned flat_bank, double weight) = 0;

    /** PRAC alert back-off: rank-wide blackout of @p rfms RFM windows. */
    virtual void performAlertBackoff(unsigned rfms, double weight) = 0;

    /**
     * Auxiliary tracker work (e.g., Hydra's in-DRAM row-count-table
     * access): short bank blackout + observer notification, but no row
     * protection.
     */
    virtual void performTrackerAccess(unsigned flat_bank, Cycle duration,
                                      double weight) = 0;

    /** Report that @p row's victims were refreshed (oracle reset). */
    virtual void notifyRowProtected(unsigned flat_bank, unsigned row) = 0;

    /** REGA-style direct score credit, forwarded to the observer. */
    virtual void creditDirectScore(ThreadId thread, double amount) = 0;
};

/** A RowHammer mitigation mechanism. */
class IMitigation
{
  public:
    virtual ~IMitigation() = default;

    virtual const char *name() const = 0;

    /**
     * Commit one demand activation (the trigger algorithm). Called only
     * when the controller actually issues the ACT — never from a
     * scheduling probe.
     */
    virtual void commitAct(unsigned flat_bank, unsigned row,
                           ThreadId thread, Cycle now) = 0;

    /**
     * Called when a periodic REF retires on @p rank; @p sweep_start /
     * @p sweep_rows give the per-bank row range this REF refreshed
     * (mechanisms reset tracking state for refreshed rows).
     */
    virtual void
    onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                      unsigned sweep_rows, Cycle now)
    {
        (void)rank;
        (void)sweep_start;
        (void)sweep_rows;
        (void)now;
    }

    /**
     * Earliest cycle a demand ACT to (@p flat_bank, @p row) may issue,
     * as of @p now. BlockHammer delays blacklisted rows here; everything
     * else returns @p now.
     *
     * This is a pure query: it must not mutate any tracking state, so
     * the scheduler may probe any row, any number of times, in any
     * order, without changing what the mechanism later commits. State
     * that would have rolled by @p now (e.g., an elapsed epoch boundary)
     * must be *accounted for* in the answer, not applied.
     */
    virtual Cycle
    probeActReleaseCycle(unsigned flat_bank, unsigned row, ThreadId thread,
                         Cycle now) const
    {
        (void)flat_bank;
        (void)row;
        (void)thread;
        return now;
    }

    /**
     * Roll purely time-based state (epoch rollovers, per-epoch quota
     * resets) forward to @p now. The controller calls this once at the
     * top of every tick, before any scheduling decision; it must be
     * idempotent within a cycle and depend only on @p now, never on how
     * often it was called on the way there.
     */
    virtual void
    advanceTo(Cycle now)
    {
        (void)now;
    }

    /**
     * Next cycle > @p now at which advanceTo() will change state that
     * scheduling decisions depend on (e.g., BlockHammer's epoch boundary,
     * which clears every blacklist delay and restores throttled quotas),
     * or kNeverCycle. The skip-ahead loop includes this in its wake set
     * so it never jumps past a throttling decision.
     */
    virtual Cycle
    nextTimedEventCycle(Cycle now) const
    {
        (void)now;
        return kNeverCycle;
    }

    /**
     * Whether probeActReleaseCycle() can return a cycle past @p now. The
     * controller's indexed FR-FCFS scan only probes per-row release
     * cycles for mechanisms that actually delay ACTs; everything else
     * resolves a closed bank's candidate to its oldest request without
     * any probe.
     */
    virtual bool delaysActs() const { return false; }

    /**
     * Serialize the mechanism's complete mutable tracking state (the
     * snapshot dual of the probe/commit contract: everything commitAct /
     * advanceTo / onPeriodicRefresh can mutate, nothing derived from the
     * constructor arguments). A mechanism restored by loadState() into a
     * same-config instance must behave bit-identically to the original
     * from that point on — including hash-table iteration order where a
     * mechanism's decisions depend on it (see common/snapshot.h). The
     * default is for stateless mechanisms: nothing to save.
     */
    virtual void saveState(StateWriter &w) const { (void)w; }

    /** Restore saveState() output into a same-config instance. */
    virtual void loadState(StateReader &r) { (void)r; }

    /** Attach the host before simulation starts. */
    void setHost(IMitigationHost *h) { host = h; }

  protected:
    // bh-audit: skip(host) -- non-owning back-pointer installed by System
    IMitigationHost *host = nullptr;
};

} // namespace bh
