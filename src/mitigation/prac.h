/**
 * @file
 * PRAC: Per Row Activation Counting (JESD79-5c, April 2024).
 *
 * The DRAM chip maintains an exact activation counter per row, updated
 * during precharge (which lengthens the row cycle — see pracApplyTiming).
 * When a row's counter crosses the alert threshold, the chip asserts
 * alert_n; the controller then performs the Alert Back-Off (ABO) protocol,
 * issuing a predetermined number of RFM commands during which the chip
 * refreshes the offending row's victims and resets its counter.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** Apply PRAC's counter-update timing cost (longer precharge) to @p spec. */
void pracApplyTiming(DramSpec *spec);

/** PRAC mitigation (DRAM-side counters + controller ABO protocol). */
class Prac : public IMitigation
{
  public:
    /**
     * @param abo_rfms RFM commands per alert back-off (JEDEC: 4).
     */
    Prac(unsigned n_rh, const DramSpec &spec, unsigned abo_rfms = 4);

    const char *name() const override { return "PRAC"; }

    void commitAct(unsigned flat_bank, unsigned row, ThreadId thread,
                    Cycle now) override;

    void onPeriodicRefresh(unsigned rank, unsigned sweep_start,
                           unsigned sweep_rows, Cycle now) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    unsigned alertThreshold() const { return alertTh; }
    std::uint64_t alerts() const { return alerts_; }

  private:
    unsigned alertTh;  // bh-audit: skip(alertTh) -- constructor config, keyed by ExperimentConfig
    unsigned aboRfms;  // bh-audit: skip(aboRfms) -- constructor config, keyed by ExperimentConfig
    std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> rowCounts;
    unsigned banksPerRank;  // bh-audit: skip(banksPerRank) -- constructor config, keyed by ExperimentConfig
    unsigned rowsPerBank;   // bh-audit: skip(rowsPerBank) -- constructor config, keyed by ExperimentConfig
    std::uint64_t alerts_ = 0;
};

} // namespace bh
