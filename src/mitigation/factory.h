/**
 * @file
 * Construction and configuration of RowHammer mitigation mechanisms.
 *
 * Central place where each mechanism is instantiated for a given RowHammer
 * threshold (N_RH) following the scaling rules documented per mechanism,
 * and where device-timing side effects (REGA's stretched tRAS, PRAC's
 * longer precharge) are applied to the DRAM spec before the system is
 * built.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dram/spec.h"
#include "mitigation/mitigation.h"

namespace bh {

/** The mechanisms the paper evaluates, plus the no-defense baseline. */
enum class MitigationType
{
    kNone,
    kPara,
    kGraphene,
    kHydra,
    kTwice,
    kAqua,
    kRega,
    kRfm,
    kPrac,
    kBlockHammer,
};

/** Display name matching the paper's figures. */
const char *mitigationName(MitigationType type);

/** The eight mechanisms BreakHammer is paired with (Figs 6-17). */
const std::vector<MitigationType> &pairedMitigations();

/**
 * Apply device-timing side effects of @p type at threshold @p n_rh to
 * @p spec (REGA and PRAC modify DRAM timing; others leave it unchanged).
 */
void applyTimingSideEffects(MitigationType type, unsigned n_rh,
                            DramSpec *spec);

/**
 * Instantiate a mechanism.
 * @param spec Device spec *after* applyTimingSideEffects.
 * @param num_threads Hardware thread count (REGA/BlockHammer attribution).
 * @return nullptr for MitigationType::kNone.
 */
std::unique_ptr<IMitigation> createMitigation(MitigationType type,
                                              unsigned n_rh,
                                              const DramSpec &spec,
                                              unsigned num_threads);

} // namespace bh
