"""bh_audit — static invariant audit over src/.

Four passes prove, at CI time, the structural halves of the repo's
dynamic guarantees:

  snapshot-coverage   every data member of a snapshottable class is
                      serialized in saveState() AND loadState()
  key-coverage        every ExperimentConfig field reaches the content
                      address and both wire-codec directions
  determinism         no wall clocks / global RNG / stray getenv /
                      hash-order-dependent output / pointer-keyed
                      ordering in simulation code
  probe-purity        probeActReleaseCycle overrides are const and
                      structurally side-effect free

Usage:
  python3 tools/bh_audit [--root DIR] [--json REPORT.json] [--quiet]
  python3 tools/bh_audit --selftest

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Suppressions: `// bh-audit: skip(<what>) -- <reason>` on or above the
flagged line (see each pass's module docstring for what `<what>` names).
An annotation without a reason is itself a finding.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from audit import PASSES, audit  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bh_audit",
        description="Static invariant audit over src/ "
                    "(see module docstring).")
    parser.add_argument(
        "--root",
        default=os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "..")),
        help="repo root containing src/ (default: two levels above "
             "this tool)")
    parser.add_argument("--json", metavar="PATH",
                        help="write a machine-readable report")
    parser.add_argument("--check", action="append",
                        choices=sorted(PASSES),
                        help="run only the named pass (repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture-based self test: each "
                             "pass must catch its injected violation "
                             "and stay silent on the clean fixture")
    args = parser.parse_args(argv)

    if args.selftest:
        import selftest
        return selftest.run(verbose=not args.quiet)

    report = audit(args.root, args.check)
    report.print_findings(sys.stderr)
    if args.json:
        report.dump(args.json)
    if not args.quiet:
        stats = " ".join(
            f"{name}[{' '.join(f'{k}={v}' for k, v in sorted(s.items()))}]"
            for name, s in sorted(report.pass_stats.items()))
        print(f"bh_audit: {len(report.findings)} finding(s), "
              f"{len(report.skips_used)} skip(s) honored — {stats}")
    return 0 if report.ok() else 1


if __name__ == "__main__":
    sys.exit(main())
