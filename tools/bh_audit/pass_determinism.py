"""Pass 3 — determinism lint.

Every headline property of the repo (byte-identical warm runs, kill/
resume equality, job-count and tick-mode invariance) assumes the
simulation and its serialized outputs are pure functions of the config.
This pass bans the constructs that silently break that:

- ``rand()`` / ``srand()`` / ``random()``: hidden global RNG state
  (the codebase threads explicit ``SplitMix64`` streams instead);
- ``time()`` / ``std::chrono::*_clock::now()``: wall-clock input;
- ``getenv()`` outside ``src/common/env.h``: environment reads must go
  through the env.h helpers so resolveExperimentConfig() can fold them
  into the content address (a stray getenv is exactly the store-aliasing
  bug class PR 3 documents);
- iteration over ``std::unordered_map`` / ``std::unordered_set`` inside
  any function that feeds an ordered output (a StateWriter, the JSON
  export, a wire frame): hash-table iteration order is
  implementation-defined, so bytes would differ across
  libraries/restarts. The snapshot codec's saveUnorderedMap() is the
  one sanctioned path — it records and reconstructs the order;
- ``std::map`` / ``std::set`` keyed by pointers: address-dependent
  ordering differs run to run.

Wall-clock use that is deliberately outside the deterministic core (the
sweep service's lease deadlines) is annotated in place::

    steadyNowMs(); // bh-audit: skip(clock) -- lease wall-clock, not sim

Rule names for skip(): rand, time, clock, getenv, unordered-iter,
pointer-key.
"""

from __future__ import annotations

import re
from pathlib import Path

from cxx import SourceTree, SourceFile
from report import Report

CHECK = "determinism"

ENV_HEADER = Path("src/common/env.h")

_BANNED = (
    ("rand", re.compile(r"\b(?:s?rand|random)\s*\(")),
    ("time", re.compile(r"\btime\s*\(")),
    ("clock", re.compile(r"\b\w*_clock\s*::\s*now\s*\(")),
)
_GETENV = re.compile(r"\bgetenv\s*\(")

# The lookbehind keeps vector<unordered_map<...>> from counting: only a
# declaration whose *outermost* type is the hash container makes its
# range-for order-sensitive (element maps go through saveUnorderedMap).
_UNORDERED_DECL = re.compile(
    r"(?<![<,])\bstd\s*::\s*unordered_(?:map|set)\s*<[^;{]*?>\s*&?\s*"
    r"([A-Za-z_]\w*)\s*[;={(,)]")
_RANGE_FOR = re.compile(
    r"\bfor\s*\(\s*[^;:()]*?:\s*([A-Za-z_][\w.\->]*)\s*\)")
_POINTER_KEY = re.compile(
    r"std\s*::\s*(?:map|set)\s*<\s*[^,>]*\*")

# A function participates in an ordered-output path when its body or
# signature touches one of these.
_ORDERED_MARKERS = ("StateWriter", "JsonValue", "encodeFrame",
                    "appendFrame", "Frame")


def _flag(report: Report, tree: SourceTree, sf: SourceFile, rule: str,
          offset: int, symbol: str, message: str) -> None:
    line = sf.line_of(offset)
    skip = sf.skip_for(rule, line=line)
    rel = tree.rel(sf.path)
    if skip is not None:
        report.note_skip(CHECK, rel, skip.line, rule, skip.reason)
        return
    report.add(CHECK, rule, rel, line, symbol, message)


def _unordered_names(sf: SourceFile, paired: SourceFile | None) -> set:
    names = set()
    for source in (sf, paired):
        if source is None:
            continue
        for m in _UNORDERED_DECL.finditer(source.stripped):
            names.add(m.group(1))
    return names


def run(tree: SourceTree, report: Report) -> None:
    files_checked = 0
    for path in tree.paths():
        sf = tree.file(path)
        files_checked += 1
        rel_to_root = path.relative_to(tree.root)

        for rule, pattern in _BANNED:
            for m in pattern.finditer(sf.stripped):
                _flag(report, tree, sf, rule, m.start(),
                      m.group(0).rstrip("(").strip(),
                      "non-deterministic input in simulation code "
                      "(wall clock / global RNG); thread explicit "
                      "state instead")

        if rel_to_root != ENV_HEADER:
            for m in _GETENV.finditer(sf.stripped):
                _flag(report, tree, sf, "getenv", m.start(), "getenv",
                      "environment reads must go through "
                      "common/env.h so the content address can fold "
                      "them in")

        for m in _POINTER_KEY.finditer(sf.stripped):
            _flag(report, tree, sf, "pointer-key", m.start(),
                  m.group(0).replace(" ", ""),
                  "ordered container keyed by pointer: iteration "
                  "order is the allocator's, not the program's")

        # Unordered-container iteration inside ordered-output functions.
        paired = (tree.paired_header(path) if path.suffix == ".cc"
                  else None)
        unordered = _unordered_names(sf, paired)
        if not unordered:
            continue
        for fn in sf.all_function_bodies():
            haystack = fn.decl_text + fn.body_text
            if not any(marker in haystack
                       for marker in _ORDERED_MARKERS):
                continue
            for m in _RANGE_FOR.finditer(fn.body_text):
                base = re.split(r"[.\-]", m.group(1))[0]
                if base not in unordered:
                    continue
                _flag(report, tree, sf, "unordered-iter",
                      fn.start + 1 + m.start(),
                      f"{fn.name}(): for(... : {m.group(1)})",
                      "iterating a hash container on an "
                      "ordered-output path; order is "
                      "implementation-defined — use "
                      "saveUnorderedMap() or sort first")
            for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*begin\s*\(",
                                 fn.body_text):
                if m.group(1) not in unordered:
                    continue
                _flag(report, tree, sf, "unordered-iter",
                      fn.start + 1 + m.start(),
                      f"{fn.name}(): {m.group(1)}.begin()",
                      "iterating a hash container on an "
                      "ordered-output path; order is "
                      "implementation-defined — use "
                      "saveUnorderedMap() or sort first")
    report.note_stats(CHECK, files=files_checked)
