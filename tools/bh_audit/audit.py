"""Pass registry and the audit driver, shared by the CLI and selftest."""

from __future__ import annotations

from cxx import SourceTree
from report import Report
import pass_snapshot
import pass_keycov
import pass_determinism
import pass_probe

PASSES = {
    "snapshot-coverage": pass_snapshot.run,
    "key-coverage": pass_keycov.run,
    "determinism": pass_determinism.run,
    "probe-purity": pass_probe.run,
}


def audit(root: str, checks: list[str] | None = None) -> Report:
    tree = SourceTree(root)
    report = Report()
    if not tree.src.is_dir():
        report.add("audit", "bad-root", str(tree.src), 1, "src",
                   "audit root has no src/ directory")
        return report
    for name in (checks or PASSES):
        PASSES[name](tree, report)
    check_annotations(tree, report)
    return report


def check_annotations(tree: SourceTree, report: Report) -> None:
    """Malformed skip annotations are findings: the escape hatch
    requires a named target and a non-empty reason."""
    for sf in tree.files():
        for s in sf.skips:
            if s.malformed:
                report.add(
                    "audit", "malformed-skip", tree.rel(sf.path),
                    s.line, s.what or "<unnamed>",
                    "bh-audit skip annotation must be "
                    "'// bh-audit: skip(<what>) -- <reason>' with a "
                    "non-empty reason")
