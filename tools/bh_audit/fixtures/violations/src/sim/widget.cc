#include "sim/widget.h"

#include <chrono>

namespace bh {

void
Widget::saveState(StateWriter &w) const
{
    w.u64(counter);
}

void
Widget::loadState(StateReader &r)
{
    counter = static_cast<unsigned>(r.u64());
}

std::uint64_t
tickMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace bh
