// Fixture: `stealthFactor` is injected — it reaches neither
// experimentKey()/resolveExperimentConfig() nor either protocol codec
// direction. The selftest requires the key-coverage pass to flag it
// three times (key, encode, decode).
#pragma once

#include <cstdint>

namespace bh {

struct ExperimentConfig {
    unsigned nRh = 1000;
    std::uint64_t seed = 1;
    unsigned stealthFactor = 0;
};

} // namespace bh
