// Fixture: `missed` is declared but never serialized (the classic
// added-a-field-forgot-the-snapshot bug); `tuned` carries a skip
// annotation with no reason, which must itself be reported and must
// NOT suppress the coverage finding.
#pragma once

namespace bh {

class Widget {
  public:
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    unsigned counter = 0;
    unsigned missed = 0;
    unsigned tuned = 0;  // bh-audit: skip(tuned)
};

} // namespace bh
