// Fixture: a StateWriter path that range-fors a hash container —
// byte output would depend on implementation-defined iteration order.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace bh {

class Exporter {
  public:
    void saveState(StateWriter &w) const
    {
        for (const auto &kv : table)
            w.u64(kv.second);
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> table;
};

} // namespace bh
