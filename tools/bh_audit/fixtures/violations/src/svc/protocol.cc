#include "sim/experiment.h"

namespace bh {

JsonValue
experimentConfigToJson(const ExperimentConfig &config)
{
    JsonValue j;
    j.set("nRh", config.nRh);
    j.set("seed", config.seed);
    return j;
}

ExperimentConfig
experimentConfigFromJson(const JsonValue &j)
{
    ExperimentConfig config;
    config.nRh = j.getUnsigned("nRh");
    config.seed = j.getU64("seed");
    return config;
}

} // namespace bh
