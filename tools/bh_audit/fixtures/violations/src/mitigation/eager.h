// Fixture: a probe override that is not const and counts its own
// invocations — N probes + commit would diverge from 1 probe + commit.
#pragma once

namespace bh {

class EagerMitigation {
  public:
    Cycle probeActReleaseCycle(unsigned bank, Cycle now) override
    {
        (void)bank;
        probes_++;
        return now;
    }

  private:
    Cycle releaseAt = 0;
    std::uint64_t probes_ = 0;
};

} // namespace bh
