// Fixture: minimal ExperimentConfig whose every field reaches the key
// and both codec directions. bh_audit --selftest pins the key-coverage
// pass to report nothing here.
#pragma once

#include <cstdint>

namespace bh {

struct ExperimentConfig {
    unsigned nRh = 1000;
    std::uint64_t seed = 1;
};

} // namespace bh
