// Fixture: fully covered snapshot class — every member is serialized
// or carries a reasoned skip. The selftest requires zero findings.
#pragma once

namespace bh {

class Widget {
  public:
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    unsigned counter = 0;
    unsigned capacity;  // bh-audit: skip(capacity) -- constructor config
};

} // namespace bh
