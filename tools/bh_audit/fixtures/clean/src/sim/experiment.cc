#include "sim/experiment.h"

#include <string>

namespace bh {

std::string
experimentKey(const ExperimentConfig &config)
{
    return "nrh=" + std::to_string(config.nRh) +
           "|seed=" + std::to_string(config.seed);
}

ExperimentConfig
resolveExperimentConfig(const ExperimentConfig &config)
{
    ExperimentConfig resolved = config;
    return resolved;
}

} // namespace bh
