#include "sim/widget.h"

namespace bh {

void
Widget::saveState(StateWriter &w) const
{
    w.u64(counter);
}

void
Widget::loadState(StateReader &r)
{
    counter = static_cast<unsigned>(r.u64());
}

} // namespace bh
