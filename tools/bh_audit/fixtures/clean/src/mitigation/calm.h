// Fixture: a probe override that honors the purity contract — const,
// no member writes, no non-const calls.
#pragma once

namespace bh {

class CalmMitigation {
  public:
    Cycle probeActReleaseCycle(unsigned bank, Cycle now) const override
    {
        (void)bank;
        return releaseAt > now ? releaseAt : now;
    }

    void onAct(Cycle now) { releaseAt = now + 1; }

  private:
    Cycle releaseAt = 0;
};

} // namespace bh
