"""Finding model, diagnostics printing, and the JSON report."""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict


@dataclass
class Finding:
    check: str      # pass id: snapshot-coverage, key-coverage, ...
    rule: str       # machine-readable rule slug within the pass
    file: str       # repo-relative path
    line: int
    symbol: str     # the member/field/function the finding is about
    message: str

    def format(self) -> str:
        return (f"{self.file}:{self.line}: [{self.check}/{self.rule}] "
                f"{self.symbol}: {self.message}")


class Report:
    def __init__(self):
        self.findings: list[Finding] = []
        self.skips_used: list[dict] = []
        self.pass_stats: dict[str, dict] = {}

    def add(self, check: str, rule: str, file: str, line: int,
            symbol: str, message: str) -> None:
        self.findings.append(
            Finding(check, rule, file, line, symbol, message))

    def note_skip(self, check: str, file: str, line: int, what: str,
                  reason: str) -> None:
        self.skips_used.append({"check": check, "file": file,
                                "line": line, "what": what,
                                "reason": reason})

    def note_stats(self, check: str, **stats) -> None:
        self.pass_stats.setdefault(check, {}).update(stats)

    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "findings": [asdict(f) for f in self.findings],
            "skips_used": self.skips_used,
            "pass_stats": self.pass_stats,
            "clean": self.ok(),
        }

    def dump(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")

    def print_findings(self, out) -> None:
        for f in sorted(self.findings,
                        key=lambda x: (x.file, x.line, x.rule)):
            print(f.format(), file=out)
