"""Lightweight structural model of the repo's C++ sources.

This is not a compiler front end: the audit passes need exactly three
structural facts — which data members a class declares, where a handful
of named function bodies are, and which tokens those bodies reference.
The codebase's house style (one class per header, clang-format layout,
no macros generating members) makes a line-oriented scanner reliable for
that, and `bh_audit --selftest` pins the scanner against fixture files
so a silent parsing regression fails CI rather than silently passing
everything.

Skip annotations
----------------
A finding can be suppressed only with an explicit, reasoned annotation::

    // bh-audit: skip(<what>) -- <reason>

`<what>` names the member / field / rule being excused and `<reason>`
must be non-empty; a malformed annotation (missing reason, unparsable
form) is itself reported as a finding. The annotation binds to its own
line and the next code line, so it can sit above a declaration or at the
end of one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

SKIP_RE = re.compile(
    r"//\s*bh-audit:\s*skip\(([^)]*)\)\s*(?:--\s*(.*\S))?\s*$")
SKIP_MENTION_RE = re.compile(r"//\s*bh-audit:")

# Class-scope statements that never declare an instance data member.
_NON_MEMBER_KEYWORDS = (
    "using", "typedef", "friend", "template", "static_assert", "static",
    "enum", "public", "private", "protected", "explicit", "virtual",
    "operator", "return",
)

_IDENT = r"[A-Za-z_]\w*"


@dataclass
class SkipAnnotation:
    what: str
    reason: str
    line: int  # 1-based line of the annotation comment
    malformed: bool = False


@dataclass
class Member:
    name: str
    line: int
    type_text: str
    is_static: bool = False
    is_mutable: bool = False


@dataclass
class Method:
    name: str
    line: int
    is_const: bool
    decl_text: str


@dataclass
class CxxClass:
    name: str
    file: Path
    line: int
    body_start: int  # offset of '{' in stripped text
    body_end: int    # offset of matching '}'
    members: list[Member] = field(default_factory=list)
    methods: list[Method] = field(default_factory=list)

    def member_names(self) -> list[str]:
        return [m.name for m in self.members]


@dataclass
class FunctionBody:
    name: str
    cls: str | None
    file: Path
    line: int
    decl_text: str   # everything from the name to the opening brace
    body_text: str   # stripped code between the braces
    start: int       # offset of '{' in the stripped file text
    end: int         # offset of matching '}'

    def is_const(self) -> bool:
        return re.search(r"\)\s*const\b", self.decl_text) is not None


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents, preserving
    every line break and column so offsets map 1:1 to the original."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def match_brace(text: str, open_pos: int) -> int:
    """Offset of the '}' matching the '{' at *open_pos* (-1 if none).
    *text* must already be comment/string-stripped."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


class SourceFile:
    """One parsed C++ source or header."""

    def __init__(self, path: Path, text: str | None = None):
        self.path = path
        self.text = text if text is not None else path.read_text()
        self.stripped = strip_comments_and_strings(self.text)
        self.lines = self.text.splitlines()
        self.skips: list[SkipAnnotation] = self._parse_skips()
        self._classes: list[CxxClass] | None = None

    # ---------------------------------------------------------- helpers

    def line_of(self, offset: int) -> int:
        return self.text.count("\n", 0, offset) + 1

    def _parse_skips(self) -> list[SkipAnnotation]:
        skips = []
        for lineno, line in enumerate(self.lines, start=1):
            if not SKIP_MENTION_RE.search(line):
                continue
            m = SKIP_RE.search(line)
            if m is None or not m.group(1).strip() or m.group(2) is None:
                what = m.group(1).strip() if m else ""
                skips.append(SkipAnnotation(what, "", lineno,
                                            malformed=True))
                continue
            skips.append(SkipAnnotation(m.group(1).strip(),
                                        m.group(2).strip(), lineno))
        return skips

    def skip_for(self, what: str, line: int | None = None,
                 line_range: tuple[int, int] | None = None) \
            -> SkipAnnotation | None:
        """A well-formed skip(what) bound to *line* (same or previous
        line) or anywhere within *line_range* (inclusive)."""
        for s in self.skips:
            if s.malformed or s.what != what:
                continue
            if line is not None and s.line in (line, line - 1):
                return s
            if line_range is not None and \
                    line_range[0] <= s.line <= line_range[1]:
                return s
        return None

    # ---------------------------------------------------------- classes

    def classes(self) -> list[CxxClass]:
        if self._classes is None:
            self._classes = self._parse_classes()
        return self._classes

    def _parse_classes(self) -> list[CxxClass]:
        found: list[CxxClass] = []
        for m in re.finditer(
                r"\b(class|struct)\s+(" + _IDENT + r")"
                r"(?:\s*final)?(?:\s*:\s*[^;{]*)?\s*\{",
                self.stripped):
            if re.search(r"enum\s+$", self.stripped[: m.start()]):
                continue
            open_pos = m.end() - 1
            close = match_brace(self.stripped, open_pos)
            if close < 0:
                continue
            cls = CxxClass(name=m.group(2), file=self.path,
                           line=self.line_of(m.start()),
                           body_start=open_pos, body_end=close)
            self._parse_class_body(cls)
            found.append(cls)
        return found

    def get_class(self, name: str) -> CxxClass | None:
        for c in self.classes():
            if c.name == name:
                return c
        return None

    def _parse_class_body(self, cls: CxxClass) -> None:
        """Walk the class body's top-level statements, collecting
        instance data members and method declarations."""
        body = self.stripped
        i = cls.body_start + 1
        stmt_start = i
        while i < cls.body_end:
            c = body[i]
            if c == "{":
                stmt = body[stmt_start:i]
                close = match_brace(body, i)
                if close < 0:
                    return
                if self._is_function_header(stmt):
                    self._record_method(cls, stmt, stmt_start)
                    i = close + 1
                    # Skip an optional trailing ';'
                    while i < cls.body_end and body[i] in " \t\n;":
                        i += 1
                    stmt_start = i
                    continue
                if re.match(r"\s*(class|struct|enum|union)\b", stmt):
                    # Nested type: not a member of the enclosing class
                    # (a declarator after the closing brace would be,
                    # but the codebase never uses that form).
                    i = close + 1
                    while i < cls.body_end and body[i] in " \t\n;":
                        i += 1
                    stmt_start = i
                    continue
                # Braced initializer of a member: keep scanning to ';'.
                i = close + 1
                continue
            if c == ";":
                self._classify_statement(cls, body[stmt_start:i],
                                         stmt_start)
                i += 1
                stmt_start = i
                continue
            if c == ":" and re.search(
                    r"\b(public|private|protected)\s*$",
                    body[stmt_start:i]):
                i += 1
                stmt_start = i
                continue
            i += 1

    @staticmethod
    def _top_level_paren(stmt: str) -> int:
        """Offset of the first '(' outside angle brackets (else -1)."""
        angle = 0
        for i, ch in enumerate(stmt):
            if ch == "<":
                angle += 1
            elif ch == ">":
                angle = max(0, angle - 1)
            elif ch == "(" and angle == 0:
                return i
        return -1

    @classmethod
    def _is_function_header(cls, stmt: str) -> bool:
        p = cls._top_level_paren(stmt)
        if p < 0:
            return False
        eq = stmt.find("=")
        return eq < 0 or p < eq

    def _record_method(self, cls: CxxClass, stmt: str,
                       stmt_start: int) -> None:
        p = self._top_level_paren(stmt)
        before = stmt[:p].strip()
        m = re.search(r"(" + _IDENT + r")\s*$", before)
        if m is None:
            return
        is_const = re.search(r"\)\s*(?:const)\b", stmt[p:]) is not None
        cls.methods.append(Method(m.group(1),
                                  self.line_of(stmt_start + p),
                                  is_const, stmt.strip()))

    def _classify_statement(self, cls: CxxClass, stmt: str,
                            stmt_start: int) -> None:
        text = stmt.strip()
        if not text:
            return
        # Drop access labels glued to the front of a statement.
        text = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                      text)
        if not text:
            return
        first = re.match(r"(" + _IDENT + r")", text)
        if first and first.group(1) in _NON_MEMBER_KEYWORDS:
            if first.group(1) == "static":
                return  # static members are not instance state
            if first.group(1) not in ("mutable",):
                return
        if self._is_function_header(text):
            self._record_method(cls, text, stmt_start)
            return
        is_mutable = text.startswith("mutable ")
        if is_mutable:
            text = text[len("mutable "):]
        # Split multi-declarator statements on top-level commas.
        for chunk in _split_top_level(text, ","):
            m = re.search(
                r"(" + _IDENT + r")\s*(?:\[[^\]]*\]\s*)?"
                r"(?:=[^;]*|\{[^;]*\})?$", chunk.strip())
            if m is None:
                continue
            name = m.group(1)
            if name in _NON_MEMBER_KEYWORDS or name == "nullptr":
                continue
            type_text = chunk[: m.start(1)].strip()
            if not type_text and chunk is not text:
                type_text = ""  # later declarators share the first type
            cls.members.append(Member(
                name=name,
                line=self.line_of(stmt_start + stmt.find(name)),
                type_text=type_text,
                is_mutable=is_mutable))

    # -------------------------------------------------------- functions

    def find_functions(self, name: str,
                       cls: str | None = None) -> list[FunctionBody]:
        """Every definition of *name* in this file (out-of-line
        `Class::name(...) {` and in-class `name(...) {` forms). When
        *cls* is given, out-of-line definitions must carry that
        qualifier and in-class ones must sit inside that class's body."""
        results = []
        pattern = re.compile(
            r"(?:(" + _IDENT + r")\s*::\s*)?\b" + re.escape(name) +
            r"\s*\(")
        for m in pattern.finditer(self.stripped):
            qualifier = m.group(1)
            close_paren = _match_paren(self.stripped, m.end() - 1)
            if close_paren < 0:
                continue
            after = self.stripped[close_paren + 1:close_paren + 120]
            bm = re.match(
                r"\s*(?:const)?\s*(?:noexcept)?\s*(?:override)?"
                r"\s*(?:final)?\s*\{", after)
            if bm is None:
                continue
            open_pos = close_paren + 1 + bm.end() - 1
            close = match_brace(self.stripped, open_pos)
            if close < 0:
                continue
            owner = qualifier
            if owner is None:
                for c in self.classes():
                    if c.body_start < m.start() < c.body_end:
                        owner = c.name
                        break
            if cls is not None and owner != cls:
                continue
            results.append(FunctionBody(
                name=name, cls=owner, file=self.path,
                line=self.line_of(m.start()),
                decl_text=self.stripped[m.start():open_pos],
                body_text=self.stripped[open_pos + 1:close],
                start=open_pos, end=close))
        return results

    def all_function_bodies(self) -> list[FunctionBody]:
        """Every function definition in the file, found by scanning for
        `(...) ... {` shapes. Used by the determinism pass to attribute
        a loop to its enclosing function."""
        results = []
        for m in re.finditer(r"\b(" + _IDENT + r")\s*\(", self.stripped):
            name = m.group(1)
            if name in ("if", "while", "for", "switch", "return",
                        "sizeof", "catch", "static_assert", "alignof",
                        "decltype", "defined"):
                continue
            close_paren = _match_paren(self.stripped, m.end() - 1)
            if close_paren < 0:
                continue
            after = self.stripped[close_paren + 1:close_paren + 120]
            bm = re.match(
                r"\s*(?:const)?\s*(?:noexcept)?\s*(?:override)?"
                r"\s*(?:final)?\s*(?:->\s*[\w:<>,\s&*]+?)?\s*\{", after)
            if bm is None:
                continue
            open_pos = close_paren + 1 + bm.end() - 1
            close = match_brace(self.stripped, open_pos)
            if close < 0:
                continue
            results.append(FunctionBody(
                name=name, cls=None, file=self.path,
                line=self.line_of(m.start()),
                decl_text=self.stripped[m.start():open_pos],
                body_text=self.stripped[open_pos + 1:close],
                start=open_pos, end=close))
        return results


def _match_paren(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _split_top_level(text: str, sep: str) -> list[str]:
    parts, depth_a, depth_p, depth_b, start = [], 0, 0, 0, 0
    for i, ch in enumerate(text):
        if ch == "<":
            depth_a += 1
        elif ch == ">":
            depth_a = max(0, depth_a - 1)
        elif ch == "(":
            depth_p += 1
        elif ch == ")":
            depth_p -= 1
        elif ch == "{":
            depth_b += 1
        elif ch == "}":
            depth_b -= 1
        elif ch == sep and depth_a == depth_p == depth_b == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def token_in(token: str, text: str) -> bool:
    return re.search(r"\b" + re.escape(token) + r"\b", text) is not None


class SourceTree:
    """All .h/.cc files under a root's src/ directory, parsed lazily."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.src = self.root / "src"
        self._files: dict[Path, SourceFile] = {}

    def paths(self) -> list[Path]:
        return sorted(p for p in self.src.rglob("*")
                      if p.suffix in (".h", ".cc"))

    def file(self, path: Path) -> SourceFile:
        path = Path(path)
        if path not in self._files:
            self._files[path] = SourceFile(path)
        return self._files[path]

    def files(self) -> list[SourceFile]:
        return [self.file(p) for p in self.paths()]

    def paired_source(self, header: Path) -> SourceFile | None:
        cc = header.with_suffix(".cc")
        return self.file(cc) if cc.exists() else None

    def paired_header(self, source: Path) -> SourceFile | None:
        h = source.with_suffix(".h")
        return self.file(h) if h.exists() else None

    def find_functions(self, name: str,
                       cls: str | None = None) -> list[FunctionBody]:
        out = []
        for f in self.files():
            out.extend(f.find_functions(name, cls))
        return out

    def rel(self, path: Path) -> str:
        try:
            return str(Path(path).relative_to(self.root))
        except ValueError:
            return str(path)
