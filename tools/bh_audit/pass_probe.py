"""Pass 4 — probe purity.

`IMitigation::probeActReleaseCycle()` is the scheduling query the
event-driven controller may issue any number of times, in any order:
N probes followed by one commit must equal one probe followed by one
commit (the PR 4 contract; test_mitigations checks it dynamically for
specific interleavings, this pass proves the structural half for all of
them). Every override must therefore:

- be declared ``const`` (and ``override``);
- never assign to / increment a data member of its class;
- never call a non-const member function of its class;
- never launder mutability through ``const_cast`` or ``mutable``
  members.

A member that is provably probe-safe to touch (none exist today) would
carry ``// bh-audit: skip(<member>) -- <reason>`` inside the function
body.
"""

from __future__ import annotations

import re

from cxx import SourceTree, SourceFile, FunctionBody, token_in
from report import Report

CHECK = "probe-purity"

FUNC = "probeActReleaseCycle"

_MUTATION = (
    r"(?:\+\+|--)\s*{m}\b",                      # ++m / --m
    r"\b{m}\s*(?:\+\+|--)",                      # m++ / m--
    r"\b{m}\s*(?:\[[^\]]*\]\s*)?"
    r"(?:=[^=]|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=)",  # m = / m +=
    r"\b{m}\s*\.\s*(?:clear|erase|insert|emplace|push_back|pop_back|"
    r"assign|resize|swap)\s*\(",                 # mutating container op
)


def run(tree: SourceTree, report: Report) -> None:
    overrides_checked = 0
    for path in tree.paths():
        if path.suffix != ".h":
            continue
        sf = tree.file(path)
        for cls in sf.classes():
            decl = _find_declaration(sf, cls)
            if decl is None:
                continue
            overrides_checked += 1
            rel = tree.rel(path)
            decl_text, decl_line = decl
            if not re.search(r"\)\s*const\b", decl_text):
                report.add(
                    CHECK, "non-const-probe", rel, decl_line,
                    f"{cls.name}::{FUNC}",
                    "probe override must be declared const — it is a "
                    "side-effect-free scheduling query the controller "
                    "may replay")
            bodies = sf.find_functions(FUNC, cls.name)
            cc = tree.paired_source(sf.path)
            if cc is not None:
                bodies.extend(cc.find_functions(FUNC, cls.name))
            for body in bodies:
                _check_body(tree, report, sf, cls, body)
    report.note_stats(CHECK, overrides=overrides_checked)


def _find_declaration(sf: SourceFile, cls) -> tuple[str, int] | None:
    """The probe declaration inside *cls*'s body (text, line), whether
    it is a pure declaration or an inline definition. Skips the
    interface's own defaulted definition in mitigation.h (the base
    default is the contract, not an override)."""
    body = sf.stripped[cls.body_start:cls.body_end]
    m = re.search(r"\b" + FUNC + r"\s*\(", body)
    if m is None:
        return None
    # Declaration text: from the name to the ';' or '{'.
    rest = body[m.start():]
    end = len(rest)
    for i, ch in enumerate(rest):
        if ch in ";{":
            end = i
            break
    is_base = "virtual" in body[max(0, m.start() - 120):m.start()] and \
        "override" not in rest[:end + 40]
    if is_base and cls.name.startswith("I"):
        return None
    return rest[:end], sf.line_of(cls.body_start + 1 + m.start())


def _check_body(tree: SourceTree, report: Report, header: SourceFile,
                cls, fn: FunctionBody) -> None:
    body_sf = tree.file(fn.file)
    rel = tree.rel(fn.file)
    body_range = (body_sf.line_of(fn.start), body_sf.line_of(fn.end))

    def flag(rule: str, offset_in_body: int, symbol: str,
             message: str) -> None:
        line = body_sf.line_of(fn.start + 1 + offset_in_body)
        skip = body_sf.skip_for(symbol, line=line,
                                line_range=body_range)
        if skip is not None:
            report.note_skip(CHECK, rel, skip.line, symbol,
                             skip.reason)
            return
        report.add(CHECK, rule, rel, line,
                   f"{cls.name}::{FUNC}: {symbol}", message)

    if "const_cast" in fn.body_text:
        flag("const-cast", fn.body_text.find("const_cast"),
             "const_cast",
             "probe launders away constness; mutation from a probe "
             "breaks probe/commit idempotence")

    for member in cls.members:
        for pattern in _MUTATION:
            m = re.search(pattern.format(m=re.escape(member.name)),
                          fn.body_text)
            if m is not None:
                flag("member-mutation", m.start(), member.name,
                     "probe mutates a data member; state that would "
                     "have rolled by `now` must be accounted for in "
                     "the answer, not applied")
                break
        if member.is_mutable and token_in(member.name, fn.body_text):
            flag("mutable-member-use", fn.body_text.find(member.name),
                 member.name,
                 "probe touches a mutable member — the const "
                 "qualifier no longer proves purity; justify with a "
                 "skip annotation or restructure")

    non_const = {meth.name for meth in cls.methods if not meth.is_const}
    for m in re.finditer(r"(?<![\w.>])([A-Za-z_]\w*)\s*\(",
                         fn.body_text):
        callee = m.group(1)
        if callee in non_const and callee != cls.name:
            flag("non-const-call", m.start(), f"{callee}()",
                 "probe calls a non-const member function of its own "
                 "class")
    for m in re.finditer(r"this\s*->\s*([A-Za-z_]\w*)\s*\(",
                         fn.body_text):
        callee = m.group(1)
        if callee in non_const:
            flag("non-const-call", m.start(), f"this->{callee}()",
                 "probe calls a non-const member function of its own "
                 "class")
