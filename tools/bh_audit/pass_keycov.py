"""Pass 2 — experiment-key and wire-protocol coverage.

ExperimentConfig is the identity of a simulation: every field that can
change a result must reach (a) the content address — experimentKey() or
the default-folding in resolveExperimentConfig() — and (b) both sides
of the sweep-service codec (experimentConfigToJson /
experimentConfigFromJson in src/svc/protocol.cc). A field missing from
(a) aliases distinct simulations onto one store record; a field missing
from (b) silently drops configuration on the wire, so a worker runs a
different experiment than the coordinator leased.

The pass parses the ExperimentConfig struct out of src/sim/experiment.h
and checks `config.<field>` / `resolved.<field>` token references in
the named function bodies. Struct-valued fields (mix, bh, sample) are
recursed into for the protocol codec: their leaf fields must appear as
`.<leaf>` references in both codec directions.

A field that deliberately stays out of the key carries::

    Type field; // bh-audit: skip(field) -- <why it cannot alias>
"""

from __future__ import annotations

import re
from pathlib import Path

from cxx import SourceTree, token_in
from report import Report

CHECK = "key-coverage"

CONFIG_HEADER = Path("src/sim/experiment.h")
KEY_SOURCE = Path("src/sim/experiment.cc")
PROTOCOL_SOURCE = Path("src/svc/protocol.cc")
CONFIG_STRUCT = "ExperimentConfig"

# Struct definitions worth recursing into live in these headers.
_STRUCT_HEADERS = (
    Path("src/sim/experiment.h"),
    Path("src/sim/mixes.h"),
    Path("src/sim/system.h"),
    Path("src/breakhammer/breakhammer.h"),
    Path("src/trace/attacker.h"),
    Path("src/trace/adaptive.h"),
)


def _field_ref(owner: str, field: str, text: str) -> bool:
    return re.search(r"\b" + re.escape(owner) + r"\s*\.\s*" +
                     re.escape(field) + r"\b", text) is not None


def _leaf_ref(field: str, text: str) -> bool:
    return re.search(r"\.\s*" + re.escape(field) + r"\b",
                     text) is not None


def run(tree: SourceTree, report: Report) -> None:
    header_path = tree.root / CONFIG_HEADER
    key_path = tree.root / KEY_SOURCE
    proto_path = tree.root / PROTOCOL_SOURCE
    for required in (header_path, key_path, proto_path):
        if not required.exists():
            report.add(CHECK, "missing-source", tree.rel(required), 1,
                       required.name,
                       "file required by the key-coverage pass is "
                       "missing")
            return

    header = tree.file(header_path)
    config = header.get_class(CONFIG_STRUCT)
    if config is None:
        report.add(CHECK, "missing-struct", tree.rel(header_path), 1,
                   CONFIG_STRUCT, "struct not found in header")
        return

    def bodies(sf, name):
        found = sf.find_functions(name)
        return "\n".join(b.body_text for b in found) if found else None

    key_cc = tree.file(key_path)
    proto_cc = tree.file(proto_path)
    key_text = bodies(key_cc, "experimentKey")
    resolve_text = bodies(key_cc, "resolveExperimentConfig")
    encode_text = bodies(proto_cc, "experimentConfigToJson")
    decode_text = bodies(proto_cc, "experimentConfigFromJson")
    for name, text, where in (
            ("experimentKey", key_text, KEY_SOURCE),
            ("resolveExperimentConfig", resolve_text, KEY_SOURCE),
            ("experimentConfigToJson", encode_text, PROTOCOL_SOURCE),
            ("experimentConfigFromJson", decode_text, PROTOCOL_SOURCE)):
        if text is None:
            report.add(CHECK, "missing-function", str(where), 1, name,
                       "function body required by the key-coverage "
                       "pass was not found")
            return

    rel = tree.rel(header_path)
    cls_range = (header.line_of(config.body_start),
                 header.line_of(config.body_end))
    struct_index = _index_structs(tree)

    fields_checked = 0
    for member in config.members:
        fields_checked += 1
        skip = header.skip_for(member.name, line=member.line,
                               line_range=cls_range)

        in_key = (_field_ref("config", member.name, key_text) or
                  _field_ref("resolved", member.name, resolve_text))
        if not in_key:
            if skip is not None:
                report.note_skip(CHECK, rel, skip.line, member.name,
                                 skip.reason)
            else:
                report.add(
                    CHECK, "field-not-in-key", rel, member.line,
                    f"{CONFIG_STRUCT}::{member.name}",
                    "field reaches neither experimentKey() nor "
                    "resolveExperimentConfig(); distinct configs "
                    "would alias one store record")

        for direction, text in (("encode", encode_text),
                                ("decode", decode_text)):
            if _field_ref("config", member.name, text):
                continue
            if skip is not None:
                report.note_skip(CHECK, rel, skip.line, member.name,
                                 skip.reason)
                continue
            report.add(
                CHECK, f"field-not-in-{direction}", rel, member.line,
                f"{CONFIG_STRUCT}::{member.name}",
                f"field is not referenced in the protocol "
                f"{direction} path "
                f"(experimentConfig{'To' if direction == 'encode' else 'From'}"
                f"Json); a leased config would drop it on the wire")

        # Recurse one structural level into struct-typed fields: their
        # leaves must cross the wire too.
        for leaf_owner, leaf in _leaves_of(member.type_text,
                                           struct_index):
            fields_checked += 1
            for direction, text in (("encode", encode_text),
                                    ("decode", decode_text)):
                if _leaf_ref(leaf.name, text):
                    continue
                leaf_sf = struct_index[leaf_owner][0]
                leaf_skip = leaf_sf.skip_for(leaf.name, line=leaf.line)
                if leaf_skip is not None:
                    report.note_skip(CHECK, tree.rel(leaf_sf.path),
                                     leaf_skip.line, leaf.name,
                                     leaf_skip.reason)
                    continue
                report.add(
                    CHECK, f"field-not-in-{direction}",
                    tree.rel(leaf_sf.path), leaf.line,
                    f"{leaf_owner}::{leaf.name}",
                    f"nested config field (via "
                    f"{CONFIG_STRUCT}::{member.name}) is not "
                    f"referenced in the protocol {direction} path")
    report.note_stats(CHECK, fields=fields_checked)


def _index_structs(tree: SourceTree) -> dict:
    """type name -> (SourceFile, CxxClass) for recursion candidates."""
    index = {}
    for rel in _STRUCT_HEADERS:
        path = tree.root / rel
        if not path.exists():
            continue
        sf = tree.file(path)
        for cls in sf.classes():
            index.setdefault(cls.name, (sf, cls))
    return index


def _leaves_of(type_text: str, struct_index: dict,
               seen: frozenset = frozenset()) -> list:
    """(owner struct name, Member) leaves of a struct-typed field,
    recursively."""
    m = re.search(r"\b([A-Z]\w*)\s*$", type_text or "")
    if m is None or m.group(1) not in struct_index or \
            m.group(1) in seen:
        return []
    name = m.group(1)
    _, cls = struct_index[name]
    leaves = []
    for member in cls.members:
        nested = _leaves_of(member.type_text, struct_index,
                            seen | {name})
        if nested:
            leaves.extend(nested)
        else:
            leaves.append((name, member))
    return leaves
