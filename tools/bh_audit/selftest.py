"""Fixture-pinned self test.

Two miniature source trees under fixtures/ pin the scanner and every
pass:

- ``clean/``   exercises each pass on correct code (including a
  well-formed skip annotation) and must produce ZERO findings — this is
  what catches a scanner regression that silently stops parsing.
- ``violations/`` injects one instance of every violation class the
  tool exists to catch; each expected (check, rule, symbol) triple must
  appear, and nothing unexpected may.

Run via ``python3 tools/bh_audit --selftest`` (ctest: audit_selftest).
"""

from __future__ import annotations

import sys
from pathlib import Path

from audit import audit

FIXTURES = Path(__file__).resolve().parent / "fixtures"

# Every violation the fixtures inject, as (check, rule, symbol).
EXPECTED_VIOLATIONS = {
    ("snapshot-coverage", "member-not-serialized", "Widget::missed"),
    ("snapshot-coverage", "member-not-serialized", "Widget::tuned"),
    ("key-coverage", "field-not-in-key",
     "ExperimentConfig::stealthFactor"),
    ("key-coverage", "field-not-in-encode",
     "ExperimentConfig::stealthFactor"),
    ("key-coverage", "field-not-in-decode",
     "ExperimentConfig::stealthFactor"),
    ("determinism", "clock", "steady_clock::now"),
    ("determinism", "unordered-iter", "saveState(): for(... : table)"),
    ("probe-purity", "non-const-probe",
     "EagerMitigation::probeActReleaseCycle"),
    ("probe-purity", "member-mutation",
     "EagerMitigation::probeActReleaseCycle: probes_"),
    ("audit", "malformed-skip", "tuned"),
}

# The clean tree must actually engage each pass; a zero here means the
# scanner stopped seeing the fixture, not that the fixture is clean.
CLEAN_MIN_STATS = {
    "snapshot-coverage": {"classes": 1, "members": 2},
    "key-coverage": {"fields": 2},
    "determinism": {"files": 5},
    "probe-purity": {"overrides": 1},
}


def _fail(verbose: bool, lines: list[str], message: str) -> None:
    lines.append(f"selftest: FAIL: {message}")
    if verbose:
        print(lines[-1], file=sys.stderr)


def run(verbose: bool = True) -> int:
    failures: list[str] = []

    clean = audit(str(FIXTURES / "clean"))
    for f in clean.findings:
        _fail(verbose, failures,
              f"clean fixture produced a finding: {f.format()}")
    for check, minimums in CLEAN_MIN_STATS.items():
        stats = clean.pass_stats.get(check, {})
        for key, minimum in minimums.items():
            if stats.get(key, 0) < minimum:
                _fail(verbose, failures,
                      f"clean fixture: {check} reports {key}="
                      f"{stats.get(key, 0)}, expected >= {minimum} — "
                      f"the scanner is no longer seeing the fixture")
    if not clean.skips_used:
        _fail(verbose, failures,
              "clean fixture: the well-formed skip annotation was not "
              "honored")

    bad = audit(str(FIXTURES / "violations"))
    got = {(f.check, f.rule, f.symbol) for f in bad.findings}
    for triple in sorted(EXPECTED_VIOLATIONS - got):
        _fail(verbose, failures,
              f"violations fixture: injected violation not caught: "
              f"{'/'.join(triple)}")
    for triple in sorted(got - EXPECTED_VIOLATIONS):
        _fail(verbose, failures,
              f"violations fixture: unexpected finding: "
              f"{'/'.join(triple)}")

    if failures:
        if verbose:
            print(f"selftest: {len(failures)} failure(s)",
                  file=sys.stderr)
        return 1
    if verbose:
        print(f"selftest: OK — clean fixture silent, all "
              f"{len(EXPECTED_VIOLATIONS)} injected violations caught")
    return 0
