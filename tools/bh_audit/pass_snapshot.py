"""Pass 1 — snapshot coverage.

For every class that declares `saveState(StateWriter&)`, every instance
data member declared in its header must be referenced (by name) in both
the saveState() and loadState() bodies. This is what turns "added a
field, forgot the snapshot" from a silent resume-corruption bug into a
CI failure.

Members that are legitimately not part of the serialized state
(constructor-derived configuration, non-owning wiring pointers, state
saved through another component) carry an explicit annotation in the
header::

    Type member; // bh-audit: skip(member) -- constructor-derived config

The annotation must name the member and give a reason; it may sit on
the declaration line, the line above it, or anywhere inside the class
body (for members whose exemption is class-wide policy).
"""

from __future__ import annotations

from cxx import SourceTree, SourceFile, CxxClass, token_in
from report import Report

CHECK = "snapshot-coverage"


def _declares_save_state(sf: SourceFile, cls: CxxClass) -> bool:
    body = sf.stripped[cls.body_start:cls.body_end]
    return "saveState" in body and "StateWriter" in body


def _function_text(tree: SourceTree, sf: SourceFile, cls: CxxClass,
                   name: str) -> str | None:
    """Concatenated body text of every definition of cls::name, looking
    in the class's own header first, then the paired .cc."""
    bodies = sf.find_functions(name, cls.name)
    cc = tree.paired_source(sf.path)
    if cc is not None:
        bodies.extend(cc.find_functions(name, cls.name))
    if not bodies:
        return None
    return "\n".join(b.body_text for b in bodies)


def run(tree: SourceTree, report: Report) -> None:
    classes_checked = 0
    members_checked = 0
    for path in tree.paths():
        if path.suffix != ".h":
            continue
        sf = tree.file(path)
        for cls in sf.classes():
            if not _declares_save_state(sf, cls):
                continue
            save = _function_text(tree, sf, cls, "saveState")
            load = _function_text(tree, sf, cls, "loadState")
            if save is None or load is None:
                # Interface default / pure declaration with no body
                # anywhere we can see: nothing to check against.
                continue
            classes_checked += 1
            cls_range = (sf.line_of(cls.body_start),
                         sf.line_of(cls.body_end))
            rel = tree.rel(path)
            for member in cls.members:
                members_checked += 1
                missing = []
                if not token_in(member.name, save):
                    missing.append("saveState")
                if not token_in(member.name, load):
                    missing.append("loadState")
                if not missing:
                    continue
                skip = sf.skip_for(member.name, line=member.line,
                                   line_range=cls_range)
                if skip is not None:
                    report.note_skip(CHECK, rel, skip.line,
                                     member.name, skip.reason)
                    continue
                report.add(
                    CHECK, "member-not-serialized", rel, member.line,
                    f"{cls.name}::{member.name}",
                    f"data member is not referenced in "
                    f"{' or '.join(missing)}; serialize it or annotate "
                    f"the declaration with "
                    f"'// bh-audit: skip({member.name}) -- <reason>'")
    report.note_stats(CHECK, classes=classes_checked,
                      members=members_checked)
