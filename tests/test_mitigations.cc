/**
 * @file
 * Unit tests for src/mitigation: each trigger algorithm in isolation
 * against a recording host, plus the Misra-Gries and counting-Bloom-filter
 * building blocks.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "mitigation/aqua.h"
#include "mitigation/blockhammer.h"
#include "mitigation/factory.h"
#include "mitigation/graphene.h"
#include "mitigation/hydra.h"
#include "mitigation/misra_gries.h"
#include "mitigation/mitigation.h"
#include "mitigation/para.h"
#include "mitigation/prac.h"
#include "mitigation/rega.h"
#include "mitigation/rfm.h"
#include "mitigation/twice.h"

namespace bh {
namespace {

/** Records every host call a mechanism makes. */
class RecordingHost : public IMitigationHost
{
  public:
    void
    performVictimRefresh(unsigned bank, unsigned row, double w) override
    {
        ++vrrs;
        lastVrrBank = bank;
        lastVrrRow = row;
        weight += w;
        protectedRows[{bank, row}]++;
    }
    void
    performMigration(unsigned bank, unsigned row) override
    {
        ++migrations;
        protectedRows[{bank, row}]++;
    }
    void performRfm(unsigned, double w) override
    {
        ++rfms;
        weight += w;
    }
    void performAlertBackoff(unsigned n, double w) override
    {
        ++alerts;
        aboRfms += n;
        weight += w;
    }
    void performTrackerAccess(unsigned, Cycle, double w) override
    {
        ++trackerAccesses;
        weight += w;
    }
    void
    notifyRowProtected(unsigned bank, unsigned row) override
    {
        protectedRows[{bank, row}]++;
    }
    void creditDirectScore(ThreadId t, double amount) override
    {
        directScores[t] += amount;
    }

    unsigned vrrs = 0, migrations = 0, rfms = 0, alerts = 0;
    unsigned aboRfms = 0, trackerAccesses = 0;
    unsigned lastVrrBank = 0, lastVrrRow = 0;
    double weight = 0;
    std::map<std::pair<unsigned, unsigned>, unsigned> protectedRows;
    std::map<ThreadId, double> directScores;
};

TEST(MisraGriesTest, TracksFrequentElement)
{
    MisraGries mg(4);
    for (int i = 0; i < 100; ++i)
        mg.increment(7);
    EXPECT_EQ(mg.estimate(7), 100u);
}

TEST(MisraGriesTest, DecrementAllOnOverflow)
{
    MisraGries mg(2);
    mg.increment(1);
    mg.increment(2);
    // Table full: a third distinct element decrements everything.
    EXPECT_EQ(mg.increment(3), 0u);
    EXPECT_EQ(mg.estimate(1), 0u);
    EXPECT_EQ(mg.estimate(2), 0u);
    // Now slots are stale: the next insert is admitted.
    EXPECT_EQ(mg.increment(4), 1u);
}

TEST(MisraGriesTest, UndercountBounded)
{
    // Classic MG bound: estimate >= true_count - total/(capacity+1).
    const unsigned capacity = 8;
    MisraGries mg(capacity);
    const int heavy_count = 600;
    const int noise_count = 1000;
    unsigned x = 12345;
    for (int i = 0; i < heavy_count + noise_count; ++i) {
        if (i % ((heavy_count + noise_count) / heavy_count) == 0) {
            mg.increment(42);
        } else {
            x = x * 1664525u + 1013904223u;
            mg.increment(1000 + (x % 5000));
        }
    }
    double bound = static_cast<double>(heavy_count) -
                   static_cast<double>(heavy_count + noise_count) /
                       (capacity + 1);
    EXPECT_GE(static_cast<double>(mg.estimate(42)), bound - 1);
}

TEST(MisraGriesTest, ResetRowZeroesCounter)
{
    MisraGries mg(4);
    for (int i = 0; i < 10; ++i)
        mg.increment(3);
    mg.resetRow(3);
    EXPECT_EQ(mg.estimate(3), 0u);
    EXPECT_EQ(mg.increment(3), 1u);
}

TEST(MisraGriesTest, ClearDropsEverything)
{
    MisraGries mg(4);
    mg.increment(1);
    mg.clear();
    EXPECT_EQ(mg.estimate(1), 0u);
    EXPECT_EQ(mg.trackedRows(), 0u);
}

TEST(ParaTest, ProbabilityDerivation)
{
    // (1 - p)^N_RH <= 1e-15  =>  p ~ 34.5 / N_RH.
    double p1k = Para::deriveProbability(1000, 1e-15);
    EXPECT_NEAR(p1k, 34.5 / 1000.0, 0.002);
    double p64 = Para::deriveProbability(64, 1e-15);
    EXPECT_GT(p64, p1k);
    EXPECT_LE(Para::deriveProbability(1, 1e-15), 1.0);
}

TEST(ParaTest, TriggerRateMatchesProbability)
{
    RecordingHost host;
    Para para(1000);
    para.setHost(&host);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        para.commitAct(0, 5, 0, i);
    double rate = static_cast<double>(host.vrrs) / n;
    EXPECT_NEAR(rate, para.probability(), para.probability() * 0.1);
}

TEST(GrapheneTest, TriggersAtThreshold)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Graphene g(1024, spec);
    g.setHost(&host);
    for (unsigned i = 0; i < g.refreshThreshold() - 1; ++i)
        g.commitAct(0, 7, 0, i);
    EXPECT_EQ(host.vrrs, 0u);
    g.commitAct(0, 7, 0, 1000);
    EXPECT_EQ(host.vrrs, 1u);
    EXPECT_EQ(host.lastVrrRow, 7u);
    // Counter reset: the next threshold-1 activations do not trigger.
    for (unsigned i = 0; i < g.refreshThreshold() - 1; ++i)
        g.commitAct(0, 7, 0, 2000 + i);
    EXPECT_EQ(host.vrrs, 1u);
}

TEST(GrapheneTest, IndependentPerBank)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Graphene g(1024, spec);
    g.setHost(&host);
    for (unsigned i = 0; i < g.refreshThreshold(); ++i)
        g.commitAct(0, 7, 0, i);
    EXPECT_EQ(host.vrrs, 1u);
    for (unsigned i = 0; i + 1 < g.refreshThreshold(); ++i)
        g.commitAct(1, 7, 0, i);
    EXPECT_EQ(host.vrrs, 1u); // Bank 1's counter is separate.
}

TEST(GrapheneTest, CapacityScalesInverselyWithThreshold)
{
    DramSpec spec = DramSpec::ddr5();
    Graphene coarse(4096, spec), fine(64, spec);
    EXPECT_GT(fine.tableCapacity(), coarse.tableCapacity());
}

TEST(TwiceTest, TriggersAtThreshold)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Twice tw(1024, spec);
    tw.setHost(&host);
    for (unsigned i = 0; i < tw.triggerThreshold(); ++i)
        tw.commitAct(2, 9, 0, i);
    EXPECT_EQ(host.vrrs, 1u);
    EXPECT_EQ(host.lastVrrBank, 2u);
}

TEST(TwiceTest, PrunesColdEntries)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Twice tw(1024, spec);
    tw.setHost(&host);
    tw.commitAct(0, 5, 0, 0); // One lonely activation.
    EXPECT_EQ(tw.tableSize(0), 1u);
    // Many pruning periods with no further activity.
    for (int i = 0; i < 64; ++i)
        tw.onPeriodicRefresh(0, 0, 8, 1000 + i);
    EXPECT_EQ(tw.tableSize(0), 0u);
}

TEST(HydraTest, GroupEscalationThenRowTrigger)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Hydra hy(1024, spec);
    hy.setHost(&host);
    // Hammer one row: first fills the group counter, then the per-row
    // counter (initialized at the group count) rises to the row threshold.
    unsigned acts_needed = hy.rowThreshold();
    for (unsigned i = 0; i < acts_needed; ++i)
        hy.commitAct(0, 100, 0, i);
    EXPECT_EQ(host.vrrs, 1u);
    // Escalated tracking performed RCT accesses (RCC cold miss >= 1).
    EXPECT_GE(host.trackerAccesses, 1u);
    EXPECT_GE(hy.rccMisses(), 1u);
}

TEST(HydraTest, GroupCounterSharedAcrossRows)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Hydra hy(1024, spec);
    hy.setHost(&host);
    // Spread group-threshold activations over two rows of one group: the
    // group escalates, both rows' counters start at the group count.
    unsigned gt = hy.groupThreshold();
    for (unsigned i = 0; i < gt; ++i)
        hy.commitAct(0, i % 2, 0, i);
    // Now each row needs only (rowTh - groupTh) more activations.
    unsigned more = hy.rowThreshold() - gt;
    for (unsigned i = 0; i < more; ++i)
        hy.commitAct(0, 0, 0, 1000 + i);
    EXPECT_EQ(host.vrrs, 1u);
}

TEST(AquaTest, MigratesAtThreshold)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Aqua aq(1024, spec);
    aq.setHost(&host);
    for (unsigned i = 0; i < aq.migrationThreshold(); ++i)
        aq.commitAct(0, 11, 0, i);
    EXPECT_EQ(host.migrations, 1u);
    EXPECT_EQ(aq.migrations(), 1u);
}

TEST(RegaTest, TimingStretchGrowsAsNrhShrinks)
{
    DramSpec base = DramSpec::ddr5();
    DramSpec at1k = base, at64 = base;
    regaApplyTiming(&at1k, 1024);
    regaApplyTiming(&at64, 64);
    EXPECT_GT(at1k.timing.tRAS, base.timing.tRAS);
    EXPECT_GT(at64.timing.tRAS, at1k.timing.tRAS);
}

TEST(RegaTest, DirectScoreEveryRegaT)
{
    RecordingHost host;
    Rega rega(1024, 4);
    rega.setHost(&host);
    for (unsigned i = 0; i < rega.scorePeriod() * 3; ++i)
        rega.commitAct(0, 1, 2, i);
    EXPECT_DOUBLE_EQ(host.directScores[2], 3.0);
    EXPECT_EQ(host.directScores.count(0), 0u);
}

TEST(RfmTest, IssuesRfmEveryRaaimt)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Rfm rfm(1024, spec);
    rfm.setHost(&host);
    for (unsigned i = 0; i < rfm.raaimt() * 3; ++i)
        rfm.commitAct(0, i % 50, 0, i);
    EXPECT_EQ(host.rfms, 3u);
}

TEST(RfmTest, ServicesHotRowDuringRfm)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Rfm rfm(1024, spec);
    rfm.setHost(&host);
    // Hammer one row exclusively: after serviceThreshold activations the
    // next RFM must protect it.
    for (unsigned i = 0; i < rfm.serviceThreshold() + rfm.raaimt(); ++i)
        rfm.commitAct(0, 33, 0, i);
    EXPECT_GE((host.protectedRows[{0u, 33u}]), 1u);
}

TEST(PracTest, AlertAtThreshold)
{
    DramSpec spec = DramSpec::ddr5();
    RecordingHost host;
    Prac prac(1024, spec);
    prac.setHost(&host);
    for (unsigned i = 0; i + 1 < prac.alertThreshold(); ++i)
        prac.commitAct(0, 77, 0, i);
    EXPECT_EQ(host.alerts, 0u);
    prac.commitAct(0, 77, 0, 999);
    EXPECT_EQ(host.alerts, 1u);
    EXPECT_EQ(host.aboRfms, 4u);
    EXPECT_GE((host.protectedRows[{0u, 77u}]), 1u);
    EXPECT_EQ(prac.alerts(), 1u);
}

TEST(PracTest, TimingCostApplied)
{
    DramSpec base = DramSpec::ddr5();
    DramSpec prac_spec = base;
    pracApplyTiming(&prac_spec);
    EXPECT_GT(prac_spec.timing.tRP, base.timing.tRP);
}

TEST(CbfTest, NeverUndercounts)
{
    CountingBloomFilter cbf(256, 4);
    unsigned x = 777;
    std::map<std::uint64_t, unsigned> truth;
    for (int i = 0; i < 2000; ++i) {
        x = x * 1664525u + 1013904223u;
        std::uint64_t key = x % 100;
        cbf.increment(key);
        ++truth[key];
    }
    for (const auto &[key, count] : truth)
        EXPECT_GE(cbf.estimate(key), count);
}

TEST(BlockHammerTest, BlacklistsAndDelays)
{
    DramSpec spec = DramSpec::ddr5();
    BlockHammer bh(1024, spec, 4);
    Cycle now = 0;
    for (unsigned i = 0; i < bh.blacklistThreshold(); ++i)
        bh.commitAct(0, 5, 0, now++);
    // Row 5 is blacklisted: its next ACT is pushed out by tDelay.
    Cycle release = bh.probeActReleaseCycle(0, 5, 0, now);
    EXPECT_GE(release, now + bh.blacklistDelay() / 2);
    // Another row is unaffected.
    EXPECT_EQ(bh.probeActReleaseCycle(0, 6, 0, now), now);
    EXPECT_GT(bh.blacklistedActs(), 0u);
}

TEST(BlockHammerTest, ProbeIsIdempotentAcrossEpochBoundary)
{
    // The probe/commit contract: N probes followed by one commit must be
    // indistinguishable from one probe followed by one commit — probes
    // are pure queries and never roll the epoch, even when asked about
    // cycles past the boundary.
    DramSpec spec = DramSpec::ddr5();
    unsigned n_rh = 64;
    BlockHammer probed(n_rh, spec, 4);
    BlockHammer reference(n_rh, spec, 4);

    // Blacklist row 5 in both instances with an identical commit stream.
    Cycle now = 0;
    for (unsigned i = 0; i < probed.blacklistThreshold(); ++i) {
        probed.commitAct(0, 5, 0, now);
        reference.commitAct(0, 5, 0, now);
        ++now;
    }
    Cycle boundary = probed.nextTimedEventCycle(now);
    ASSERT_EQ(boundary, reference.nextTimedEventCycle(now));
    ASSERT_GT(boundary, now);

    // Hammer one instance with probes — repeated, out of row order, and
    // at cycles on both sides of the epoch boundary; leave the other one
    // alone. None of it may perturb state.
    for (Cycle c : {now, now + 1, boundary - 1, boundary, boundary + 7}) {
        for (int rep = 0; rep < 3; ++rep) {
            probed.probeActReleaseCycle(0, 5, 0, c);
            probed.probeActReleaseCycle(0, 6, 0, c);
            probed.probeActReleaseCycle(1, 5, 0, c);
        }
    }
    for (Cycle c : {now, boundary - 1, boundary + 7}) {
        EXPECT_EQ(probed.probeActReleaseCycle(0, 5, 0, c),
                  reference.probeActReleaseCycle(0, 5, 0, c));
    }
    // Before the boundary the blacklisted row is delayed; a probe at the
    // boundary reports it released (the roll clears the delay).
    EXPECT_GT(probed.probeActReleaseCycle(0, 5, 0, now), now);
    EXPECT_LE(probed.probeActReleaseCycle(0, 5, 0, boundary), boundary);

    // One commit after all that probing lands identically in both.
    Cycle after = boundary + 16;
    probed.advanceTo(after);
    reference.advanceTo(after);
    probed.commitAct(0, 5, 0, after);
    reference.commitAct(0, 5, 0, after);
    EXPECT_EQ(probed.blacklistedActs(), reference.blacklistedActs());
    EXPECT_EQ(probed.probeActReleaseCycle(0, 5, 0, after),
              reference.probeActReleaseCycle(0, 5, 0, after));
    EXPECT_EQ(probed.nextTimedEventCycle(after),
              reference.nextTimedEventCycle(after));
}

TEST(BlockHammerTest, DelayEnforcesSafeRate)
{
    DramSpec spec = DramSpec::ddr5();
    unsigned n_rh = 512;
    BlockHammer bh(n_rh, spec, 4);
    // Blacklist spacing must keep a row below N_RH per refresh window:
    // NBL + tREFW / tDelay <= N_RH.
    double acts_per_window =
        static_cast<double>(bh.blacklistThreshold()) +
        static_cast<double>(spec.timing.tREFW) /
            static_cast<double>(bh.blacklistDelay());
    EXPECT_LE(acts_per_window, static_cast<double>(n_rh) + 1);
}

TEST(FactoryTest, CreatesEveryMechanism)
{
    DramSpec spec = DramSpec::ddr5();
    for (MitigationType type : pairedMitigations()) {
        auto m = createMitigation(type, 1024, spec, 4);
        ASSERT_NE(m, nullptr) << mitigationName(type);
        EXPECT_STRNE(m->name(), "");
    }
    EXPECT_EQ(createMitigation(MitigationType::kNone, 1024, spec, 4),
              nullptr);
    auto bh = createMitigation(MitigationType::kBlockHammer, 1024, spec, 4);
    EXPECT_STREQ(bh->name(), "BlockHammer");
}

TEST(FactoryTest, TimingSideEffectsOnlyForRegaAndPrac)
{
    DramSpec base = DramSpec::ddr5();
    for (MitigationType type :
         {MitigationType::kPara, MitigationType::kGraphene,
          MitigationType::kHydra, MitigationType::kTwice,
          MitigationType::kAqua, MitigationType::kRfm,
          MitigationType::kBlockHammer}) {
        DramSpec spec = base;
        applyTimingSideEffects(type, 64, &spec);
        EXPECT_EQ(spec.timing.tRAS, base.timing.tRAS);
        EXPECT_EQ(spec.timing.tRP, base.timing.tRP);
    }
    DramSpec rega = base, prac = base;
    applyTimingSideEffects(MitigationType::kRega, 64, &rega);
    applyTimingSideEffects(MitigationType::kPrac, 64, &prac);
    EXPECT_GT(rega.timing.tRAS, base.timing.tRAS);
    EXPECT_GT(prac.timing.tRP, base.timing.tRP);
}

/** Threshold-scaling property: lower N_RH means more aggressive configs. */
class ThresholdScalingTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ThresholdScalingTest, ConfigsScaleWithNrh)
{
    unsigned n_rh = GetParam();
    DramSpec spec = DramSpec::ddr5();
    Graphene g(n_rh, spec);
    EXPECT_EQ(g.refreshThreshold(), std::max(1u, n_rh / 8));
    Twice tw(n_rh, spec);
    EXPECT_EQ(tw.triggerThreshold(), std::max(1u, n_rh / 4));
    Rfm rfm(n_rh, spec);
    EXPECT_LE(rfm.raaimt(), 128u);
    EXPECT_GE(rfm.raaimt(), 4u);
    Prac prac(n_rh, spec);
    EXPECT_EQ(prac.alertThreshold(), std::max(2u, n_rh / 4));
}

INSTANTIATE_TEST_SUITE_P(NrhSweep, ThresholdScalingTest,
                         ::testing::Values(64, 128, 256, 512, 1024, 2048,
                                           4096));

} // namespace
} // namespace bh
