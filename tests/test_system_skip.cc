/**
 * @file
 * Cycle-skip equivalence tests: System::run's event-driven skip-ahead
 * loop must be a pure reordering of when work is simulated, never of what
 * happens. The dense cycle-by-cycle reference loop is kept behind the
 * BH_DENSE_TICK=1 environment flag; for several mixes the ResultLog JSON
 * produced by both loops must be byte-identical, and the raw run results
 * (including the stall counters the skip loop accounts in batches) must
 * match field by field.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "stats/result_log.h"

namespace bh {
namespace {

constexpr std::uint64_t kInsts = 20000;

/** Scoped BH_DENSE_TICK toggle (System::run reads it per call). */
class DenseTickGuard
{
  public:
    explicit DenseTickGuard(bool dense)
    {
        if (dense)
            ::setenv("BH_DENSE_TICK", "1", 1);
        else
            ::unsetenv("BH_DENSE_TICK");
    }
    ~DenseTickGuard() { ::unsetenv("BH_DENSE_TICK"); }
};

ExperimentConfig
mixConfig(const char *pattern, MitigationType mech, unsigned n_rh,
          bool bh_on)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix(pattern, 0);
    cfg.mechanism = mech;
    cfg.nRh = n_rh;
    cfg.breakHammer = bh_on;
    cfg.instructions = kInsts;
    return cfg;
}

/** Five mixes spanning the interesting regimes: a benign mix under a
 *  maintenance-heavy mechanism, an attack mix with BreakHammer throttling
 *  (reject-blocked attacker, batched stall accounting), an attack mix
 *  whose mechanism issues rank-wide blackouts (PRAC alert back-off), and
 *  two ACT-delaying BlockHammer regimes — the same mixes the Graphene and
 *  PRAC rows use, one at moderate N_RH and one at low N_RH where the
 *  RowBlocker delays benign rows too, so epoch rollovers, blacklist
 *  delays, and AttackThrottler quota resets all fire inside the skip
 *  window. A sixth regime runs the adversarial engine: a red-team probe
 *  whose rotating adaptive attackers observe their own throttling —
 *  adaptation decisions are counted in emitted records, so the decision
 *  sequence (and thus every result byte) must survive the reordering. */
std::vector<ExperimentConfig>
skipGrid()
{
    ExperimentConfig redteam =
        mixConfig("MMAA", MitigationType::kPara, 512, true);
    redteam.redteam = "pat=double,obs=32,bub=64,grp=2,ho=256";
    return {
        mixConfig("HHMM", MitigationType::kHydra, 512, false),
        mixConfig("HHMA", MitigationType::kGraphene, 512, true),
        mixConfig("LLLA", MitigationType::kPrac, 256, true),
        mixConfig("HHMA", MitigationType::kBlockHammer, 512, false),
        mixConfig("LLLA", MitigationType::kBlockHammer, 128, false),
        redteam,
    };
}

std::string
runLogJson(const std::vector<ExperimentConfig> &grid, bool dense)
{
    DenseTickGuard guard(dense);
    ResultLog log;
    SchedulerOptions options;
    options.threads = 1;
    options.log = &log;
    ExperimentScheduler scheduler(options);
    scheduler.run(grid);
    return log.toJson().dump(2);
}

TEST(SystemSkipTest, ResultLogJsonByteIdenticalToDenseTick)
{
    std::vector<ExperimentConfig> grid = skipGrid();
    std::string event_json = runLogJson(grid, false);
    std::string dense_json = runLogJson(grid, true);
    EXPECT_EQ(event_json, dense_json);
}

TEST(SystemSkipTest, RawRunResultsMatchDenseTickFieldByField)
{
    for (const ExperimentConfig &cfg : skipGrid()) {
        ExperimentResult event_r, dense_r;
        {
            DenseTickGuard guard(false);
            event_r = runExperiment(cfg);
        }
        {
            DenseTickGuard guard(true);
            dense_r = runExperiment(cfg);
        }
        SCOPED_TRACE(cfg.mix.name + "/" + mitigationName(cfg.mechanism));
        EXPECT_EQ(event_r.raw.cycles, dense_r.raw.cycles);
        EXPECT_EQ(event_r.raw.demandActs, dense_r.raw.demandActs);
        EXPECT_EQ(event_r.raw.preventiveActions,
                  dense_r.raw.preventiveActions);
        EXPECT_EQ(event_r.raw.suspectMarks, dense_r.raw.suspectMarks);
        EXPECT_EQ(event_r.raw.quotaRejections, dense_r.raw.quotaRejections);
        EXPECT_EQ(event_r.raw.energyNj, dense_r.raw.energyNj);
        EXPECT_EQ(event_r.raw.demandActsPerThread,
                  dense_r.raw.demandActsPerThread);
        ASSERT_EQ(event_r.raw.cores.size(), dense_r.raw.cores.size());
        for (std::size_t i = 0; i < event_r.raw.cores.size(); ++i) {
            const CoreResult &a = event_r.raw.cores[i];
            const CoreResult &b = dense_r.raw.cores[i];
            EXPECT_EQ(a.retired, b.retired);
            EXPECT_EQ(a.finishCycle, b.finishCycle);
            // Skipped cycles account reject stalls in one batch; the
            // total must still match the per-cycle reference count.
            EXPECT_EQ(a.rejectStalls, b.rejectStalls);
            EXPECT_EQ(a.ipc, b.ipc);
        }
        EXPECT_TRUE(event_r.raw.benignReadLatencyNs ==
                    dense_r.raw.benignReadLatencyNs);
    }
}

TEST(SystemSkipTest, SkipLoopIsNotSlowerInCycleCount)
{
    // Sanity: both loops terminate at the same cycle even when a run hits
    // the cycle cap (the skip loop clamps its jumps to max_cycles).
    ExperimentConfig cfg =
        mixConfig("MMLL", MitigationType::kNone, 1024, false);
    cfg.instructions = 2000;

    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(cfg.mix.slots.size());
    System event_system(sys, cfg.mix.slots);
    RunResult event_r = event_system.run(cfg.instructions, 3000);

    DenseTickGuard guard(true);
    System dense_system(sys, cfg.mix.slots);
    RunResult dense_r = dense_system.run(cfg.instructions, 3000);

    EXPECT_EQ(event_r.cycles, dense_r.cycles);
    EXPECT_EQ(event_r.hitCycleCap, dense_r.hitCycleCap);
    for (std::size_t i = 0; i < event_r.cores.size(); ++i)
        EXPECT_EQ(event_r.cores[i].retired, dense_r.cores[i].retired);
}

TEST(SystemSkipTest, RollCadenceAndWindowWakeupShareOneGrid)
{
    // The dense loop calls rollWindows at isRollCycle() marks; the skip
    // loop wakes for a window boundary at nextRollCycleAtOrAfter(). Both
    // are defined on System::kRollPeriodMask; this test fails if either
    // helper is ever changed without the other: the wake-up must be
    // exactly the FIRST cycle at which the dense loop would roll.
    static_assert(((System::kRollPeriodMask + 1) &
                   System::kRollPeriodMask) == 0,
                  "roll cadence must be a power-of-two grid");

    auto first_roll_at_or_after = [](Cycle c) {
        // Reference definition straight from the dense-loop predicate.
        Cycle x = c;
        while (!System::isRollCycle(x))
            ++x;
        return x;
    };

    std::vector<Cycle> probes = {0, 1, 2, System::kRollPeriodMask,
                                 System::kRollPeriodMask + 1,
                                 System::kRollPeriodMask + 2,
                                 12345, 4096, 4097, 8191, 8192,
                                 (1ull << 32) - 1, 1ull << 32,
                                 (1ull << 32) + 1};
    for (Cycle boundary : probes) {
        EXPECT_EQ(System::nextRollCycleAtOrAfter(boundary),
                  first_roll_at_or_after(boundary))
            << "window boundary " << boundary;
    }
}

} // namespace
} // namespace bh
