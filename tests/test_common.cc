/**
 * @file
 * Unit tests for src/common: time conversion, RNG, environment helpers.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"
#include "common/rng.h"
#include "common/types.h"

namespace bh {
namespace {

TEST(TypesTest, NsToCyclesRoundsUp)
{
    // 1 ns at 4.2 GHz = 4.2 cycles -> 5.
    EXPECT_EQ(nsToCycles(1.0), 5u);
    EXPECT_EQ(nsToCycles(0.0), 0u);
    // 10 ns = 42.0 cycles exactly.
    EXPECT_EQ(nsToCycles(10.0), 42u);
}

TEST(TypesTest, CyclesToNsInverts)
{
    EXPECT_NEAR(cyclesToNs(42), 10.0, 1e-9);
    EXPECT_NEAR(cyclesToNs(nsToCycles(100.0)), 100.0, 0.25);
}

TEST(TypesTest, MsToCyclesMatchesNs)
{
    EXPECT_EQ(msToCycles(1.0), nsToCycles(1e6));
    // 64 ms at 4.2 GHz = 268.8M cycles.
    EXPECT_EQ(msToCycles(64.0), 268800000u);
}

TEST(TypesTest, ConversionIsMonotonic)
{
    Cycle prev = 0;
    for (double ns = 0.5; ns < 400.0; ns += 0.7) {
        Cycle c = nsToCycles(ns);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedRemapped)
{
    Rng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BoundedStaysInBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, BernoulliMatchesProbability)
{
    Rng rng(11);
    const double p = 0.3;
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.nextBool(p))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RngTest, UniformMeanIsHalf)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(EnvTest, ReturnsDefaultWhenUnset)
{
    unsetenv("BH_TEST_UNSET_VAR");
    EXPECT_EQ(envU64("BH_TEST_UNSET_VAR", 123), 123u);
    EXPECT_FALSE(envFlag("BH_TEST_UNSET_VAR"));
}

TEST(EnvTest, ParsesValue)
{
    setenv("BH_TEST_VAR", "4567", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 1), 4567u);
    setenv("BH_TEST_VAR", "1", 1);
    EXPECT_TRUE(envFlag("BH_TEST_VAR"));
    unsetenv("BH_TEST_VAR");
}

TEST(EnvTest, BadValueFallsBack)
{
    setenv("BH_TEST_VAR", "not_a_number", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 9), 9u);
    unsetenv("BH_TEST_VAR");
}

TEST(EnvTest, NegativeValueFallsBackInsteadOfWrapping)
{
    // strtoull would happily wrap "-5" to 2^64-5; the strict parser must
    // reject the sign and fall back to the default instead.
    setenv("BH_TEST_VAR", "-5", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 123), 123u);
    unsetenv("BH_TEST_VAR");
}

TEST(EnvTest, TrailingGarbageFallsBackInsteadOfTruncating)
{
    // strtoull would stop at the 'k' and read "20k" as 20; the strict
    // parser rejects the whole value.
    setenv("BH_TEST_VAR", "20k", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 7), 7u);
    setenv("BH_TEST_VAR", "1 ", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 7), 7u);
    unsetenv("BH_TEST_VAR");
}

TEST(EnvTest, ZeroStillParsesForFlagSemantics)
{
    // envFlag("X") is envU64("X", 0) != 0: an explicit "0" must parse as
    // the value zero, not fall back (parsePositiveU64 rejects zero; the
    // env parser must not).
    setenv("BH_TEST_VAR", "0", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 9), 0u);
    EXPECT_FALSE(envFlag("BH_TEST_VAR"));
    unsetenv("BH_TEST_VAR");
}

TEST(EnvTest, OverflowFallsBack)
{
    setenv("BH_TEST_VAR", "99999999999999999999999", 1);
    EXPECT_EQ(envU64("BH_TEST_VAR", 11), 11u);
    unsetenv("BH_TEST_VAR");
}

} // namespace
} // namespace bh
