/**
 * @file
 * Tests for the software-feedback monitor (§4 / §5.2): owner-level score
 * aggregation and the defense against thread-rotation circumvention.
 */
#include <gtest/gtest.h>

#include "breakhammer/feedback.h"
#include "cache/mshr.h"

namespace bh {
namespace {

struct Fixture
{
    Fixture() : mshr(64, 4), bh(4, config(), &mshr), monitor(&bh, 4) {}

    static BreakHammerConfig
    config()
    {
        BreakHammerConfig c;
        c.window = 10000;
        c.thThreat = 4.0;
        return c;
    }

    void
    act(ThreadId thread, Cycle now)
    {
        bh.onDemandActivate(thread, 0, now);
        bh.onPreventiveAction(1.0, now);
    }

    MshrFile mshr;
    BreakHammer bh;
    SoftwareMonitor monitor;
};

TEST(FeedbackTest, AccreditsScoreToBoundOwner)
{
    Fixture f;
    f.monitor.bind(0, 100);
    f.act(0, 1);
    f.act(0, 2);
    f.monitor.poll();
    EXPECT_NEAR(f.monitor.ownerScore(100), 2.0, 1e-12);
    EXPECT_NEAR(f.monitor.ownerScore(999), 0.0, 1e-12);
}

TEST(FeedbackTest, UnboundThreadsDropScore)
{
    Fixture f;
    f.act(1, 1);
    f.monitor.poll();
    EXPECT_TRUE(f.monitor.flaggedOwners(0.5).empty());
}

TEST(FeedbackTest, PollIsIncremental)
{
    Fixture f;
    f.monitor.bind(0, 7);
    f.act(0, 1);
    f.monitor.poll();
    f.monitor.poll(); // No new actions: no double counting.
    EXPECT_NEAR(f.monitor.ownerScore(7), 1.0, 1e-12);
    f.act(0, 2);
    f.monitor.poll();
    EXPECT_NEAR(f.monitor.ownerScore(7), 2.0, 1e-12);
}

TEST(FeedbackTest, OwnerSurvivesThreadRotation)
{
    // §5.2 circumvention: the attacker rotates across hardware threads;
    // per-thread scores stay small, but the owner total accumulates.
    Fixture f;
    for (ThreadId t = 0; t < 4; ++t)
        f.monitor.bind(t, 42);
    for (ThreadId t = 0; t < 4; ++t) {
        f.act(t, 10 + t);
        f.monitor.poll();
    }
    // No single thread reached the threat threshold...
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_LT(f.bh.score(t), f.bh.config().thThreat);
    // ...but the owner total did.
    EXPECT_NEAR(f.monitor.ownerScore(42), 4.0, 1e-12);
    auto flagged = f.monitor.flaggedOwners(4.0);
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], 42u);
}

TEST(FeedbackTest, WindowResetDoesNotErodeOwnerTotal)
{
    Fixture f;
    f.monitor.bind(0, 9);
    f.act(0, 1);
    f.monitor.poll();
    // Two window boundaries wipe the per-thread counters...
    f.bh.rollWindows(2 * Fixture::config().window + 1);
    EXPECT_NEAR(f.bh.score(0), 0.0, 1e-12);
    f.monitor.poll();
    // ...but the cumulative owner score persists.
    EXPECT_NEAR(f.monitor.ownerScore(9), 1.0, 1e-12);
    // And new activity keeps accumulating.
    f.act(0, 2 * Fixture::config().window + 10);
    f.monitor.poll();
    EXPECT_NEAR(f.monitor.ownerScore(9), 2.0, 1e-12);
}

TEST(FeedbackTest, RebindMovesAccreditation)
{
    Fixture f;
    f.monitor.bind(2, 5);
    f.act(2, 1);
    f.monitor.poll();
    f.monitor.bind(2, 6);
    f.act(2, 2);
    f.monitor.poll();
    EXPECT_NEAR(f.monitor.ownerScore(5), 1.0, 1e-12);
    EXPECT_NEAR(f.monitor.ownerScore(6), 1.0, 1e-12);
    EXPECT_EQ(f.monitor.ownerOf(2), 6u);
}

TEST(FeedbackTest, ForgetErasesOwner)
{
    Fixture f;
    f.monitor.bind(0, 3);
    f.act(0, 1);
    f.monitor.poll();
    f.monitor.forget(3);
    EXPECT_NEAR(f.monitor.ownerScore(3), 0.0, 1e-12);
}

} // namespace
} // namespace bh
