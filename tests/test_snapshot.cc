/**
 * @file
 * Snapshot/restore tests, per layer and end to end.
 *
 * Layer tests save one component mid-epoch, restore it into a freshly
 * constructed twin, and require field-level state equality — asserted as
 * byte equality of the two serialized states, which also pins the
 * unordered_map iteration-order reconstruction that MisraGries-based
 * mechanisms depend on — and then drive both instances through an
 * identical event stream and require identical behaviour.
 *
 * The end-to-end tests run a full System, checkpoint it mid-run, resume
 * the snapshot in a new System, and require the completed run to match an
 * uninterrupted reference run bit for bit (the CI kill-resume job checks
 * the same invariant across real processes and SIGKILL).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "breakhammer/breakhammer.h"
#include "cache/mshr.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "mitigation/factory.h"
#include "mitigation/misra_gries.h"
#include "sim/experiment.h"
#include "sim/mixes.h"
#include "sim/redteam.h"
#include "sim/system.h"
#include "trace/adaptive.h"

namespace bh {
namespace {

/** Serialized state of any component exposing saveState(). */
template <class T>
std::string
stateBlob(const T &component)
{
    StateWriter w;
    component.saveState(w);
    return w.take();
}

std::string
tempPath(const std::string &name)
{
    std::string dir =
        std::filesystem::temp_directory_path() / "bh_snapshot_tests";
    std::filesystem::create_directories(dir);
    return dir + "/" + name;
}

// ------------------------------------------------------- codec basics

TEST(SnapshotCodecTest, ScalarsRoundTrip)
{
    StateWriter w;
    w.u8(0xab);
    w.b(true);
    w.u32(0xdeadbeef);
    w.u64(0x123456789abcdef0ull);
    w.d(0.72237629069954734);
    // Embedded NUL must survive: construct with an explicit length so
    // the literal is not truncated at the NUL by const char* conversion.
    const std::string with_nul("hello\0world", 11);
    w.str(with_nul);
    w.tag("section");

    StateReader r(w.take());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x123456789abcdef0ull);
    EXPECT_EQ(r.d(), 0.72237629069954734);
    EXPECT_EQ(r.str(), with_nul);
    EXPECT_TRUE(r.tag("section"));
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapshotCodecTest, TruncationAndWrongTagFailSticky)
{
    StateWriter w;
    w.u64(7);
    std::string bytes = w.take();
    StateReader r(bytes.substr(0, 3)); // Truncated mid-integer.
    r.u64();
    EXPECT_FALSE(r.ok());
    r.u64(); // Still failed, never throws.
    EXPECT_FALSE(r.ok());

    StateWriter w2;
    w2.tag("alpha");
    StateReader r2(w2.take());
    EXPECT_FALSE(r2.tag("beta"));
    EXPECT_FALSE(r2.ok());
}

TEST(SnapshotCodecTest, CorruptLengthDoesNotAllocate)
{
    StateWriter w;
    w.u64(static_cast<std::uint64_t>(-1)); // Absurd element count.
    StateReader r(w.take());
    std::vector<std::uint64_t> v;
    EXPECT_FALSE(loadU64Vector(r, &v));
    EXPECT_FALSE(r.ok());
}

TEST(SnapshotCodecTest, UnorderedMapPreservesIterationOrder)
{
    // The property the MisraGries reclaim scan depends on: reloading a
    // map reproduces not just its contents but its exact iteration
    // order and bucket count.
    std::unordered_map<std::uint64_t, std::uint64_t> m;
    Rng rng(42);
    for (int i = 0; i < 1000; ++i)
        m[rng.next() % 1500] = i;
    for (int i = 0; i < 300; ++i)
        m.erase(rng.next() % 1500);

    StateWriter w;
    saveUnorderedMap(
        w, m, [](StateWriter &sw, std::uint64_t k) { sw.u64(k); },
        [](StateWriter &sw, std::uint64_t v) { sw.u64(v); });

    std::unordered_map<std::uint64_t, std::uint64_t> back;
    StateReader r(w.take());
    ASSERT_TRUE(loadUnorderedMap(
        r, &back, [](StateReader &sr, std::uint64_t *k) { *k = sr.u64(); },
        [](StateReader &sr, std::uint64_t *v) { *v = sr.u64(); }));

    EXPECT_EQ(back.bucket_count(), m.bucket_count());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> a(m.begin(),
                                                           m.end());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> b(back.begin(),
                                                           back.end());
    EXPECT_EQ(a, b); // Same sequence, not just the same set.
}

TEST(SnapshotCodecTest, MisraGriesReclaimMatchesAfterRestore)
{
    // Saturate a tiny summary so increments hit the reclaim path (which
    // erases the first stale entry in iteration order) and check the
    // restored twin makes identical reclaim decisions.
    MisraGries a(8);
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        a.increment(rng.next() % 32);

    MisraGries b(8);
    StateReader r(stateBlob(a));
    b.loadState(r);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(stateBlob(a), stateBlob(b));

    Rng drive(11);
    for (int i = 0; i < 500; ++i) {
        std::uint64_t row = drive.next() % 32;
        ASSERT_EQ(a.increment(row), b.increment(row)) << "step " << i;
    }
    EXPECT_EQ(stateBlob(a), stateBlob(b));
}

// ------------------------------------------- mitigation mechanisms

/** Recording host: collects every action a mechanism requests. */
class RecordingHost : public IMitigationHost
{
  public:
    void
    performVictimRefresh(unsigned bank, unsigned row, double w) override
    {
        log.push_back({1, bank, row, w});
    }
    void
    performMigration(unsigned bank, unsigned row) override
    {
        log.push_back({2, bank, row, 0.0});
    }
    void performRfm(unsigned bank, double w) override
    {
        log.push_back({3, bank, 0, w});
    }
    void performAlertBackoff(unsigned n, double w) override
    {
        log.push_back({4, n, 0, w});
    }
    void performTrackerAccess(unsigned bank, Cycle d, double w) override
    {
        log.push_back({5, bank, static_cast<unsigned>(d), w});
    }
    void notifyRowProtected(unsigned bank, unsigned row) override
    {
        log.push_back({6, bank, row, 0.0});
    }
    void creditDirectScore(ThreadId t, double amount) override
    {
        log.push_back({7, t, 0, amount});
    }

    struct Event
    {
        int kind;
        unsigned a, b;
        double w;
        bool
        operator==(const Event &o) const
        {
            return kind == o.kind && a == o.a && b == o.b && w == o.w;
        }
    };
    std::vector<Event> log;
};

/** Deterministic ACT/refresh stream shared by the twin instances. */
void
driveMechanism(IMitigation *m, const DramSpec &spec, std::uint64_t seed,
               Cycle start_cycle, int steps, Cycle *cycle_out)
{
    Rng rng(seed);
    Cycle cycle = start_cycle;
    unsigned total_banks = spec.org.totalBanks();
    for (int i = 0; i < steps; ++i) {
        cycle += 20 + rng.next() % 400;
        m->advanceTo(cycle);
        unsigned bank = static_cast<unsigned>(rng.next() % total_banks);
        // A small row set so per-row thresholds actually trigger.
        unsigned row = static_cast<unsigned>(rng.next() % 24);
        ThreadId thread = static_cast<ThreadId>(rng.next() % 4);
        m->commitAct(bank, row, thread, cycle);
        if (i % 97 == 96) {
            unsigned rank =
                static_cast<unsigned>(rng.next() % spec.org.ranks);
            unsigned sweep_start =
                static_cast<unsigned>(rng.next() % spec.org.rowsPerBank);
            m->onPeriodicRefresh(rank, sweep_start, 8, cycle);
        }
    }
    *cycle_out = cycle;
}

class MitigationSnapshotTest
    : public ::testing::TestWithParam<MitigationType>
{};

TEST_P(MitigationSnapshotTest, MidEpochRoundTripIsFieldExact)
{
    MitigationType type = GetParam();
    DramSpec spec = DramSpec::ddr5();
    applyTimingSideEffects(type, 512, &spec);

    RecordingHost host_a;
    auto a = createMitigation(type, 512, spec, 4);
    ASSERT_NE(a, nullptr);
    a->setHost(&host_a);

    // Phase 1 crosses at least one epoch/window boundary (the streams
    // jump by ~half a tREFW once) so rollover state is mid-flight too.
    Cycle cycle = 0;
    driveMechanism(a.get(), spec, 123, 0, 400, &cycle);
    driveMechanism(a.get(), spec, 321, cycle + spec.timing.tREFW / 2, 400,
                   &cycle);

    // Save mid-epoch, load into a fresh twin: field-level equality is
    // asserted on the serialized state (every field round-trips).
    std::string blob = stateBlob(*a);
    RecordingHost host_b;
    auto b = createMitigation(type, 512, spec, 4);
    b->setHost(&host_b);
    StateReader r(blob);
    b->loadState(r);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.atEnd());
    EXPECT_EQ(stateBlob(*b), blob);

    // Phase 2: identical further streams must produce identical actions
    // and identical final state.
    host_a.log.clear();
    Cycle cycle_b = cycle;
    Cycle end_a = 0, end_b = 0;
    driveMechanism(a.get(), spec, 777, cycle, 600, &end_a);
    driveMechanism(b.get(), spec, 777, cycle_b, 600, &end_b);
    EXPECT_EQ(end_a, end_b);
    EXPECT_EQ(host_a.log.size(), host_b.log.size());
    EXPECT_TRUE(host_a.log == host_b.log);
    EXPECT_EQ(stateBlob(*a), stateBlob(*b));
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MitigationSnapshotTest,
    ::testing::Values(MitigationType::kPara, MitigationType::kGraphene,
                      MitigationType::kHydra, MitigationType::kTwice,
                      MitigationType::kAqua, MitigationType::kRega,
                      MitigationType::kRfm, MitigationType::kPrac,
                      MitigationType::kBlockHammer),
    [](const ::testing::TestParamInfo<MitigationType> &info) {
        return std::string(mitigationName(info.param));
    });

// -------------------------------------------------------- BreakHammer

TEST(BreakHammerSnapshotTest, MidWindowRoundTripIsFieldExact)
{
    BreakHammerConfig config;
    config.window = 50000;
    config.thThreat = 4.0;

    MshrFile mshr_a(64, 4), mshr_b(64, 4);
    BreakHammer a(4, config, &mshr_a);
    BreakHammer b(4, config, &mshr_b);

    // Train mid-window: activations skewed to thread 3 so suspects and
    // quota reductions actually happen, crossing window boundaries.
    Rng rng(99);
    Cycle cycle = 0;
    for (int i = 0; i < 3000; ++i) {
        cycle += 10 + rng.next() % 120;
        ThreadId t = (rng.next() % 3) ? 3 : static_cast<ThreadId>(
                                                rng.next() % 4);
        a.onDemandActivate(t, static_cast<unsigned>(rng.next() % 16),
                           cycle);
        if (i % 11 == 10)
            a.onPreventiveAction(1.0, cycle);
    }
    ASSERT_GT(a.suspectMarks(), 0u); // The stream must exercise Alg 1.

    std::string blob = stateBlob(a);
    std::string mshr_blob = stateBlob(mshr_a);
    {
        StateReader r(blob);
        b.loadState(r);
        ASSERT_TRUE(r.ok());
    }
    {
        StateReader r(mshr_blob);
        mshr_b.loadState(r);
        ASSERT_TRUE(r.ok());
    }
    EXPECT_EQ(stateBlob(b), blob);
    EXPECT_EQ(stateBlob(mshr_b), mshr_blob);
    for (ThreadId t = 0; t < 4; ++t) {
        EXPECT_EQ(a.score(t), b.score(t));
        EXPECT_EQ(a.quota(t), b.quota(t));
        EXPECT_EQ(a.isSuspect(t), b.isSuspect(t));
        EXPECT_EQ(a.wasRecentSuspect(t), b.wasRecentSuspect(t));
    }

    // Identical continuations, including a window rollover.
    Rng drive(55);
    Cycle c2 = cycle;
    for (int i = 0; i < 2000; ++i) {
        c2 += 10 + drive.next() % 150;
        ThreadId t = static_cast<ThreadId>(drive.next() % 4);
        unsigned bank = static_cast<unsigned>(drive.next() % 16);
        a.onDemandActivate(t, bank, c2);
        b.onDemandActivate(t, bank, c2);
        if (i % 13 == 12) {
            a.onPreventiveAction(1.5, c2);
            b.onPreventiveAction(1.5, c2);
        }
    }
    EXPECT_EQ(stateBlob(a), stateBlob(b));
    EXPECT_EQ(stateBlob(mshr_a), stateBlob(mshr_b));
    EXPECT_EQ(a.suspectMarks(), b.suspectMarks());
}

// --------------------------------------------- adaptive attacker trace

/** Deterministic feedback script for driving mid-adaptation state. */
class AlternatingFeedback : public IThrottleFeedbackView
{
  public:
    ThrottleFeedback
    sampleThrottleFeedback(ThreadId) const override
    {
        ThrottleFeedback fb;
        fb.suspect = calls_++ % 2 == 0;
        fb.score = static_cast<double>(calls_) * 0.25;
        fb.quota = 3;
        fb.fullQuota = 16;
        return fb;
    }

  private:
    mutable std::uint64_t calls_ = 0;
};

TEST(AdaptiveTraceSnapshotTest, MidAdaptationRoundTripIsFieldExact)
{
    AddressMap mapper(DramSpec::ddr5().org);
    AttackerConfig attack;
    attack.pattern = AttackPattern::kHalfDouble;
    attack.rowBase = 96;
    AdaptiveConfig adaptive;
    adaptive.observeEvery = 16;
    adaptive.groupSize = 2;
    adaptive.slotIndex = 0;
    adaptive.handoffEpoch = 96;

    // Drive to an arbitrary point mid-epoch and mid-observation window,
    // with rotations, back-off, and feedback history all non-trivial.
    AlternatingFeedback feedback;
    AdaptiveAttackerTrace a(attack, adaptive, mapper, 13);
    a.bindFeedback(&feedback, 2);
    for (int i = 0; i < 16 * 7 + 5; ++i)
        a.next();
    ASSERT_GT(a.rotation(), 0u);
    ASSERT_GT(a.lastScore(), 0.0);

    // Restore into a fresh twin: serialized state must be byte-equal
    // (covers the RNG cursor and the observed-feedback history).
    std::string blob = stateBlob(a);
    AdaptiveAttackerTrace b(attack, adaptive, mapper, 13);
    {
        StateReader r(blob);
        b.loadState(r);
        ASSERT_TRUE(r.ok());
        ASSERT_TRUE(r.atEnd());
    }
    EXPECT_EQ(stateBlob(b), blob);
    EXPECT_EQ(b.rotation(), a.rotation());
    EXPECT_EQ(b.currentBubbles(), a.currentBubbles());
    EXPECT_EQ(b.lastScore(), a.lastScore());
    EXPECT_EQ(b.lastQuota(), a.lastQuota());
    EXPECT_EQ(b.currentAggressorRows(), a.currentAggressorRows());

    // And both continue bit-identically through further adaptation.
    AlternatingFeedback fa, fb2;
    // Re-bind fresh scripts at the same call offset: copy-construct the
    // original's position by replaying its observation count.
    for (std::uint64_t i = 0; i < a.observations(); ++i) {
        fa.sampleThrottleFeedback(0);
        fb2.sampleThrottleFeedback(0);
    }
    a.bindFeedback(&fa, 2);
    b.bindFeedback(&fb2, 2);
    for (int i = 0; i < 500; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.bubbles, rb.bubbles);
        EXPECT_EQ(ra.uncached, rb.uncached);
    }
    EXPECT_EQ(stateBlob(a), stateBlob(b));
}

// ------------------------------------------------------- full System

SystemConfig
systemConfigFor(const ExperimentConfig &cfg)
{
    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(cfg.mix.slots.size());
    sys.spec = DramSpec::ddr5();
    applyTimingSideEffects(cfg.mechanism, cfg.nRh, &sys.spec);
    sys.mitigation = cfg.mechanism;
    sys.nRh = cfg.nRh;
    sys.breakHammer = cfg.breakHammer;
    sys.bh = scaledBreakHammerConfig(cfg.instructions);
    sys.enableOracle = cfg.oracle;
    sys.seed = cfg.seed;
    if (cfg.channels)
        sys.spec.org.channels = cfg.channels;
    if (cfg.ranks)
        sys.spec.org.ranks = cfg.ranks;
    return sys;
}

void
expectRunResultsIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energyNj, b.energyNj);
    EXPECT_EQ(a.preventiveEnergyNj, b.preventiveEnergyNj);
    EXPECT_EQ(a.preventiveActions, b.preventiveActions);
    EXPECT_EQ(a.demandActs, b.demandActs);
    EXPECT_EQ(a.suspectMarks, b.suspectMarks);
    EXPECT_EQ(a.quotaRejections, b.quotaRejections);
    EXPECT_EQ(a.oracleViolations, b.oracleViolations);
    EXPECT_EQ(a.oracleMaxCount, b.oracleMaxCount);
    EXPECT_EQ(a.bhScores, b.bhScores);
    EXPECT_EQ(a.bhQuotas, b.bhQuotas);
    EXPECT_TRUE(a.benignReadLatencyNs == b.benignReadLatencyNs);
    EXPECT_EQ(a.hitCycleCap, b.hitCycleCap);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].name, b.cores[i].name);
        EXPECT_EQ(a.cores[i].retired, b.cores[i].retired);
        EXPECT_EQ(a.cores[i].finishCycle, b.cores[i].finishCycle);
        EXPECT_EQ(a.cores[i].ipc, b.cores[i].ipc);
        EXPECT_EQ(a.cores[i].rejectStalls, b.cores[i].rejectStalls);
    }
}

struct SystemRegime
{
    const char *name;
    const char *pattern;
    MitigationType mechanism;
    unsigned nRh;
    bool breakHammer;
    bool oracle;
    /** Red-team strategy applied to the mix's attacker slots (or null). */
    const char *redteam = nullptr;
};

class SystemSnapshotTest : public ::testing::TestWithParam<SystemRegime>
{};

TEST_P(SystemSnapshotTest, ResumedRunMatchesUninterruptedRun)
{
    const SystemRegime &regime = GetParam();
    ExperimentConfig cfg;
    cfg.mix = makeMix(regime.pattern, 0);
    cfg.mechanism = regime.mechanism;
    cfg.nRh = regime.nRh;
    cfg.breakHammer = regime.breakHammer;
    cfg.oracle = regime.oracle;
    cfg.instructions = 5000;
    if (regime.redteam != nullptr) {
        RedteamStrategy strategy;
        ASSERT_TRUE(parseRedteamStrategy(regime.redteam, &strategy));
        applyRedteamStrategy(strategy, &cfg.mix.slots);
    }
    SystemConfig sys = systemConfigFor(cfg);
    const std::uint64_t insts = cfg.instructions;
    const Cycle cap = insts * 150;

    // Reference: one uninterrupted run.
    RunResult reference;
    {
        System system(sys, cfg.mix.slots);
        reference = system.run(insts, cap);
    }

    // Checkpointed run: identical results (saving is observation-only),
    // and it leaves its last snapshot on disk.
    std::string snap = tempPath(std::string("sys_") + regime.name +
                                ".snap");
    std::remove(snap.c_str());
    {
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyInsts = 1500;
        system.setCheckpoint(ckpt);
        RunResult checkpointed = system.run(insts, cap);
        expectRunResultsIdentical(reference, checkpointed);
    }

    // "Kill": throw that run away; resume a fresh System from the last
    // snapshot and finish. Bit-identical to the uninterrupted run.
    {
        System system(sys, cfg.mix.slots);
        std::string error;
        ASSERT_TRUE(system.resumeFromSnapshot(snap, &error)) << error;
        RunResult resumed = system.run(insts, cap);
        expectRunResultsIdentical(reference, resumed);
    }
    std::remove(snap.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SystemSnapshotTest,
    ::testing::Values(
        SystemRegime{"graphene_bh_attack", "HHMA",
                     MitigationType::kGraphene, 512, true, false},
        SystemRegime{"hydra_benign", "HHMM", MitigationType::kHydra, 512,
                     false, false},
        SystemRegime{"prac_attack_oracle", "LLLA", MitigationType::kPrac,
                     256, true, true},
        SystemRegime{"blockhammer_lowthresh", "LLLA",
                     MitigationType::kBlockHammer, 128, false, false},
        SystemRegime{"para_rng", "MMLA", MitigationType::kPara, 1024,
                     true, false},
        SystemRegime{"redteam_adaptive_rotating", "MMAA",
                     MitigationType::kPara, 512, true, false,
                     "pat=half,obs=32,bub=64,grp=2,ho=512"}),
    [](const ::testing::TestParamInfo<SystemRegime> &info) {
        return info.param.name;
    });

TEST(SystemSnapshotTest, CycleCadenceAndMidRunKillAlsoResumeExactly)
{
    // Kill at an arbitrary mid-run cycle (not a checkpoint boundary):
    // the run is cut by a max_cycles cap, so the snapshot on disk is
    // from the last cycle-cadence checkpoint strictly before the cut.
    ExperimentConfig cfg;
    cfg.mix = makeMix("HHMA", 0);
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.instructions = 5000;
    SystemConfig sys = systemConfigFor(cfg);
    const Cycle cap = cfg.instructions * 150;

    RunResult reference;
    {
        System system(sys, cfg.mix.slots);
        reference = system.run(cfg.instructions, cap);
    }

    std::string snap = tempPath("sys_cycle_cadence.snap");
    std::remove(snap.c_str());
    {
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyCycles = 7001; // Deliberately off every natural grid.
        system.setCheckpoint(ckpt);
        (void)system.run(cfg.instructions, reference.cycles / 2);
    }
    {
        System system(sys, cfg.mix.slots);
        std::string error;
        ASSERT_TRUE(system.resumeFromSnapshot(snap, &error)) << error;
        RunResult resumed = system.run(cfg.instructions, cap);
        expectRunResultsIdentical(reference, resumed);
    }
    std::remove(snap.c_str());
}

TEST(SystemSnapshotTest, DenseAndEventLoopsAcceptEachOthersSnapshots)
{
    // A snapshot is loop-mode agnostic: state at a cycle boundary is
    // identical in both loops (test_system_skip's invariant), so a
    // snapshot taken by the event loop resumes under BH_DENSE_TICK and
    // vice versa.
    ExperimentConfig cfg;
    cfg.mix = makeMix("HHMA", 0);
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.instructions = 3000;
    SystemConfig sys = systemConfigFor(cfg);
    const Cycle cap = cfg.instructions * 150;

    RunResult reference;
    {
        System system(sys, cfg.mix.slots);
        reference = system.run(cfg.instructions, cap);
    }

    std::string snap = tempPath("sys_cross_mode.snap");
    std::remove(snap.c_str());
    {
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyInsts = 1000;
        system.setCheckpoint(ckpt);
        (void)system.run(cfg.instructions, cap);
    }
    {
        ::setenv("BH_DENSE_TICK", "1", 1);
        System system(sys, cfg.mix.slots);
        std::string error;
        ASSERT_TRUE(system.resumeFromSnapshot(snap, &error)) << error;
        RunResult resumed = system.run(cfg.instructions, cap);
        ::unsetenv("BH_DENSE_TICK");
        expectRunResultsIdentical(reference, resumed);
    }
    std::remove(snap.c_str());
}

TEST(SystemSnapshotTest, FourChannelKillResumeIsFieldExactPerChannel)
{
    // Multi-channel scale-out: kill a 4-channel Graphene+BreakHammer run
    // mid-BreakHammer-window, resume from the last snapshot, and require
    // not just identical results but a byte-identical serialized System —
    // the snapshot blob carries one section per channel (controller,
    // Graphene tables with per-rank flat-bank state, oracle, census) plus
    // the shared BreakHammer scores, so blob equality is field-exact
    // equality of every per-channel/per-rank structure.
    ExperimentConfig cfg;
    cfg.mix = makeMix("HHMA", 0);
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.instructions = 5000;
    cfg.channels = 4;
    cfg.ranks = 2;
    SystemConfig sys = systemConfigFor(cfg);
    const Cycle cap = cfg.instructions * 150;

    RunResult reference;
    std::string reference_state;
    {
        System system(sys, cfg.mix.slots);
        reference = system.run(cfg.instructions, cap);
        reference_state = system.snapshotBlob();
    }

    std::string snap = tempPath("sys_four_channel.snap");
    std::remove(snap.c_str());
    {
        // "Kill" mid-run: cut at half the reference cycle count, off any
        // checkpoint boundary, leaving the last mid-window snapshot.
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyInsts = 1500;
        system.setCheckpoint(ckpt);
        (void)system.run(cfg.instructions, reference.cycles / 2);
    }
    {
        System system(sys, cfg.mix.slots);
        std::string error;
        ASSERT_TRUE(system.resumeFromSnapshot(snap, &error)) << error;
        RunResult resumed = system.run(cfg.instructions, cap);
        expectRunResultsIdentical(reference, resumed);
        EXPECT_EQ(system.snapshotBlob(), reference_state);
    }
    std::remove(snap.c_str());
}

TEST(SystemSnapshotTest, StaleVersionSnapshotsAreRejected)
{
    // Regression for the v2 -> v3 format bump (per-channel sections): a
    // snapshot carrying an older version number must be rejected by the
    // version check itself — not by a downstream parse error — even when
    // its checksum is valid. Stale snapshots recompute, never mislead.
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLL", 0);
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.instructions = 2000;
    SystemConfig sys = systemConfigFor(cfg);

    std::string snap = tempPath("sys_stale_version.snap");
    std::remove(snap.c_str());
    {
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyInsts = 500;
        system.setCheckpoint(ckpt);
        (void)system.run(cfg.instructions, cfg.instructions * 150);
    }

    std::string blob;
    ASSERT_TRUE(readFile(snap, &blob));
    // The u32 format version sits right after the magic string (u64
    // length prefix + 8 magic bytes = offset 16). Patch it to the
    // previous version and re-seal the trailing checksum so the version
    // check is the only thing standing.
    std::string stale = blob;
    StateWriter version;
    version.u32(System::kSnapshotVersion - 1);
    ASSERT_EQ(version.data().size(), 4u);
    stale.replace(16, 4, version.data());
    std::uint64_t checksum = fnv1a64Chunked(stale.data(), stale.size() - 8);
    StateWriter tail;
    tail.u64(checksum);
    stale.replace(stale.size() - 8, 8, tail.data());
    ASSERT_TRUE(writeFileAtomic(snap, stale, nullptr));

    System system(sys, cfg.mix.slots);
    std::string error;
    EXPECT_FALSE(system.resumeFromSnapshot(snap, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    std::remove(snap.c_str());
}

TEST(SystemSnapshotTest, DamagedOrForeignSnapshotsAreRejected)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLL", 0);
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.instructions = 2000;
    SystemConfig sys = systemConfigFor(cfg);

    std::string snap = tempPath("sys_damage.snap");
    std::remove(snap.c_str());
    {
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyInsts = 500;
        system.setCheckpoint(ckpt);
        (void)system.run(cfg.instructions, cfg.instructions * 150);
    }

    // Bit flip in the middle: checksum rejects it.
    std::string blob;
    ASSERT_TRUE(readFile(snap, &blob));
    {
        std::string damaged = blob;
        damaged[damaged.size() / 2] ^= 0x40;
        ASSERT_TRUE(writeFileAtomic(snap, damaged, nullptr));
        System system(sys, cfg.mix.slots);
        std::string error;
        EXPECT_FALSE(system.resumeFromSnapshot(snap, &error));
        EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    }

    // Intact blob, wrong configuration: fingerprint rejects it.
    {
        ASSERT_TRUE(writeFileAtomic(snap, blob, nullptr));
        SystemConfig other = sys;
        other.nRh = 64;
        System system(other, cfg.mix.slots);
        EXPECT_FALSE(system.resumeFromSnapshot(snap, nullptr));
    }

    // Intact blob, wrong identity: the caller's schema guard rejects it.
    {
        System system(sys, cfg.mix.slots);
        System::CheckpointConfig ckpt;
        ckpt.path = snap;
        ckpt.everyInsts = 500;
        ckpt.identity = "some-other-experiment|store_schema=999";
        system.setCheckpoint(ckpt);
        std::string error;
        EXPECT_FALSE(system.resumeFromSnapshot(snap, &error));
        EXPECT_NE(error.find("identity"), std::string::npos) << error;
    }

    // Missing file: plain "no snapshot", not an error state.
    std::remove(snap.c_str());
    {
        System system(sys, cfg.mix.slots);
        EXPECT_FALSE(system.resumeFromSnapshot(snap, nullptr));
    }
}

TEST(SystemSnapshotTest, RunExperimentResumesAndCleansUpItsSnapshot)
{
    // The bench-level wiring: with a CheckpointSpec installed,
    // runExperiment() writes snapshots while running, resumes from one
    // when present, and removes it on completion.
    std::string dir = tempPath("exp_ckpt_dir");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    ExperimentConfig cfg;
    cfg.mix = makeMix("HHMA", 0);
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.instructions = 4000;

    ExperimentResult reference = runExperiment(cfg);

    CheckpointSpec spec;
    spec.dir = dir;
    spec.everyInsts = 1500;
    setCheckpointSpec(spec);
    ExperimentResult checkpointed = runExperiment(cfg);
    setCheckpointSpec(CheckpointSpec{});

    EXPECT_EQ(reference.weightedSpeedup, checkpointed.weightedSpeedup);
    EXPECT_EQ(reference.maxSlowdown, checkpointed.maxSlowdown);
    EXPECT_EQ(reference.energyNj, checkpointed.energyNj);
    expectRunResultsIdentical(reference.raw, checkpointed.raw);
    // Completed runs leave no snapshot behind.
    EXPECT_FALSE(std::filesystem::exists(
        snapshotPath(dir, cfg)));

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace bh
