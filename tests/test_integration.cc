/**
 * @file
 * Integration tests: full-system runs exercising the end-to-end behaviour
 * the paper's evaluation is built on — benign-only runs, attack runs,
 * BreakHammer's detection/throttling, and the mix/experiment helpers.
 */
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/mixes.h"
#include "sim/system.h"

namespace bh {
namespace {

constexpr std::uint64_t kInsts = 60000;
constexpr Cycle kCap = 40000000;

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.bh.window = 150000;
    cfg.bh.thThreat = 2.0;
    return cfg;
}

std::vector<WorkloadSlot>
benignSlots()
{
    std::vector<WorkloadSlot> slots(4);
    slots[0].appName = "mcf_like";
    slots[1].appName = "lbm_like";
    slots[2].appName = "parest_like";
    slots[3].appName = "namd_like";
    return slots;
}

std::vector<WorkloadSlot>
attackSlots()
{
    std::vector<WorkloadSlot> slots = benignSlots();
    slots[3] = WorkloadSlot{};
    slots[3].kind = WorkloadSlot::Kind::kAttacker;
    return slots;
}

TEST(SystemTest, BenignRunCompletes)
{
    System sys(baseConfig(), benignSlots());
    RunResult r = sys.run(kInsts, kCap);
    EXPECT_FALSE(r.hitCycleCap);
    ASSERT_EQ(r.cores.size(), 4u);
    for (const CoreResult &c : r.cores) {
        EXPECT_TRUE(c.benign);
        EXPECT_GE(c.retired, kInsts);
        EXPECT_GT(c.ipc, 0.0);
        EXPECT_LT(c.ipc, 4.0); // Cannot exceed issue width.
    }
    EXPECT_GT(r.demandActs, 0u);
    EXPECT_GT(r.energyNj, 0.0);
}

TEST(SystemTest, LowIntensityAppHasHigherIpc)
{
    System sys(baseConfig(), benignSlots());
    RunResult r = sys.run(kInsts, kCap);
    // namd_like (low intensity) must outpace mcf_like (high intensity).
    EXPECT_GT(r.cores[3].ipc, r.cores[0].ipc);
}

TEST(SystemTest, AttackDegradesBenignPerformance)
{
    System benign(baseConfig(), benignSlots());
    RunResult rb = benign.run(kInsts, kCap);

    SystemConfig cfg = baseConfig();
    cfg.mitigation = MitigationType::kPara;
    cfg.nRh = 512;
    System attacked(cfg, attackSlots());
    RunResult ra = attacked.run(kInsts, kCap);

    // The attacker + preventive actions slow down the benign cores.
    double benign_ipc_sum = 0, attacked_ipc_sum = 0;
    for (int i = 0; i < 3; ++i) {
        benign_ipc_sum += rb.cores[i].ipc;
        attacked_ipc_sum += ra.cores[i].ipc;
    }
    EXPECT_LT(attacked_ipc_sum, benign_ipc_sum);
    EXPECT_GT(ra.preventiveActions, 0u);
}

TEST(SystemTest, BreakHammerDetectsAndThrottlesAttacker)
{
    SystemConfig cfg = baseConfig();
    cfg.mitigation = MitigationType::kPara;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    System sys(cfg, attackSlots());
    RunResult r = sys.run(kInsts, kCap);

    EXPECT_GT(r.suspectMarks, 0u);
    EXPECT_GT(r.quotaRejections, 0u);
    // The attacker (slot 3) must be the suspect, not the benign apps.
    EXPECT_TRUE(sys.breakHammer()->isSuspect(3) ||
                sys.breakHammer()->wasRecentSuspect(3) ||
                sys.breakHammer()->quota(3) < 64);
}

TEST(SystemTest, BreakHammerImprovesBenignPerformanceUnderAttack)
{
    SystemConfig cfg = baseConfig();
    cfg.mitigation = MitigationType::kPara;
    cfg.nRh = 512;
    System base(cfg, attackSlots());
    RunResult rb = base.run(kInsts, kCap);

    cfg.breakHammer = true;
    System paired(cfg, attackSlots());
    RunResult rp = paired.run(kInsts, kCap);

    double base_sum = 0, paired_sum = 0;
    for (int i = 0; i < 3; ++i) {
        base_sum += rb.cores[i].ipc;
        paired_sum += rp.cores[i].ipc;
    }
    EXPECT_GT(paired_sum, base_sum * 1.02);
}

TEST(SystemTest, BreakHammerHarmlessWithoutAttacker)
{
    SystemConfig cfg = baseConfig();
    cfg.mitigation = MitigationType::kGraphene;
    cfg.nRh = 1024;
    System base(cfg, benignSlots());
    RunResult rb = base.run(kInsts, kCap);

    cfg.breakHammer = true;
    System paired(cfg, benignSlots());
    RunResult rp = paired.run(kInsts, kCap);

    double base_sum = 0, paired_sum = 0;
    for (int i = 0; i < 4; ++i) {
        base_sum += rb.cores[i].ipc;
        paired_sum += rp.cores[i].ipc;
    }
    // Within 5% of the unpaired baseline (paper: ~0.7% average change).
    EXPECT_NEAR(paired_sum, base_sum, base_sum * 0.05);
}

TEST(SystemTest, UncachedTrafficConsumesMshrs)
{
    SystemConfig cfg = baseConfig();
    System sys(cfg, attackSlots());
    RunResult r = sys.run(kInsts / 2, kCap);
    // The attacker's LLC-bypassing reads must reach DRAM in volume.
    EXPECT_GT(r.demandActs, 1000u);
}

TEST(SystemTest, LatencyHistogramPopulated)
{
    System sys(baseConfig(), benignSlots());
    RunResult r = sys.run(kInsts, kCap);
    EXPECT_GT(r.benignReadLatencyNs.count(), 100u);
    // Minimum DRAM latency is tens of ns; sanity-check the percentiles.
    EXPECT_GT(r.benignReadLatencyNs.percentile(50), 10.0);
    EXPECT_LT(r.benignReadLatencyNs.percentile(50), 2000.0);
}

TEST(SystemTest, CensusCollectsWindows)
{
    SystemConfig cfg = baseConfig();
    cfg.enableCensus = true;
    System sys(cfg, attackSlots());
    RunResult r = sys.run(kInsts / 2, kCap);
    ASSERT_FALSE(r.censusWindows.empty());
    std::uint64_t acts = 0;
    for (const auto &w : r.censusWindows)
        acts += w.totalActs;
    EXPECT_GT(acts, 0u);
}

TEST(SystemTest, EnergyGrowsWithPreventiveActions)
{
    SystemConfig cfg = baseConfig();
    cfg.mitigation = MitigationType::kPara;
    cfg.nRh = 128; // Aggressive PARA.
    System sys(cfg, attackSlots());
    RunResult r = sys.run(kInsts / 2, kCap);
    EXPECT_GT(r.preventiveEnergyNj, 0.0);
    EXPECT_LT(r.preventiveEnergyNj, r.energyNj);
}

TEST(MixTest, PatternsProduceCorrectSlots)
{
    MixSpec mix = makeMix("HHMA", 0);
    ASSERT_EQ(mix.slots.size(), 4u);
    EXPECT_EQ(mix.slots[3].kind, WorkloadSlot::Kind::kAttacker);
    EXPECT_EQ(findApp(mix.slots[0].appName).tier, IntensityTier::kHigh);
    EXPECT_EQ(findApp(mix.slots[2].appName).tier, IntensityTier::kMedium);
}

TEST(MixTest, SameTierSlotsGetDistinctApps)
{
    MixSpec mix = makeMix("HHHH", 0);
    EXPECT_NE(mix.slots[0].appName, mix.slots[1].appName);
    EXPECT_NE(mix.slots[1].appName, mix.slots[2].appName);
}

TEST(MixTest, IndicesRotateApps)
{
    MixSpec a = makeMix("HHLL", 0);
    MixSpec b = makeMix("HHLL", 1);
    EXPECT_NE(a.slots[0].appName, b.slots[0].appName);
}

TEST(MixTest, AllPatternsBuild)
{
    for (const std::string &p : benignMixPatterns())
        EXPECT_EQ(makeMix(p, 3).slots.size(), 4u);
    for (const std::string &p : attackMixPatterns()) {
        MixSpec mix = makeMix(p, 3);
        EXPECT_EQ(mix.slots.back().kind, WorkloadSlot::Kind::kAttacker);
        EXPECT_EQ(benignApps(mix).size(), 3u);
    }
}

TEST(ExperimentTest, SoloIpcIsCachedAndPositive)
{
    double a = soloIpc("namd_like", 30000);
    double b = soloIpc("namd_like", 30000);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.5); // Low-intensity app runs near full width.
}

TEST(ExperimentTest, RunExperimentProducesMetrics)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLA", 0);
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.instructions = 40000;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.weightedSpeedup, 0.0);
    EXPECT_LE(r.weightedSpeedup, 3.3);
    EXPECT_GE(r.maxSlowdown, 1.0 - 0.3);
}

} // namespace
} // namespace bh
