/**
 * @file
 * Unit tests for src/dram: spec presets, address mapping, timing engine,
 * energy accounting, row census.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/address.h"
#include "dram/row_census.h"
#include "dram/spec.h"
#include "dram/timing.h"

namespace bh {
namespace {

TEST(SpecTest, Ddr5OrganizationMatchesTable1)
{
    DramSpec spec = DramSpec::ddr5();
    EXPECT_EQ(spec.org.ranks, 2u);
    EXPECT_EQ(spec.org.bankGroups, 8u);
    EXPECT_EQ(spec.org.banksPerGroup, 2u);
    EXPECT_EQ(spec.org.totalBanks(), 32u);
    EXPECT_EQ(spec.org.rowsPerBank, 65536u);
    // 8 KiB rows = 128 cache lines.
    EXPECT_EQ(spec.org.linesPerRow, 128u);
    // 16 GiB channel.
    EXPECT_EQ(spec.org.capacityBytes(), 16ull << 30);
}

TEST(SpecTest, TimingConversionConsistent)
{
    DramSpec spec = DramSpec::ddr5();
    EXPECT_EQ(spec.timing.tRCD, nsToCycles(spec.timingNs.tRCD));
    EXPECT_EQ(spec.timing.tRC,
              nsToCycles(spec.timingNs.tRAS + spec.timingNs.tRP));
    EXPECT_EQ(spec.timing.readLatency,
              spec.timing.tCL + spec.timing.tBL);
    EXPECT_GT(spec.timing.tREFI, spec.timing.tRFC);
}

TEST(SpecTest, Ddr4Differs)
{
    DramSpec d5 = DramSpec::ddr5();
    DramSpec d4 = DramSpec::ddr4();
    EXPECT_EQ(d4.org.bankGroups, 4u);
    EXPECT_GT(d4.timing.tREFI, d5.timing.tREFI);
    EXPECT_GT(d4.timing.tREFW, d5.timing.tREFW);
}

TEST(SpecTest, RefreshTimingRecomputes)
{
    DramSpec spec = DramSpec::ddr5();
    Cycle before = spec.timing.tRAS;
    spec.timingNs.tRAS += 10.0;
    spec.refreshTiming();
    EXPECT_EQ(spec.timing.tRAS, before + nsToCycles(10.0));
}

class AddressRoundtripTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(AddressRoundtripTest, DecodeEncodeRoundtrip)
{
    AddressMap mapper(DramSpec::ddr5().org);
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.next() % mapper.capacityBytes();
        Addr line = addr & ~static_cast<Addr>(kCacheLineBytes - 1);
        DramAddress da = mapper.decode(addr);
        EXPECT_EQ(mapper.encode(da), line);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressRoundtripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(AddressTest, FieldsWithinBounds)
{
    DramOrg org = DramSpec::ddr5().org;
    AddressMap mapper(org);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        DramAddress da = mapper.decode(rng.next());
        EXPECT_LT(da.rank, org.ranks);
        EXPECT_LT(da.bankGroup, org.bankGroups);
        EXPECT_LT(da.bank, org.banksPerGroup);
        EXPECT_LT(da.row, org.rowsPerBank);
        EXPECT_LT(da.column, org.linesPerRow);
        EXPECT_LT(mapper.flatBank(da), org.totalBanks());
    }
}

TEST(AddressTest, MopKeepsGroupsTogether)
{
    AddressMap mapper(DramSpec::ddr5().org, 4);
    // Lines 0..3 share one (bank, row); line 4 moves to another bank.
    DramAddress first = mapper.decode(0);
    for (unsigned l = 1; l < 4; ++l) {
        DramAddress da = mapper.decode(l * kCacheLineBytes);
        EXPECT_EQ(mapper.flatBank(da), mapper.flatBank(first));
        EXPECT_EQ(da.row, first.row);
    }
    DramAddress next = mapper.decode(4 * kCacheLineBytes);
    EXPECT_NE(mapper.flatBank(next), mapper.flatBank(first));
}

/**
 * Property tests over every interleaving scheme x channel count: the
 * address map must be a bijection between physical line addresses and
 * (channel, rank, bank group, bank, row, column) tuples.
 */
class AddressSchemeTest
    : public ::testing::TestWithParam<std::tuple<Interleave, unsigned>>
{
  protected:
    Interleave scheme() const { return std::get<0>(GetParam()); }
    unsigned channels() const { return std::get<1>(GetParam()); }
};

TEST_P(AddressSchemeTest, DecodeEncodeRoundtripAndBounds)
{
    DramOrg org = DramSpec::ddr5().org;
    org.channels = channels();
    AddressMap mapper(org, 4, scheme());
    EXPECT_EQ(mapper.capacityBytes(),
              org.capacityBytes() * static_cast<Addr>(channels()));
    Rng rng(7 + channels());
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.next() % mapper.capacityBytes();
        Addr line = addr & ~static_cast<Addr>(kCacheLineBytes - 1);
        DramAddress da = mapper.decode(addr);
        EXPECT_LT(da.channel, channels());
        EXPECT_LT(da.rank, org.ranks);
        EXPECT_LT(da.bankGroup, org.bankGroups);
        EXPECT_LT(da.bank, org.banksPerGroup);
        EXPECT_LT(da.row, org.rowsPerBank);
        EXPECT_LT(da.column, org.linesPerRow);
        EXPECT_EQ(mapper.encode(da), line);
    }
}

TEST_P(AddressSchemeTest, EncodeIsABijectionOnASmallOrg)
{
    // Small enough to enumerate every coordinate tuple: distinct tuples
    // must encode to distinct line addresses (no collisions within any
    // channel/rank/bank/row), covering the capacity exactly, and decode
    // must invert every one of them.
    DramOrg org = DramSpec::ddr5().org;
    org.channels = channels();
    org.rowsPerBank = 8;
    org.linesPerRow = 4;
    AddressMap mapper(org, 4, scheme());

    std::uint64_t lines =
        mapper.capacityBytes() / static_cast<Addr>(kCacheLineBytes);
    std::vector<bool> seen(lines, false);
    for (unsigned ch = 0; ch < org.channels; ++ch)
        for (unsigned r = 0; r < org.ranks; ++r)
            for (unsigned bg = 0; bg < org.bankGroups; ++bg)
                for (unsigned b = 0; b < org.banksPerGroup; ++b)
                    for (unsigned row = 0; row < org.rowsPerBank; ++row)
                        for (unsigned col = 0; col < org.linesPerRow;
                             ++col) {
                            DramAddress da{r, bg, b, row, col};
                            da.channel = ch;
                            Addr addr = mapper.encode(da);
                            ASSERT_LT(addr, mapper.capacityBytes());
                            ASSERT_EQ(addr % kCacheLineBytes, 0u);
                            std::uint64_t idx = addr / kCacheLineBytes;
                            ASSERT_FALSE(seen[idx])
                                << "two tuples collide at " << addr;
                            seen[idx] = true;
                            EXPECT_TRUE(mapper.decode(addr) == da);
                        }
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(seen[i]) << "line " << i << " unreachable";
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AddressSchemeTest,
    ::testing::Combine(::testing::ValuesIn(kAllInterleaves),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto &info) {
        return std::string(interleaveName(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param)) + "ch";
    });

TEST(AddressTest, SingleChannelLayoutIsSchemeInvariant)
{
    // With one channel both schemes slice zero channel bits, so they
    // must reproduce the legacy layout bit-for-bit — the anchor for
    // default-configuration byte-identity.
    DramOrg org = DramSpec::ddr5().org;
    AddressMap mop(org, 4, Interleave::kMop);
    AddressMap row(org, 4, Interleave::kRow);
    Rng rng(1234);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.next() % mop.capacityBytes();
        EXPECT_TRUE(mop.decode(addr) == row.decode(addr));
    }
}

TEST(AddressTest, InterleaveNamesRoundTrip)
{
    for (Interleave il : kAllInterleaves) {
        Interleave parsed;
        ASSERT_TRUE(parseInterleave(interleaveName(il), &parsed));
        EXPECT_EQ(parsed, il);
    }
    Interleave parsed;
    EXPECT_FALSE(parseInterleave("diagonal", &parsed));
}

TEST(AddressTest, FlatBankCoversAllBanks)
{
    DramOrg org = DramSpec::ddr5().org;
    AddressMap mapper(org);
    std::vector<bool> seen(org.totalBanks(), false);
    for (unsigned r = 0; r < org.ranks; ++r)
        for (unsigned bg = 0; bg < org.bankGroups; ++bg)
            for (unsigned b = 0; b < org.banksPerGroup; ++b) {
                DramAddress da{r, bg, b, 0, 0};
                unsigned fb = mapper.flatBank(da);
                EXPECT_FALSE(seen[fb]);
                seen[fb] = true;
            }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

class TimingEngineTest : public ::testing::Test
{
  protected:
    TimingEngineTest() : spec(DramSpec::ddr5()), engine(spec) {}
    DramSpec spec;
    TimingEngine engine;
};

TEST_F(TimingEngineTest, ActThenReadRespectsTrcd)
{
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 0, 0));
    engine.issueAct(0, 100, 0);
    EXPECT_FALSE(engine.canIssue(DramCommand::kRead, 0,
                                 spec.timing.tRCD - 1));
    EXPECT_TRUE(engine.canIssue(DramCommand::kRead, 0, spec.timing.tRCD));
}

TEST_F(TimingEngineTest, ReadDataLatency)
{
    engine.issueAct(0, 1, 0);
    Cycle t = spec.timing.tRCD;
    Cycle ready = engine.issueRead(0, t);
    EXPECT_EQ(ready, t + spec.timing.tCL + spec.timing.tBL);
}

TEST_F(TimingEngineTest, SameBankActSpacingIsTrc)
{
    engine.issueAct(0, 1, 0);
    Cycle t = spec.timing.tRAS;
    ASSERT_TRUE(engine.canIssue(DramCommand::kPre, 0, t));
    engine.issuePre(0, t);
    // Next ACT gated by both tRC from the ACT and tRP from the PRE
    // (the two can differ by a rounding cycle after ns conversion).
    Cycle gate = std::max(spec.timing.tRC, t + spec.timing.tRP);
    EXPECT_FALSE(engine.canIssue(DramCommand::kAct, 0, gate - 1));
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 0, gate));
}

TEST_F(TimingEngineTest, RrdShortVsLong)
{
    // Bank 0 and bank 1 share a bank group (flat layout: rank-major).
    engine.issueAct(0, 1, 0);
    // Same bank group: tRRD_L applies.
    EXPECT_FALSE(engine.canIssue(DramCommand::kAct, 1,
                                 spec.timing.tRRD_L - 1));
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 1, spec.timing.tRRD_L));
    // Different bank group (bank index 2): tRRD_S applies.
    EXPECT_EQ(engine.bankGroupOf(2), 1u);
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 2, spec.timing.tRRD_S));
}

TEST_F(TimingEngineTest, FawBlocksFifthActivation)
{
    // Four ACTs to distinct bank groups, spaced by tRRD_S.
    Cycle t = 0;
    for (unsigned i = 0; i < 4; ++i) {
        unsigned bank = i * 2; // Different bank groups.
        EXPECT_TRUE(engine.canIssue(DramCommand::kAct, bank, t));
        engine.issueAct(bank, 7, t);
        t += spec.timing.tRRD_S;
    }
    // Fifth ACT in the same rank must wait for tFAW from the first.
    unsigned fifth = 8;
    EXPECT_FALSE(engine.canIssue(DramCommand::kAct, fifth, t));
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, fifth,
                                spec.timing.tFAW));
    // The other rank is unaffected.
    unsigned other_rank_bank = spec.org.banksPerRank();
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, other_rank_bank, t));
}

TEST_F(TimingEngineTest, WriteDelaysPrechargeByWriteRecovery)
{
    engine.issueAct(0, 1, 0);
    Cycle t = spec.timing.tRCD;
    engine.issueWrite(0, t);
    Cycle pre_ok =
        t + spec.timing.tCWL + spec.timing.tBL + spec.timing.tWR;
    EXPECT_FALSE(engine.canIssue(DramCommand::kPre, 0, pre_ok - 1));
    EXPECT_TRUE(engine.canIssue(DramCommand::kPre, 0, pre_ok));
}

TEST_F(TimingEngineTest, ReadWriteTurnaround)
{
    engine.issueAct(0, 1, 0);
    engine.issueAct(2, 1, spec.timing.tRRD_S);
    Cycle t = spec.timing.tRCD + spec.timing.tRRD_S;
    engine.issueRead(0, t);
    // A write on the shared bus must wait for the read turnaround.
    Cycle wr_ok = t + spec.timing.tCL + spec.timing.tBL + spec.timing.tRTW;
    EXPECT_FALSE(engine.canIssue(DramCommand::kWrite, 2, wr_ok - 1));
    EXPECT_TRUE(engine.canIssue(DramCommand::kWrite, 2, wr_ok));
}

TEST_F(TimingEngineTest, RefreshBlocksWholeRank)
{
    ASSERT_TRUE(engine.rankQuiesced(0, 0));
    engine.issueRefresh(0, 0);
    for (unsigned b = 0; b < spec.org.banksPerRank(); ++b) {
        EXPECT_FALSE(engine.canIssue(DramCommand::kAct, b,
                                     spec.timing.tRFC - 1));
        EXPECT_TRUE(engine.canIssue(DramCommand::kAct, b,
                                    spec.timing.tRFC));
    }
    // Other rank unaffected.
    EXPECT_TRUE(
        engine.canIssue(DramCommand::kAct, spec.org.banksPerRank(), 0));
}

TEST_F(TimingEngineTest, RefreshRequiresQuiescedRank)
{
    engine.issueAct(0, 1, 0);
    EXPECT_FALSE(engine.rankQuiesced(0, 0));
    engine.issuePre(0, spec.timing.tRAS);
    EXPECT_TRUE(engine.rankQuiesced(0, spec.timing.tRAS));
}

TEST_F(TimingEngineTest, BlockBankClosesRowAndBlocks)
{
    engine.issueAct(0, 5, 0);
    engine.blockBank(0, spec.timing.tRAS, 1000);
    EXPECT_FALSE(engine.bank(0).open);
    EXPECT_FALSE(engine.canIssue(DramCommand::kAct, 0,
                                 spec.timing.tRAS + 999));
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 0,
                                spec.timing.tRAS + 1000 + spec.timing.tRC));
}

TEST_F(TimingEngineTest, BlockRankBlocksAllBanks)
{
    engine.blockRank(1, 0, 500);
    unsigned base = spec.org.banksPerRank();
    for (unsigned i = 0; i < spec.org.banksPerRank(); ++i)
        EXPECT_FALSE(engine.canIssue(DramCommand::kAct, base + i, 499));
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 0, 0));
}

TEST_F(TimingEngineTest, RfmBlocksBankForTrfm)
{
    engine.issueRfm(3, 0);
    EXPECT_FALSE(engine.canIssue(DramCommand::kAct, 3,
                                 spec.timing.tRFM - 1));
    EXPECT_TRUE(engine.canIssue(DramCommand::kAct, 3, spec.timing.tRFM));
    EXPECT_EQ(engine.energy().rfms(), 1u);
}

TEST_F(TimingEngineTest, EnergyCountsCommands)
{
    engine.issueAct(0, 1, 0);
    Cycle t = spec.timing.tRCD;
    engine.issueRead(0, t);
    // Writes must respect the read-to-write bus turnaround.
    Cycle wr_at = t + spec.timing.tCL + spec.timing.tBL + spec.timing.tRTW;
    ASSERT_TRUE(engine.canIssue(DramCommand::kWrite, 0, wr_at));
    engine.issueWrite(0, wr_at);
    EXPECT_EQ(engine.energy().acts(), 1u);
    EXPECT_EQ(engine.energy().reads(), 1u);
    EXPECT_EQ(engine.energy().writes(), 1u);
    EXPECT_GT(engine.energy().dynamicNj(), 0.0);
}

TEST(EnergyTest, TotalsAddUp)
{
    DramEnergy params;
    EnergyAccounting e(params);
    e.addAct();
    e.addRead();
    e.addVictimRefresh(2);
    double expected =
        params.actPreNj + params.rdNj + 2 * params.vrrPerRowNj;
    EXPECT_NEAR(e.dynamicNj(), expected, 1e-9);
    EXPECT_NEAR(e.preventiveNj(), 2 * params.vrrPerRowNj, 1e-9);
    // Background: 2 ranks for 4.2M cycles = 1 ms -> 0.36 mJ at 180 mW/rank.
    double bg = e.backgroundNj(msToCycles(1.0), 2);
    EXPECT_NEAR(bg, 0.18 * 2 * 1e-3 * 1e9, 1e3);
    EXPECT_NEAR(e.totalNj(msToCycles(1.0), 2), expected + bg, 1e3);
}

TEST(RowCensusTest, CountsRowsOverThresholds)
{
    RowCensus census(1000);
    for (int i = 0; i < 600; ++i)
        census.recordAct(0, 7, 10); // 600 ACTs to one row, window 1.
    for (int i = 0; i < 70; ++i)
        census.recordAct(0, 9, 10);
    census.recordAct(0, 11, 2000); // Rolls into window 2.
    census.flush(3000);

    ASSERT_GE(census.windows().size(), 2u);
    const auto &w0 = census.windows()[0];
    EXPECT_EQ(w0.rows512, 1u);
    EXPECT_EQ(w0.rows128, 1u);
    EXPECT_EQ(w0.rows64, 2u);
    EXPECT_EQ(w0.totalActs, 670u);
}

TEST(RowCensusTest, CurrentCountResetsAcrossWindows)
{
    RowCensus census(100);
    census.recordAct(1, 5, 0);
    EXPECT_EQ(census.currentCount(1, 5), 1u);
    census.recordAct(1, 5, 250); // Two windows later.
    EXPECT_EQ(census.currentCount(1, 5), 1u);
    EXPECT_EQ(census.windows().size(), 2u);
}

} // namespace
} // namespace bh
