/**
 * @file
 * Runs the static invariant audit (tools/bh_audit) as part of the test
 * suite. Two gates:
 *
 * - Selftest: the tool's fixture trees pin every pass — the clean
 *   fixture must stay silent and each injected violation (unserialized
 *   snapshot member, config field missing from the key/codec, hash-map
 *   iteration on an ordered-output path, non-const probe override,
 *   malformed skip annotation) must be caught. This is the regression
 *   test for the scanner itself.
 * - CleanTree: the real src/ tree must audit clean. A finding here
 *   means a change broke one of the structural invariants (or needs a
 *   reasoned `bh-audit: skip` annotation).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#ifndef BH_REPO_ROOT
#error "BH_REPO_ROOT must point at the repository checkout"
#endif

namespace {

int
runTool(const std::string &args)
{
    std::string cmd = "python3 \"" BH_REPO_ROOT "/tools/bh_audit\" " + args;
    int rc = std::system(cmd.c_str());
    return rc;
}

} // namespace

TEST(Audit, SelftestCatchesEveryInjectedViolation)
{
    EXPECT_EQ(runTool("--selftest"), 0);
}

TEST(Audit, SourceTreeAuditsClean)
{
    EXPECT_EQ(runTool("--root \"" BH_REPO_ROOT "\""), 0);
}
