/**
 * @file
 * Tests for the persistent content-addressed ResultStore
 * (sim/result_store.h): in-memory memoization (the old ExperimentPool
 * contract), cross-process round-trips (write, reload in a fresh store,
 * bit-identical JSON), schema-version mismatches triggering recompute
 * rather than corruption, torn-line tolerance, shard-merge equivalence
 * with an unsharded run, and solo-IPC persistence. "Cross-process" is
 * modeled by destroying one store and opening another on the same
 * directory — the disk file is the only state they share.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "sim/result_store.h"
#include "stats/json_stats.h"

namespace bh {
namespace {

constexpr std::uint64_t kInsts = 8000;

ExperimentConfig
smallConfig(const char *pattern, MitigationType mech, unsigned n_rh,
            bool bh_on)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix(pattern, 0);
    cfg.mechanism = mech;
    cfg.nRh = n_rh;
    cfg.breakHammer = bh_on;
    cfg.instructions = kInsts;
    return cfg;
}

std::vector<ExperimentConfig>
testGrid()
{
    return {
        smallConfig("HHMA", MitigationType::kGraphene, 512, true),
        smallConfig("HHMA", MitigationType::kGraphene, 512, false),
        smallConfig("LLLA", MitigationType::kPara, 1024, true),
        smallConfig("MMLL", MitigationType::kNone, 1024, false),
        smallConfig("MMLA", MitigationType::kRfm, 256, true),
        smallConfig("HHMM", MitigationType::kHydra, 512, false),
    };
}

/** Bit-exact equality of two experiment results. */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup);
    EXPECT_EQ(a.maxSlowdown, b.maxSlowdown);
    EXPECT_EQ(a.energyNj, b.energyNj);
    EXPECT_EQ(a.preventiveActions, b.preventiveActions);
    EXPECT_EQ(a.raw.cycles, b.raw.cycles);
    EXPECT_EQ(a.raw.demandActs, b.raw.demandActs);
    EXPECT_EQ(a.raw.suspectMarks, b.raw.suspectMarks);
    EXPECT_EQ(a.raw.quotaRejections, b.raw.quotaRejections);
    EXPECT_EQ(a.raw.preventiveEnergyNj, b.raw.preventiveEnergyNj);
    EXPECT_EQ(a.raw.bhScores, b.raw.bhScores);
    EXPECT_EQ(a.raw.bhQuotas, b.raw.bhQuotas);
    EXPECT_EQ(a.raw.benignIpcs(), b.raw.benignIpcs());
    EXPECT_TRUE(a.raw.benignReadLatencyNs == b.raw.benignReadLatencyNs);
}

/** A fresh (removed and re-creatable) store directory for @p tag. */
std::string
storeDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "bh_result_store_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
resultsPath(const std::string &dir)
{
    return dir + "/results.jsonl";
}

// ---------------------------------------------------------------------
// In-memory memoization (the contract inherited from ExperimentPool).
// ---------------------------------------------------------------------

TEST(ResultStoreTest, MemoizesAndDedupsPrefetch)
{
    ResultStore store(2);
    ExperimentConfig cfg =
        smallConfig("MMLL", MitigationType::kNone, 1024, false);

    // Duplicates inside one prefetch collapse to one simulation.
    store.prefetch({cfg, cfg, cfg});
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().computed, 1u);

    // A second prefetch of a cached point adds nothing.
    store.prefetch({cfg});
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().computed, 1u);

    const ExperimentResult &a = store.get(cfg);
    const ExperimentResult &b = store.get(cfg);
    EXPECT_EQ(&a, &b); // same cached entry, not a re-run

    ExperimentResult direct = runExperiment(cfg);
    expectIdentical(direct, a);
}

TEST(ResultStoreTest, JsonSortedByKeyAndStable)
{
    std::vector<ExperimentConfig> grid = testGrid();

    ResultStore store1(1), store8(8);
    // Feed the stores in different orders; the export must not care.
    store1.prefetch(grid);
    std::vector<ExperimentConfig> reversed(grid.rbegin(), grid.rend());
    store8.prefetch(reversed);

    EXPECT_EQ(store1.toJson().dump(), store8.toJson().dump());

    JsonValue arr = store1.toJson();
    ASSERT_EQ(arr.size(), grid.size());
    for (std::size_t i = 1; i < arr.size(); ++i)
        EXPECT_LT(arr.at(i - 1).get("key").asString(),
                  arr.at(i).get("key").asString());
}

TEST(ResultStoreTest, DefaultedHorizonResolvesIntoTheContentAddress)
{
    // A config that leaves instructions/bh defaulted (resolved from the
    // BH_INSTS environment at run time) must be cached under the same
    // content address as the equivalent fully explicit config...
    ::setenv("BH_INSTS", "3000", 1);
    ExperimentConfig defaulted =
        smallConfig("MMLL", MitigationType::kNone, 1024, false);
    defaulted.instructions = 0;
    ExperimentConfig explicit_cfg = defaulted;
    explicit_cfg.instructions = 3000;
    explicit_cfg.bh = scaledBreakHammerConfig(3000);

    ResultStore store(1);
    store.prefetch({defaulted, explicit_cfg});
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().computed, 1u);

    // ...and a different environment horizon must be a different
    // address — a store consulted under a new BH_INSTS recomputes
    // instead of silently serving wrong-horizon records.
    ::setenv("BH_INSTS", "4000", 1);
    store.get(defaulted);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats().computed, 2u);
    ::unsetenv("BH_INSTS");
}

// ---------------------------------------------------------------------
// The durable schema round-trips exactly.
// ---------------------------------------------------------------------

TEST(ResultStoreTest, ExperimentJsonRoundTripIsByteExact)
{
    ExperimentConfig cfg =
        smallConfig("HHMA", MitigationType::kGraphene, 512, true);
    ExperimentResult direct = runExperiment(cfg);

    JsonValue doc = experimentResultToJson(cfg, direct);
    std::string first = doc.dump(2);

    JsonValue reparsed = JsonValue::parseOrDie(first);
    ExperimentResult restored;
    ASSERT_TRUE(experimentResultFromJson(reparsed, &restored));
    expectIdentical(direct, restored);

    // Re-serializing the restored result reproduces the document byte
    // for byte — the property that makes warm-store JSON exports
    // identical to cold ones.
    EXPECT_EQ(experimentResultToJson(cfg, restored).dump(2), first);

    // The widened schema carries the full histogram, not just summary
    // percentiles: the parsed histogram answers every query identically.
    EXPECT_TRUE(restored.raw.benignReadLatencyNs ==
                direct.raw.benignReadLatencyNs);
    const JsonValue &lat =
        reparsed.get("raw").get("benign_read_latency_ns");
    Histogram h = histogramFromJson(lat.get("histogram"));
    EXPECT_TRUE(h == direct.raw.benignReadLatencyNs);
}

TEST(ResultStoreTest, FromJsonRejectsOlderSchemaLayouts)
{
    ExperimentConfig cfg =
        smallConfig("MMLL", MitigationType::kNone, 1024, false);
    JsonValue doc = experimentResultToJson(cfg, runExperiment(cfg));

    // A pre-store record had no per-core array; rebuild the document
    // without it and expect a clean refusal, not garbage.
    JsonValue stripped = JsonValue::object();
    for (const auto &member : doc.members()) {
        if (member.first != "raw") {
            stripped.set(member.first, member.second);
            continue;
        }
        JsonValue raw = JsonValue::object();
        for (const auto &raw_member : member.second.members())
            if (raw_member.first != "cores")
                raw.set(raw_member.first, raw_member.second);
        stripped.set("raw", std::move(raw));
    }

    ExperimentResult out;
    EXPECT_FALSE(experimentResultFromJson(stripped, &out));
    EXPECT_TRUE(experimentResultFromJson(doc, &out));
}

// ---------------------------------------------------------------------
// Persistence: cross-process round-trip, versioning, sharding.
// ---------------------------------------------------------------------

TEST(ResultStoreTest, ReloadInFreshStoreIsBitIdenticalAndSimulatesNothing)
{
    std::string dir = storeDir("roundtrip");
    std::vector<ExperimentConfig> grid = testGrid();

    std::string cold_json;
    {
        ResultStore store(2);
        std::string error;
        ASSERT_TRUE(store.open(dir, &error)) << error;
        store.prefetch(grid);
        EXPECT_EQ(store.stats().computed, grid.size());
        cold_json = store.toJson().dump(2);
    }

    ResultStore warm(2);
    std::string error;
    ASSERT_TRUE(warm.open(dir, &error)) << error;
    EXPECT_EQ(warm.stats().loaded, grid.size());
    warm.prefetch(grid);
    EXPECT_EQ(warm.stats().computed, 0u) << "warm run must not simulate";
    EXPECT_EQ(warm.stats().hits, grid.size());
    EXPECT_EQ(warm.toJson().dump(2), cold_json);

    for (const ExperimentConfig &cfg : grid)
        expectIdentical(runExperiment(cfg), warm.get(cfg));
}

TEST(ResultStoreTest, SchemaVersionMismatchTriggersRecomputeNotCorruption)
{
    std::string dir = storeDir("version");
    ExperimentConfig cfg =
        smallConfig("HHMM", MitigationType::kHydra, 512, false);

    {
        ResultStore store(1);
        std::string error;
        ASSERT_TRUE(store.open(dir, &error)) << error;
        store.prefetch({cfg});
    }

    // Rewrite every record under a different schema version, emulating a
    // store written by an older (or newer) binary.
    std::string rewritten;
    {
        std::ifstream in(resultsPath(dir));
        std::string line;
        while (std::getline(in, line)) {
            JsonValue rec = JsonValue::parseOrDie(line);
            rec.set("v", ResultStore::kSchemaVersion + 1);
            rewritten += rec.dump() + "\n";
        }
    }
    {
        std::ofstream out(resultsPath(dir), std::ios::trunc);
        out << rewritten;
    }

    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    EXPECT_EQ(store.stats().loaded, 0u);
    EXPECT_GE(store.stats().skipped, 1u);

    // The point recomputes cleanly and lands back in the store.
    expectIdentical(runExperiment(cfg), store.get(cfg));
    EXPECT_EQ(store.stats().computed, 1u);
}

TEST(ResultStoreTest, TornTrailingLineIsSkippedNotFatal)
{
    std::string dir = storeDir("torn");
    ExperimentConfig cfg =
        smallConfig("MMLL", MitigationType::kNone, 1024, false);

    {
        ResultStore store(1);
        std::string error;
        ASSERT_TRUE(store.open(dir, &error)) << error;
        store.prefetch({cfg});
    }
    {
        // A crashed writer's torn tail: half a record, no newline.
        std::ofstream out(resultsPath(dir), std::ios::app);
        out << "{\"v\":1,\"kind\":\"experiment\",\"key\":\"tr";
    }

    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    EXPECT_GE(store.stats().skipped, 1u);
    store.prefetch({cfg});
    EXPECT_EQ(store.stats().computed, 0u); // intact record still serves
}

TEST(ResultStoreTest, TornMiddleLineKeepsFollowingRecords)
{
    // Mid-file truncation: a writer is killed mid-record (no trailing
    // newline) and a later run appends valid records after it — exactly
    // what kill-and-resume checkpointing makes common. The torn bytes
    // fuse with the next record into one physical line; only the torn
    // prefix may be dropped, never the valid record or the remainder of
    // the file.
    std::string dir = storeDir("torn-middle");
    ExperimentConfig cfg_a =
        smallConfig("MMLL", MitigationType::kNone, 1024, false);
    ExperimentConfig cfg_b =
        smallConfig("LLLA", MitigationType::kPara, 1024, true);

    {
        ResultStore store(1);
        std::string error;
        ASSERT_TRUE(store.open(dir, &error)) << error;
        store.prefetch({cfg_a, cfg_b});
    }

    // Rebuild the file with a torn prefix fused onto ONE of the
    // experiment lines (the later lines stay intact behind it).
    std::vector<std::string> lines;
    {
        std::ifstream in(resultsPath(dir));
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    {
        std::ofstream out(resultsPath(dir), std::ios::trunc);
        bool fused = false;
        for (const std::string &line : lines) {
            if (!fused && line.find("\"kind\":\"experiment\"") !=
                              std::string::npos) {
                // The torn record ends mid-string, no newline.
                out << "{\"v\":2,\"kind\":\"experiment\",\"key\":\"ha"
                    << line << "\n";
                fused = true;
            } else {
                out << line << "\n";
            }
        }
        ASSERT_TRUE(fused);
    }

    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    EXPECT_EQ(store.stats().loaded, 2u); // both records survive
    EXPECT_GE(store.stats().skipped, 1u); // the torn prefix
    store.prefetch({cfg_a, cfg_b});
    EXPECT_EQ(store.stats().computed, 0u);
}

TEST(ResultStoreTest, ShardedStoresMergeToTheUnshardedResult)
{
    std::vector<ExperimentConfig> grid = testGrid();

    std::string dir_full = storeDir("full");
    std::string cold_json;
    {
        ResultStore store(2);
        std::string error;
        ASSERT_TRUE(store.open(dir_full, &error)) << error;
        store.prefetch(grid);
        cold_json = store.toJson().dump(2);
    }

    // Two shard "machines", each computing only its content-addressed
    // half into its own store.
    std::string dir_s1 = storeDir("shard1");
    std::string dir_s2 = storeDir("shard2");
    std::size_t computed_total = 0;
    for (unsigned shard = 1; shard <= 2; ++shard) {
        ResultStore store(2);
        std::string error;
        ASSERT_TRUE(store.open(shard == 1 ? dir_s1 : dir_s2, &error))
            << error;
        store.setShard(shard, 2);
        store.prefetch(grid);
        EXPECT_EQ(store.stats().computed + store.stats().shardSkipped,
                  grid.size());
        computed_total += store.stats().computed;
    }
    EXPECT_EQ(computed_total, grid.size()) << "shards must partition";

    // Merge = concatenate the append-only files.
    std::string dir_merged = storeDir("merged");
    std::filesystem::create_directories(dir_merged);
    {
        std::ofstream out(resultsPath(dir_merged), std::ios::binary);
        for (const std::string &dir : {dir_s1, dir_s2}) {
            std::ifstream in(resultsPath(dir), std::ios::binary);
            out << in.rdbuf();
        }
    }

    ResultStore merged(2);
    std::string error;
    ASSERT_TRUE(merged.open(dir_merged, &error)) << error;
    merged.prefetch(grid);
    EXPECT_EQ(merged.stats().computed, 0u);
    EXPECT_EQ(merged.toJson().dump(2), cold_json);
}

TEST(ResultStoreTest, SoloIpcRunsPersistAndReload)
{
    std::string dir = storeDir("solo");
    // A unique instruction count so this test's solo runs cannot already
    // sit in the process-wide solo cache.
    ExperimentConfig cfg =
        smallConfig("HHMM", MitigationType::kHydra, 512, false);
    cfg.instructions = 7777;

    {
        ResultStore store(1);
        std::string error;
        ASSERT_TRUE(store.open(dir, &error)) << error;
        store.prefetch({cfg});
        // One solo run per benign app in the mix.
        EXPECT_EQ(store.stats().soloComputed,
                  benignApps(cfg.mix).size());
    }

    ResultStore warm(1);
    std::string error;
    ASSERT_TRUE(warm.open(dir, &error)) << error;
    EXPECT_EQ(warm.stats().soloLoaded, benignApps(cfg.mix).size());
    warm.prefetch({cfg});
    EXPECT_EQ(warm.stats().computed, 0u);
    EXPECT_EQ(warm.stats().soloComputed, 0u);
}

} // namespace
} // namespace bh
