/**
 * @file
 * Security property tests: the RowHammer oracle checks that every
 * mitigation mechanism keeps every row's activation count (since its
 * victims were last refreshed) below N_RH — under a worst-case hammering
 * workload, with and without BreakHammer attached.
 *
 * This is the paper's central robustness claim (§5.1): BreakHammer must
 * not weaken the protection of the mechanism it is paired with.
 */
#include <gtest/gtest.h>

#include "breakhammer/security_model.h"
#include "sim/experiment.h"
#include "sim/mixes.h"
#include "sim/oracle.h"
#include "sim/system.h"

namespace bh {
namespace {

std::vector<WorkloadSlot>
hammerSlots(unsigned aggressors)
{
    // Two attackers + two benign: maximal hammer pressure plus enough
    // benign traffic to exercise attribution.
    std::vector<WorkloadSlot> slots(4);
    slots[0].appName = "mcf_like";
    slots[1].appName = "libquantum_like";
    for (int i = 2; i < 4; ++i) {
        slots[i].kind = WorkloadSlot::Kind::kAttacker;
        slots[i].attacker.numAggressors = aggressors;
        slots[i].attacker.numBanks = 4; // Concentrate the hammering.
    }
    return slots;
}

struct SecurityCase
{
    MitigationType mechanism;
    unsigned nRh;
    bool breakHammer;
};

class SecurityPropertyTest : public ::testing::TestWithParam<SecurityCase>
{};

TEST_P(SecurityPropertyTest, NoRowReachesThreshold)
{
    const SecurityCase &c = GetParam();
    SystemConfig cfg;
    cfg.mitigation = c.mechanism;
    cfg.nRh = c.nRh;
    cfg.breakHammer = c.breakHammer;
    cfg.bh.window = 150000;
    cfg.bh.thThreat = 2.0;
    cfg.enableOracle = true;

    System sys(cfg, hammerSlots(4));
    RunResult r = sys.run(40000, 30000000);

    EXPECT_EQ(r.oracleViolations, 0u)
        << mitigationName(c.mechanism) << " N_RH=" << c.nRh
        << " max=" << r.oracleMaxCount;
    EXPECT_LT(r.oracleMaxCount, c.nRh);
    // The run must actually hammer for the check to mean anything
    // (BlockHammer legitimately suppresses activations, hence the
    // conservative floor).
    EXPECT_GT(r.demandActs, 3000u);
}

std::vector<SecurityCase>
securityCases()
{
    std::vector<SecurityCase> cases;
    // Deterministic mechanisms with explicit preventive actions.
    for (MitigationType m :
         {MitigationType::kPara, MitigationType::kGraphene,
          MitigationType::kHydra, MitigationType::kTwice,
          MitigationType::kAqua, MitigationType::kRfm,
          MitigationType::kPrac, MitigationType::kBlockHammer}) {
        for (unsigned n_rh : {256u, 1024u}) {
            cases.push_back({m, n_rh, false});
            cases.push_back({m, n_rh, true});
        }
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<SecurityCase> &info)
{
    std::string name = mitigationName(info.param.mechanism);
    name += "_nrh" + std::to_string(info.param.nRh);
    name += info.param.breakHammer ? "_BH" : "_base";
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, SecurityPropertyTest,
                         ::testing::ValuesIn(securityCases()), caseName);

TEST(RedteamSecurityTest, WorstStrategyRespectsBoundsAndGoldens)
{
    // Security regression for the adversarial engine: the red-team
    // fuzzer's best-evading strategy shape (shallow-back-off many-sided,
    // the winner of the pinned seed search) must degrade throttling, not
    // protection. The probe runs under the oracle and must (a) keep
    // every row below N_RH (§5.1), (b) keep the normalized score any
    // attack thread reaches within the Expression 2 analytic bound, and
    // (c) reproduce pinned weighted-speedup / max-slowdown goldens so a
    // silent change to adaptive-attacker behaviour cannot hide.
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMAA", 0);
    cfg.mechanism = MitigationType::kPara;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.instructions = 20000;
    cfg.oracle = true;
    cfg.redteam = "pat=many,obs=32,bub=16,grp=1,ho=0";
    ExperimentResult r = runExperiment(cfg);

    // (a) Evasion never weakens the paired mechanism's guarantee.
    EXPECT_EQ(r.raw.oracleViolations, 0u)
        << "max=" << r.raw.oracleMaxCount;
    EXPECT_LT(r.raw.oracleMaxCount, cfg.nRh);
    // The probe must actually hammer for (a) to mean anything.
    ASSERT_EQ(r.raw.demandActsPerThread.size(), 4u);
    EXPECT_GT(r.raw.demandActsPerThread[2] +
                  r.raw.demandActsPerThread[3],
              1000u);

    // (b) Expression 2: two attack threads of four is fraction 0.5; at
    // the default TH_outlier the bound is finite, and the final
    // normalized per-thread scores respect it.
    BreakHammerConfig bh_defaults;
    double bound = maxAttackerScoreBound(0.5, bh_defaults.thOutlier);
    ASSERT_TRUE(std::isfinite(bound));
    ASSERT_EQ(r.raw.bhScores.size(), 4u);
    double benign_mean =
        (r.raw.bhScores[0] + r.raw.bhScores[1]) / 2.0;
    if (benign_mean > 0.0) {
        EXPECT_LE(r.raw.bhScores[2] / benign_mean, bound);
        EXPECT_LE(r.raw.bhScores[3] / benign_mean, bound);
    }

    // (c) Pinned goldens (deterministic simulation; loose tolerance is
    // deliberate slack for float summation order, not for behaviour).
    EXPECT_NEAR(r.weightedSpeedup, 0.65140787882221596, 1e-6);
    EXPECT_NEAR(r.maxSlowdown, 3.2047033458436474, 1e-6);
}

TEST(OracleTest, CountsAndResets)
{
    HammerOracle oracle(DramSpec::ddr5().org, 100);
    for (int i = 0; i < 99; ++i)
        oracle.onActivate(0, 5);
    EXPECT_EQ(oracle.violations(), 0u);
    EXPECT_EQ(oracle.maxCount(), 99u);
    oracle.onActivate(0, 5);
    EXPECT_EQ(oracle.violations(), 1u);
    oracle.onRowProtected(0, 5);
    for (int i = 0; i < 50; ++i)
        oracle.onActivate(0, 5);
    EXPECT_EQ(oracle.violations(), 1u); // No new violation after reset.
}

TEST(OracleTest, RefreshSweepResetsInteriorRows)
{
    HammerOracle oracle(DramSpec::ddr5().org, 1000);
    for (int i = 0; i < 500; ++i)
        oracle.onActivate(0, 10);
    // Sweep rows [9, 17): row 10's victims (9 and 11) are both inside.
    oracle.onRefreshSweep(0, 9, 8);
    for (int i = 0; i < 600; ++i)
        oracle.onActivate(0, 10);
    EXPECT_EQ(oracle.violations(), 0u);
}

TEST(OracleTest, EdgeRowsKeepCountsAfterSweep)
{
    HammerOracle oracle(DramSpec::ddr5().org, 1000);
    for (int i = 0; i < 500; ++i)
        oracle.onActivate(0, 9); // First swept row: victim 8 outside.
    oracle.onRefreshSweep(0, 9, 8);
    for (int i = 0; i < 600; ++i)
        oracle.onActivate(0, 9);
    EXPECT_EQ(oracle.violations(), 1u); // Conservative: not reset.
}

TEST(OracleTest, NarrowSweepIgnored)
{
    HammerOracle oracle(DramSpec::ddr5().org, 10);
    for (int i = 0; i < 5; ++i)
        oracle.onActivate(0, 3);
    oracle.onRefreshSweep(0, 2, 2);
    EXPECT_EQ(oracle.maxCount(), 5u);
}

} // namespace
} // namespace bh
