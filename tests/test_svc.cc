/**
 * @file
 * Tests for the distributed sweep service (src/svc): the length-prefixed
 * frame codec (round-trips under arbitrary chunking; truncated,
 * oversized, zero-length, and garbage streams rejected without UB — this
 * file runs under ASan+UBSan in CI), the ExperimentConfig wire codec
 * (experimentKey()-exact round trip), and the coordinator/worker loop
 * itself: an in-process coordinator with two real workers over loopback
 * produces a store byte-identical to a local run of the same grid, a
 * client that takes a lease and goes silent forfeits it at the deadline,
 * and a client that drops its connection forfeits immediately — in both
 * cases the unit is re-leased and the sweep still completes.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sim/experiment.h"
#include "sim/result_store.h"
#include "svc/coordinator.h"
#include "svc/frame.h"
#include "svc/protocol.h"
#include "svc/worker.h"

namespace bh::svc {
namespace {

// ---------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------

TEST(FrameTest, RoundTripsUnderByteAtATimeDelivery)
{
    // No empty payload: a zero length is poison by design (every real
    // message is at least "{}"), which ZeroLengthPoisonsTheStream pins.
    const std::vector<std::string> payloads = {
        "{}", std::string("x"), std::string(100000, 'y'),
        std::string("{\"key\":\"with \\\"quotes\\\" and \\n\"}")};
    std::string stream;
    for (const std::string &p : payloads)
        stream += encodeFrame(p);

    // Worst-case TCP chunking: one byte per feed().
    FrameReader reader;
    std::vector<std::string> decoded;
    std::string payload;
    for (char byte : stream) {
        reader.feed(&byte, 1);
        while (reader.next(&payload))
            decoded.push_back(payload);
    }
    EXPECT_FALSE(reader.broken());
    EXPECT_EQ(decoded, payloads);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, TruncatedFrameYieldsNothing)
{
    std::string frame = encodeFrame("hello, worker");
    FrameReader reader;
    reader.feed(frame.data(), frame.size() - 1);
    std::string payload;
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_FALSE(reader.broken()); // Incomplete, not invalid.

    reader.feed(frame.data() + frame.size() - 1, 1);
    ASSERT_TRUE(reader.next(&payload));
    EXPECT_EQ(payload, "hello, worker");
}

TEST(FrameTest, OversizedLengthPoisonsTheStream)
{
    std::uint32_t huge = kMaxFramePayload + 1;
    char header[4];
    std::memcpy(header, &huge, 4);
    FrameReader reader;
    reader.feed(header, 4);
    std::string payload;
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_TRUE(reader.broken());
    EXPECT_FALSE(reader.error().empty());

    // Poisoned for good: even a valid frame afterwards stays unread.
    std::string valid = encodeFrame("{}");
    reader.feed(valid.data(), valid.size());
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_TRUE(reader.broken());
}

TEST(FrameTest, ZeroLengthPoisonsTheStream)
{
    char header[4] = {0, 0, 0, 0};
    FrameReader reader;
    reader.feed(header, 4);
    std::string payload;
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_TRUE(reader.broken());
}

TEST(FrameTest, HttpGarbageLooksLikeAnAbsurdLength)
{
    // "GET " little-endian is ~0.5 GB — the reason the coordinator can
    // sniff HTTP on the same port before framing ever engages.
    const char *request = "GET /progress HTTP/1.1\r\n\r\n";
    FrameReader reader;
    reader.feed(request, std::strlen(request));
    std::string payload;
    EXPECT_FALSE(reader.next(&payload));
    EXPECT_TRUE(reader.broken());
}

// ---------------------------------------------------------------------
// Message envelope + config wire codec.
// ---------------------------------------------------------------------

TEST(ProtocolTest, RejectsGarbageMessages)
{
    JsonValue msg;
    std::string error;
    EXPECT_FALSE(parseMessage("not json at all", &msg, &error));
    EXPECT_FALSE(parseMessage("[1,2,3]", &msg, &error)); // Not an object.
    EXPECT_FALSE(parseMessage("{\"type\":7}", &msg, &error));
    EXPECT_FALSE(parseMessage("{}", &msg, &error));
    EXPECT_TRUE(parseMessage("{\"type\":\"hello\"}", &msg, &error));
    EXPECT_EQ(messageType(msg), "hello");
}

TEST(ProtocolTest, ConfigRoundTripPreservesExperimentKey)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("HHMA", 1);
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.instructions = 12345;
    cfg.oracle = true;
    cfg.bluntThrottle = true;
    cfg.seed = 7;
    cfg.channels = 2;
    cfg.ranks = 4;
    cfg.sample.warmup = 100;
    cfg.sample.measure = 200;
    cfg.sample.fastForward = 300;
    ExperimentConfig resolved = resolveExperimentConfig(cfg);

    JsonValue wire = experimentConfigToJson(resolved);
    // Through a dump/parse cycle, as the wire actually delivers it.
    JsonValue parsed = JsonValue::parseOrDie(wire.dump());
    ExperimentConfig back;
    ASSERT_TRUE(experimentConfigFromJson(parsed, &back));
    EXPECT_EQ(experimentKey(back), experimentKey(resolved));
    EXPECT_EQ(back.mix.pattern, resolved.mix.pattern);
    EXPECT_EQ(back.bh.window, resolved.bh.window);
    EXPECT_EQ(back.bh.thThreat, resolved.bh.thThreat);
}

TEST(ProtocolTest, ConfigCodecRejectsMalformedDocuments)
{
    ExperimentConfig back;
    EXPECT_FALSE(experimentConfigFromJson(JsonValue::object(), &back));
    EXPECT_FALSE(experimentConfigFromJson(JsonValue("str"), &back));

    ExperimentConfig small;
    small.mix = makeMix("LLLA", 0);
    JsonValue wire =
        experimentConfigToJson(resolveExperimentConfig(small));
    JsonValue broken = wire;
    broken.set("mechanism", "not-a-mechanism");
    EXPECT_FALSE(experimentConfigFromJson(broken, &back));
}

// ---------------------------------------------------------------------
// Coordinator + workers over loopback.
// ---------------------------------------------------------------------

/** A small grid cheap enough to simulate twice in one test binary. */
std::vector<ExperimentConfig>
loopbackGrid()
{
    std::vector<ExperimentConfig> grid;
    const char *patterns[] = {"HHMA", "LLLA", "MMLL"};
    for (const char *pattern : patterns) {
        ExperimentConfig cfg;
        cfg.mix = makeMix(pattern, 0);
        cfg.mechanism = MitigationType::kGraphene;
        cfg.nRh = 512;
        cfg.breakHammer = true;
        cfg.instructions = 3000;
        grid.push_back(cfg);
    }
    // A duplicate point: must collapse to one work unit.
    grid.push_back(grid.front());
    return grid;
}

std::string
freshDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "bh_svc_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

/** The sorted "experiment" record lines of a store's results.jsonl.
 *  Solo records are excluded: the process-wide solo cache means only
 *  whichever run simulated first writes them. */
std::vector<std::string>
experimentLines(const std::string &dir)
{
    std::vector<std::string> lines;
    std::ifstream in(dir + "/results.jsonl");
    std::string line;
    while (std::getline(in, line))
        if (line.find("\"kind\":\"experiment\"") != std::string::npos)
            lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

TEST(SweepServiceTest, TwoWorkersReproduceTheLocalStoreByteForByte)
{
    std::vector<ExperimentConfig> grid = loopbackGrid();

    // Ground truth: a local single-process run of the same grid.
    std::string local_dir = freshDir("local");
    std::string local_json;
    {
        ResultStore local(2);
        std::string error;
        ASSERT_TRUE(local.open(local_dir, &error)) << error;
        local.prefetch(grid);
        local_json = local.toJson().dump();
    }

    std::string svc_dir = freshDir("svc");
    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(svc_dir, &error)) << error;

    CoordinatorOptions copts;
    copts.port = 0; // Ephemeral: tests never collide on a port.
    copts.leaseTimeoutMs = 60000;
    SweepCoordinator coordinator(copts, &store, grid);
    ASSERT_TRUE(coordinator.start(&error)) << error;
    EXPECT_EQ(coordinator.metrics().unitsTotal, 3u); // Dedup applied.

    std::thread serve([&] {
        std::string serve_error;
        EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    });

    auto run_worker = [&](const char *name, bool *ok) {
        WorkerOptions wopts;
        wopts.port = coordinator.port();
        wopts.jobs = 1;
        wopts.name = name;
        SweepWorker worker(wopts);
        std::string worker_error;
        *ok = worker.run(&worker_error);
        EXPECT_TRUE(*ok) << worker_error;
    };
    bool ok1 = false, ok2 = false;
    std::thread w1(run_worker, "w1", &ok1);
    std::thread w2(run_worker, "w2", &ok2);
    w1.join();
    w2.join();
    serve.join();
    EXPECT_TRUE(ok1);
    EXPECT_TRUE(ok2);

    CoordinatorMetrics m = coordinator.metrics();
    EXPECT_TRUE(m.complete);
    EXPECT_EQ(m.unitsDone, 3u);
    EXPECT_EQ(m.recordsIngested, 3u);
    EXPECT_EQ(m.unitsWarm, 0u);
    EXPECT_EQ(m.leasesOutstanding, 0u);

    // The distributed run's export and on-disk experiment records are
    // byte-identical to the local run's.
    EXPECT_EQ(store.toJson().dump(), local_json);
    std::vector<std::string> svc_lines = experimentLines(svc_dir);
    EXPECT_EQ(svc_lines, experimentLines(local_dir));
    EXPECT_EQ(svc_lines.size(), 3u);
}

TEST(SweepServiceTest, WarmCoordinatorLeasesNothing)
{
    std::vector<ExperimentConfig> grid = loopbackGrid();
    std::string dir = freshDir("warm");
    {
        ResultStore cold(2);
        std::string error;
        ASSERT_TRUE(cold.open(dir, &error)) << error;
        cold.prefetch(grid);
    }

    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    CoordinatorOptions copts;
    copts.port = 0;
    SweepCoordinator coordinator(copts, &store, grid);
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::string serve_error;
    // Fully warm: serve() returns without a single worker connecting.
    EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    CoordinatorMetrics m = coordinator.metrics();
    EXPECT_TRUE(m.complete);
    EXPECT_EQ(m.unitsWarm, 3u);
    EXPECT_EQ(m.recordsIngested, 0u);
}

// --- raw-socket fake client for the lease-forfeit tests --------------

int
connectTo(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)),
        0);
    return fd;
}

void
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
}

/** Block until one whole frame arrives; EXPECTs on stream health. */
std::string
readFrame(int fd, FrameReader *reader)
{
    std::string payload;
    char buf[4096];
    while (!reader->next(&payload)) {
        EXPECT_FALSE(reader->broken()) << reader->error();
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            ADD_FAILURE() << "connection closed while awaiting a frame";
            return "";
        }
        reader->feed(buf, static_cast<std::size_t>(n));
    }
    return payload;
}

/**
 * Drive the shared part of both forfeit tests: a fake client takes the
 * only lease and misbehaves (@p drop: close the socket; otherwise go
 * silent past the deadline), then a real worker finishes the sweep.
 */
void
runForfeitScenario(bool drop, const std::string &tag)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLL", 0);
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.instructions = 2000;

    std::string dir = freshDir(tag);
    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    CoordinatorOptions copts;
    copts.port = 0;
    copts.leaseTimeoutMs = 300; // Short: the stall test waits it out.
    SweepCoordinator coordinator(copts, &store, {cfg});
    ASSERT_TRUE(coordinator.start(&error)) << error;

    std::thread serve([&] {
        std::string serve_error;
        EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    });

    // The fake client legitimately acquires the only lease...
    int fd = connectTo(coordinator.port());
    FrameReader reader;
    sendAll(fd, encodeFrame(makeHello(1, "fake").dump()));
    JsonValue msg = JsonValue::parseOrDie(readFrame(fd, &reader));
    ASSERT_EQ(messageType(msg), "hello_ok");
    sendAll(fd, encodeFrame(makeLeaseRequest().dump()));
    msg = JsonValue::parseOrDie(readFrame(fd, &reader));
    ASSERT_EQ(messageType(msg), "lease");

    // ...and forfeits it: instantly on disconnect, or at the deadline
    // when it simply stops heartbeating.
    if (drop)
        ::close(fd);

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (coordinator.metrics().leasesExpired == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(coordinator.metrics().leasesExpired, 1u);

    // A healthy worker picks the requeued unit up and completes the run.
    WorkerOptions wopts;
    wopts.port = coordinator.port();
    wopts.jobs = 1;
    wopts.name = "rescuer";
    SweepWorker worker(wopts);
    std::string worker_error;
    EXPECT_TRUE(worker.run(&worker_error)) << worker_error;
    if (!drop)
        ::close(fd); // Before join: an open conn holds the done grace.
    serve.join();

    CoordinatorMetrics m = coordinator.metrics();
    EXPECT_TRUE(m.complete);
    EXPECT_EQ(m.unitsDone, 1u);
    EXPECT_EQ(m.recordsIngested, 1u);
    EXPECT_GE(m.leasesExpired, 1u);
}

TEST(SweepServiceTest, DroppedWorkerForfeitsItsLeaseImmediately)
{
    runForfeitScenario(/*drop=*/true, "drop");
}

TEST(SweepServiceTest, SilentWorkerForfeitsItsLeaseAtTheDeadline)
{
    runForfeitScenario(/*drop=*/false, "stall");
}

TEST(SweepServiceTest, PreHelloAndBadVersionPeersAreClosedSafely)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLL", 0);
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.instructions = 2000;

    std::string dir = freshDir("prehello");
    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    CoordinatorOptions copts;
    copts.port = 0;
    SweepCoordinator coordinator(copts, &store, {cfg});
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] {
        std::string serve_error;
        EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    });

    // Two protocol violations delivered as ONE write, so the coordinator
    // dispatches both frames from a single recv batch. Regression (ASan
    // catches it): replying to the first violation closed and freed the
    // Conn while the second was still being handled, and the error path
    // then wrote to the freed object; separately, a conn marked closing
    // after its error frame drained was never actually closed, so this
    // recv loop would park forever on a leaked half-open socket.
    const std::string bad_hello =
        "{\"type\":\"hello\",\"proto\":999,\"schema\":999}";
    const std::string batches[] = {
        // Single violations pin the leak: a conn whose error frame fully
        // drained inside sendFrame was marked closing but never closed,
        // so this recv would wait out its full timeout.
        encodeFrame(makeLeaseRequest().dump()),
        encodeFrame(bad_hello),
        // Double violations pin the use-after-free: the reply to the
        // second frame closed and freed the Conn, then wrote to it.
        encodeFrame(makeLeaseRequest().dump()) +
            encodeFrame(makeLeaseRequest().dump()),
        encodeFrame(bad_hello) + encodeFrame(bad_hello),
    };
    for (const std::string &batch : batches) {
        int fd = connectTo(coordinator.port());
        timeval tv{10, 0}; // Fail fast instead of hanging on a leak.
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sendAll(fd, batch);
        FrameReader reader;
        std::string payload;
        char buf[4096];
        std::vector<std::string> types;
        bool closed = false;
        for (;;) {
            ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n == 0)
                closed = true; // The coordinator really hung up.
            if (n <= 0)
                break;
            reader.feed(buf, static_cast<std::size_t>(n));
            while (reader.next(&payload))
                types.push_back(
                    messageType(JsonValue::parseOrDie(payload)));
        }
        ::close(fd);
        EXPECT_TRUE(closed);
        ASSERT_FALSE(types.empty());
        for (const std::string &type : types)
            EXPECT_EQ(type, "error");
    }

    coordinator.requestStop();
    serve.join();
}

TEST(SweepServiceTest, LateResultForARequeuedUnitDoesNotFakeCompletion)
{
    // Two units; one client leases both, goes silent until they expire
    // (requeue), then — still connected — delivers the result for its
    // SECOND lease, whose index now sits at the front of the pending
    // queue. Regression: the done unit's stale queue entry was re-leased
    // from the kDone state, and the duplicate completion pushed `done`
    // to units.size() with the other unit never simulated, exporting an
    // incomplete store.
    std::vector<ExperimentConfig> grid;
    for (const char *pattern : {"HHMA", "LLLA"}) {
        ExperimentConfig cfg;
        cfg.mix = makeMix(pattern, 0);
        cfg.mechanism = MitigationType::kNone;
        cfg.nRh = 1024;
        cfg.instructions = 2000;
        grid.push_back(cfg);
    }

    // Ground truth for the completeness check.
    std::string local_dir = freshDir("late_local");
    std::string local_json;
    {
        ResultStore local(2);
        std::string error;
        ASSERT_TRUE(local.open(local_dir, &error)) << error;
        local.prefetch(grid);
        local_json = local.toJson().dump();
    }

    std::string dir = freshDir("late");
    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    CoordinatorOptions copts;
    copts.port = 0;
    copts.leaseTimeoutMs = 300;
    SweepCoordinator coordinator(copts, &store, grid);
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] {
        std::string serve_error;
        EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    });

    int fd = connectTo(coordinator.port());
    FrameReader reader;
    sendAll(fd, encodeFrame(makeHello(2, "late").dump()));
    JsonValue msg = JsonValue::parseOrDie(readFrame(fd, &reader));
    ASSERT_EQ(messageType(msg), "hello_ok");

    auto take_lease = [&](std::string *key, ExperimentConfig *config) {
        sendAll(fd, encodeFrame(makeLeaseRequest().dump()));
        JsonValue lease = JsonValue::parseOrDie(readFrame(fd, &reader));
        ASSERT_EQ(messageType(lease), "lease");
        const JsonValue *k = lease.find("key");
        const JsonValue *c = lease.find("config");
        ASSERT_NE(k, nullptr);
        ASSERT_NE(c, nullptr);
        *key = k->asString();
        ASSERT_TRUE(experimentConfigFromJson(*c, config));
    };
    std::string key1, key2;
    ExperimentConfig cfg1, cfg2;
    take_lease(&key1, &cfg1);
    take_lease(&key2, &cfg2);
    ASSERT_NE(key1, key2);

    // Silence until both leases expire and requeue.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (coordinator.metrics().leasesExpired < 2 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_GE(coordinator.metrics().leasesExpired, 2u);

    // Deliver the second lease's result anyway (requeue order put that
    // unit at the queue front, the worst case for the stale entry).
    ExperimentResult result = runExperiment(cfg2);
    sendAll(fd,
            encodeFrame(
                makeResult(key2, experimentResultToJson(cfg2, result))
                    .dump()));
    while (coordinator.metrics().unitsDone < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(coordinator.metrics().unitsDone, 1u);

    // The next lease must be the unfinished unit, never the done one.
    std::string key3;
    ExperimentConfig cfg3;
    take_lease(&key3, &cfg3);
    EXPECT_EQ(key3, key1);
    result = runExperiment(cfg3);
    sendAll(fd,
            encodeFrame(
                makeResult(key3, experimentResultToJson(cfg3, result))
                    .dump()));

    // Completion only now, with both records in the store.
    msg = JsonValue::parseOrDie(readFrame(fd, &reader));
    EXPECT_EQ(messageType(msg), "done");
    ::close(fd); // Before join: an open conn holds the done grace.
    serve.join();

    CoordinatorMetrics m = coordinator.metrics();
    EXPECT_TRUE(m.complete);
    EXPECT_EQ(m.unitsDone, 2u);
    EXPECT_EQ(m.recordsIngested, 2u);
    EXPECT_EQ(store.toJson().dump(), local_json);
}

TEST(SweepServiceTest, CompletionWaitsForWorkersToDisconnect)
{
    // The coordinator must not exit the instant its buffers drain after
    // the `done` broadcast: a worker whose final frames cross the exit
    // takes an RST that discards its buffered `done` and then retries a
    // dead address. Within the grace window the coordinator stays up —
    // still connected peers hold it — and answers a (re)connecting
    // worker's lease_request with `done` directly.
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLL", 0);
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.instructions = 2000;

    std::string dir = freshDir("grace");
    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    CoordinatorOptions copts;
    copts.port = 0;
    SweepCoordinator coordinator(copts, &store, {cfg});
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] {
        std::string serve_error;
        EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    });

    // Client A completes the only unit and reads its `done`...
    int a = connectTo(coordinator.port());
    FrameReader ra;
    sendAll(a, encodeFrame(makeHello(1, "a").dump()));
    ASSERT_EQ(messageType(JsonValue::parseOrDie(readFrame(a, &ra))),
              "hello_ok");
    sendAll(a, encodeFrame(makeLeaseRequest().dump()));
    JsonValue lease = JsonValue::parseOrDie(readFrame(a, &ra));
    ASSERT_EQ(messageType(lease), "lease");
    ExperimentConfig leased;
    ASSERT_TRUE(experimentConfigFromJson(*lease.find("config"), &leased));
    ExperimentResult result = runExperiment(leased);
    sendAll(a, encodeFrame(makeResult(lease.find("key")->asString(),
                                      experimentResultToJson(leased,
                                                             result))
                               .dump()));
    ASSERT_EQ(messageType(JsonValue::parseOrDie(readFrame(a, &ra))),
              "done");

    // ...and while A is still connected, a late client B must be served
    // `done`, not a refused connection against an exited coordinator.
    int b = connectTo(coordinator.port());
    FrameReader rb;
    sendAll(b, encodeFrame(makeHello(1, "b").dump()));
    ASSERT_EQ(messageType(JsonValue::parseOrDie(readFrame(b, &rb))),
              "hello_ok");
    sendAll(b, encodeFrame(makeLeaseRequest().dump()));
    ASSERT_EQ(messageType(JsonValue::parseOrDie(readFrame(b, &rb))),
              "done");

    ::close(a);
    ::close(b);
    serve.join(); // Exits promptly once both peers are gone.
}

TEST(SweepServiceTest, MetricsEscapesHostileWorkerNames)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMLL", 0);
    cfg.mechanism = MitigationType::kNone;
    cfg.nRh = 1024;
    cfg.instructions = 2000;

    std::string dir = freshDir("promesc");
    ResultStore store(1);
    std::string error;
    ASSERT_TRUE(store.open(dir, &error)) << error;
    CoordinatorOptions copts;
    copts.port = 0;
    SweepCoordinator coordinator(copts, &store, {cfg});
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] {
        std::string serve_error;
        EXPECT_TRUE(coordinator.serve(&serve_error)) << serve_error;
    });

    // A worker name with every character that can break the Prometheus
    // text format: '"' ends the label, '\n' ends the line, '\' escapes.
    int wfd = connectTo(coordinator.port());
    FrameReader reader;
    sendAll(wfd, encodeFrame(makeHello(1, "w\"evil\\\n1").dump()));
    JsonValue msg = JsonValue::parseOrDie(readFrame(wfd, &reader));
    ASSERT_EQ(messageType(msg), "hello_ok");

    int hfd = connectTo(coordinator.port());
    sendAll(hfd, "GET /metrics HTTP/1.1\r\n\r\n");
    std::string page;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(hfd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        page.append(buf, static_cast<std::size_t>(n));
    }
    ::close(hfd);
    // The raw name must not appear; the escaped label must.
    EXPECT_EQ(page.find("w\"evil"), std::string::npos) << page;
    EXPECT_NE(page.find("worker=\"w\\\"evil\\\\\\n1\""),
              std::string::npos)
        << page;

    coordinator.requestStop();
    serve.join();
    ::close(wfd);
}

TEST(SweepServiceTest, SecondStoreWriterIsRefused)
{
    std::string dir = freshDir("flock");
    ResultStore first(1);
    std::string error;
    ASSERT_TRUE(first.open(dir, &error)) << error;

    // Same process, second descriptor: flock is per-open-file, so this
    // models a second coordinator racing the first.
    ResultStore second(1);
    EXPECT_FALSE(second.open(dir, &error));
    EXPECT_NE(error.find("locked"), std::string::npos) << error;
}

} // namespace
} // namespace bh::svc
