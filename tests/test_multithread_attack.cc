/**
 * @file
 * Empirical §5.2 experiments: multi-threaded attacks against BreakHammer's
 * suspect identification on an 8-core system.
 *
 * Rigging: with few attack threads, each one is an outlier and gets
 * detected; once the attacker controls enough threads that
 * (1 + TH_outlier) * attacker_fraction >= 1, attack behaviour *is* the
 * mean and detection breaks down — exactly Expression 2's prediction.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "breakhammer/feedback.h"
#include "breakhammer/security_model.h"
#include "sim/redteam.h"
#include "sim/system.h"

namespace bh {
namespace {

/** Run an 8-core mix with @p attackers attacker threads; report marks. */
struct AttackOutcome
{
    std::uint64_t benignMarks = 0;
    std::uint64_t attackerMarks = 0;
};

AttackOutcome
runEightCore(unsigned attackers, double th_outlier)
{
    const unsigned cores = 8;
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.mitigation = MitigationType::kPara;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.bh.window = 200000;
    cfg.bh.thThreat = 2.0;
    cfg.bh.thOutlier = th_outlier;

    const char *benign_apps[] = {"mcf_like",   "lbm_like",
                                 "parest_like", "tpcc_like",
                                 "namd_like",  "h264_like",
                                 "zeusmp_like", "cactus_like"};
    std::vector<WorkloadSlot> slots(cores);
    for (unsigned i = 0; i < cores; ++i) {
        if (i >= cores - attackers) {
            slots[i].kind = WorkloadSlot::Kind::kAttacker;
            slots[i].attacker.numBanks = 8;
        } else {
            slots[i].appName = benign_apps[i];
        }
    }

    System sys(cfg, slots);
    sys.run(50000, 15000000);

    AttackOutcome out;
    const BreakHammer *bh = sys.breakHammer();
    for (unsigned i = 0; i < cores; ++i) {
        bool marked = bh->isSuspect(i) || bh->wasRecentSuspect(i) ||
                      bh->quota(i) < 64;
        if (i >= cores - attackers) {
            out.attackerMarks += marked ? 1 : 0;
        } else {
            out.benignMarks += marked ? 1 : 0;
        }
    }
    return out;
}

TEST(MultiThreadAttackTest, SingleAttackerIsDetected)
{
    AttackOutcome out = runEightCore(1, 0.65);
    EXPECT_EQ(out.attackerMarks, 1u);
    // Benign misidentification exists but stays a small minority (the
    // paper itself reports 18.7% of simulations marking a benign app).
    EXPECT_LE(out.benignMarks, 2u);
}

TEST(MultiThreadAttackTest, TwoAttackersBothDetected)
{
    AttackOutcome out = runEightCore(2, 0.65);
    EXPECT_EQ(out.attackerMarks, 2u);
    EXPECT_LE(out.benignMarks, 2u);
}

TEST(MultiThreadAttackTest, RiggedMeanEvadesDetection)
{
    // 7 of 8 threads attack: fraction 0.875; with TH_outlier = 0.05 the
    // rigging bound (1.05 * 0.875 < 1) is barely not met, but with the
    // attack threads behaving identically none can exceed the mean by
    // 1.65x when they ARE 7/8 of the mean — at TH_outlier = 0.65 the
    // analytic bound is unbounded: (1 + 0.65) * 0.875 > 1.
    EXPECT_TRUE(std::isinf(maxAttackerScoreBound(0.875, 0.65)));
    AttackOutcome out = runEightCore(7, 0.65);
    // Detection collapses: most attack threads evade.
    EXPECT_LT(out.attackerMarks, 7u);
}

TEST(MultiThreadAttackTest, TighterOutlierRaisesTheBar)
{
    // Expression 2: lowering TH_outlier lowers the score an attacker can
    // reach undetected (monotonicity of the analytic bound).
    EXPECT_LT(maxAttackerScoreBound(0.5, 0.05),
              maxAttackerScoreBound(0.5, 0.65));
    EXPECT_LT(maxAttackerScoreBound(0.25, 0.05),
              maxAttackerScoreBound(0.25, 0.65));
}

TEST(MultiThreadAttackTest, OwnerAccumulationCatchesRotatingAdaptive)
{
    // The adversarial engine's hand-off rotation (§5.2 threat expressed
    // as a red-team strategy): two adaptive attacker threads alternate
    // ownership of the attack on a record-count epoch and back off when
    // their feedback view reports throttling. Per-thread suspect state
    // can collapse under this schedule — which is exactly why feedback.h
    // accumulates scores at the software-level owner. Polled on
    // scheduler-tick cadence, the monitor must rank the owner of the
    // rotating pair above every benign owner.
    const unsigned cores = 8;
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.mitigation = MitigationType::kPara;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.bh.window = 200000;
    cfg.bh.thThreat = 2.0;
    cfg.bh.thOutlier = 0.65;

    const char *benign_apps[] = {"mcf_like",    "lbm_like",
                                 "parest_like", "tpcc_like",
                                 "namd_like",   "h264_like"};
    std::vector<WorkloadSlot> slots(cores);
    for (unsigned i = 0; i < 6; ++i)
        slots[i].appName = benign_apps[i];
    for (unsigned i = 6; i < cores; ++i)
        slots[i].kind = WorkloadSlot::Kind::kAttacker;

    RedteamStrategy strategy;
    strategy.pattern = AttackPattern::kDoubleSided;
    strategy.observeEvery = 64;
    strategy.maxBubbles = 8; // Shallow back-off: keep hammering hard.
    strategy.group = 2;
    strategy.handoffEpoch = 512;
    applyRedteamStrategy(strategy, &slots);
    ASSERT_EQ(slots[6].kind, WorkloadSlot::Kind::kAdaptiveAttacker);
    ASSERT_EQ(slots[7].adaptive.slotIndex, 1u);

    System sys(cfg, slots);
    SoftwareMonitor monitor(sys.breakHammer(), cores);
    const OwnerId attack_owner = 42;
    for (unsigned i = 0; i < 6; ++i)
        monitor.bind(i, 100 + i); // Each benign app its own process.
    for (unsigned i = 6; i < cores; ++i)
        monitor.bind(i, attack_owner); // One process owns both threads.

    // Scheduler-tick polling: run in phases, poll between them so score
    // increases are accredited before window resets wipe the per-thread
    // counters.
    sys.run(4000, 15000000);
    monitor.poll();
    for (int tick = 0; tick < 11; ++tick) {
        sys.runDelta(4000, 15000000);
        monitor.poll();
    }

    // The owner total crosses the threat threshold and dominates every
    // benign owner: the monitor's top suspect is the rotating pair's
    // process, regardless of what the per-thread marks say.
    EXPECT_GT(monitor.ownerScore(attack_owner), cfg.bh.thThreat);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_GT(monitor.ownerScore(attack_owner),
                  monitor.ownerScore(100 + i))
            << "benign owner " << 100 + i;
    auto flagged = monitor.flaggedOwners(monitor.ownerScore(attack_owner));
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], attack_owner);
}

/** Detection sweep: attackers in 1..4 of 8 threads stay detectable. */
class AttackerCountSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(AttackerCountSweep, MajorityBenignStillDetects)
{
    unsigned attackers = GetParam();
    AttackOutcome out = runEightCore(attackers, 0.65);
    // Below the rigging bound, at least one attack thread gets caught,
    // and marked benign threads stay a minority of the benign pool.
    EXPECT_GE(out.attackerMarks, 1u);
    EXPECT_LE(out.benignMarks, (8 - attackers) / 2);
}

INSTANTIATE_TEST_SUITE_P(Counts, AttackerCountSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace bh
