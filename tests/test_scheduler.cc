/**
 * @file
 * Tests for the parallel experiment engine (sim/scheduler.h): scheduler
 * determinism across worker counts, per-run seed derivation, streaming,
 * and golden-value regressions for the paper's headline metrics on two
 * small fixed mixes. (The memoization layer that used to live here as
 * ExperimentPool is now the ResultStore — see test_result_store.cc.)
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "sim/scheduler.h"
#include "stats/result_log.h"

namespace bh {
namespace {

/** Instruction horizon small enough for fast tests, long enough for the
 *  mitigations and BreakHammer windows to engage. */
constexpr std::uint64_t kInsts = 20000;

ExperimentConfig
smallConfig(const char *pattern, MitigationType mech, unsigned n_rh,
            bool bh_on)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix(pattern, 0);
    cfg.mechanism = mech;
    cfg.nRh = n_rh;
    cfg.breakHammer = bh_on;
    cfg.instructions = kInsts;
    return cfg;
}

std::vector<ExperimentConfig>
testGrid()
{
    return {
        smallConfig("HHMA", MitigationType::kGraphene, 512, true),
        smallConfig("HHMA", MitigationType::kGraphene, 512, false),
        smallConfig("LLLA", MitigationType::kPara, 1024, true),
        smallConfig("MMLL", MitigationType::kNone, 1024, false),
        smallConfig("MMLA", MitigationType::kRfm, 256, true),
        smallConfig("HHMM", MitigationType::kHydra, 512, false),
    };
}

/** Bit-exact equality of two experiment results. */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup);
    EXPECT_EQ(a.maxSlowdown, b.maxSlowdown);
    EXPECT_EQ(a.energyNj, b.energyNj);
    EXPECT_EQ(a.preventiveActions, b.preventiveActions);
    EXPECT_EQ(a.raw.cycles, b.raw.cycles);
    EXPECT_EQ(a.raw.demandActs, b.raw.demandActs);
    EXPECT_EQ(a.raw.suspectMarks, b.raw.suspectMarks);
    EXPECT_EQ(a.raw.quotaRejections, b.raw.quotaRejections);
    EXPECT_EQ(a.raw.benignIpcs(), b.raw.benignIpcs());
    EXPECT_TRUE(a.raw.benignReadLatencyNs == b.raw.benignReadLatencyNs);
}

TEST(SchedulerTest, IdenticalResultsAt1And2And8Threads)
{
    std::vector<ExperimentConfig> grid = testGrid();

    std::vector<std::vector<ExperimentResult>> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        SchedulerOptions options;
        options.threads = threads;
        ExperimentScheduler scheduler(options);
        EXPECT_EQ(scheduler.threadCount(), threads);
        runs.push_back(scheduler.run(grid));
    }

    for (const auto &run : runs)
        ASSERT_EQ(run.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        expectIdentical(runs[0][i], runs[1][i]);
        expectIdentical(runs[0][i], runs[2][i]);
    }
}

TEST(SchedulerTest, DerivedSeedsAreDeterministicAcrossThreadCounts)
{
    std::vector<ExperimentConfig> grid = testGrid();

    std::vector<std::vector<ExperimentResult>> runs;
    for (unsigned threads : {1u, 8u}) {
        SchedulerOptions options;
        options.threads = threads;
        options.deriveSeeds = true;
        ExperimentScheduler scheduler(options);
        runs.push_back(scheduler.run(grid));
    }
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectIdentical(runs[0][i], runs[1][i]);
}

TEST(SchedulerTest, DeriveRunSeedIsPureAndDecorrelated)
{
    EXPECT_EQ(ExperimentScheduler::deriveRunSeed(1, 0),
              ExperimentScheduler::deriveRunSeed(1, 0));
    EXPECT_NE(ExperimentScheduler::deriveRunSeed(1, 0),
              ExperimentScheduler::deriveRunSeed(1, 1));
    EXPECT_NE(ExperimentScheduler::deriveRunSeed(1, 0),
              ExperimentScheduler::deriveRunSeed(2, 0));
    EXPECT_NE(ExperimentScheduler::deriveRunSeed(0, 0), 0u);
}

TEST(SchedulerTest, MatchesDirectRunExperiment)
{
    ExperimentConfig cfg =
        smallConfig("HHMA", MitigationType::kGraphene, 512, true);
    ExperimentResult direct = runExperiment(cfg);

    SchedulerOptions options;
    options.threads = 2;
    ExperimentScheduler scheduler(options);
    std::vector<ExperimentResult> scheduled = scheduler.run({cfg});
    ASSERT_EQ(scheduled.size(), 1u);
    expectIdentical(direct, scheduled[0]);
}

TEST(SchedulerTest, StreamsEveryIndexExactlyOnce)
{
    std::vector<ExperimentConfig> grid = testGrid();

    std::set<std::size_t> seen;
    std::atomic<unsigned> calls{0};
    SchedulerOptions options;
    options.threads = 4;
    options.onResult = [&](std::size_t index, const ExperimentConfig &,
                           const ExperimentResult &) {
        seen.insert(index); // serialized by the scheduler's stream lock
        ++calls;
    };
    ResultLog log;
    options.log = &log;
    ExperimentScheduler scheduler(options);
    scheduler.run(grid);

    EXPECT_EQ(calls.load(), grid.size());
    EXPECT_EQ(seen.size(), grid.size());
    EXPECT_EQ(log.size(), grid.size());

    // The log's export is index-ordered regardless of completion order.
    std::vector<ResultRecord> sorted = log.sorted();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        EXPECT_EQ(sorted[i].index, i);
        EXPECT_EQ(sorted[i].key, experimentKey(grid[i]));
    }
}

TEST(SchedulerTest, LogExportIsIdenticalAcrossThreadCounts)
{
    std::vector<ExperimentConfig> grid = testGrid();

    std::vector<std::string> dumps;
    for (unsigned threads : {1u, 8u}) {
        ResultLog log;
        SchedulerOptions options;
        options.threads = threads;
        options.log = &log;
        ExperimentScheduler scheduler(options);
        scheduler.run(grid);
        dumps.push_back(log.toJson().dump());
    }
    EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(SchedulerTest, ExperimentKeyDistinguishesEveryKnob)
{
    ExperimentConfig base =
        smallConfig("HHMA", MitigationType::kGraphene, 512, true);
    std::set<std::string> keys;
    keys.insert(experimentKey(base));

    ExperimentConfig c = base;
    c.nRh = 256;
    keys.insert(experimentKey(c));
    c = base;
    c.mechanism = MitigationType::kPara;
    keys.insert(experimentKey(c));
    c = base;
    c.breakHammer = false;
    keys.insert(experimentKey(c));
    c = base;
    c.bh.window = 123456;
    keys.insert(experimentKey(c));
    c = base;
    c.bh.thThreat = 7.5;
    keys.insert(experimentKey(c));
    c = base;
    c.bluntThrottle = true;
    keys.insert(experimentKey(c));
    c = base;
    c.seed = 99;
    keys.insert(experimentKey(c));
    c = base;
    c.instructions = kInsts + 1;
    keys.insert(experimentKey(c));

    EXPECT_EQ(keys.size(), 9u);
}

// ---------------------------------------------------------------------
// Golden-value regressions: the headline metrics on two small fixed
// mixes must not drift silently. Values recorded from the seed
// implementation at kInsts = 20000 (see CHANGES.md); any legitimate
// change to simulator behavior must update them consciously.
// ---------------------------------------------------------------------

TEST(GoldenTest, GrapheneWithBreakHammerOnHhmaAttackMix)
{
    ExperimentResult r = runExperiment(
        smallConfig("HHMA", MitigationType::kGraphene, 512, true));
    EXPECT_NEAR(r.weightedSpeedup, 0.72237629069954734, 1e-9);
    EXPECT_NEAR(r.maxSlowdown, 5.4407584830339317, 1e-9);
    EXPECT_EQ(r.preventiveActions, 28u);
}

TEST(GoldenTest, ParaOnLllaAttackMix)
{
    ExperimentResult r = runExperiment(
        smallConfig("LLLA", MitigationType::kPara, 1024, false));
    EXPECT_NEAR(r.weightedSpeedup, 0.4050787225408623, 1e-9);
    EXPECT_NEAR(r.maxSlowdown, 8.7126353790613713, 1e-9);
    EXPECT_EQ(r.preventiveActions, 87u);
}

} // namespace
} // namespace bh
