/**
 * @file
 * Tests for the JSON layer (stats/json.h), histogram percentile edge
 * cases (stats/histogram.h), histogram JSON round-tripping
 * (stats/json_stats.h), and the ResultLog export format.
 */
#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/json.h"
#include "stats/json_stats.h"
#include "stats/result_log.h"

namespace bh {
namespace {

// ------------------------------------------------------------ JsonValue

TEST(JsonTest, DumpAndParseScalars)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(std::uint64_t{1234567890123}).dump(),
              "1234567890123");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");

    JsonValue v;
    ASSERT_TRUE(JsonValue::parse("3.5", &v));
    EXPECT_DOUBLE_EQ(v.asDouble(), 3.5);
    ASSERT_TRUE(JsonValue::parse("  true ", &v));
    EXPECT_TRUE(v.asBool());
    ASSERT_TRUE(JsonValue::parse("\"a\\nb\"", &v));
    EXPECT_EQ(v.asString(), "a\nb");
}

TEST(JsonTest, DoubleRoundTripIsExact)
{
    const double values[] = {0.72237629069954734, 1.0 / 3.0, 1e-300,
                             123456789.123456789, -0.0, 5.4407584830339317};
    for (double x : values) {
        JsonValue parsed;
        ASSERT_TRUE(JsonValue::parse(JsonValue(x).dump(), &parsed));
        EXPECT_EQ(parsed.asDouble(), x);
    }
}

TEST(JsonTest, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", 1);
    obj.set("apple", 2);
    obj.set("mango", 3);
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");

    obj.set("apple", 9); // replace in place, order unchanged
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(JsonTest, NestedRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", "mix \"HHMA\"\n");
    JsonValue arr = JsonValue::array();
    arr.push(1);
    arr.push(JsonValue());
    arr.push(false);
    JsonValue inner = JsonValue::object();
    inner.set("x", 2.5);
    arr.push(std::move(inner));
    doc.set("data", std::move(arr));

    for (int indent : {-1, 2}) {
        JsonValue parsed;
        ASSERT_TRUE(JsonValue::parse(doc.dump(indent), &parsed));
        EXPECT_TRUE(parsed == doc);
    }
}

TEST(JsonTest, ParseRejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("", &v, &err));
    EXPECT_FALSE(JsonValue::parse("{", &v, &err));
    EXPECT_FALSE(JsonValue::parse("[1,]", &v, &err));
    EXPECT_FALSE(JsonValue::parse("{\"a\" 1}", &v, &err));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", &v, &err));
    EXPECT_FALSE(JsonValue::parse("tru", &v, &err));
    EXPECT_FALSE(JsonValue::parse("1 2", &v, &err));
    EXPECT_FALSE(err.empty());
}

// -------------------------------------------- Histogram edge cases

TEST(HistogramTest, EmptyHistogramPercentiles)
{
    Histogram h(2.0, 16);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0), 0.0);
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(h.percentile(100), 0.0);
}

TEST(HistogramTest, SingleSamplePercentiles)
{
    Histogram h(2.0, 16);
    h.record(5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 5.0);
    // p0 is the histogram's lower bound on the minimum: the lower edge
    // of the sample's bin [4, 6) — not a flat 0.
    EXPECT_EQ(h.percentile(0), 4.0);
    EXPECT_EQ(h.percentile(100), 5.0);     // p100 is the observed max
    // Any mid percentile interpolates inside the bin but is capped at
    // the observed max: a lone sample's p99 must not exceed the sample.
    EXPECT_GE(h.percentile(50), 4.0);
    EXPECT_LE(h.percentile(50), 5.0);
    EXPECT_EQ(h.percentile(99), 5.0);
}

TEST(HistogramTest, InterpolationNeverExceedsObservedMax)
{
    // 10 samples at 1.0 in bin [1, 2): the raw interpolation formula for
    // p99 lands at 1.99 * width, past every recorded value. The observed
    // max must cap it.
    Histogram h(1.0, 16);
    for (int i = 0; i < 10; ++i)
        h.record(1.0);
    EXPECT_EQ(h.percentile(99), 1.0);
    EXPECT_EQ(h.percentile(100), 1.0);
    // Monotone through the cap.
    double prev = 0.0;
    for (double p = 0; p <= 100; p += 5) {
        double v = h.percentile(p);
        EXPECT_GE(v, prev);
        EXPECT_LE(v, h.max());
        prev = v;
    }
}

TEST(HistogramTest, P0ReportsFirstOccupiedBin)
{
    Histogram h(10.0, 16);
    h.record(57.0); // bin [50, 60)
    h.record(99.0); // bin [90, 100)
    EXPECT_EQ(h.percentile(0), 50.0);
    EXPECT_EQ(h.percentile(-1), 50.0); // clamped below
}

TEST(HistogramTest, OverflowOnlySamplesReportMaxEverywhere)
{
    Histogram h(1.0, 4); // regular bins cover [0, 4)
    h.record(1000.0);
    // Mid/high percentiles of an overflow-only population report the
    // observed max (the overflow bin has no upper edge to interpolate
    // toward); p0 reports the overflow bin's lower edge — the only
    // lower bound the histogram still knows.
    EXPECT_EQ(h.percentile(0), 4.0);
    EXPECT_EQ(h.percentile(50), 1000.0);
    EXPECT_EQ(h.percentile(100), 1000.0);
}

TEST(HistogramTest, P0AndP100OnManySamples)
{
    Histogram h(1.0, 64);
    for (int i = 0; i < 100; ++i)
        h.record(static_cast<double>(i % 10));
    EXPECT_EQ(h.percentile(0), 0.0);
    EXPECT_EQ(h.percentile(-5), 0.0);   // clamped below
    EXPECT_EQ(h.percentile(100), 9.0);
    EXPECT_EQ(h.percentile(150), 9.0);  // clamped above
    EXPECT_LE(h.percentile(50), h.percentile(90));
}

TEST(HistogramTest, OverflowBinReportsObservedMax)
{
    Histogram h(1.0, 4); // regular bins cover [0, 4)
    h.record(1000.0);
    h.record(2000.0);
    EXPECT_EQ(h.max(), 2000.0);
    EXPECT_EQ(h.percentile(99), 2000.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero)
{
    Histogram h(1.0, 8);
    h.record(-3.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.rawBins()[0], 1u);
}

// ------------------------------------------------ JSON round-tripping

TEST(JsonStatsTest, HistogramRoundTripsThroughJson)
{
    Histogram h(2.0, 64);
    for (int i = 0; i < 500; ++i)
        h.record(static_cast<double>((i * 7) % 130)); // incl. overflow
    h.record(1e6); // deep overflow

    std::string text = histogramToJson(h).dump();
    Histogram back = histogramFromJson(JsonValue::parseOrDie(text));

    EXPECT_TRUE(back == h);
    EXPECT_EQ(back.count(), h.count());
    EXPECT_EQ(back.mean(), h.mean());
    EXPECT_EQ(back.max(), h.max());
    for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(back.percentile(p), h.percentile(p));
}

TEST(JsonStatsTest, EmptyHistogramRoundTrips)
{
    Histogram h(0.5, 8);
    Histogram back =
        histogramFromJson(JsonValue::parseOrDie(histogramToJson(h).dump()));
    EXPECT_TRUE(back == h);
    EXPECT_EQ(back.count(), 0u);
}

TEST(JsonStatsTest, SparseBinsEncodeCompactly)
{
    Histogram h(1.0, 4096);
    h.record(3.0);
    JsonValue v = histogramToJson(h);
    EXPECT_EQ(v.get("bins").size(), 1u); // one populated bin, not 4097
}

TEST(ResultLogTest, JsonRoundTripPreservesRecords)
{
    ResultLog log;
    JsonValue payload = JsonValue::object();
    payload.set("ws", 1.25);
    log.append(2, "key-c", payload);
    log.append(0, "key-a", JsonValue("hello"));
    log.append(1, "key-b", JsonValue(7));

    JsonValue doc = log.toJson();

    ResultLog back;
    back.loadJson(JsonValue::parseOrDie(doc.dump(2)));
    EXPECT_EQ(back.size(), 3u);
    EXPECT_TRUE(back.toJson() == doc);

    std::vector<ResultRecord> sorted = back.sorted();
    EXPECT_EQ(sorted[0].key, "key-a");
    EXPECT_EQ(sorted[1].key, "key-b");
    EXPECT_EQ(sorted[2].key, "key-c");
    EXPECT_EQ(sorted[2].payload.get("ws").asDouble(), 1.25);
}

} // namespace
} // namespace bh
