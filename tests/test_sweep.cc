/**
 * @file
 * Tests for the declarative sweep builder (sim/sweep.h): axis expansion
 * order and counts against hand-rolled loops, neutral defaults, baseline
 * points, variant and forEach transforms, and section merging.
 */
#include <gtest/gtest.h>

#include "sim/sweep.h"

namespace bh {
namespace {

std::vector<std::string>
keysOf(const std::vector<ExperimentConfig> &configs)
{
    std::vector<std::string> keys;
    for (const ExperimentConfig &cfg : configs)
        keys.push_back(experimentKey(cfg));
    return keys;
}

TEST(SweepSpecTest, DefaultsAreSingleNeutralPoint)
{
    SweepSpec spec("one");
    spec.mix(makeMix("HHMM", 0)).mechanism(MitigationType::kHydra);

    std::vector<ExperimentConfig> points = spec.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(spec.name(), "one");
    EXPECT_EQ(points[0].mix.name, makeMix("HHMM", 0).name);
    EXPECT_EQ(points[0].mechanism, MitigationType::kHydra);
    EXPECT_EQ(points[0].nRh, 1024u);
    EXPECT_FALSE(points[0].breakHammer);
    EXPECT_EQ(points[0].instructions, 0u);
    EXPECT_FALSE(points[0].oracle);
}

TEST(SweepSpecTest, ExpandMatchesHandRolledLoops)
{
    const std::vector<MixSpec> mixes = {makeMix("HHMM", 0),
                                        makeMix("LLLA", 1)};
    const std::vector<unsigned> nrhs = {64, 1024};
    const std::vector<MitigationType> mechs = {MitigationType::kHydra,
                                               MitigationType::kPara};

    SweepSpec spec("grid");
    spec.mixes(mixes)
        .withBaselines()
        .nRhValues(nrhs)
        .mechanisms(mechs)
        .breakHammerAxis();

    // The hand-rolled enumeration the spec replaces.
    std::vector<ExperimentConfig> expected;
    for (const MixSpec &mix : mixes) {
        expected.push_back(SweepSpec::baselinePoint(mix));
        for (unsigned n_rh : nrhs)
            for (MitigationType mech : mechs)
                for (bool bh_on : {false, true}) {
                    ExperimentConfig cfg;
                    cfg.mix = mix;
                    cfg.mechanism = mech;
                    cfg.nRh = n_rh;
                    cfg.breakHammer = bh_on;
                    expected.push_back(cfg);
                }
    }

    EXPECT_EQ(keysOf(spec.expand()), keysOf(expected));
    EXPECT_EQ(spec.pointCount(), 2u * (1 + 2 * 2 * 2));

    // Expansion is a pure function of the spec.
    EXPECT_EQ(keysOf(spec.expand()), keysOf(spec.expand()));
}

TEST(SweepSpecTest, BaselinePointIsCanonical)
{
    ExperimentConfig base = SweepSpec::baselinePoint(makeMix("HHMA", 0));
    EXPECT_EQ(base.mechanism, MitigationType::kNone);
    EXPECT_EQ(base.nRh, 1024u);
    EXPECT_FALSE(base.breakHammer);
    EXPECT_EQ(base.instructions, 0u);
}

TEST(SweepSpecTest, MixClassesExpandPerClassInstances)
{
    SweepSpec spec;
    spec.mixClasses({"HHMM", "LLLA"}, 2).mechanism(MitigationType::kNone);

    std::vector<ExperimentConfig> points = spec.expand();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].mix.name, makeMix("HHMM", 0).name);
    EXPECT_EQ(points[1].mix.name, makeMix("HHMM", 1).name);
    EXPECT_EQ(points[2].mix.name, makeMix("LLLA", 0).name);
    EXPECT_EQ(points[3].mix.name, makeMix("LLLA", 1).name);
}

TEST(SweepSpecTest, VariantsMultiplyAndApplyLast)
{
    SweepSpec spec;
    spec.mix(makeMix("HHMA", 0))
        .mechanism(MitigationType::kGraphene)
        .breakHammer(true)
        .variant("strict",
                 [](ExperimentConfig &cfg) { cfg.bh.thThreat = 2.0; })
        .variant("blunt",
                 [](ExperimentConfig &cfg) { cfg.bluntThrottle = true; });

    std::vector<ExperimentConfig> points = spec.expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].bh.thThreat, 2.0);
    EXPECT_FALSE(points[0].bluntThrottle);
    EXPECT_TRUE(points[1].bluntThrottle);
    EXPECT_NE(experimentKey(points[0]), experimentKey(points[1]));
}

TEST(SweepSpecTest, ForEachTweaksSweptPointsButNotBaselines)
{
    SweepSpec spec;
    spec.mix(makeMix("HHMM", 0))
        .withBaselines()
        .mechanism(MitigationType::kHydra)
        .instructions(5000)
        .forEach([](ExperimentConfig &cfg) { cfg.seed = 77; });

    std::vector<ExperimentConfig> points = spec.expand();
    ASSERT_EQ(points.size(), 2u);
    // The baseline stays canonical except for the shared horizon (a
    // normalization denominator must run as long as its numerators).
    EXPECT_EQ(points[0].mechanism, MitigationType::kNone);
    EXPECT_EQ(points[0].seed, 1u);
    EXPECT_EQ(points[0].instructions, 5000u);
    // The swept point takes both the axis values and the tweak.
    EXPECT_EQ(points[1].seed, 77u);
    EXPECT_EQ(points[1].instructions, 5000u);
}

TEST(SweepSpecTest, MergeSplicesSectionsInOrder)
{
    SweepSpec first("a");
    first.mix(makeMix("HHMM", 0)).mechanism(MitigationType::kHydra);
    SweepSpec second("b");
    second.mix(makeMix("LLLA", 0))
        .mechanism(MitigationType::kBlockHammer)
        .nRh(256);

    first.merge(second);
    std::vector<ExperimentConfig> points = first.expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].mechanism, MitigationType::kHydra);
    EXPECT_EQ(points[1].mechanism, MitigationType::kBlockHammer);
    EXPECT_EQ(points[1].nRh, 256u);
}

TEST(SweepSpecTest, OmittedMechanismAxisDefaultsToNoMitigation)
{
    // Forgetting .mechanism() must never produce a silently empty grid
    // (a figure's points would then dodge shard prefetches entirely).
    SweepSpec spec;
    spec.mix(makeMix("HHMM", 0));
    std::vector<ExperimentConfig> points = spec.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].mechanism, MitigationType::kNone);

    // With baselines the two points coincide (same content address) —
    // the store collapses them to one simulation.
    SweepSpec with_base;
    with_base.mix(makeMix("HHMM", 0)).withBaselines();
    std::vector<ExperimentConfig> based = with_base.expand();
    ASSERT_EQ(based.size(), 2u);
    EXPECT_EQ(experimentKey(based[0]), experimentKey(based[1]));
}

} // namespace
} // namespace bh
