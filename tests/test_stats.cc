/**
 * @file
 * Unit tests for src/stats: histogram percentiles and workload metrics.
 */
#include <gtest/gtest.h>

#include <limits>

#include "stats/histogram.h"
#include "stats/metrics.h"

namespace bh {
namespace {

TEST(HistogramTest, EmptyHistogram)
{
    Histogram h(1.0, 16);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(HistogramTest, SingleSample)
{
    Histogram h(1.0, 16);
    h.record(5.2);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.mean(), 5.2, 1e-9);
    EXPECT_NEAR(h.percentile(100), 5.2, 1e-9);
}

TEST(HistogramTest, MedianOfUniformRamp)
{
    Histogram h(1.0, 128);
    for (int i = 0; i < 100; ++i)
        h.record(static_cast<double>(i) + 0.5);
    double median = h.percentile(50);
    EXPECT_NEAR(median, 50.0, 1.5);
    // Percentiles must be monotone.
    double prev = 0.0;
    for (double p = 1; p <= 100; p += 1) {
        double v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(HistogramTest, OverflowBinReportsMax)
{
    Histogram h(1.0, 8);
    h.record(100.0); // Beyond the last bin.
    h.record(200.0);
    EXPECT_NEAR(h.percentile(99), 200.0, 1e-9);
    EXPECT_NEAR(h.max(), 200.0, 1e-9);
}

TEST(HistogramTest, NegativeClampsToZero)
{
    Histogram h(1.0, 8);
    h.record(-3.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.percentile(100), 0.0, 1e-9);
}

TEST(HistogramTest, MergeCombinesCounts)
{
    Histogram a(1.0, 32), b(1.0, 32);
    for (int i = 0; i < 10; ++i)
        a.record(1.0);
    for (int i = 0; i < 10; ++i)
        b.record(21.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 20u);
    EXPECT_NEAR(a.mean(), 11.0, 1e-9);
    EXPECT_GT(a.percentile(90), 20.0);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h(1.0, 8);
    h.record(3.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.droppedSamples(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, NanRoutesToDroppedCounter)
{
    // NaN compares false against every guard, so the old code fell
    // through to an undefined double->size_t cast. It must be dropped,
    // not recorded, and must not disturb the accumulated statistics.
    Histogram h(1.0, 8);
    h.record(2.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(-std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.droppedSamples(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(HistogramTest, HugeValuesClampToOverflowBin)
{
    // value / binWidth_ beyond size_t range (1e300, or +inf) made the
    // cast UB; the quotient must clamp to the overflow bin in floating
    // point first.
    Histogram h(2.0, 16);
    h.record(1e300);
    h.record(std::numeric_limits<double>::infinity());
    h.record(static_cast<double>(UINT64_MAX) * 4.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.droppedSamples(), 0u);
    EXPECT_EQ(h.rawBins().back(), 3u);
}

TEST(HistogramTest, MergeAccumulatesDroppedSamples)
{
    Histogram a(1.0, 8), b(1.0, 8);
    a.record(std::numeric_limits<double>::quiet_NaN());
    b.record(std::numeric_limits<double>::quiet_NaN());
    b.record(1.0);
    a.merge(b);
    EXPECT_EQ(a.droppedSamples(), 2u);
    EXPECT_EQ(a.count(), 1u);
}

TEST(MetricsTest, WeightedSpeedupIdentity)
{
    std::vector<double> shared = {1.0, 2.0, 0.5};
    EXPECT_NEAR(weightedSpeedup(shared, shared), 3.0, 1e-12);
}

TEST(MetricsTest, WeightedSpeedupHalved)
{
    std::vector<double> alone = {2.0, 2.0};
    std::vector<double> shared = {1.0, 1.0};
    EXPECT_NEAR(weightedSpeedup(shared, alone), 1.0, 1e-12);
}

TEST(MetricsTest, MaxSlowdownPicksWorst)
{
    std::vector<double> alone = {2.0, 3.0, 1.0};
    std::vector<double> shared = {1.0, 1.0, 0.9};
    EXPECT_NEAR(maxSlowdown(shared, alone), 3.0, 1e-12);
}

TEST(MetricsTest, GeomeanBasics)
{
    EXPECT_NEAR(geomean({4.0, 1.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({5.0}), 5.0, 1e-12);
}

TEST(MetricsTest, MeanBasics)
{
    EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
    EXPECT_NEAR(mean({}), 0.0, 1e-12);
}

TEST(MetricsTest, BoxStatsOrdering)
{
    BoxStats s = boxStats({5, 1, 4, 2, 3});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_LE(s.q1, s.median);
    EXPECT_LE(s.median, s.q3);
}

TEST(MetricsTest, BoxStatsEmptyAndSingle)
{
    BoxStats e = boxStats({});
    EXPECT_DOUBLE_EQ(e.median, 0.0);
    BoxStats s = boxStats({7.0});
    EXPECT_DOUBLE_EQ(s.min, 7.0);
    EXPECT_DOUBLE_EQ(s.max, 7.0);
    EXPECT_DOUBLE_EQ(s.median, 7.0);
}

/** Property sweep: percentile interpolation stays within observed range. */
class HistogramPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(HistogramPropertyTest, PercentilesWithinRange)
{
    int seed = GetParam();
    Histogram h(0.5, 256);
    double lo = 1e18, hi = -1;
    unsigned x = static_cast<unsigned>(seed) * 2654435761u + 1;
    for (int i = 0; i < 500; ++i) {
        x = x * 1664525u + 1013904223u;
        double v = static_cast<double>(x % 100000) / 1000.0;
        h.record(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        double v = h.percentile(p);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, hi + 0.5); // Bin-width slack.
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Range(1, 9));

} // namespace
} // namespace bh
