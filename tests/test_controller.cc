/**
 * @file
 * Unit tests for src/mem: scheduling, refresh, maintenance operations, and
 * the mitigation/observer hook points.
 */
#include <gtest/gtest.h>

#include <vector>

#include "dram/address.h"
#include "mem/controller.h"

namespace bh {
namespace {

struct Completion
{
    Request req;
    Cycle at;
};

class ControllerFixture : public ::testing::Test
{
  protected:
    ControllerFixture()
        : spec(DramSpec::ddr5()), map(spec.org), mc(spec, map, McConfig{})
    {
        mc.onReadComplete = [this](const Request &r, Cycle c) {
            completions.push_back({r, c});
        };
    }

    /** Address of (bank 0, given row/column) through the mapper. */
    Addr
    addrOf(unsigned row, unsigned column = 0, unsigned bank_group = 0)
    {
        DramAddress da;
        da.row = row;
        da.column = column;
        da.bankGroup = bank_group;
        return map.encode(da);
    }

    void
    runUntil(Cycle end)
    {
        for (; now < end; ++now)
            mc.tick(now);
    }

    Request
    readReq(Addr addr, ThreadId thread = 0, std::uint64_t token = 0)
    {
        Request r;
        r.type = Request::Type::kRead;
        r.addr = addr;
        r.thread = thread;
        r.token = token;
        return r;
    }

    DramSpec spec;
    AddressMap map;
    MemoryController mc;
    std::vector<Completion> completions;
    Cycle now = 0;
};

TEST_F(ControllerFixture, SingleReadCompletesWithRowMissLatency)
{
    mc.enqueueRead(readReq(addrOf(5)), 0);
    runUntil(2000);
    ASSERT_EQ(completions.size(), 1u);
    // ACT + tRCD + tCL + tBL, plus command-slot granularity.
    Cycle min_latency =
        spec.timing.tRCD + spec.timing.tCL + spec.timing.tBL;
    EXPECT_GE(completions[0].at, min_latency);
    EXPECT_LE(completions[0].at, min_latency + 20);
}

TEST_F(ControllerFixture, RowHitFasterThanConflict)
{
    mc.enqueueRead(readReq(addrOf(5, 0), 0, 1), 0);
    runUntil(300);
    ASSERT_EQ(completions.size(), 1u);
    Cycle first = completions[0].at;

    // Same row: hit (no ACT needed).
    mc.enqueueRead(readReq(addrOf(5, 4), 0, 2), now);
    Cycle start = now;
    runUntil(now + 300);
    ASSERT_EQ(completions.size(), 2u);
    Cycle hit_latency = completions[1].at - start;
    EXPECT_LT(hit_latency, first);

    // Different row: conflict (PRE + ACT + RD).
    mc.enqueueRead(readReq(addrOf(9, 0), 0, 3), now);
    start = now;
    runUntil(now + 2000);
    ASSERT_EQ(completions.size(), 3u);
    Cycle conflict_latency = completions[2].at - start;
    EXPECT_GT(conflict_latency, hit_latency);
}

TEST_F(ControllerFixture, FrFcfsCapBoundsHitReordering)
{
    McConfig cfg;
    cfg.frfcfsCap = 4;
    MemoryController capped(spec, map, cfg);
    std::vector<Completion> done;
    capped.onReadComplete = [&](const Request &r, Cycle c) {
        done.push_back({r, c});
    };

    // Open row 5, then enqueue an older conflict (row 9) followed by a
    // stream of row-5 hits. At most `cap` hits may bypass the conflict.
    capped.enqueueRead(readReq(addrOf(5, 0), 0, 100), 0);
    Cycle t = 0;
    for (; t < 400; ++t)
        capped.tick(t);
    ASSERT_EQ(done.size(), 1u);

    capped.enqueueRead(readReq(addrOf(9, 0), 1, 999), t); // Conflict.
    for (unsigned i = 0; i < 12; ++i)
        capped.enqueueRead(readReq(addrOf(5, 1 + i), 0, i), t); // Hits.
    for (; t < 6000 && done.size() < 14; ++t)
        capped.tick(t);
    ASSERT_EQ(done.size(), 14u);

    // Find the conflict's completion position: <= cap hits before it.
    unsigned position = 0;
    for (unsigned i = 1; i < done.size(); ++i) {
        if (done[i].req.token == 999) {
            position = i - 1; // Hits served before the conflict.
            break;
        }
    }
    EXPECT_LE(position, cfg.frfcfsCap);
}

TEST_F(ControllerFixture, PeriodicRefreshHappens)
{
    unsigned refreshes = 0;
    mc.onPeriodicRefresh = [&](unsigned, unsigned, unsigned) {
        ++refreshes;
    };
    runUntil(spec.timing.tREFI * 3 + 100);
    // Two ranks, three intervals each (allow boundary slack).
    EXPECT_GE(refreshes, 4u);
    EXPECT_LE(refreshes, 8u);
}

TEST_F(ControllerFixture, RefreshSweepAdvances)
{
    std::vector<unsigned> starts;
    mc.onPeriodicRefresh = [&](unsigned rank, unsigned start, unsigned n) {
        if (rank == 0)
            starts.push_back(start);
        EXPECT_EQ(n, spec.org.rowsPerBank / 8192);
    };
    runUntil(spec.timing.tREFI * 3 + 100);
    ASSERT_GE(starts.size(), 2u);
    EXPECT_NE(starts[0], starts[1]);
}

TEST_F(ControllerFixture, VictimRefreshBlocksBankAndNotifies)
{
    unsigned protected_row = 0;
    mc.onRowProtected = [&](unsigned, unsigned row) {
        protected_row = row;
    };
    mc.performVictimRefresh(0, 42, 1.0);
    EXPECT_EQ(mc.preventiveActions(), 1u);
    runUntil(50);
    EXPECT_EQ(protected_row, 42u);
    // The bank is busy for ~2 tRC: a read takes much longer than usual.
    mc.enqueueRead(readReq(addrOf(7)), now);
    runUntil(now + 3000);
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_GT(completions[0].at, 2 * spec.timing.tRC);
    EXPECT_EQ(mc.engine().energy().victimRows(), 2u);
}

TEST_F(ControllerFixture, MigrationChargesEnergy)
{
    mc.performMigration(3, 10);
    runUntil(100);
    EXPECT_EQ(mc.engine().energy().migrations(), 1u);
    EXPECT_EQ(mc.preventiveActions(), 1u);
}

TEST_F(ControllerFixture, ObserverSeesActionsAndActs)
{
    struct Recorder : IActionObserver
    {
        void onDemandActivate(ThreadId t, unsigned, Cycle) override
        {
            last_thread = t;
            ++acts;
        }
        void onPreventiveAction(double w, Cycle) override
        {
            weight += w;
        }
        void onDirectScore(ThreadId, double, Cycle) override {}
        ThreadId last_thread = kInvalidThread;
        unsigned acts = 0;
        double weight = 0;
    } recorder;

    mc.setObserver(&recorder);
    mc.enqueueRead(readReq(addrOf(5), 3), 0);
    runUntil(500);
    EXPECT_EQ(recorder.acts, 1u);
    EXPECT_EQ(recorder.last_thread, 3u);
    mc.performVictimRefresh(0, 1, 2.5);
    EXPECT_DOUBLE_EQ(recorder.weight, 2.5);
}

TEST_F(ControllerFixture, WritesDrainInBatches)
{
    // Fill the write queue beyond the high watermark; writes get served.
    for (unsigned i = 0; i < 50; ++i) {
        Request w;
        w.type = Request::Type::kWrite;
        w.addr = addrOf(5, i % 64);
        w.thread = 0;
        mc.enqueueWrite(w, 0);
    }
    runUntil(20000);
    EXPECT_GT(mc.writesServed(), 30u);
    EXPECT_LT(mc.writeQueueDepth(), 20u);
}

TEST_F(ControllerFixture, MitigationActReleaseDelaysIssue)
{
    struct Delayer : IMitigation
    {
        const char *name() const override { return "delayer"; }
        void commitAct(unsigned, unsigned, ThreadId, Cycle) override
        {
            ++acts;
        }
        Cycle
        probeActReleaseCycle(unsigned, unsigned row, ThreadId,
                             Cycle now) const override
        {
            // Absolute release time, as BlockHammer computes it.
            return row == 5 ? std::max<Cycle>(now, 5000) : now;
        }
        bool delaysActs() const override { return true; }
        unsigned acts = 0;
    } delayer;

    mc.setMitigation(&delayer);
    mc.enqueueRead(readReq(addrOf(5), 0, 1), 0);  // Delayed row.
    mc.enqueueRead(readReq(addrOf(9), 0, 2), 0);  // Free row, same bank.
    runUntil(2500);
    // The free row overtakes the delayed one.
    ASSERT_GE(completions.size(), 1u);
    EXPECT_EQ(completions[0].req.token, 2u);
    runUntil(9000);
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[1].req.token, 1u);
    EXPECT_GE(completions[1].at, 5000u);
}

TEST_F(ControllerFixture, AlertBackoffBlocksEverything)
{
    mc.performAlertBackoff(4, 1.0);
    // All banks blocked for 4 * tRFM.
    mc.enqueueRead(readReq(addrOf(3)), now);
    runUntil(4 * spec.timing.tRFM - 10);
    EXPECT_TRUE(completions.empty());
    runUntil(4 * spec.timing.tRFM + 2000);
    EXPECT_EQ(completions.size(), 1u);
}

TEST_F(ControllerFixture, QueueCapacityChecks)
{
    McConfig cfg;
    cfg.readQueueSize = 2;
    MemoryController small(spec, map, cfg);
    EXPECT_TRUE(small.canEnqueueRead());
    small.enqueueRead(readReq(addrOf(1)), 0);
    small.enqueueRead(readReq(addrOf(2)), 0);
    EXPECT_FALSE(small.canEnqueueRead());
}

} // namespace
} // namespace bh
