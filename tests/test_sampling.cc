/**
 * @file
 * Statistical interval-sampling tests (runSampledExperiment via
 * runExperiment): spec validation and key separation, byte-identical
 * results across sampling job counts, exact-simulation fallbacks,
 * sampled-vs-exact headline error bounds on the 20k tier, and confidence
 * intervals that shrink as the window count grows.
 *
 * The error bounds mirror ci/sampling_budget.json and are deliberately
 * loose: functional fast-forward warming approximates the detailed
 * machine, and on micro-horizons (20k instructions, a handful of
 * windows) the residual per-core state error is tens of percent (see
 * docs/ARCHITECTURE.md). The bounds are regression tripwires against
 * gross estimator breakage — sign flips, double counting, dropped
 * windows — not precision claims.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/experiment.h"
#include "sim/mixes.h"
#include "stats/json_stats.h"

namespace bh {
namespace {

/** The 20k-tier point the sampled-vs-exact comparisons run on. */
ExperimentConfig
samplePoint(const std::string &mix_class)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix(mix_class, 0);
    cfg.mechanism = MitigationType::kPara;
    cfg.nRh = 1024;
    cfg.breakHammer = true;
    cfg.instructions = 20000;
    return cfg;
}

double
relError(double sampled, double exact)
{
    if (exact == 0.0)
        return sampled == 0.0 ? 0.0 : 1.0;
    return std::fabs(sampled / exact - 1.0);
}

TEST(SamplingSpecTest, EnabledNeedsAllThreePositive)
{
    EXPECT_FALSE(SamplingSpec{}.enabled());
    EXPECT_FALSE((SamplingSpec{1000, 1000, 0}.enabled()));
    EXPECT_FALSE((SamplingSpec{0, 1000, 1000}.enabled()));
    EXPECT_FALSE((SamplingSpec{1000, 0, 1000}.enabled()));
    EXPECT_TRUE((SamplingSpec{1000, 1000, 1000}.enabled()));
}

TEST(SamplingSpecTest, SampledAndExactKeysNeverAlias)
{
    ExperimentConfig exact = samplePoint("HHMA");
    ExperimentConfig sampled = exact;
    sampled.sample = SamplingSpec{1000, 1000, 3500};

    EXPECT_NE(experimentKey(exact), experimentKey(sampled));
    EXPECT_NE(experimentKey(sampled).find("sample=1000/1000/3500"),
              std::string::npos);
    // Exact keys stay in the pre-sampling format: no marker at all.
    EXPECT_EQ(experimentKey(exact).find("sample="), std::string::npos);

    // Different specs are different points too.
    ExperimentConfig other = exact;
    other.sample = SamplingSpec{1000, 1000, 3000};
    EXPECT_NE(experimentKey(sampled), experimentKey(other));
}

TEST(SamplingTest, ResultsAreByteIdenticalAcrossJobCounts)
{
    ExperimentConfig cfg = samplePoint("HHMA");
    cfg.sample = SamplingSpec{1000, 1000, 3500};

    setSamplingJobs(1);
    ExperimentResult one = runExperiment(cfg);
    setSamplingJobs(2);
    ExperimentResult two = runExperiment(cfg);
    setSamplingJobs(1);

    ASSERT_TRUE(one.sampling.enabled);
    ASSERT_TRUE(two.sampling.enabled);
    EXPECT_EQ(experimentResultToJson(cfg, one).dump(),
              experimentResultToJson(cfg, two).dump());
}

TEST(SamplingTest, OracleRunsStayExact)
{
    ExperimentConfig cfg = samplePoint("HHMA");
    cfg.sample = SamplingSpec{1000, 1000, 3500};
    cfg.oracle = true;

    ExperimentResult r = runExperiment(cfg);
    // The oracle audits every activation of the full horizon; a sampled
    // trajectory would miss fast-forwarded violations, so the config
    // must fall back to exact simulation.
    EXPECT_FALSE(r.sampling.enabled);
}

TEST(SamplingTest, HorizonTooShortForOneWindowFallsBackToExact)
{
    ExperimentConfig cfg = samplePoint("HHMA");
    cfg.sample = SamplingSpec{15000, 15000, 15000};

    ExperimentResult sampled_cfg = runExperiment(cfg);
    EXPECT_FALSE(sampled_cfg.sampling.enabled);

    ExperimentConfig exact = samplePoint("HHMA");
    ExperimentResult reference = runExperiment(exact);
    EXPECT_DOUBLE_EQ(sampled_cfg.weightedSpeedup,
                     reference.weightedSpeedup);
}

TEST(SamplingTest, HeadlineMetricsWithinBudgetOf20kExact)
{
    // Bounds match ci/sampling_budget.json (see file-level comment).
    const double kWsBound = 0.40;
    const double kSdBound = 0.45;
    const double kPrevBound = 0.45;
    const double kPrevFloor = 60.0;

    for (const char *mix_class : {"HHMA", "HHHA", "HMLA"}) {
        SCOPED_TRACE(mix_class);
        ExperimentConfig cfg = samplePoint(mix_class);
        ExperimentResult exact = runExperiment(cfg);

        cfg.sample = SamplingSpec{1000, 1000, 3500};
        setSamplingJobs(1);
        ExperimentResult sampled = runExperiment(cfg);
        ASSERT_TRUE(sampled.sampling.enabled);
        EXPECT_EQ(sampled.sampling.windows, 3u);

        EXPECT_LE(relError(sampled.weightedSpeedup,
                           exact.weightedSpeedup),
                  kWsBound);
        EXPECT_LE(relError(sampled.maxSlowdown, exact.maxSlowdown),
                  kSdBound);
        double prev_err = std::fabs(
            static_cast<double>(sampled.preventiveActions) -
            static_cast<double>(exact.preventiveActions));
        EXPECT_TRUE(prev_err <= kPrevFloor ||
                    relError(static_cast<double>(
                                 sampled.preventiveActions),
                             static_cast<double>(
                                 exact.preventiveActions)) <= kPrevBound)
            << "preventive actions: sampled=" << sampled.preventiveActions
            << " exact=" << exact.preventiveActions;
    }
}

TEST(SamplingTest, ConfidenceIntervalsShrinkWithMoreWindows)
{
    ExperimentConfig cfg = samplePoint("HHMA");
    cfg.sample = SamplingSpec{1000, 1000, 3500}; // stride 5500 -> 3 win
    setSamplingJobs(1);
    ExperimentResult few = runExperiment(cfg);

    cfg.sample = SamplingSpec{1000, 1000, 800}; // stride 2800 -> 6 win
    ExperimentResult many = runExperiment(cfg);

    ASSERT_TRUE(few.sampling.enabled);
    ASSERT_TRUE(many.sampling.enabled);
    ASSERT_LT(few.sampling.windows, many.sampling.windows);

    // Same horizon, same per-window shape, twice the windows: the CI of
    // every sampled headline metric must tighten (t-critical shrinks and
    // 1/sqrt(n) falls; the simulation is deterministic, so these are
    // stable values, not a flaky statistical bet).
    EXPECT_LT(many.sampling.weightedSpeedup.ci95,
              few.sampling.weightedSpeedup.ci95);
    EXPECT_LT(many.sampling.preventiveActions.ci95,
              few.sampling.preventiveActions.ci95);
}

TEST(SamplingTest, SampledRecordJsonRoundTrips)
{
    ExperimentConfig cfg = samplePoint("HHMA");
    cfg.sample = SamplingSpec{1000, 1000, 3500};
    setSamplingJobs(1);
    ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.sampling.enabled);

    JsonValue v = experimentResultToJson(cfg, r);
    const JsonValue *s = v.find("sampling");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->find("windows")->asU64(), r.sampling.windows);

    // Round-trip through the parser used by the ResultStore.
    ExperimentResult back;
    ASSERT_TRUE(experimentResultFromJson(v, &back));
    EXPECT_TRUE(back.sampling.enabled);
    EXPECT_EQ(back.sampling.windows, r.sampling.windows);
    EXPECT_DOUBLE_EQ(back.sampling.weightedSpeedup.mean,
                     r.sampling.weightedSpeedup.mean);
    EXPECT_DOUBLE_EQ(back.sampling.weightedSpeedup.ci95,
                     r.sampling.weightedSpeedup.ci95);
    EXPECT_DOUBLE_EQ(back.weightedSpeedup, r.weightedSpeedup);
}

} // namespace
} // namespace bh
