/**
 * @file
 * Unit tests for src/trace: benign generators, attacker generators, the
 * application catalog, and the functional profiler (Table 3 statistics).
 */
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "dram/address.h"
#include "dram/row_census.h"
#include "dram/spec.h"
#include "trace/adaptive.h"
#include "trace/attacker.h"
#include "trace/benign.h"
#include "trace/profiler.h"

namespace bh {
namespace {

AddressMap &
mapper()
{
    static AddressMap m(DramSpec::ddr5().org);
    return m;
}

TEST(CatalogTest, AllTiersPopulated)
{
    EXPECT_GE(appsInTier(IntensityTier::kHigh).size(), 5u);
    EXPECT_GE(appsInTier(IntensityTier::kMedium).size(), 5u);
    EXPECT_GE(appsInTier(IntensityTier::kLow).size(), 5u);
}

TEST(CatalogTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const AppProfile &p : appCatalog())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(CatalogTest, FindAppReturnsMatch)
{
    const AppProfile &p = findApp("mcf_like");
    EXPECT_EQ(p.name, "mcf_like");
    EXPECT_EQ(p.tier, IntensityTier::kHigh);
}

TEST(BenignTraceTest, Deterministic)
{
    const AppProfile &p = findApp("mcf_like");
    BenignTrace a(p, mapper(), 0, 8192, 42);
    BenignTrace b(p, mapper(), 0, 8192, 42);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.bubbles, rb.bubbles);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
    }
}

TEST(BenignTraceTest, StaysInRowRegion)
{
    const AppProfile &p = findApp("lbm_like");
    const unsigned base = 8192, span = 8192;
    BenignTrace t(p, mapper(), base, span, 7);
    for (int i = 0; i < 20000; ++i) {
        DramAddress da = mapper().decode(t.next().addr);
        EXPECT_GE(da.row, base);
        EXPECT_LT(da.row, base + span);
    }
}

TEST(BenignTraceTest, BubblesMatchProfileMean)
{
    const AppProfile &p = findApp("namd_like");
    BenignTrace t(p, mapper(), 0, 8192, 3);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += t.next().bubbles;
    EXPECT_NEAR(sum / n, p.avgBubbles, p.avgBubbles * 0.05);
}

TEST(BenignTraceTest, WriteFractionMatchesProfile)
{
    const AppProfile &p = findApp("lbm_like");
    BenignTrace t(p, mapper(), 0, 8192, 5);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (t.next().isWrite)
            ++writes;
    EXPECT_NEAR(static_cast<double>(writes) / n, p.writeFraction, 0.02);
}

TEST(BenignTraceTest, BenignIsCached)
{
    const AppProfile &p = findApp("mcf_like");
    BenignTrace t(p, mapper(), 0, 8192, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(t.next().uncached);
}

TEST(BenignTraceTest, SequentialLocalityProducesRowRuns)
{
    // A highly sequential profile should often revisit the (bank,row) of
    // the previous access.
    AppProfile p = findApp("libquantum_like");
    p.rowLocality = 0.92;
    BenignTrace t(p, mapper(), 0, 8192, 11);
    unsigned same = 0;
    DramAddress prev = mapper().decode(t.next().addr);
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        DramAddress da = mapper().decode(t.next().addr);
        if (da.row == prev.row && mapper().flatBank(da) ==
                                      mapper().flatBank(prev))
            ++same;
        prev = da;
    }
    EXPECT_GT(same, n / 2);
}

TEST(AttackerTest, EveryAccessIsUncachedRead)
{
    AttackerConfig cfg;
    cfg.rowBase = 100;
    AttackerTrace t(cfg, mapper(), 1);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord r = t.next();
        EXPECT_TRUE(r.uncached);
        EXPECT_FALSE(r.isWrite);
    }
}

TEST(AttackerTest, CyclesBanksInInnerLoop)
{
    AttackerConfig cfg;
    cfg.rowBase = 100;
    AttackerTrace t(cfg, mapper(), 1);
    DramAddress first = mapper().decode(t.next().addr);
    DramAddress second = mapper().decode(t.next().addr);
    EXPECT_NE(mapper().flatBank(first), mapper().flatBank(second));
    EXPECT_EQ(first.row, second.row);
}

TEST(AttackerTest, HammersConfiguredAggressorRows)
{
    AttackerConfig cfg;
    cfg.rowBase = 200;
    cfg.numAggressors = 4;
    cfg.rowSpacing = 2;
    AttackerTrace t(cfg, mapper(), 1);
    std::set<unsigned> rows;
    for (int i = 0; i < 1000; ++i)
        rows.insert(mapper().decode(t.next().addr).row);
    EXPECT_EQ(rows.size(), 4u);
    EXPECT_TRUE(rows.count(200));
    EXPECT_TRUE(rows.count(206));
}

TEST(AttackerTest, LimitedBankFootprint)
{
    AttackerConfig cfg;
    cfg.rowBase = 10;
    cfg.numBanks = 4;
    AttackerTrace t(cfg, mapper(), 1);
    std::set<unsigned> banks;
    for (int i = 0; i < 500; ++i)
        banks.insert(mapper().flatBank(mapper().decode(t.next().addr)));
    EXPECT_EQ(banks.size(), 4u);
}

TEST(AttackPatternTest, DoubleSidedSandwichesVictims)
{
    AttackerConfig cfg;
    cfg.pattern = AttackPattern::kDoubleSided;
    cfg.rowBase = 300;
    cfg.numAggressors = 4; // Two victim sites.
    std::vector<unsigned> rows = attackerAggressorRows(cfg);
    // Victims at 301 and 305; aggressors sandwich each at distance 1.
    EXPECT_EQ(rows, (std::vector<unsigned>{300, 302, 304, 306}));
}

TEST(AttackPatternTest, ManySidedSequenceIsHistoricalLayout)
{
    AttackerConfig cfg;
    cfg.rowBase = 40;
    cfg.numAggressors = 3;
    cfg.rowSpacing = 2;
    EXPECT_EQ(attackerRowSequence(cfg),
              (std::vector<unsigned>{40, 42, 44}));
    EXPECT_EQ(attackerRowSequence(cfg), attackerAggressorRows(cfg));
}

TEST(AttackPatternTest, HalfDoubleFarNearActivationRatio)
{
    AttackerConfig cfg;
    cfg.pattern = AttackPattern::kHalfDouble;
    cfg.rowBase = 500;
    cfg.numAggressors = 4; // One Half-Double site.
    cfg.numBanks = 1;      // One bank: census counts are per pattern.
    AttackerTrace t(cfg, mapper(), 1);

    // Drive the pattern into the census — the same ground-truth record
    // the oracle verdicts against N_RH.
    RowCensus census(1u << 30);
    Cycle now = 0;
    const int periods = 50;
    const int per_period = 2 * kHalfDoubleFarPerNear + 2;
    for (int i = 0; i < periods * per_period; ++i) {
        DramAddress da = mapper().decode(t.next().addr);
        census.recordAct(mapper().flatBank(da), da.row, now++);
    }

    unsigned bank = mapper().flatBank(
        DramAddress{.row = 0, .column = 0}); // bankCoords[0] template.
    // Site rows: far = base, base+4 (victim at base+2); near = base+1,
    // base+3. Far rows get kHalfDoubleFarPerNear ACTs per near ACT.
    std::uint32_t far_acts = census.currentCount(bank, 500);
    std::uint32_t near_acts = census.currentCount(bank, 501);
    EXPECT_EQ(far_acts, periods * kHalfDoubleFarPerNear);
    EXPECT_EQ(near_acts, static_cast<std::uint32_t>(periods));
    EXPECT_EQ(census.currentCount(bank, 504), far_acts);
    EXPECT_EQ(census.currentCount(bank, 503), near_acts);
    // The victim row itself is never activated.
    EXPECT_EQ(census.currentCount(bank, 502), 0u);
    // Thresholding between near and far counts isolates the far rows.
    EXPECT_EQ(census.currentRowsOver(periods), 2u);
    EXPECT_EQ(census.currentRowsOver(periods - 1), 4u);
}

// --- Adaptive attacker ---------------------------------------------

/** Scripted feedback: a pure function of the observation index. */
class ScriptedFeedback : public IThrottleFeedbackView
{
  public:
    explicit ScriptedFeedback(
        std::function<ThrottleFeedback(std::uint64_t)> fn)
        : fn_(std::move(fn))
    {
    }

    ThrottleFeedback
    sampleThrottleFeedback(ThreadId) const override
    {
        return fn_(calls_++);
    }

  private:
    std::function<ThrottleFeedback(std::uint64_t)> fn_;
    mutable std::uint64_t calls_ = 0;
};

TEST(AdaptiveTraceTest, UnboundStreamMatchesFixedAttacker)
{
    // The obs=0 / unbound adaptive trace is the fuzzer's fixed baseline:
    // its record stream must be bit-identical to AttackerTrace.
    AttackerConfig cfg;
    cfg.rowBase = 700;
    AttackerTrace fixed(cfg, mapper(), 9);
    AdaptiveAttackerTrace adaptive(cfg, AdaptiveConfig{}, mapper(), 9);
    for (int i = 0; i < 5000; ++i) {
        TraceRecord a = fixed.next(), b = adaptive.next();
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.bubbles, b.bubbles);
        EXPECT_EQ(a.uncached, b.uncached);
        EXPECT_EQ(a.isWrite, b.isWrite);
    }
    EXPECT_EQ(adaptive.rotation(), 0u);
    EXPECT_EQ(adaptive.observations(), 0u);
}

TEST(AdaptiveTraceTest, ThrottledFeedbackBacksOffAndRotates)
{
    AttackerConfig cfg;
    cfg.rowBase = 100;
    cfg.bubbles = 2;
    AdaptiveConfig ad;
    ad.observeEvery = 16;
    ad.maxBubbles = 32;
    ad.rotationStride = 64;
    ScriptedFeedback throttled([](std::uint64_t) {
        ThrottleFeedback fb;
        fb.suspect = true;
        fb.quota = 1;
        fb.fullQuota = 16;
        return fb;
    });
    AdaptiveAttackerTrace t(cfg, ad, mapper(), 3);
    t.bindFeedback(&throttled, 0);

    std::vector<unsigned> before = t.currentAggressorRows();
    for (int i = 0; i < 16 * 3; ++i)
        t.next();
    EXPECT_EQ(t.observations(), 3u);
    EXPECT_EQ(t.throttledObservations(), 3u);
    EXPECT_EQ(t.rotation(), 3u);
    // Pacing walked 2 -> 4 -> 8 -> 16, capped at maxBubbles eventually.
    EXPECT_EQ(t.currentBubbles(), 16u);
    std::vector<unsigned> after = t.currentAggressorRows();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(after[i], before[i] + 3u * 64u);
}

TEST(AdaptiveTraceTest, CalmStreakReaccelerates)
{
    AttackerConfig cfg;
    cfg.rowBase = 100;
    cfg.bubbles = 2;
    AdaptiveConfig ad;
    ad.observeEvery = 8;
    ad.maxBubbles = 64;
    ad.calmStreak = 2;
    // One throttled observation, then calm forever.
    ScriptedFeedback script([](std::uint64_t call) {
        ThrottleFeedback fb;
        fb.suspect = call == 0;
        return fb;
    });
    AdaptiveAttackerTrace t(cfg, ad, mapper(), 3);
    t.bindFeedback(&script, 0);

    for (int i = 0; i < 8; ++i)
        t.next();
    EXPECT_EQ(t.currentBubbles(), 4u); // Backed off 2 -> 4.
    for (int i = 0; i < 8 * 2; ++i)
        t.next();
    // Two calm observations re-accelerate one step, floored at the
    // configured pacing.
    EXPECT_EQ(t.currentBubbles(), 2u);
}

TEST(AdaptiveTraceTest, StreamBitDeterministicUnderSameFeedback)
{
    AttackerConfig cfg;
    cfg.rowBase = 64;
    AdaptiveConfig ad;
    ad.observeEvery = 32;
    auto script = [](std::uint64_t call) {
        ThrottleFeedback fb;
        fb.suspect = call % 3 == 1;
        fb.score = static_cast<double>(call);
        return fb;
    };
    ScriptedFeedback fa(script), fb(script);
    AdaptiveAttackerTrace a(cfg, ad, mapper(), 11);
    AdaptiveAttackerTrace b(cfg, ad, mapper(), 11);
    a.bindFeedback(&fa, 0);
    b.bindFeedback(&fb, 0);
    for (int i = 0; i < 4000; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.bubbles, rb.bubbles);
    }
    EXPECT_GT(a.rotation(), 0u); // The script did force adaptation.
}

TEST(AdaptiveTraceTest, DecisionSequenceIsChannelInvariant)
{
    // Literal addresses differ across channel counts (channel bits), but
    // the decision sequence — decoded row, pacing, cache flag — is
    // counted in records, never cycles, so it is organization-invariant.
    DramOrg org1 = DramSpec::ddr5().org;
    DramOrg org4 = DramSpec::ddr5().org;
    org4.channels = 4;
    AddressMap map1(org1), map4(org4);

    AttackerConfig cfg;
    cfg.rowBase = 256;
    AdaptiveConfig ad;
    ad.observeEvery = 24;
    auto script = [](std::uint64_t call) {
        ThrottleFeedback fb;
        fb.suspect = call % 2 == 0;
        return fb;
    };
    ScriptedFeedback f1(script), f4(script);
    AdaptiveAttackerTrace t1(cfg, ad, map1, 5);
    AdaptiveAttackerTrace t4(cfg, ad, map4, 5);
    t1.bindFeedback(&f1, 0);
    t4.bindFeedback(&f4, 0);
    for (int i = 0; i < 3000; ++i) {
        TraceRecord r1 = t1.next(), r4 = t4.next();
        EXPECT_EQ(map1.decode(r1.addr).row, map4.decode(r4.addr).row);
        EXPECT_EQ(r1.bubbles, r4.bubbles);
        EXPECT_EQ(r1.uncached, r4.uncached);
    }
    EXPECT_EQ(t1.rotation(), t4.rotation());
    EXPECT_GT(t1.rotation(), 0u);
}

TEST(AdaptiveTraceTest, HandoffRotatesOwnershipBetweenSlots)
{
    AttackerConfig cfg;
    cfg.rowBase = 128;
    AdaptiveConfig base;
    base.groupSize = 2;
    base.handoffEpoch = 64;
    AdaptiveConfig s0 = base, s1 = base;
    s0.slotIndex = 0;
    s1.slotIndex = 1;
    AdaptiveAttackerTrace a(cfg, s0, mapper(), 7);
    AdaptiveAttackerTrace b(cfg, s1, mapper(), 7);

    for (std::uint64_t rec = 0; rec < 4 * 64; ++rec) {
        bool a_active = (rec / 64) % 2 == 0;
        EXPECT_EQ(AdaptiveAttackerTrace::slotActiveAt(rec, s0, 0),
                  a_active);
        EXPECT_EQ(AdaptiveAttackerTrace::slotActiveAt(rec, s1, 1),
                  !a_active);
        TraceRecord ra = a.next(), rb = b.next();
        // Exactly one slot hammers (uncached); the idle partner emits
        // benign-looking cached compute.
        EXPECT_EQ(ra.uncached, a_active);
        EXPECT_EQ(rb.uncached, !a_active);
    }
}

TEST(ProfilerTest, TierOrderingHolds)
{
    LlcConfig llc; // Table 1 LLC.
    auto profile_of = [&](const char *name) {
        BenignTrace t(findApp(name), mapper(), 0, 8192, 17);
        return profileTrace(t, mapper(), llc, 400000);
    };
    TraceProfile high = profile_of("mcf_like");
    TraceProfile medium = profile_of("parest_like");
    TraceProfile low = profile_of("namd_like");
    EXPECT_GT(high.rbmpki, medium.rbmpki);
    EXPECT_GT(medium.rbmpki, low.rbmpki);
    EXPECT_LT(low.rbmpki, 10.0);
}

TEST(ProfilerTest, HotRowWorkloadsShowActTail)
{
    // A profile with a concentrated hot-row set (the mechanism behind the
    // ACT tails of Table 3, at a test-sized scale).
    AppProfile hot_profile = findApp("mcf_like");
    hot_profile.hotRows = 64;
    hot_profile.hotFraction = 0.6;
    hot_profile.avgBubbles = 4;
    LlcConfig llc;
    BenignTrace hot(hot_profile, mapper(), 0, 8192, 19);
    TraceProfile p =
        profileTrace(hot, mapper(), llc, 2000000, 1.0 /* 1M-inst windows */);
    EXPECT_GT(p.meanRows64, 0.0);
    // And a cold streaming profile has no such tail.
    BenignTrace cold(findApp("libquantum_like"), mapper(), 0, 8192, 19);
    TraceProfile pc = profileTrace(cold, mapper(), llc, 500000, 1.0);
    EXPECT_DOUBLE_EQ(pc.meanRows512, 0.0);
}

TEST(ProfilerTest, AttackerHasExtremeRbmpki)
{
    LlcConfig llc;
    AttackerConfig cfg;
    cfg.rowBase = 50;
    AttackerTrace t(cfg, mapper(), 23);
    TraceProfile p = profileTrace(t, mapper(), llc, 100000);
    // Every access is a row miss: RBMPKI ~ 1000 / (bubbles + 1).
    EXPECT_GT(p.rbmpki, 200.0);
}

} // namespace
} // namespace bh
