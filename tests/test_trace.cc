/**
 * @file
 * Unit tests for src/trace: benign generators, attacker generators, the
 * application catalog, and the functional profiler (Table 3 statistics).
 */
#include <gtest/gtest.h>

#include <set>

#include "dram/address.h"
#include "dram/spec.h"
#include "trace/attacker.h"
#include "trace/benign.h"
#include "trace/profiler.h"

namespace bh {
namespace {

AddressMap &
mapper()
{
    static AddressMap m(DramSpec::ddr5().org);
    return m;
}

TEST(CatalogTest, AllTiersPopulated)
{
    EXPECT_GE(appsInTier(IntensityTier::kHigh).size(), 5u);
    EXPECT_GE(appsInTier(IntensityTier::kMedium).size(), 5u);
    EXPECT_GE(appsInTier(IntensityTier::kLow).size(), 5u);
}

TEST(CatalogTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const AppProfile &p : appCatalog())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(CatalogTest, FindAppReturnsMatch)
{
    const AppProfile &p = findApp("mcf_like");
    EXPECT_EQ(p.name, "mcf_like");
    EXPECT_EQ(p.tier, IntensityTier::kHigh);
}

TEST(BenignTraceTest, Deterministic)
{
    const AppProfile &p = findApp("mcf_like");
    BenignTrace a(p, mapper(), 0, 8192, 42);
    BenignTrace b(p, mapper(), 0, 8192, 42);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.bubbles, rb.bubbles);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
    }
}

TEST(BenignTraceTest, StaysInRowRegion)
{
    const AppProfile &p = findApp("lbm_like");
    const unsigned base = 8192, span = 8192;
    BenignTrace t(p, mapper(), base, span, 7);
    for (int i = 0; i < 20000; ++i) {
        DramAddress da = mapper().decode(t.next().addr);
        EXPECT_GE(da.row, base);
        EXPECT_LT(da.row, base + span);
    }
}

TEST(BenignTraceTest, BubblesMatchProfileMean)
{
    const AppProfile &p = findApp("namd_like");
    BenignTrace t(p, mapper(), 0, 8192, 3);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += t.next().bubbles;
    EXPECT_NEAR(sum / n, p.avgBubbles, p.avgBubbles * 0.05);
}

TEST(BenignTraceTest, WriteFractionMatchesProfile)
{
    const AppProfile &p = findApp("lbm_like");
    BenignTrace t(p, mapper(), 0, 8192, 5);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (t.next().isWrite)
            ++writes;
    EXPECT_NEAR(static_cast<double>(writes) / n, p.writeFraction, 0.02);
}

TEST(BenignTraceTest, BenignIsCached)
{
    const AppProfile &p = findApp("mcf_like");
    BenignTrace t(p, mapper(), 0, 8192, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(t.next().uncached);
}

TEST(BenignTraceTest, SequentialLocalityProducesRowRuns)
{
    // A highly sequential profile should often revisit the (bank,row) of
    // the previous access.
    AppProfile p = findApp("libquantum_like");
    p.rowLocality = 0.92;
    BenignTrace t(p, mapper(), 0, 8192, 11);
    unsigned same = 0;
    DramAddress prev = mapper().decode(t.next().addr);
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        DramAddress da = mapper().decode(t.next().addr);
        if (da.row == prev.row && mapper().flatBank(da) ==
                                      mapper().flatBank(prev))
            ++same;
        prev = da;
    }
    EXPECT_GT(same, n / 2);
}

TEST(AttackerTest, EveryAccessIsUncachedRead)
{
    AttackerConfig cfg;
    cfg.rowBase = 100;
    AttackerTrace t(cfg, mapper(), 1);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord r = t.next();
        EXPECT_TRUE(r.uncached);
        EXPECT_FALSE(r.isWrite);
    }
}

TEST(AttackerTest, CyclesBanksInInnerLoop)
{
    AttackerConfig cfg;
    cfg.rowBase = 100;
    AttackerTrace t(cfg, mapper(), 1);
    DramAddress first = mapper().decode(t.next().addr);
    DramAddress second = mapper().decode(t.next().addr);
    EXPECT_NE(mapper().flatBank(first), mapper().flatBank(second));
    EXPECT_EQ(first.row, second.row);
}

TEST(AttackerTest, HammersConfiguredAggressorRows)
{
    AttackerConfig cfg;
    cfg.rowBase = 200;
    cfg.numAggressors = 4;
    cfg.rowSpacing = 2;
    AttackerTrace t(cfg, mapper(), 1);
    std::set<unsigned> rows;
    for (int i = 0; i < 1000; ++i)
        rows.insert(mapper().decode(t.next().addr).row);
    EXPECT_EQ(rows.size(), 4u);
    EXPECT_TRUE(rows.count(200));
    EXPECT_TRUE(rows.count(206));
}

TEST(AttackerTest, LimitedBankFootprint)
{
    AttackerConfig cfg;
    cfg.rowBase = 10;
    cfg.numBanks = 4;
    AttackerTrace t(cfg, mapper(), 1);
    std::set<unsigned> banks;
    for (int i = 0; i < 500; ++i)
        banks.insert(mapper().flatBank(mapper().decode(t.next().addr)));
    EXPECT_EQ(banks.size(), 4u);
}

TEST(ProfilerTest, TierOrderingHolds)
{
    LlcConfig llc; // Table 1 LLC.
    auto profile_of = [&](const char *name) {
        BenignTrace t(findApp(name), mapper(), 0, 8192, 17);
        return profileTrace(t, mapper(), llc, 400000);
    };
    TraceProfile high = profile_of("mcf_like");
    TraceProfile medium = profile_of("parest_like");
    TraceProfile low = profile_of("namd_like");
    EXPECT_GT(high.rbmpki, medium.rbmpki);
    EXPECT_GT(medium.rbmpki, low.rbmpki);
    EXPECT_LT(low.rbmpki, 10.0);
}

TEST(ProfilerTest, HotRowWorkloadsShowActTail)
{
    // A profile with a concentrated hot-row set (the mechanism behind the
    // ACT tails of Table 3, at a test-sized scale).
    AppProfile hot_profile = findApp("mcf_like");
    hot_profile.hotRows = 64;
    hot_profile.hotFraction = 0.6;
    hot_profile.avgBubbles = 4;
    LlcConfig llc;
    BenignTrace hot(hot_profile, mapper(), 0, 8192, 19);
    TraceProfile p =
        profileTrace(hot, mapper(), llc, 2000000, 1.0 /* 1M-inst windows */);
    EXPECT_GT(p.meanRows64, 0.0);
    // And a cold streaming profile has no such tail.
    BenignTrace cold(findApp("libquantum_like"), mapper(), 0, 8192, 19);
    TraceProfile pc = profileTrace(cold, mapper(), llc, 500000, 1.0);
    EXPECT_DOUBLE_EQ(pc.meanRows512, 0.0);
}

TEST(ProfilerTest, AttackerHasExtremeRbmpki)
{
    LlcConfig llc;
    AttackerConfig cfg;
    cfg.rowBase = 50;
    AttackerTrace t(cfg, mapper(), 23);
    TraceProfile p = profileTrace(t, mapper(), llc, 100000);
    // Every access is a row miss: RBMPKI ~ 1000 / (bubbles + 1).
    EXPECT_GT(p.rbmpki, 200.0);
}

} // namespace
} // namespace bh
