/**
 * @file
 * Unit tests for src/breakhammer: score attribution (§4.1), suspect
 * identification (Alg 1), quota schedule (Eq 1), the two-set counter
 * interleaving (Fig 4), the analytic security model (Expr 2 / Fig 5), and
 * the hardware cost model (§6).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "breakhammer/breakhammer.h"
#include "breakhammer/cost_model.h"
#include "breakhammer/security_model.h"
#include "cache/mshr.h"

namespace bh {
namespace {

BreakHammerConfig
testConfig()
{
    BreakHammerConfig c;
    c.window = 10000;
    c.thThreat = 4.0;
    c.thOutlier = 0.65;
    c.pOldSuspect = 1;
    c.pNewSuspect = 10;
    return c;
}

struct Fixture
{
    Fixture() : mshr(64, 4), bh(4, testConfig(), &mshr) {}

    /** One preventive action attributed purely to @p thread. */
    void
    act(ThreadId thread, Cycle now)
    {
        bh.onDemandActivate(thread, 0, now);
        bh.onPreventiveAction(1.0, now);
    }

    MshrFile mshr;
    BreakHammer bh;
};

TEST(BreakHammerTest, ProportionalAttribution)
{
    Fixture f;
    // Thread 0: 3 activations, thread 1: 1 activation, then one action.
    f.bh.onDemandActivate(0, 0, 1);
    f.bh.onDemandActivate(0, 0, 2);
    f.bh.onDemandActivate(0, 0, 3);
    f.bh.onDemandActivate(1, 0, 4);
    f.bh.onPreventiveAction(1.0, 5);
    EXPECT_NEAR(f.bh.score(0), 0.75, 1e-12);
    EXPECT_NEAR(f.bh.score(1), 0.25, 1e-12);
    EXPECT_NEAR(f.bh.score(2), 0.0, 1e-12);
}

TEST(BreakHammerTest, ActivationTrackingResetsAfterAction)
{
    Fixture f;
    f.bh.onDemandActivate(0, 0, 1);
    f.bh.onPreventiveAction(1.0, 2);
    // New action with only thread 1 active: all credit goes to thread 1.
    f.bh.onDemandActivate(1, 0, 3);
    f.bh.onPreventiveAction(1.0, 4);
    EXPECT_NEAR(f.bh.score(0), 1.0, 1e-12);
    EXPECT_NEAR(f.bh.score(1), 1.0, 1e-12);
}

TEST(BreakHammerTest, ActionWithNoActivationsIsDropped)
{
    Fixture f;
    f.bh.onPreventiveAction(1.0, 1);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(f.bh.score(t), 0.0);
}

TEST(BreakHammerTest, WeightScalesScore)
{
    Fixture f;
    f.bh.onDemandActivate(0, 0, 1);
    f.bh.onPreventiveAction(4.0, 2);
    EXPECT_NEAR(f.bh.score(0), 4.0, 1e-12);
}

TEST(BreakHammerTest, ThreatThresholdShieldsLowScores)
{
    Fixture f;
    // Three actions, all thread 0: score 3 < thThreat 4 -> no suspect.
    for (int i = 0; i < 3; ++i)
        f.act(0, 10 + i);
    EXPECT_FALSE(f.bh.isSuspect(0));
    EXPECT_EQ(f.mshr.quota(0), f.mshr.fullQuota());
}

TEST(BreakHammerTest, OutlierDetectionMarksSuspect)
{
    Fixture f;
    // Five actions on thread 0: score 5 > thThreat and > 1.65 * mean
    // (mean = 5/4 = 1.25; bound = 2.06).
    for (int i = 0; i < 5; ++i)
        f.act(0, 10 + i);
    EXPECT_TRUE(f.bh.isSuspect(0));
    EXPECT_EQ(f.bh.suspectMarks(), 1u);
    // Eq 1 fresh suspect: quota = 64 / 10 = 6.
    EXPECT_EQ(f.bh.quota(0), 6u);
    EXPECT_EQ(f.mshr.quota(0), 6u);
}

TEST(BreakHammerTest, NoOutlierWhenAllThreadsEqual)
{
    Fixture f;
    // All threads accumulate identical scores: nobody deviates.
    for (int round = 0; round < 8; ++round)
        for (ThreadId t = 0; t < 4; ++t)
            f.act(t, 10 + round * 4 + t);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_FALSE(f.bh.isSuspect(t));
}

TEST(BreakHammerTest, RepeatSuspectLosesQuotaLinearly)
{
    Fixture f;
    for (int i = 0; i < 5; ++i)
        f.act(0, 10 + i);
    ASSERT_EQ(f.bh.quota(0), 6u);

    // Next window: thread 0 is a recent suspect; another mark reduces
    // the quota by pOldSuspect = 1 (Eq 1).
    Cycle w2 = testConfig().window + 10;
    for (int i = 0; i < 6; ++i)
        f.act(0, w2 + i);
    EXPECT_TRUE(f.bh.isSuspect(0));
    EXPECT_EQ(f.bh.quota(0), 5u);

    Cycle w3 = 2 * testConfig().window + 10;
    for (int i = 0; i < 7; ++i)
        f.act(0, w3 + i);
    EXPECT_EQ(f.bh.quota(0), 4u);
}

TEST(BreakHammerTest, QuotaClampsAtZero)
{
    BreakHammerConfig cfg = testConfig();
    cfg.pNewSuspect = 100; // 64 / 100 = 0 immediately.
    MshrFile mshr(64, 4);
    BreakHammer bh(4, cfg, &mshr);
    for (int i = 0; i < 5; ++i) {
        bh.onDemandActivate(0, 0, 10 + i);
        bh.onPreventiveAction(1.0, 10 + i);
    }
    EXPECT_EQ(bh.quota(0), 0u);
    EXPECT_FALSE(mshr.canAllocate(0));
}

TEST(BreakHammerTest, OneReductionPerWindow)
{
    Fixture f;
    for (int i = 0; i < 20; ++i)
        f.act(0, 10 + i);
    // Marked once; repeated marks within the window do not re-reduce.
    EXPECT_EQ(f.bh.quota(0), 6u);
    EXPECT_EQ(f.bh.suspectMarks(), 1u);
}

TEST(BreakHammerTest, CleanWindowRestoresQuota)
{
    Fixture f;
    for (int i = 0; i < 5; ++i)
        f.act(0, 10 + i);
    ASSERT_EQ(f.bh.quota(0), 6u);

    // Window 2: thread 0 stays quiet (recent suspect, not re-marked).
    f.bh.rollWindows(testConfig().window + 1);
    EXPECT_TRUE(f.bh.wasRecentSuspect(0));
    EXPECT_EQ(f.bh.quota(0), 6u); // Still reduced during window 2.

    // Window 3 starts: thread 0 was clean for all of window 2.
    f.bh.rollWindows(2 * testConfig().window + 1);
    EXPECT_FALSE(f.bh.wasRecentSuspect(0));
    EXPECT_EQ(f.bh.quota(0), f.mshr.fullQuota());
    EXPECT_TRUE(f.mshr.canAllocate(0));
}

TEST(BreakHammerTest, TwoSetInterleavingRetainsTraining)
{
    Fixture f;
    // Accumulate score 3 in window 1 (both sets train).
    for (int i = 0; i < 3; ++i)
        f.act(0, 10 + i);
    EXPECT_NEAR(f.bh.score(0), 3.0, 1e-12);

    // Window boundary: active set resets, trained set takes over — the
    // score survives one boundary (continuous monitoring, Fig 4).
    f.bh.rollWindows(testConfig().window + 1);
    EXPECT_NEAR(f.bh.score(0), 3.0, 1e-12);

    // After a second boundary the old training is gone.
    f.bh.rollWindows(2 * testConfig().window + 1);
    EXPECT_NEAR(f.bh.score(0), 0.0, 1e-12);
}

TEST(BreakHammerTest, CrossWindowAccumulationDetects)
{
    // An attacker pacing itself across a window boundary is still caught
    // because the trained set carries the previous window's score.
    Fixture f;
    for (int i = 0; i < 3; ++i)
        f.act(0, 100 + i);
    f.bh.rollWindows(testConfig().window + 1);
    for (int i = 0; i < 2; ++i)
        f.act(0, testConfig().window + 100 + i);
    // Active-set score = 3 (carried) + 2 (new) = 5 > thresholds.
    EXPECT_TRUE(f.bh.isSuspect(0));
}

TEST(BreakHammerTest, DirectScorePath)
{
    Fixture f;
    f.bh.onDirectScore(2, 5.0, 10); // REGA-style credit.
    EXPECT_NEAR(f.bh.score(2), 5.0, 1e-12);
    EXPECT_TRUE(f.bh.isSuspect(2));
}

TEST(BreakHammerTest, ActionsObservedCounts)
{
    Fixture f;
    f.act(0, 1);
    f.act(1, 2);
    f.bh.onDirectScore(2, 1.0, 3);
    EXPECT_EQ(f.bh.actionsObserved(), 3u);
}

// --- Security model (Expr 2 / Fig 5) --------------------------------

TEST(SecurityModelTest, PaperDataPoints)
{
    // §5.2: THo = 0.65, 50% attack threads -> 4.71x.
    EXPECT_NEAR(maxAttackerScoreBound(0.5, 0.65), 4.71, 0.01);
    // §5.2: THo = 0.05, 90% attack threads -> 1.90x.
    EXPECT_NEAR(maxAttackerScoreBound(0.9, 0.05), 1.90, 0.01);
}

TEST(SecurityModelTest, MonotoneInAttackerFraction)
{
    double prev = 0.0;
    for (double f = 0.0; f < 0.55; f += 0.05) {
        double bound = maxAttackerScoreBound(f, 0.65);
        EXPECT_GE(bound, prev);
        prev = bound;
    }
}

TEST(SecurityModelTest, UnboundedWhenMeanRigged)
{
    EXPECT_TRUE(std::isinf(maxAttackerScoreBound(0.99, 0.65)));
}

TEST(SecurityModelTest, InverseConsistency)
{
    double f = requiredAttackerFraction(4.71, 0.65);
    EXPECT_NEAR(f, 0.5, 0.01);
    EXPECT_DOUBLE_EQ(requiredAttackerFraction(1.0, 0.65), 0.0);
}

TEST(SecurityModelTest, PaperConclusionNeedsOverwhelmingFraction)
{
    // "An attacker cannot trigger twice the preventive-action count of
    // benign applications unless it uses 90% of all hardware threads"
    // (§1) — at low TH_outlier.
    double f = requiredAttackerFraction(2.0, 0.05);
    EXPECT_GT(f, 0.85);
}

// --- Hardware cost model (§6) ----------------------------------------

TEST(CostModelTest, PerThreadInventory)
{
    EXPECT_EQ(kBreakHammerBitsPerThread, 82u);
}

TEST(CostModelTest, MatchesPaperAreaDatum)
{
    // 4 threads, 1 channel -> 0.000105 mm^2 (§6).
    EXPECT_NEAR(breakHammerAreaMm2(4, 1), 0.000105, 1e-6);
}

TEST(CostModelTest, BlockHammerStorageGrowsAsNrhShrinks)
{
    EXPECT_GT(blockHammerStorageBits(64, 32),
              blockHammerStorageBits(1024, 32));
    // BreakHammer's storage is independent of N_RH and much smaller.
    EXPECT_LT(breakHammerStorageBits(4, 1),
              blockHammerStorageBits(1024, 32) / 100);
}

TEST(CostModelTest, LatencyBelowTrrd)
{
    // §6: 0.67 ns < tRRD (2.5 ns DDR4, 5 ns DDR5).
    EXPECT_LT(kBreakHammerLatencyNs, 2.5);
}

/** Alg 1 parameterized over TH_outlier: the marking bound is exact. */
class OutlierSweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(OutlierSweepTest, MarkExactlyAboveBound)
{
    double th_outlier = GetParam();
    BreakHammerConfig cfg;
    cfg.window = 1000000;
    cfg.thThreat = 1.0;
    cfg.thOutlier = th_outlier;
    MshrFile mshr(64, 4);
    BreakHammer bh(4, cfg, &mshr);

    // Give threads 1..3 score 1 each, thread 0 score S; suspect iff
    // S > (1 + THo) * (S + 3) / 4, checked at the *next* action.
    auto run_case = [&](int s) {
        MshrFile m2(64, 4);
        BreakHammer b(4, cfg, &m2);
        for (ThreadId t = 1; t < 4; ++t) {
            b.onDemandActivate(t, 0, t);
            b.onPreventiveAction(1.0, t);
        }
        for (int i = 0; i < s; ++i) {
            b.onDemandActivate(0, 0, 10 + i);
            b.onPreventiveAction(1.0, 10 + i);
        }
        return b.isSuspect(0);
    };

    for (int s = 1; s <= 40; ++s) {
        double bound = (1.0 + th_outlier) * (s + 3.0) / 4.0;
        bool expect_suspect = static_cast<double>(s) > bound;
        EXPECT_EQ(run_case(s), expect_suspect)
            << "score " << s << " THo " << th_outlier;
    }
}

INSTANTIATE_TEST_SUITE_P(OutlierConfigs, OutlierSweepTest,
                         ::testing::Values(0.05, 0.25, 0.45, 0.65, 0.85,
                                           0.95));

} // namespace
} // namespace bh
