/**
 * @file
 * Tests for the red-team fuzzer (sim/redteam.h): strategy spec
 * canonicalization and strict parsing, the seed-determinism of the
 * population/mutation machinery, slot rewriting, probe key isolation
 * (the |rt= suffix), fitness accounting from stored records, and a tiny
 * end-to-end search whose warm re-run simulates nothing and reports
 * byte-identical outcomes.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "sim/redteam.h"
#include "sim/result_store.h"

namespace bh {
namespace {

std::string
freshDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "bh_redteam_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(RedteamStrategyTest, CanonicalRoundTrip)
{
    RedteamStrategy s;
    s.pattern = AttackPattern::kHalfDouble;
    s.observeEvery = 48;
    s.maxBubbles = 96;
    s.group = 2;
    s.handoffEpoch = 2048;
    std::string spec = redteamStrategyCanonical(s);
    EXPECT_EQ(spec, "pat=half,obs=48,bub=96,grp=2,ho=2048");

    RedteamStrategy parsed;
    ASSERT_TRUE(parseRedteamStrategy(spec, &parsed));
    EXPECT_EQ(parsed.pattern, s.pattern);
    EXPECT_EQ(parsed.observeEvery, s.observeEvery);
    EXPECT_EQ(parsed.maxBubbles, s.maxBubbles);
    EXPECT_EQ(parsed.group, s.group);
    EXPECT_EQ(parsed.handoffEpoch, s.handoffEpoch);
    EXPECT_EQ(redteamStrategyCanonical(parsed), spec);
}

TEST(RedteamStrategyTest, MalformedSpecsAreRejected)
{
    RedteamStrategy out;
    const char *bad[] = {
        "",
        "pat=many",
        "pat=sideways,obs=64,bub=64,grp=1,ho=0",
        "obs=64,pat=many,bub=64,grp=1,ho=0",   // Wrong field order.
        "pat=many,obs=64,bub=0,grp=1,ho=0",    // bub below bounds.
        "pat=many,obs=64,bub=64,grp=9,ho=0",   // grp above bounds.
        "pat=many,obs=64,bub=64,grp=1,ho=-1",  // Sign rejected.
        "pat=many,obs=064,bub=64,grp=1,ho=0",  // Non-canonical digits.
        "pat=many,obs=64,bub=64,grp=1,ho=0,x=1",
        "pat=many,obs=9999999,bub=64,grp=1,ho=0",
    };
    for (const char *spec : bad) {
        EXPECT_FALSE(parseRedteamStrategy(spec, &out)) << spec;
        // A failed parse must leave the output untouched.
        EXPECT_EQ(out.observeEvery, 64u) << spec;
    }
}

TEST(RedteamStrategyTest, EveryCanonicalStringReparses)
{
    // Round-trip through canonical form for the whole initial population
    // and a chain of mutations: the |rt= key of every probe must parse.
    std::vector<RedteamStrategy> pop = redteamInitialPopulation(7, 16);
    Rng rng(99);
    for (int i = 0; i < 50; ++i)
        pop.push_back(mutateRedteamStrategy(&rng, pop[i % pop.size()]));
    for (const RedteamStrategy &s : pop) {
        std::string spec = redteamStrategyCanonical(s);
        RedteamStrategy parsed;
        ASSERT_TRUE(parseRedteamStrategy(spec, &parsed)) << spec;
        EXPECT_EQ(redteamStrategyCanonical(parsed), spec);
    }
}

TEST(RedteamSpecTest, ParseAndBounds)
{
    RedteamSpec spec;
    ASSERT_TRUE(parseRedteamSpec("3/4/8", &spec));
    EXPECT_EQ(spec.seed, 3u);
    EXPECT_EQ(spec.rounds, 4u);
    EXPECT_EQ(spec.population, 8u);

    const char *bad[] = {"", "1", "1/2", "0/2/4", "1/0/4",
                         "1/2/0", "1/17/4", "1/2/65", "a/2/4", "1/2/4/8"};
    for (const char *text : bad)
        EXPECT_FALSE(parseRedteamSpec(text, &spec)) << text;
}

TEST(RedteamPopulationTest, SeedDeterministic)
{
    std::vector<RedteamStrategy> a = redteamInitialPopulation(5, 8);
    std::vector<RedteamStrategy> b = redteamInitialPopulation(5, 8);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(redteamStrategyCanonical(a[i]),
                  redteamStrategyCanonical(b[i]));
    // A different seed draws a different population (the pattern genes
    // cycle deterministically, so compare whole canonical strings).
    std::vector<RedteamStrategy> c = redteamInitialPopulation(6, 8);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= redteamStrategyCanonical(a[i]) !=
                    redteamStrategyCanonical(c[i]);
    EXPECT_TRUE(any_diff);
}

TEST(RedteamPopulationTest, MutationsAreDeterministicAndAdaptive)
{
    RedteamStrategy parent;
    Rng r1(42), r2(42);
    for (int i = 0; i < 40; ++i) {
        RedteamStrategy a = mutateRedteamStrategy(&r1, parent);
        RedteamStrategy b = mutateRedteamStrategy(&r2, parent);
        EXPECT_EQ(redteamStrategyCanonical(a),
                  redteamStrategyCanonical(b));
        // Mutations explore adaptive space only — baselines are fixed
        // by construction, not by luck of the draw.
        EXPECT_TRUE(a.adaptive());
        parent = a;
    }
}

TEST(RedteamApplyTest, RewritesAttackerSlotsOnly)
{
    MixSpec mix = makeMix("MMAA", 0);
    RedteamStrategy s;
    s.pattern = AttackPattern::kDoubleSided;
    s.observeEvery = 32;
    s.maxBubbles = 128;
    s.group = 2;
    s.handoffEpoch = 512;
    applyRedteamStrategy(s, &mix.slots);

    unsigned adaptive_slots = 0;
    for (std::size_t i = 0; i < mix.slots.size(); ++i) {
        const WorkloadSlot &slot = mix.slots[i];
        if (slot.kind == WorkloadSlot::Kind::kBenign)
            continue;
        EXPECT_EQ(slot.kind, WorkloadSlot::Kind::kAdaptiveAttacker);
        EXPECT_EQ(slot.attacker.pattern, AttackPattern::kDoubleSided);
        EXPECT_EQ(slot.adaptive.observeEvery, 32u);
        EXPECT_EQ(slot.adaptive.maxBubbles, 128u);
        EXPECT_EQ(slot.adaptive.groupSize, 2u);
        EXPECT_EQ(slot.adaptive.slotIndex, adaptive_slots);
        EXPECT_EQ(slot.adaptive.handoffEpoch, 512u);
        ++adaptive_slots;
    }
    EXPECT_EQ(adaptive_slots, 2u);

    // Group size is capped at the attacker-slot count.
    MixSpec one = makeMix("HHMA", 0);
    applyRedteamStrategy(s, &one.slots);
    for (const WorkloadSlot &slot : one.slots)
        if (slot.kind != WorkloadSlot::Kind::kBenign)
            EXPECT_EQ(slot.adaptive.groupSize, 1u);
}

TEST(RedteamKeyTest, ProbeKeysNeverAliasCanonicalRecords)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMAA", 0);
    cfg.mechanism = MitigationType::kPara;
    cfg.breakHammer = true;
    cfg.instructions = 4000;
    std::string canonical = experimentKey(cfg);
    EXPECT_EQ(canonical.find("|rt="), std::string::npos);

    cfg.redteam = "pat=many,obs=64,bub=64,grp=1,ho=0";
    std::string probe = experimentKey(cfg);
    EXPECT_NE(probe, canonical);
    ASSERT_NE(probe.find("|rt="), std::string::npos);
    // The suffix is append-only: the canonical prefix is unchanged.
    EXPECT_EQ(probe.substr(0, canonical.size()), canonical);
    EXPECT_EQ(probe.substr(canonical.size()),
              "|rt=pat=many,obs=64,bub=64,grp=1,ho=0");
}

TEST(RedteamFitnessTest, DividesPreventiveActionsByAttackerActs)
{
    ExperimentConfig cfg;
    cfg.mix = makeMix("MMAA", 0);
    ExperimentResult result;
    result.preventiveActions = 30;
    // Slots 0..1 benign, 2..3 attackers.
    result.raw.demandActsPerThread = {1000, 1000, 40, 60};
    EXPECT_DOUBLE_EQ(redteamFitness(cfg, result), 0.3);
    // Below the activation floor the strategy is disqualified: total
    // back-off must never rank as evasion.
    result.raw.demandActsPerThread = {1000, 1000, 10, 5};
    EXPECT_TRUE(std::isinf(redteamFitness(cfg, result)));
}

TEST(RedteamSearchTest, WarmRerunIsDeterministicAndSimulatesNothing)
{
    std::string dir = freshDir("search");
    RedteamSpec spec;
    spec.seed = 2;
    spec.rounds = 2;
    spec.population = 3;
    spec.instructions = 1500;
    spec.mechanisms = {MitigationType::kPara};

    std::string error;
    RedteamReport cold_report;
    std::size_t cold_simulated = 0;
    {
        ResultStore store(4);
        ASSERT_TRUE(store.open(dir, &error)) << error;
        cold_report = runRedteamSearch(spec, &store);
        cold_simulated = store.stats().computed;
    }
    EXPECT_GT(cold_report.probes, 0u);
    EXPECT_GT(cold_simulated, 0u);
    ASSERT_EQ(cold_report.mechanisms.size(), 1u);

    // Warm re-run in a fresh process-model store: every probe loads,
    // nothing simulates, and the report is identical — including at a
    // different job count.
    ResultStore warm(1);
    ASSERT_TRUE(warm.open(dir, &error)) << error;
    RedteamReport warm_report = runRedteamSearch(spec, &warm);
    EXPECT_EQ(warm.stats().computed, 0u);
    EXPECT_EQ(warm_report.probes, cold_report.probes);
    EXPECT_EQ(warm_report.improvedAny, cold_report.improvedAny);
    const RedteamMechanismOutcome &a = cold_report.mechanisms[0];
    const RedteamMechanismOutcome &b = warm_report.mechanisms[0];
    EXPECT_EQ(a.bestFixedStrategy, b.bestFixedStrategy);
    EXPECT_EQ(a.bestAdaptiveStrategy, b.bestAdaptiveStrategy);
    EXPECT_EQ(a.bestFixedFitness, b.bestFixedFitness);
    EXPECT_EQ(a.bestAdaptiveFitness, b.bestAdaptiveFitness);
    EXPECT_EQ(a.improved, b.improved);

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace bh
