/**
 * @file
 * Unit tests for src/core: window/retire mechanics, memory outcomes, and
 * the backpressure that makes MSHR-quota throttling effective.
 */
#include <gtest/gtest.h>

#include <memory>
#include <queue>

#include "core/core.h"

namespace bh {
namespace {

/** Scripted trace: replays a fixed record list, then loops. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {}

    TraceRecord
    next() override
    {
        TraceRecord r = records_[pos % records_.size()];
        ++pos;
        return r;
    }

    const std::string &name() const override { return name_; }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos = 0;
    std::string name_ = "scripted";
};

/** Controllable memory: scripts outcomes and records calls. */
class FakeMemory : public ICoreMemory
{
  public:
    AccessOutcome
    load(ThreadId, Addr, bool, std::uint64_t token) override
    {
        ++loads;
        if (outcome == AccessOutcome::kQueued)
            pending.push(token);
        return outcome;
    }

    AccessOutcome
    store(ThreadId, Addr, bool) override
    {
        ++stores;
        return outcome == AccessOutcome::kQueued ? AccessOutcome::kHit
                                                 : outcome;
    }

    AccessOutcome outcome = AccessOutcome::kHit;
    std::queue<std::uint64_t> pending;
    int loads = 0;
    int stores = 0;
};

CoreConfig
smallCore()
{
    CoreConfig c;
    c.windowSize = 8;
    c.width = 4;
    c.llcHitLatency = 10;
    return c;
}

TEST(CoreTest, PureComputeRetiresAtFullWidth)
{
    // One access per 99 bubbles, all hits: IPC should approach width=4.
    ScriptedTrace trace({TraceRecord{99, false, false, 0x40}});
    FakeMemory mem;
    CoreConfig cfg;
    Core core(0, &trace, &mem, cfg, true);
    core.setTarget(4000);
    Cycle now = 0;
    while (!core.reachedTarget() && now < 100000)
        core.tick(now++);
    ASSERT_TRUE(core.reachedTarget());
    double ipc = 4000.0 / static_cast<double>(core.finishCycle());
    EXPECT_GT(ipc, 3.0);
}

TEST(CoreTest, PendingLoadBlocksRetirementUntilCallback)
{
    ScriptedTrace trace({TraceRecord{0, false, false, 0x40}});
    FakeMemory mem;
    mem.outcome = AccessOutcome::kQueued;
    Core core(0, &trace, &mem, smallCore(), true);

    // Window (8 entries) fills with pending loads; nothing retires.
    for (Cycle t = 0; t < 20; ++t)
        core.tick(t);
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_EQ(mem.pending.size(), 8u);

    // Complete them all; retirement resumes.
    Cycle t = 20;
    while (!mem.pending.empty()) {
        core.completeLoad(mem.pending.front(), t);
        mem.pending.pop();
    }
    core.tick(++t);
    core.tick(++t);
    core.tick(++t);
    EXPECT_GE(core.retired(), 8u);
}

TEST(CoreTest, RejectedAccessStallsIssue)
{
    ScriptedTrace trace({TraceRecord{0, false, false, 0x40}});
    FakeMemory mem;
    mem.outcome = AccessOutcome::kRejected;
    Core core(0, &trace, &mem, smallCore(), true);
    for (Cycle t = 0; t < 50; ++t)
        core.tick(t);
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_GE(core.rejectStallCycles(), 49u);
    // Once memory accepts, progress resumes.
    mem.outcome = AccessOutcome::kHit;
    for (Cycle t = 50; t < 100; ++t)
        core.tick(t);
    EXPECT_GT(core.retired(), 0u);
}

TEST(CoreTest, StoresRetireWithoutCallback)
{
    ScriptedTrace trace({TraceRecord{0, true, false, 0x40}});
    FakeMemory mem;
    Core core(0, &trace, &mem, smallCore(), true);
    for (Cycle t = 0; t < 20; ++t)
        core.tick(t);
    EXPECT_GT(core.retired(), 0u);
    EXPECT_GT(mem.stores, 0);
}

TEST(CoreTest, HitLatencyDelaysRetirement)
{
    // A single load with no bubbles: retires after llcHitLatency.
    ScriptedTrace trace({TraceRecord{1000000, false, false, 0x40}});
    FakeMemory mem;
    CoreConfig cfg = smallCore();
    cfg.llcHitLatency = 10;
    Core core(0, &trace, &mem, cfg, true);
    // First record: bubbles first, but the scripted record has huge
    // bubbles; use a load-first trace instead.
    ScriptedTrace trace2({TraceRecord{0, false, false, 0x40}});
    FakeMemory mem2;
    Core core2(0, &trace2, &mem2, cfg, true);
    core2.tick(0); // Load issued at cycle 0; done at 10.
    for (Cycle t = 1; t < 10; ++t)
        core2.tick(t);
    std::uint64_t before = core2.retired();
    core2.tick(10);
    core2.tick(11);
    EXPECT_GT(core2.retired(), before);
}

TEST(CoreTest, MemoryAccessCountTracksTrace)
{
    ScriptedTrace trace({TraceRecord{3, false, false, 0x40},
                         TraceRecord{3, true, false, 0x80}});
    FakeMemory mem;
    Core core(0, &trace, &mem, smallCore(), true);
    core.setTarget(400);
    Cycle now = 0;
    while (!core.reachedTarget() && now < 10000)
        core.tick(now++);
    // 1 access per 4 instructions.
    EXPECT_NEAR(static_cast<double>(core.memoryAccesses()), 100.0, 8.0);
}

TEST(CoreTest, TargetLatchesFinishCycleOnce)
{
    ScriptedTrace trace({TraceRecord{9, false, false, 0x40}});
    FakeMemory mem;
    Core core(0, &trace, &mem, smallCore(), true);
    core.setTarget(100);
    Cycle now = 0;
    while (!core.reachedTarget() && now < 10000)
        core.tick(now++);
    Cycle finish = core.finishCycle();
    for (Cycle t = now; t < now + 50; ++t)
        core.tick(t);
    EXPECT_EQ(core.finishCycle(), finish);
    EXPECT_GT(core.retired(), 100u);
}

TEST(CoreTest, BenignFlagIsStored)
{
    ScriptedTrace trace({TraceRecord{0, false, false, 0}});
    FakeMemory mem;
    Core benign(0, &trace, &mem, smallCore(), true);
    Core attacker(1, &trace, &mem, smallCore(), false);
    EXPECT_TRUE(benign.benign());
    EXPECT_FALSE(attacker.benign());
}

} // namespace
} // namespace bh
