/**
 * @file
 * Unit tests for src/cache: LLC functional model and the MSHR file with
 * per-thread quotas (BreakHammer's throttle point).
 */
#include <gtest/gtest.h>

#include "cache/llc.h"
#include "cache/mshr.h"

namespace bh {
namespace {

LlcConfig
tinyLlc()
{
    LlcConfig c;
    c.sizeBytes = 4096; // 64 lines.
    c.ways = 4;         // 16 sets.
    return c;
}

TEST(LlcTest, MissThenHit)
{
    Llc llc(tinyLlc());
    EXPECT_FALSE(llc.access(0x1000, false));
    llc.allocate(0x1000, false, nullptr);
    EXPECT_TRUE(llc.access(0x1000, false));
    EXPECT_EQ(llc.hits(), 1u);
    EXPECT_EQ(llc.misses(), 1u);
}

TEST(LlcTest, LruEvictsOldest)
{
    LlcConfig cfg = tinyLlc();
    Llc llc(cfg);
    // Fill one set: same set index, different tags. Set stride is
    // 16 sets * 64 B = 1024 B.
    for (unsigned i = 0; i < cfg.ways; ++i)
        llc.allocate(0x400ull * i * 16, false, nullptr);
    // Touch way 0 so way 1 becomes LRU... (touch tags in order except one).
    llc.access(0, false);
    Llc::Victim victim;
    llc.allocate(0x400ull * cfg.ways * 16, false, &victim);
    // The evicted line is not the recently touched one.
    EXPECT_NE(victim.writebackLine, 0u);
}

TEST(LlcTest, DirtyEvictionReportsWriteback)
{
    LlcConfig cfg = tinyLlc();
    Llc llc(cfg);
    llc.allocate(0x0, true, nullptr); // Dirty.
    for (unsigned i = 1; i < cfg.ways; ++i)
        llc.allocate(0x4000ull * i, false, nullptr); // Same set 0.
    Llc::Victim victim;
    llc.allocate(0x4000ull * cfg.ways, false, &victim);
    EXPECT_TRUE(victim.dirtyWriteback);
    EXPECT_EQ(victim.writebackLine, 0u);
    EXPECT_EQ(llc.writebacks(), 1u);
}

TEST(LlcTest, CleanEvictionNoWriteback)
{
    LlcConfig cfg = tinyLlc();
    Llc llc(cfg);
    for (unsigned i = 0; i < cfg.ways; ++i)
        llc.allocate(0x4000ull * i, false, nullptr);
    Llc::Victim victim;
    llc.allocate(0x4000ull * cfg.ways, false, &victim);
    EXPECT_FALSE(victim.dirtyWriteback);
}

TEST(LlcTest, WriteHitMarksDirty)
{
    LlcConfig cfg = tinyLlc();
    Llc llc(cfg);
    llc.allocate(0x0, false, nullptr);
    EXPECT_TRUE(llc.access(0x0, true)); // Now dirty.
    for (unsigned i = 1; i < cfg.ways; ++i)
        llc.allocate(0x4000ull * i, false, nullptr);
    Llc::Victim victim;
    llc.allocate(0x4000ull * cfg.ways, false, &victim);
    EXPECT_TRUE(victim.dirtyWriteback);
}

TEST(LlcTest, SetDirtyOnPresentLine)
{
    LlcConfig cfg = tinyLlc();
    Llc llc(cfg);
    llc.allocate(0x0, false, nullptr);
    llc.setDirty(0x0);
    for (unsigned i = 1; i < cfg.ways; ++i)
        llc.allocate(0x4000ull * i, false, nullptr);
    Llc::Victim victim;
    llc.allocate(0x4000ull * cfg.ways, false, &victim);
    EXPECT_TRUE(victim.dirtyWriteback);
}

TEST(LlcTest, ProbeDoesNotTouchLru)
{
    LlcConfig cfg = tinyLlc();
    Llc llc(cfg);
    llc.allocate(0x0, false, nullptr);
    for (unsigned i = 1; i < cfg.ways; ++i)
        llc.allocate(0x4000ull * i, false, nullptr);
    // Probe the oldest line: should NOT protect it from eviction.
    EXPECT_TRUE(llc.probe(0x0));
    Llc::Victim victim;
    llc.allocate(0x4000ull * cfg.ways, false, &victim);
    EXPECT_EQ(victim.writebackLine, 0u);
}

TEST(LlcTest, InvalidateRemovesLine)
{
    Llc llc(tinyLlc());
    llc.allocate(0x40, false, nullptr);
    EXPECT_TRUE(llc.invalidate(0x40));
    EXPECT_FALSE(llc.probe(0x40));
    EXPECT_FALSE(llc.invalidate(0x40));
}

TEST(LlcTest, Table1Geometry)
{
    LlcConfig cfg; // Defaults: 8 MiB, 8-way.
    Llc llc(cfg);
    EXPECT_EQ(llc.numSets(), (8u << 20) / 64 / 8);
}

TEST(MshrTest, AllocateAndRelease)
{
    MshrFile mshr(4, 2);
    EXPECT_TRUE(mshr.canAllocate(0));
    mshr.allocate(0x40, 0, false);
    EXPECT_TRUE(mshr.has(0x40));
    EXPECT_EQ(mshr.inflightOf(0), 1u);
    std::vector<MshrWaiter> waiters;
    EXPECT_FALSE(mshr.release(0x40, &waiters));
    EXPECT_EQ(mshr.inflightOf(0), 0u);
    EXPECT_FALSE(mshr.has(0x40));
}

TEST(MshrTest, GlobalCapacityLimit)
{
    MshrFile mshr(2, 1);
    mshr.allocate(0x40, 0, false);
    mshr.allocate(0x80, 0, false);
    EXPECT_FALSE(mshr.canAllocate(0));
}

TEST(MshrTest, QuotaLimitsThread)
{
    MshrFile mshr(8, 2);
    mshr.setQuota(0, 2);
    mshr.allocate(0x40, 0, false);
    mshr.allocate(0x80, 0, false);
    EXPECT_FALSE(mshr.canAllocate(0)); // Thread 0 over quota.
    EXPECT_TRUE(mshr.canAllocate(1));  // Thread 1 unaffected.
    EXPECT_EQ(mshr.quota(0), 2u);
    EXPECT_EQ(mshr.fullQuota(), 8u);
}

TEST(MshrTest, ZeroQuotaBlocksAllocation)
{
    MshrFile mshr(8, 1);
    mshr.setQuota(0, 0);
    EXPECT_FALSE(mshr.canAllocate(0));
}

TEST(MshrTest, MergeDoesNotConsumeQuota)
{
    MshrFile mshr(8, 2);
    mshr.setQuota(0, 1);
    mshr.allocate(0x40, 0, false);
    EXPECT_FALSE(mshr.canAllocate(0));
    // Secondary miss to the same line merges freely (paper §4.3).
    mshr.merge(0x40, MshrWaiter{0, 11, true}, false);
    mshr.merge(0x40, MshrWaiter{1, 22, true}, false);
    std::vector<MshrWaiter> waiters;
    mshr.release(0x40, &waiters);
    ASSERT_EQ(waiters.size(), 2u);
    EXPECT_EQ(waiters[0].token, 11u);
    EXPECT_EQ(waiters[1].token, 22u);
}

TEST(MshrTest, StoreMergeSetsAnyStore)
{
    MshrFile mshr(8, 1);
    mshr.allocate(0x40, 0, false);
    mshr.merge(0x40, MshrWaiter{0, 0, false}, true);
    std::vector<MshrWaiter> waiters;
    EXPECT_TRUE(mshr.release(0x40, &waiters));
    EXPECT_TRUE(waiters.empty()); // Store waiters need no wakeup.
}

TEST(MshrTest, QuotaRejectionCounter)
{
    MshrFile mshr(8, 1);
    EXPECT_EQ(mshr.quotaRejections(), 0u);
    mshr.noteQuotaRejection();
    mshr.noteQuotaRejection();
    EXPECT_EQ(mshr.quotaRejections(), 2u);
}

TEST(MshrTest, RestoringQuotaReenablesAllocation)
{
    MshrFile mshr(4, 1);
    mshr.setQuota(0, 0);
    EXPECT_FALSE(mshr.canAllocate(0));
    mshr.setQuota(0, mshr.fullQuota());
    EXPECT_TRUE(mshr.canAllocate(0));
}

} // namespace
} // namespace bh
