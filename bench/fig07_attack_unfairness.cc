/**
 * @file
 * Fig 7: unfairness (maximum slowdown of a benign application) with an
 * attacker present at N_RH = 1K, per mix class, mechanism+BH normalized to
 * the mechanism alone. Expected shape: < 1 (paper: -45.8% average),
 * shrinking least for HHH mixes.
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig07",
                      "Fig 7: unfairness under attack, N_RH=1K, +BH vs base",
                      "paper Fig 7 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    const unsigned n_rh = 1024;

    std::printf("%-12s", "mix");
    for (MitigationType m : pairedMitigations())
        std::printf(" %11s", mitigationName(m));
    std::printf("\n");

    std::vector<double> overall;
    for (const std::string &pattern : attackMixPatterns()) {
        std::printf("%-12s", pattern.c_str());
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> vals;
            for (unsigned i = 0; i < mixesPerClass(); ++i) {
                MixSpec mix = makeMix(pattern, i);
                const ExperimentResult &base = point(ctx, mix, mech, n_rh,
                                                     false);
                const ExperimentResult &paired = point(ctx, mix, mech,
                                                       n_rh, true);
                vals.push_back(paired.maxSlowdown / base.maxSlowdown);
            }
            double g = geomean(vals);
            overall.push_back(g);
            std::printf(" %11.3f", g);
        }
        std::printf("\n");
    }
    std::printf("\noverall geomean: %.3f (paper: -45.8%% average)\n",
                geomean(overall));
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig07")
        .mixes(attackMixes())
        .nRh(1024)
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
