/**
 * @file
 * Fig 5: the analytic security bound (Expression 2) — maximum RowHammer-
 * preventive score an attack thread can gather before suspect
 * identification, normalized to the average benign score, as a function of
 * the attacker's thread share, for the paper's TH_outlier sweep.
 */
#include <cmath>
#include <cstdio>

#include "bench/registry.h"
#include "breakhammer/security_model.h"

BH_BENCH_FIGURE("fig05",
                "Fig 5: RS_max_atk bound vs attacker thread share (Expr 2)",
                "paper Fig 5 (§5.2)")
{
    using namespace bh;

    const double outliers[] = {0.05, 0.15, 0.25, 0.35, 0.45,
                               0.55, 0.65, 0.75, 0.85, 0.95};

    std::printf("%-10s", "atk%");
    for (double o : outliers)
        std::printf(" %7.2f", o);
    std::printf("   (columns: TH_outlier)\n");

    for (int pct = 0; pct <= 100; pct += 10) {
        std::printf("%-10d", pct);
        double f = pct / 100.0;
        for (double o : outliers) {
            double bound = maxAttackerScoreBound(f, o);
            if (std::isinf(bound) || bound > 10.0)
                std::printf(" %7s", ">10");
            else
                std::printf(" %7.2f", bound);
        }
        std::printf("\n");
    }

    std::printf("\npaper data points: THo=0.65 @50%% -> %.2fx (paper: "
                "4.71x); THo=0.05 @90%% -> %.2fx (paper: 1.90x)\n",
                maxAttackerScoreBound(0.5, 0.65),
                maxAttackerScoreBound(0.9, 0.05));
}
