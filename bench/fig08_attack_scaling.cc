/**
 * @file
 * Fig 8: weighted speedup of benign applications vs N_RH with an attacker
 * present, for each mechanism with and without BreakHammer, normalized to
 * a no-mitigation baseline. Expected shape: baselines collapse as N_RH
 * shrinks; +BH variants stay near or above 1 except PARA/AQUA at very low
 * N_RH.
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig08",
                      "Fig 8: benign performance scaling vs N_RH, attacker present",
                      "paper Fig 8 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::vector<MixSpec> mixes = attackMixes();

    std::printf("%-8s", "NRH");
    for (MitigationType m : pairedMitigations()) {
        std::printf(" %9s", mitigationName(m));
        std::printf(" %9s", "+BH");
    }
    std::printf("\n");

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> base_norm, paired_norm;
            for (const MixSpec &mix : mixes) {
                double nodef = baseline(ctx, mix).weightedSpeedup;
                base_norm.push_back(
                    point(ctx, mix, mech, n_rh, false).weightedSpeedup /
                    nodef);
                paired_norm.push_back(
                    point(ctx, mix, mech, n_rh, true).weightedSpeedup /
                    nodef);
            }
            std::printf(" %9.3f %9.3f", geomean(base_norm),
                        geomean(paired_norm));
        }
        std::printf("\n");
    }
    std::printf("\n(columns: mechanism without / with BreakHammer, "
                "normalized WS vs no-mitigation)\n");
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig08")
        .mixes(attackMixes())
        .withBaselines()
        .nRhValues(nrhSweep())
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
