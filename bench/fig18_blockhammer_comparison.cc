/**
 * @file
 * Fig 18: BreakHammer-paired mechanisms vs BlockHammer (the state-of-the-
 * art throttling-based RowHammer defense) vs N_RH, attacker present,
 * normalized to no mitigation. Expected shape: BlockHammer helps at high
 * N_RH but collapses at low N_RH (it starts delaying benign rows), while
 * every +BH pairing stays ahead.
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig18", "Fig 18: BreakHammer pairings vs BlockHammer",
                      "paper Fig 18 (§8.3)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::vector<MixSpec> mixes = attackMixes();

    std::printf("%-8s", "NRH");
    for (MitigationType m : pairedMitigations())
        std::printf(" %10s+BH", mitigationName(m));
    std::printf(" %12s\n", "BlockHammer");

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> vals;
            for (const MixSpec &mix : mixes) {
                double nodef = baseline(ctx, mix).weightedSpeedup;
                vals.push_back(
                    point(ctx, mix, mech, n_rh, true).weightedSpeedup /
                    nodef);
            }
            std::printf(" %13.3f", geomean(vals));
        }
        std::vector<double> bhm;
        for (const MixSpec &mix : mixes) {
            double nodef = baseline(ctx, mix).weightedSpeedup;
            bhm.push_back(
                point(ctx, mix, MitigationType::kBlockHammer, n_rh, false)
                    .weightedSpeedup /
                nodef);
        }
        std::printf(" %12.3f\n", geomean(bhm));
    }
    std::printf("\n(normalized WS of benign apps vs no mitigation; paper: "
                "BlockHammer falls from +78.6%% to -98%% as N_RH drops)\n");
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    SweepSpec paired("fig18/paired");
    paired.mixes(attackMixes())
        .withBaselines()
        .nRhValues(nrhSweep())
        .mechanisms(pairedMitigations())
        .breakHammer(true);

    SweepSpec blockhammer("fig18/blockhammer");
    blockhammer.mixes(attackMixes())
        .nRhValues(nrhSweep())
        .mechanism(MitigationType::kBlockHammer);

    return paired.merge(blockhammer);
}
