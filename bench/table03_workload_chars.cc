/**
 * @file
 * Table 3: workload characteristics — RBMPKI and the mean number of rows
 * with more than 512 / 128 / 64 activations per census window, for the
 * most memory-intensive catalog applications. Regenerated through the
 * functional profiler (LLC + open-row model). Absolute row counts depend
 * on the window scale (the paper uses 64 ms wall-clock windows at 100M+
 * instructions); the tier structure and the H > M > L ordering are the
 * reproduced shape.
 */
#include <cstdio>

#include "bench/registry.h"
#include "dram/address.h"
#include "dram/spec.h"
#include "trace/benign.h"
#include "trace/profiler.h"

BH_BENCH_FIGURE("table03", "Table 3: workload characteristics",
                "paper Table 3 (§7)")
{
    using namespace bh;

    std::printf("(profiler: %s instructions, 8M-instruction windows)\n\n",
                "4M");
    AddressMap mapper(DramSpec::ddr5().org);
    LlcConfig llc;

    std::printf("%-20s %6s %10s %10s %10s %10s\n", "workload", "tier",
                "RBMPKI", "ACT-512+", "ACT-128+", "ACT-64+");

    auto tier_name = [](IntensityTier t) {
        switch (t) {
          case IntensityTier::kHigh: return "H";
          case IntensityTier::kMedium: return "M";
          case IntensityTier::kLow: return "L";
        }
        return "?";
    };

    double sum_rbmpki = 0;
    unsigned count = 0;
    for (const AppProfile &app : appCatalog()) {
        BenignTrace trace(app, mapper, 0, 8192, 0x7ab1e3);
        TraceProfile p = profileTrace(trace, mapper, llc, 4000000, 8.0);
        std::printf("%-20s %6s %10.2f %10.1f %10.1f %10.1f\n",
                    app.name.c_str(), tier_name(app.tier), p.rbmpki,
                    p.meanRows512, p.meanRows128, p.meanRows64);
        sum_rbmpki += p.rbmpki;
        ++count;
    }
    std::printf("%-20s %6s %10.2f\n", "average", "",
                sum_rbmpki / count);
}
