/**
 * @file
 * google-benchmark microbenchmarks of the hot update paths: the
 * BreakHammer observer (which §6 shows must beat tRRD), the Misra-Gries
 * tracker, the counting Bloom filter, PARA's coin flip, and the latency
 * histogram.
 */
#include <benchmark/benchmark.h>

#include "breakhammer/breakhammer.h"
#include "cache/mshr.h"
#include "mitigation/blockhammer.h"
#include "mitigation/misra_gries.h"
#include "mitigation/para.h"
#include "stats/histogram.h"

namespace {

using namespace bh;

void
BM_BreakHammerActivate(benchmark::State &state)
{
    MshrFile mshr(64, 4);
    BreakHammerConfig cfg;
    BreakHammer bh(4, cfg, &mshr);
    Cycle now = 0;
    for (auto _ : state) {
        bh.onDemandActivate(now & 3, 0, now);
        ++now;
    }
}
BENCHMARK(BM_BreakHammerActivate);

void
BM_BreakHammerPreventiveAction(benchmark::State &state)
{
    MshrFile mshr(64, 4);
    BreakHammerConfig cfg;
    BreakHammer bh(4, cfg, &mshr);
    Cycle now = 0;
    for (auto _ : state) {
        bh.onDemandActivate(now & 3, 0, now);
        bh.onPreventiveAction(1.0, now);
        ++now;
    }
}
BENCHMARK(BM_BreakHammerPreventiveAction);

void
BM_MisraGriesIncrement(benchmark::State &state)
{
    MisraGries mg(static_cast<unsigned>(state.range(0)));
    std::uint64_t row = 0;
    for (auto _ : state) {
        mg.increment(row % 1000);
        ++row;
    }
}
BENCHMARK(BM_MisraGriesIncrement)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_CbfIncrementEstimate(benchmark::State &state)
{
    CountingBloomFilter cbf(1024, 4);
    std::uint64_t key = 0;
    for (auto _ : state) {
        cbf.increment(key % 512);
        benchmark::DoNotOptimize(cbf.estimate(key % 512));
        ++key;
    }
}
BENCHMARK(BM_CbfIncrementEstimate);

void
BM_ParaCoinFlip(benchmark::State &state)
{
    struct NullHost : IMitigationHost
    {
        void performVictimRefresh(unsigned, unsigned, double) override {}
        void performMigration(unsigned, unsigned) override {}
        void performRfm(unsigned, double) override {}
        void performAlertBackoff(unsigned, double) override {}
        void performTrackerAccess(unsigned, Cycle, double) override {}
        void notifyRowProtected(unsigned, unsigned) override {}
        void creditDirectScore(ThreadId, double) override {}
    } host;
    Para para(1024);
    para.setHost(&host);
    Cycle now = 0;
    for (auto _ : state)
        para.commitAct(0, 5, 0, ++now);
}
BENCHMARK(BM_ParaCoinFlip);

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h(2.0, 4096);
    double v = 0;
    for (auto _ : state) {
        h.record(v);
        v += 0.7;
        if (v > 8000)
            v = 0;
    }
}
BENCHMARK(BM_HistogramRecord);

} // namespace

BENCHMARK_MAIN();
