/**
 * @file
 * §6 hardware complexity: BreakHammer's storage/area/latency inventory and
 * the storage comparison against BlockHammer (§8.3's cost argument).
 */
#include <cstdio>
#include <initializer_list>

#include "bench/registry.h"
#include "breakhammer/cost_model.h"
#include "dram/spec.h"

BH_BENCH_FIGURE("hw_cost", "Hardware cost model", "paper §6")
{
    using namespace bh;

    std::printf("BreakHammer per-thread state: 2x32b scores + 16b ACT "
                "counter + 2x1b flags = %u bits\n",
                kBreakHammerBitsPerThread);

    for (unsigned threads : {4u, 8u, 16u, 32u, 64u}) {
        std::printf("  %2u threads, 1 channel: %6llu bits, %.6f mm^2 "
                    "(65 nm)\n",
                    threads,
                    static_cast<unsigned long long>(
                        breakHammerStorageBits(threads, 1)),
                    breakHammerAreaMm2(threads, 1));
    }
    std::printf("paper datum: 4 threads -> 0.000105 mm^2 per channel\n");
    std::printf("update latency: %.2f ns (< tRRD: 2.5 ns DDR4, 5 ns "
                "DDR5)\n\n",
                kBreakHammerLatencyNs);

    std::printf("Storage comparison vs BlockHammer (bits, 32 banks):\n");
    std::printf("%-8s %16s %16s\n", "NRH", "BlockHammer", "BreakHammer");
    unsigned banks = DramSpec::ddr5().org.totalBanks();
    for (unsigned n_rh : {4096u, 1024u, 256u, 64u}) {
        std::printf("%-8u %16llu %16llu\n", n_rh,
                    static_cast<unsigned long long>(
                        blockHammerStorageBits(n_rh, banks)),
                    static_cast<unsigned long long>(
                        breakHammerStorageBits(4, 1)));
    }
    std::printf("\n(BlockHammer's history buffers grow as N_RH shrinks; "
                "BreakHammer's state is N_RH-independent, §8.3)\n");
}
