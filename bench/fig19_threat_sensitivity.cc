/**
 * @file
 * Fig 19: sensitivity to TH_threat. The paper sweeps TH_threat in
 * {32..4096} (per 64 ms window) at N_RH in {4096, 512, 64}, with and
 * without an attacker, reporting box statistics of weighted speedup
 * normalized to the TH_threat = 4096 configuration. The sweep here uses
 * window-scaled TH_threat multiples (1x, 16x, 128x of the scaled base —
 * the same ratios as the paper's 32/512/4096).
 */
#include <map>

#include "bench/bench_util.h"

namespace {

constexpr unsigned kNrhPoints[] = {4096, 512, 64};
constexpr double kMultipliers[] = {1.0, 16.0, 128.0};

/** The TH_threat override shared by the sweep and the render lookups. */
void
applyThreat(bh::ExperimentConfig &cfg, const bh::BreakHammerConfig &scaled,
            double multiplier)
{
    cfg.bh = scaled;
    cfg.bh.thThreat = scaled.thThreat * multiplier;
}

bh::ExperimentConfig
threatConfig(const bh::MixSpec &mix, unsigned n_rh,
             const bh::BreakHammerConfig &scaled, double multiplier)
{
    using namespace bh;
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = n_rh;
    cfg.breakHammer = true;
    applyThreat(cfg, scaled, multiplier);
    return cfg;
}

} // namespace

BH_BENCH_SWEEP_FIGURE("fig19", "Fig 19: sensitivity to TH_threat",
                      "paper Fig 19 (§8.4)")
{
    using namespace bh;
    using namespace bh::benchutil;

    BreakHammerConfig scaled =
        scaledBreakHammerConfig(defaultInstructions());

    for (bool attack : {true, false}) {
        std::printf("-- %s --\n",
                    attack ? "RowHammer attack present"
                           : "no RowHammer attack");
        std::printf("%-10s", "THthreat");
        for (unsigned n_rh : kNrhPoints)
            std::printf("  NRH=%-5u min/med/max      ", n_rh);
        std::printf("\n");

        // Reference: the largest TH_threat (effectively disabled).
        std::map<unsigned, std::vector<double>> reference;
        for (unsigned n_rh : kNrhPoints) {
            for (const std::string &pattern :
                 attack ? attackMixPatterns() : benignMixPatterns()) {
                reference[n_rh].push_back(
                    ctx.store
                        ->get(threatConfig(makeMix(pattern, 0), n_rh,
                                           scaled, kMultipliers[2]))
                        .weightedSpeedup);
            }
        }

        for (double mult : kMultipliers) {
            std::printf("%-10.0f", scaled.thThreat * mult);
            for (unsigned n_rh : kNrhPoints) {
                std::vector<double> normalized;
                unsigned idx = 0;
                for (const std::string &pattern :
                     attack ? attackMixPatterns() : benignMixPatterns()) {
                    normalized.push_back(
                        ctx.store
                            ->get(threatConfig(makeMix(pattern, 0), n_rh,
                                               scaled, mult))
                            .weightedSpeedup /
                        reference[n_rh][idx++]);
                }
                BoxStats box = boxStats(normalized);
                std::printf("  %5.2f/%5.2f/%5.2f      ", box.min,
                            box.median, box.max);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("(WS normalized to the largest TH_threat; paper: lower "
                "TH_threat helps under attack, costs little without)\n");
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    BreakHammerConfig scaled =
        scaledBreakHammerConfig(defaultInstructions());

    SweepSpec spec("fig19");
    spec.mixClasses(attackMixPatterns(), 1)
        .mixClasses(benignMixPatterns(), 1)
        .nRhValues({kNrhPoints[0], kNrhPoints[1], kNrhPoints[2]})
        .mechanism(MitigationType::kGraphene)
        .breakHammer(true);
    for (double mult : kMultipliers) {
        char label[32];
        std::snprintf(label, sizeof(label), "thr-x%g", mult);
        spec.variant(label, [scaled, mult](ExperimentConfig &cfg) {
            applyThreat(cfg, scaled, mult);
        });
    }
    return spec;
}
