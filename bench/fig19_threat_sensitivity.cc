/**
 * @file
 * Fig 19: sensitivity to TH_threat. The paper sweeps TH_threat in
 * {32..4096} (per 64 ms window) at N_RH in {4096, 512, 64}, with and
 * without an attacker, reporting box statistics of weighted speedup
 * normalized to the TH_threat = 4096 configuration. The sweep here uses
 * window-scaled TH_threat multiples (1x, 16x, 128x of the scaled base —
 * the same ratios as the paper's 32/512/4096).
 */
#include <map>

#include "bench/bench_util.h"

namespace {

bh::ExperimentConfig
threatConfig(const bh::MixSpec &mix, unsigned n_rh,
             const bh::BreakHammerConfig &scaled, double multiplier)
{
    using namespace bh;
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.mechanism = MitigationType::kGraphene;
    cfg.nRh = n_rh;
    cfg.breakHammer = true;
    cfg.bh = scaled;
    cfg.bh.thThreat = scaled.thThreat * multiplier;
    return cfg;
}

} // namespace

BH_BENCH_FIGURE("fig19", "Fig 19: sensitivity to TH_threat",
                "paper Fig 19 (§8.4)")
{
    using namespace bh;
    using namespace bh::benchutil;

    const unsigned nrh_points[] = {4096, 512, 64};
    const double multipliers[] = {1.0, 16.0, 128.0};

    BreakHammerConfig scaled =
        scaledBreakHammerConfig(defaultInstructions());

    std::vector<ExperimentConfig> grid;
    for (bool attack : {true, false})
        for (unsigned n_rh : nrh_points)
            for (double mult : multipliers)
                for (const std::string &pattern :
                     attack ? attackMixPatterns() : benignMixPatterns())
                    grid.push_back(threatConfig(makeMix(pattern, 0), n_rh,
                                                scaled, mult));
    ctx.pool->prefetch(grid);

    for (bool attack : {true, false}) {
        std::printf("-- %s --\n",
                    attack ? "RowHammer attack present"
                           : "no RowHammer attack");
        std::printf("%-10s", "THthreat");
        for (unsigned n_rh : nrh_points)
            std::printf("  NRH=%-5u min/med/max      ", n_rh);
        std::printf("\n");

        // Reference: the largest TH_threat (effectively disabled).
        std::map<unsigned, std::vector<double>> reference;
        for (unsigned n_rh : nrh_points) {
            for (const std::string &pattern :
                 attack ? attackMixPatterns() : benignMixPatterns()) {
                reference[n_rh].push_back(
                    ctx.pool
                        ->get(threatConfig(makeMix(pattern, 0), n_rh,
                                           scaled, multipliers[2]))
                        .weightedSpeedup);
            }
        }

        for (double mult : multipliers) {
            std::printf("%-10.0f", scaled.thThreat * mult);
            for (unsigned n_rh : nrh_points) {
                std::vector<double> normalized;
                unsigned idx = 0;
                for (const std::string &pattern :
                     attack ? attackMixPatterns() : benignMixPatterns()) {
                    normalized.push_back(
                        ctx.pool
                            ->get(threatConfig(makeMix(pattern, 0), n_rh,
                                               scaled, mult))
                            .weightedSpeedup /
                        reference[n_rh][idx++]);
                }
                BoxStats box = boxStats(normalized);
                std::printf("  %5.2f/%5.2f/%5.2f      ", box.min,
                            box.median, box.max);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("(WS normalized to the largest TH_threat; paper: lower "
                "TH_threat helps under attack, costs little without)\n");
}
