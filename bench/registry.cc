#include "bench/registry.h"

#include <algorithm>

namespace bh::bench {

namespace {

std::vector<Figure> &
allFigures()
{
    static std::vector<Figure> figures;
    return figures;
}

} // namespace

void
registerFigure(Figure figure)
{
    allFigures().push_back(std::move(figure));
}

std::vector<Figure>
figures()
{
    std::vector<Figure> out = allFigures();
    std::sort(out.begin(), out.end(),
              [](const Figure &a, const Figure &b) {
                  return a.name < b.name;
              });
    return out;
}

const Figure *
findFigure(const std::string &name)
{
    for (const Figure &figure : allFigures())
        if (figure.name == name)
            return &figure;
    return nullptr;
}

} // namespace bh::bench
