/**
 * @file
 * Fig 17: memory latency percentiles at N_RH = 64 with no attacker —
 * BreakHammer must not degrade latency for benign-only workloads.
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig17",
                      "Fig 17: benign memory latency percentiles, N_RH=64, no attack",
                      "paper Fig 17 (§8.2)")
{
    using namespace bh;
    using namespace bh::benchutil;

    const unsigned n_rh = 64;
    MixSpec mix = makeMix("HHMM", 0);
    const double pcts[] = {50, 90, 99, 99.9};

    const ExperimentResult &nodef = baseline(ctx, mix);

    std::printf("%-12s %8s %8s %8s %8s   (latency ns, mix %s)\n", "config",
                "P50", "P90", "P99", "P99.9", mix.name.c_str());
    auto print_row = [&](const std::string &name, const Histogram &h) {
        std::printf("%-12s", name.c_str());
        for (double p : pcts)
            std::printf(" %8.0f", h.percentile(p));
        std::printf("\n");
    };
    print_row("NoDefense", nodef.raw.benignReadLatencyNs);

    for (MitigationType mech : pairedMitigations()) {
        const ExperimentResult &base = point(ctx, mix, mech, n_rh, false);
        const ExperimentResult &paired = point(ctx, mix, mech, n_rh, true);
        print_row(mitigationName(mech), base.raw.benignReadLatencyNs);
        print_row(std::string(mitigationName(mech)) + "+BH",
                  paired.raw.benignReadLatencyNs);
    }
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    return SweepSpec("fig17")
        .mix(makeMix("HHMM", 0))
        .withBaselines()
        .nRh(64)
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
