/**
 * @file
 * Fig 2: system performance of RowHammer mitigation mechanisms (without
 * BreakHammer) on benign workloads as N_RH decreases, normalized to a
 * no-mitigation baseline. Expected shape: all mechanisms degrade as N_RH
 * shrinks; Hydra degrades least, PARA and AQUA most.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace bh;
    using namespace bh::benchutil;

    header("Fig 2: baseline mitigation overheads (benign workloads)",
           "paper Fig 2 (§3)");

    const std::vector<MitigationType> mechanisms = {
        MitigationType::kHydra, MitigationType::kRfm,
        MitigationType::kPara, MitigationType::kAqua};

    std::vector<MixSpec> mixes = benignMixes();
    BaselineCache baselines;

    std::printf("%-8s", "NRH");
    for (MitigationType m : mechanisms)
        std::printf(" %12s", mitigationName(m));
    std::printf("   (normalized weighted speedup, geomean over %zu mixes)\n",
                mixes.size());

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : mechanisms) {
            std::vector<double> normalized;
            for (const MixSpec &mix : mixes) {
                double base = baselines.get(mix).weightedSpeedup;
                ExperimentResult r = point(mix, mech, n_rh, false);
                normalized.push_back(r.weightedSpeedup / base);
            }
            std::printf(" %12.3f", geomean(normalized));
        }
        std::printf("\n");
    }
    return 0;
}
