/**
 * @file
 * Fig 2: system performance of RowHammer mitigation mechanisms (without
 * BreakHammer) on benign workloads as N_RH decreases, normalized to a
 * no-mitigation baseline. Expected shape: all mechanisms degrade as N_RH
 * shrinks; Hydra degrades least, PARA and AQUA most.
 */
#include "bench/bench_util.h"

BH_BENCH_FIGURE("fig02", "Fig 2: baseline mitigation overheads (benign)",
                "paper Fig 2 (§3)")
{
    using namespace bh;
    using namespace bh::benchutil;

    const std::vector<MitigationType> mechanisms = {
        MitigationType::kHydra, MitigationType::kRfm,
        MitigationType::kPara, MitigationType::kAqua};

    std::vector<MixSpec> mixes = benignMixes();

    std::vector<ExperimentConfig> grid;
    for (const MixSpec &mix : mixes) {
        grid.push_back(baselineConfig(mix));
        for (unsigned n_rh : nrhSweep())
            for (MitigationType mech : mechanisms)
                grid.push_back(pointConfig(mix, mech, n_rh, false));
    }
    ctx.pool->prefetch(grid);

    std::printf("%-8s", "NRH");
    for (MitigationType m : mechanisms)
        std::printf(" %12s", mitigationName(m));
    std::printf("   (normalized weighted speedup, geomean over %zu mixes)\n",
                mixes.size());

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : mechanisms) {
            std::vector<double> normalized;
            for (const MixSpec &mix : mixes) {
                double base = baseline(ctx, mix).weightedSpeedup;
                const ExperimentResult &r = point(ctx, mix, mech, n_rh,
                                                  false);
                normalized.push_back(r.weightedSpeedup / base);
            }
            std::printf(" %12.3f", geomean(normalized));
        }
        std::printf("\n");
    }
}
