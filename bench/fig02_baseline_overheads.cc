/**
 * @file
 * Fig 2: system performance of RowHammer mitigation mechanisms (without
 * BreakHammer) on benign workloads as N_RH decreases, normalized to a
 * no-mitigation baseline. Expected shape: all mechanisms degrade as N_RH
 * shrinks; Hydra degrades least, PARA and AQUA most.
 */
#include "bench/bench_util.h"

namespace {

const std::vector<bh::MitigationType> &
mechanisms()
{
    static const std::vector<bh::MitigationType> mechs = {
        bh::MitigationType::kHydra, bh::MitigationType::kRfm,
        bh::MitigationType::kPara, bh::MitigationType::kAqua};
    return mechs;
}

} // namespace

BH_BENCH_SWEEP_FIGURE("fig02", "Fig 2: baseline mitigation overheads (benign)",
                      "paper Fig 2 (§3)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::vector<MixSpec> mixes = benignMixes();

    std::printf("%-8s", "NRH");
    for (MitigationType m : mechanisms())
        std::printf(" %12s", mitigationName(m));
    std::printf("   (normalized weighted speedup, geomean over %zu mixes)\n",
                mixes.size());

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : mechanisms()) {
            std::vector<double> normalized;
            for (const MixSpec &mix : mixes) {
                double base = baseline(ctx, mix).weightedSpeedup;
                const ExperimentResult &r = point(ctx, mix, mech, n_rh,
                                                  false);
                normalized.push_back(r.weightedSpeedup / base);
            }
            std::printf(" %12.3f", geomean(normalized));
        }
        std::printf("\n");
    }
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig02")
        .mixes(benignMixes())
        .withBaselines()
        .nRhValues(nrhSweep())
        .mechanisms(mechanisms());
}
