/**
 * @file
 * Channel-count scaling study (beyond-paper; ROADMAP "multi-channel
 * DDR5 scale-out"): weighted speedup and max slowdown vs DRAM channel
 * count at 8/16/32 cores, Graphene + BreakHammer, attacker present.
 *
 * Mix patterns rotate H/M/L benign tiers and end in one attacker slot,
 * so contention grows with the core count while the attack share
 * shrinks — the regime where extra channels should buy benign
 * performance back. Channels ride the sweep's variant axis (cfg.channels
 * = 1/2/4), so multi-channel points key separately in a ResultStore
 * while the 1-channel column keeps legacy content addresses.
 *
 * Registered as a study: listable and runnable by name ("bh_bench
 * chscale"), excluded from "bh_bench all" so the canonical full-set
 * JSON export keeps its bytes.
 */
#include "bench/bench_util.h"

namespace {

constexpr unsigned kCoreCounts[] = {8, 16, 32};
constexpr unsigned kChannelCounts[] = {1, 2, 4};

/** "HMLHML...A" pattern of @p cores slots (one attacker, rotated tiers). */
std::string
scalePattern(unsigned cores)
{
    static const char tiers[] = {'H', 'M', 'L'};
    std::string pattern;
    for (unsigned i = 0; i + 1 < cores; ++i)
        pattern += tiers[i % 3];
    pattern += 'A';
    return pattern;
}

/** The study's mixes at one core count (BH_MIXES instances). */
std::vector<bh::MixSpec>
scaleMixes(unsigned cores)
{
    std::vector<bh::MixSpec> mixes;
    for (unsigned i = 0; i < bh::mixesPerClass(); ++i)
        mixes.push_back(bh::makeMix(scalePattern(cores), i));
    return mixes;
}

bh::ExperimentConfig
scalePoint(const bh::MixSpec &mix, unsigned channels)
{
    bh::ExperimentConfig cfg =
        bh::benchutil::pointConfig(mix, bh::MitigationType::kGraphene,
                                   1024, true);
    cfg.channels = channels;
    return cfg;
}

} // namespace

BH_BENCH_SWEEP_STUDY("chscale",
                     "Channel scaling: WS / maxSD vs channels, 8-32 cores",
                     "beyond paper (ROADMAP: multi-channel DDR5)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::printf("%-8s", "cores");
    for (unsigned ch : kChannelCounts)
        std::printf("   WS@%uch maxSD@%uch", ch, ch);
    std::printf("\n");

    for (unsigned cores : kCoreCounts) {
        std::printf("%-8u", cores);
        for (unsigned ch : kChannelCounts) {
            std::vector<double> ws, sd;
            for (const MixSpec &mix : scaleMixes(cores)) {
                const ExperimentResult &r =
                    ctx.store->get(scalePoint(mix, ch));
                ws.push_back(r.weightedSpeedup);
                sd.push_back(r.maxSlowdown);
            }
            std::printf("  %7.3f %9.3f", geomean(ws), geomean(sd));
        }
        std::printf("\n");
    }
    std::printf("\n(Graphene + BreakHammer, N_RH=1024, one attacker per "
                "mix;\n geomean over BH_MIXES mixes per core count)\n");
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    SweepSpec spec("chscale");
    for (unsigned cores : kCoreCounts)
        spec.mixes(scaleMixes(cores));
    spec.mechanism(MitigationType::kGraphene).breakHammer(true);
    for (unsigned ch : kChannelCounts)
        spec.variant(std::to_string(ch) + "ch",
                     [ch](ExperimentConfig &cfg) { cfg.channels = ch; });
    return spec;
}
