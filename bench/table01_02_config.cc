/**
 * @file
 * Tables 1 & 2: the simulated system configuration and the BreakHammer
 * configuration, printed from the live defaults so documentation cannot
 * drift from the code.
 */
#include <cstdio>

#include "bench/registry.h"
#include "breakhammer/breakhammer.h"
#include "cache/llc.h"
#include "core/core.h"
#include "dram/spec.h"
#include "mem/controller.h"

BH_BENCH_FIGURE("table01_02", "Tables 1 & 2: system and BreakHammer config",
                "paper Tables 1-2 (§7)")
{
    using namespace bh;

    std::printf("==== Table 1: simulated system configuration ====\n");
    CoreConfig core;
    std::printf("Processor        %.1f GHz, 4 cores, %u-wide issue, "
                "%u-entry instr. window\n",
                kCpuFreqGhz, core.width, core.windowSize);
    LlcConfig llc;
    std::printf("Last-Level Cache %u-byte lines, %u-way, %llu MB, "
                "%llu-cycle hit latency\n",
                kCacheLineBytes, llc.ways,
                static_cast<unsigned long long>(llc.sizeBytes >> 20),
                static_cast<unsigned long long>(llc.hitLatency));
    McConfig mc;
    std::printf("Memory Controller %u-entry RD/WR queues; FR-FCFS+Cap "
                "with Cap=%u; MOP address mapping\n",
                mc.readQueueSize, mc.frfcfsCap);
    DramSpec spec = DramSpec::ddr5();
    std::printf("Main Memory      DDR5, 1 channel, %u ranks, %u bank "
                "groups, %u banks/group, %uK rows/bank\n",
                spec.org.ranks, spec.org.bankGroups,
                spec.org.banksPerGroup, spec.org.rowsPerBank / 1024);
    std::printf("Timing (ns)      tRCD=%.1f tRP=%.1f tRAS=%.1f tCL=%.1f "
                "tRRD_S/L=%.1f/%.1f tFAW=%.1f tRFC=%.0f tREFI=%.0f "
                "tRFM=%.0f\n",
                spec.timingNs.tRCD, spec.timingNs.tRP, spec.timingNs.tRAS,
                spec.timingNs.tCL, spec.timingNs.tRRD_S,
                spec.timingNs.tRRD_L, spec.timingNs.tFAW,
                spec.timingNs.tRFC, spec.timingNs.tREFI,
                spec.timingNs.tRFM);

    std::printf("\n==== Table 2: BreakHammer configuration ====\n");
    BreakHammerConfig bhc;
    std::printf("TH_window        %llu cycles (64 ms)\n",
                static_cast<unsigned long long>(bhc.window));
    std::printf("TH_threat        %.0f\n", bhc.thThreat);
    std::printf("TH_outlier       %.2f\n", bhc.thOutlier);
    std::printf("P_oldsuspect     %u\n", bhc.pOldSuspect);
    std::printf("P_newsuspect     %u\n", bhc.pNewSuspect);
    std::printf("\n(benches scale TH_window / TH_threat to the simulated "
                "horizon; see sim/experiment.h)\n");
}
