/**
 * @file
 * Fig 6: weighted speedup of benign applications with an attacker present
 * at N_RH = 1K, per workload-mix class, for each mechanism paired with
 * BreakHammer, normalized to the mechanism without BreakHammer.
 * Expected shape: > 1 everywhere (paper: +84.6% average).
 */
#include <map>

#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig06",
                      "Fig 6: benign performance under attack, N_RH=1K, +BH vs base",
                      "paper Fig 6 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    const unsigned n_rh = 1024;

    std::printf("%-12s", "mix");
    for (MitigationType m : pairedMitigations())
        std::printf(" %11s", mitigationName(m));
    std::printf("\n");

    std::map<std::string, std::vector<double>> per_mech_all;
    for (const std::string &pattern : attackMixPatterns()) {
        std::printf("%-12s", pattern.c_str());
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> vals;
            for (unsigned i = 0; i < mixesPerClass(); ++i) {
                MixSpec mix = makeMix(pattern, i);
                const ExperimentResult &base = point(ctx, mix, mech, n_rh,
                                                     false);
                const ExperimentResult &paired = point(ctx, mix, mech,
                                                       n_rh, true);
                double norm = paired.weightedSpeedup / base.weightedSpeedup;
                vals.push_back(norm);
                per_mech_all[mitigationName(mech)].push_back(norm);
            }
            std::printf(" %11.3f", geomean(vals));
        }
        std::printf("\n");
    }

    std::printf("%-12s", "geomean");
    std::vector<double> overall;
    for (MitigationType mech : pairedMitigations()) {
        double g = geomean(per_mech_all[mitigationName(mech)]);
        overall.push_back(g);
        std::printf(" %11.3f", g);
    }
    std::printf("\n\noverall geomean: %.3f (paper: +84.6%% average "
                "improvement)\n",
                geomean(overall));
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig06")
        .mixes(attackMixes())
        .nRh(1024)
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
