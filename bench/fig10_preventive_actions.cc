/**
 * @file
 * Fig 10: number of RowHammer-preventive actions performed vs N_RH, with
 * and without BreakHammer (REGA excluded: its preventive refreshes run in
 * parallel with activations, fn 10 of the paper). Expected shape: counts
 * grow as N_RH shrinks; BreakHammer reduces them (paper: -71.6% average).
 */
#include "bench/bench_util.h"

namespace {

std::vector<bh::MitigationType>
mechanisms()
{
    std::vector<bh::MitigationType> mechs;
    for (bh::MitigationType m : bh::pairedMitigations())
        if (m != bh::MitigationType::kRega)
            mechs.push_back(m);
    return mechs;
}

} // namespace

BH_BENCH_SWEEP_FIGURE("fig10",
                      "Fig 10: preventive actions vs N_RH, attacker present",
                      "paper Fig 10 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::vector<MixSpec> mixes = attackMixes();

    std::printf("%-8s", "NRH");
    for (MitigationType m : mechanisms())
        std::printf(" %10s %10s", mitigationName(m), "+BH");
    std::printf("\n");

    std::vector<double> reductions;
    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : mechanisms()) {
            double base_sum = 0, paired_sum = 0;
            for (const MixSpec &mix : mixes) {
                base_sum += static_cast<double>(
                    point(ctx, mix, mech, n_rh, false).preventiveActions);
                paired_sum += static_cast<double>(
                    point(ctx, mix, mech, n_rh, true).preventiveActions);
            }
            double per_mix = 1.0 / static_cast<double>(mixes.size());
            std::printf(" %10.0f %10.0f", base_sum * per_mix,
                        paired_sum * per_mix);
            if (base_sum > 0)
                reductions.push_back(paired_sum / base_sum);
        }
        std::printf("\n");
    }
    std::printf("\n(mean preventive actions per mix; paper reports -71.6%% "
                "average with BH)\n");
    std::printf("measured mean ratio +BH/base: %.3f\n", mean(reductions));
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig10")
        .mixes(attackMixes())
        .nRhValues(nrhSweep())
        .mechanisms(mechanisms())
        .breakHammerAxis();
}
